"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact, prints the reproduced
rows/series (run with ``-s`` to see them next to the paper's numbers), and
asserts the *shape* claims — who wins, by roughly what factor, where the
crossovers fall.  Absolute seconds come from the calibrated simulator and
are expected to track Table III closely but not exactly.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiment pipelines are deterministic and take 0.1-60 s, so one
    round is both sufficient and honest (repeats would only re-measure the
    same deterministic path).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def report(capsys):
    """Print a rendered experiment block outside of capture."""

    def _print(obj) -> None:
        with capsys.disabled():
            print()
            print(obj.render() if hasattr(obj, "render") else obj)

    return _print
