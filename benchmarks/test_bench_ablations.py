"""Ablation benchmarks backing the paper's textual claims."""


from conftest import run_once
from repro.experiments.ablations import (
    run_branching_ablation,
    run_fit_points_ablation,
    run_multistart_ablation,
    run_objective_ablation,
    run_solver_time,
    run_tsync_ablation,
)
from repro.experiments.mlice_ablation import run_mlice_ablation
from repro.experiments.paperdata import CLAIMS
from repro.hslb import ObjectiveKind
from repro.mlice import IceDecompPolicy


class TestObjectiveAblation:
    def test_objective_ablation(self, benchmark, report):
        ab = run_once(benchmark, run_objective_ablation, seed=0)
        report(ab)
        mm = ab.makespans[ObjectiveKind.MIN_MAX]
        # Paper Sec. III-D: min-max was the objective used; the sum
        # objective is "obviously out of consideration".
        assert mm <= ab.makespans[ObjectiveKind.MIN_SUM]
        assert mm <= ab.makespans[ObjectiveKind.MAX_MIN]
        assert ab.makespans[ObjectiveKind.MIN_SUM] > mm * 1.05


class TestBranchingAblation:
    def test_sos_branching_ablation(self, benchmark, report):
        ab = run_once(benchmark, run_branching_ablation, seed=0)
        report(ab)
        # Paper Sec. III-E: branching on the special-ordered set rather than
        # individual binaries improved the solver runtime by two orders of
        # magnitude.  Our B&B prunes aggressively, so the measured advantage
        # is roughly 1.5 orders in explored nodes; crucially both reach the
        # same optimum and SOS wins decisively, growing with the set size.
        assert ab.objectives_agree
        assert ab.node_ratio >= 10.0
        assert ab.binary_seconds > ab.sos_seconds


class TestSolverTime:
    def test_solver_time_40960(self, benchmark, report):
        ab = run_once(benchmark, run_solver_time, seed=0)
        report(ab)
        # Paper Sec. III-E: "the MINLP for 40960 nodes took less than 60
        # seconds to solve on one core".
        assert ab.total_nodes == 40_960
        assert ab.seconds < CLAIMS["solver_seconds_at_40960"]
        assert ab.objective > 0


class TestTsyncAblation:
    def test_tsync_ablation(self, benchmark, report):
        ab = run_once(benchmark, run_tsync_ablation, seed=0)
        report(ab)
        # Paper Sec. III-A: "additional constraints, like Tsync, may
        # actually result in reduced performance".
        off = ab.makespans[None]
        tightest = min(b for b in ab.tsync_values if b is not None)
        assert ab.makespans[tightest] > off
        for band in ab.tsync_values:
            if band is not None:
                assert ab.makespans[band] >= off - 1e-9


class TestFitAblation:
    def test_fit_points_ablation(self, benchmark, report):
        ab = run_once(benchmark, run_fit_points_ablation, seed=0)
        report(ab)
        # Paper Sec. III-C: "for CESM, four points were enough to build
        # well-fitted scaling curves" and runs should number > 4.
        best = min(ab.actual.values())
        for p, t in ab.actual.items():
            if p >= CLAIMS["min_benchmark_points"]:
                assert t <= best * 1.06
        assert min(ab.r_squared.values()) > 0.95

    def test_finetune_ablation(self, benchmark, report):
        from repro.experiments.finetune import run_finetune_comparison

        ab = run_once(benchmark, run_finetune_comparison, seed=0)
        report(ab)
        # Paper Sec. II: coupler/river "can be added later for fine tuning";
        # doing so collapses the systematic under-prediction.
        assert ab.finetuned_prediction_error < ab.standard_prediction_error
        assert ab.finetuned_prediction_error < 0.02

    def test_seed_stability(self, benchmark, report):
        from repro.experiments.stability import run_seed_stability

        ab = run_once(benchmark, run_seed_stability, seed=0)
        report(ab)
        # Replicated headline: HSLB's tie-with-the-expert at 1 degree is
        # robust to the noise realization, not a lucky seed.
        assert ab.mean_actual_gap < 0.03
        assert ab.mean_prediction_error < 0.08
        assert ab.hslb_actual.std() < 0.05 * ab.hslb_actual.mean()

    def test_mlice_ablation(self, benchmark, report):
        ab = run_once(benchmark, run_mlice_ablation, seed=0)
        report(ab)
        # Sec. V / ref. [10]: learned decomposition selection recovers most
        # of the oracle's advantage over CICE's default heuristic.
        default = ab.mean_seconds[IceDecompPolicy.DEFAULT]
        learned = ab.mean_seconds[IceDecompPolicy.LEARNED]
        oracle = ab.mean_seconds[IceDecompPolicy.ORACLE]
        assert oracle <= learned <= default
        assert (default - learned) >= 0.75 * (default - oracle)
        assert ab.fit_r_squared[IceDecompPolicy.LEARNED] >= (
            ab.fit_r_squared[IceDecompPolicy.DEFAULT] - 1e-4
        )

    def test_multistart_ablation(self, benchmark, report):
        ab = run_once(benchmark, run_multistart_ablation, seed=0)
        report(ab)
        # Paper Sec. III-C: "even though the parameter values may differ,
        # the solution value ... did not vary significantly" and "locally
        # optimal solutions led to similar quality node allocations".
        assert ab.distinct_parameter_sets >= 2
        assert ab.makespan_spread < 0.05
