"""Figure regenerations (F2, F3, F4)."""

import numpy as np
import pytest

from conftest import run_once
from repro.cesm import ComponentId, Layout
from repro.experiments.figures import run_figure2, run_figure3, run_figure4

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class TestFigure2:
    def test_fig2_scaling_curves(self, benchmark, report):
        fig = run_once(benchmark, run_figure2, seed=0)
        report(fig)
        # Paper Sec. III-C: R^2 very close to 1 for each component.
        assert min(fig.r_squared.values()) > 0.97
        # Every fitted curve decreases over the benchmarked range (CESM is
        # "a highly scalable code ... we did not observe increasing
        # wall-clock times").
        for comp, parts in fig.curves.items():
            times = parts["total"].times
            assert times[0] > times[-1]
        # The inset decomposition: T_sca dominates at small n, the floor
        # matters at large n.
        atm = fig.curves[A]
        assert atm["T_sca"].times[0] > 10 * atm["T_ser"].times[0]
        assert atm["T_sca"].times[-1] < 2 * max(atm["T_ser"].times[-1], 1e-9) * 10
        # b and c are "almost equal to zero" / small on this machine.
        for comp, (a, b, c, d) in fig.fit_params.items():
            assert b < 0.1


class TestFigure3:
    def test_fig3_comparison(self, benchmark, report):
        fig = run_once(benchmark, run_figure3, seed=0)
        report(fig)
        for n in fig.node_counts:
            # HSLB (constrained ocean) beats the human guess at 1/8 degree.
            assert fig.actual[n] < fig.manual[n]
            # predictions track executions
            assert fig.predicted[n] == pytest.approx(fig.actual[n], rel=0.12)
        # scaling: 4x nodes cuts the time by at least 2x
        assert fig.actual[8192] > 2.0 * fig.actual[32768]


class TestFigure4:
    def test_fig4_layout_scaling(self, benchmark, report):
        fig = run_once(benchmark, run_figure4, seed=0)
        report(fig)
        t1 = fig.predicted[Layout.HYBRID]
        t2 = fig.predicted[Layout.SEQUENTIAL_SPLIT]
        t3 = fig.predicted[Layout.FULLY_SEQUENTIAL]
        # Paper: "layouts 1 and 2 performed similar, while layout 3, as
        # expected, performs the worst."
        np.testing.assert_allclose(t1, t2, rtol=0.15)
        assert np.all(t3 > t1) and np.all(t3 > t2)
        # all layouts scale (monotone improvement over the sweep)
        for series in (t1, t2, t3):
            assert np.all(np.diff(series) < 0)
        # Paper: R^2 between predicted and experimental layout 1 = 1.0.
        assert fig.r2_layout1 > 0.98
