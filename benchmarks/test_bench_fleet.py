"""Supervision overhead and crash-recovery latency, to ``BENCH_7.json``.

Two claims about :class:`~repro.parallel.supervised.SupervisedProcessExecutor`:

1.  **Supervision is (nearly) free on the clean path.**  The same
    sleep-bearing batch through the plain process pool and the supervised
    pool must return identical results with < 5% wall-clock overhead —
    heartbeats, deadlines and the dispatch loop must not tax healthy runs.
2.  **Recovery is fast.**  Under a deterministic kill profile, every
    injected SIGKILL costs a bounded detect-kill-respawn cycle; the run
    still completes with exact results, and the mean respawn latency is
    recorded.

Sleep-based tasks (not simulator work) so the baseline is pure executor
machinery: the batch holds ``TASKS`` jobs of ``TASK_SECONDS`` each over
``WORKERS`` workers, big enough that per-dispatch overhead would show.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import run_once
from repro.parallel import ProcessExecutor, SupervisedProcessExecutor
from repro.resilience import ChaosProfile, RetryPolicy

WORKERS = 4
TASKS = 24
TASK_SECONDS = 0.15
MAX_OVERHEAD = 0.05          # clean-path supervision tax ceiling
KILL_PROBABILITY = 0.25
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_7.json"


def _task(payload):
    index, seconds = payload
    time.sleep(seconds)
    return index * index


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def record(suite: str, payload: dict) -> None:
    """Merge one suite's numbers into BENCH_7.json."""
    data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    data[suite] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def bench_clean_overhead():
    payloads = [(i, TASK_SECONDS) for i in range(TASKS)]
    # Warm both pools first so neither side pays process spawn in the
    # measured window (the supervised pool spawns eagerly, the plain pool
    # lazily — spawn cost is lifecycle, not per-batch overhead).
    with ProcessExecutor(WORKERS) as ex:
        ex.map_ordered(_task, payloads[:WORKERS])
        plain, t_plain = _timed(lambda: ex.map_ordered(_task, payloads))
    with SupervisedProcessExecutor(WORKERS) as ex:
        ex.map_ordered(_task, payloads[:WORKERS])
        supervised, t_supervised = _timed(lambda: ex.map_ordered(_task, payloads))
    return plain, supervised, t_plain, t_supervised


def test_clean_path_overhead_under_five_percent(benchmark, report):
    plain, supervised, t_plain, t_supervised = run_once(
        benchmark, bench_clean_overhead
    )
    overhead = t_supervised / t_plain - 1.0
    report(
        f"clean path ({TASKS} x {TASK_SECONDS}s over {WORKERS} workers): "
        f"plain {t_plain:.2f} s, supervised {t_supervised:.2f} s "
        f"({overhead:+.1%} overhead)"
    )
    assert supervised == plain, "supervision must not change results"
    record("clean_path_overhead", {
        "workers": WORKERS,
        "tasks": TASKS,
        "task_seconds": TASK_SECONDS,
        "plain_seconds": round(t_plain, 3),
        "supervised_seconds": round(t_supervised, 3),
        "overhead_fraction": round(overhead, 4),
        "bit_identical": True,
    })
    assert overhead < MAX_OVERHEAD, (
        f"supervision overhead {overhead:.1%} >= {MAX_OVERHEAD:.0%}"
    )


def bench_recovery():
    payloads = [(i, TASK_SECONDS) for i in range(TASKS)]
    chaos = ChaosProfile(kill_probability=KILL_PROBABILITY)
    with SupervisedProcessExecutor(
        WORKERS, chaos=chaos, seed=0, retry_policy=RetryPolicy(max_attempts=4)
    ) as ex:
        got, elapsed = _timed(lambda: ex.map_ordered(_task, payloads))
        stats = dict(ex.stats)
    return got, elapsed, stats


def test_recovery_latency_per_injected_kill(benchmark, report):
    got, elapsed, stats = run_once(benchmark, bench_recovery)
    assert got == [i * i for i in range(TASKS)], "chaos must not change results"
    assert stats["crashes"] > 0, "the kill profile must actually fire"
    respawns = stats["respawn_seconds"]
    mean_respawn = sum(respawns) / len(respawns)
    report(
        f"recovery (kill={KILL_PROBABILITY:g}, seed 0): {stats['crashes']} kills "
        f"injected, batch finished exact in {elapsed:.2f} s; respawn "
        f"mean {mean_respawn * 1e3:.0f} ms, max {max(respawns) * 1e3:.0f} ms"
    )
    record("recovery_latency", {
        "workers": WORKERS,
        "tasks": TASKS,
        "task_seconds": TASK_SECONDS,
        "kill_probability": KILL_PROBABILITY,
        "seed": 0,
        "kills_injected": stats["crashes"],
        "respawns": stats["respawns"],
        "batch_seconds": round(elapsed, 3),
        "respawn_mean_ms": round(mean_respawn * 1e3, 1),
        "respawn_max_ms": round(max(respawns) * 1e3, 1),
        "bit_identical": True,
    })
    # A respawn is fork + pipe setup; it must stay well under one task.
    assert mean_respawn < 1.0
