"""Kernel-layer throughput and cache effectiveness.

Two claims back the compiled-kernel evaluation layer:

1.  **Batched beats scalar by >= 3x.**  Evaluating an expression set over a
    256-point batch through one vectorized :class:`BatchKernel` call must be
    at least 3x faster than looping per-expression compiled scalar lambdas
    over the batch (the pre-kernel evaluation strategy), which in turn beats
    raw tree walks.
2.  **The cache carries a B&B solve.**  Across the child nodes of a single
    branch-and-bound solve, more than 80% of kernel lookups are answered
    from the cache — children share their parent's expressions, so only
    genuinely new (presolve-substituted) functions ever compile.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once
from repro.cesm import ComponentId, Layout
from repro.expr.compile import compile_expr
from repro.fitting import PerfModel
from repro.hslb import build_layout_model
from repro.kernels import BatchKernel
from repro.minlp.bnb import solve_nlp_bnb
from repro.minlp.options import BranchRule, MINLPOptions

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

BATCH = 256
REPEATS = 30


def expression_set():
    """A Table-II-like family: four perf curves plus coupling terms."""
    from repro.expr.node import const, var

    n = {c: var(f"n_{c.value}") for c in (I, L, A, O)}
    curves = {
        I: PerfModel(a=8000.0, d=18.0),
        L: PerfModel(a=1465.0, d=2.6),
        A: PerfModel(a=27000.0, d=45.0),
        O: PerfModel(a=7900.0, b=0.02, c=1.3, d=36.0),
    }
    exprs = [m.expr(n[c]) for c, m in curves.items()]
    exprs.append(n[I] + n[L] + n[A] + n[O] + const(-128.0))
    exprs.append(curves[A].expr(n[A]) + curves[O].expr(n[O]))
    index = {f"n_{c.value}": i for i, c in enumerate((I, L, A, O))}
    return exprs, index


def bench_evaluation_strategies():
    exprs, index = expression_set()
    rng = np.random.default_rng(7)
    X = rng.uniform(8.0, 1024.0, size=(BATCH, len(index)))

    # tree walks, point by point
    names = list(index)
    t0 = time.perf_counter()
    for _ in range(REPEATS):
        for row in X:
            env = dict(zip(names, row.tolist()))
            for e in exprs:
                e.evaluate(env)
    t_tree = time.perf_counter() - t0

    # per-expression compiled scalar lambdas, point by point
    fns = [compile_expr(e, index) for e in exprs]
    t0 = time.perf_counter()
    for _ in range(REPEATS):
        for row in X:
            for f in fns:
                f(row)
    t_scalar = time.perf_counter() - t0

    # one batched CSE kernel over the whole block
    kernel = BatchKernel(exprs, index)
    t0 = time.perf_counter()
    for _ in range(REPEATS):
        kernel.values(X)
    t_batched = time.perf_counter() - t0

    return {"tree": t_tree, "scalar": t_scalar, "batched": t_batched}


def test_batched_kernel_speedup(benchmark, report):
    times = run_once(benchmark, bench_evaluation_strategies)
    lines = [f"evaluation of {BATCH}-point batch, {REPEATS} repeats:"]
    for name in ("tree", "scalar", "batched"):
        lines.append(
            f"  {name:>8}: {times[name] * 1e3:8.2f} ms "
            f"({times['tree'] / times[name]:5.1f}x vs tree)"
        )
    report("\n".join(lines))
    assert times["batched"] < times["scalar"] / 3.0, (
        f"batched kernel only {times['scalar'] / times['batched']:.2f}x faster "
        "than scalar lambdas (need >= 3x)"
    )
    assert times["scalar"] < times["tree"]


def bench_bnb_cache():
    perf = {
        I: PerfModel(a=8000.0, d=18.0),
        L: PerfModel(a=1465.0, d=2.6),
        A: PerfModel(a=27000.0, d=45.0),
        O: PerfModel(a=7900.0, b=0.02, c=1.0, d=36.0),
    }
    bounds = {I: (8, 2048), L: (4, 2048), A: (8, 2048), O: (8, 2048)}
    model = build_layout_model(
        Layout.HYBRID, 48, perf, bounds, ocn_allowed=[8, 16, 24, 32]
    )
    # Integer branching explores a deeper tree than SOS branching — the
    # regime where kernel reuse across children actually matters.
    options = MINLPOptions(branch_rule=BranchRule.INTEGER_ONLY)
    return solve_nlp_bnb(model, options)


def test_cache_hit_rate_across_bnb_nodes(benchmark, report):
    result = run_once(benchmark, bench_bnb_cache)
    counters = result.kernel_counters
    hits = counters.get("kernel_hits", 0)
    misses = counters.get("kernel_misses", 0)
    rate = hits / (hits + misses)
    report(
        f"B&B over {result.nodes} nodes: {counters['kernel_compiles']} kernel "
        f"compiles, {hits} cache hits, {misses} misses "
        f"(hit rate {rate:.1%}); {counters['kernel_grad_evals']} gradient and "
        f"{counters['kernel_hess_evals']} Hessian evaluations"
    )
    assert result.is_optimal
    assert result.nodes >= 5, "tree too shallow to exercise the cache"
    assert rate > 0.80, f"cache hit rate {rate:.1%} <= 80%"
