"""Wall-clock speedup of the process backend on latency-dominated stages.

The synthetic simulator replays recorded measurements in microseconds, so
parallelising it proves nothing.  :class:`LatencySimulator` restores the
property the executor layer exists for — every measurement occupies the
machine for time proportional to the simulated seconds, like a real job in
a queue — without touching the returned values.  Two claims:

1.  **Gather scales.**  Benchmarking the 8th-degree case (5 sweep points x
    4 components = 20 independent jobs) with 4 process workers is at least
    2x faster than the serial sweep, and returns bit-identical data.
2.  **Grid search scales.**  The 6x4 ocean/ice fraction grid (24 coupled
    runs) speeds up the same way and picks the same allocation.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once
from repro.baselines.grid_search import grid_search_allocation
from repro.cesm import CoupledRunSimulator, make_case
from repro.hslb import gather_benchmarks
from repro.parallel import LatencySimulator, ProcessExecutor

WORKERS = 4
MIN_SPEEDUP = 2.0

# Chosen so each serial baseline sleeps for roughly three seconds: the 8th
# gather replays ~98k simulated seconds, the 1deg grid ~17k.
GATHER_SCALE = 3e-5
GRID_SCALE = 2e-4


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def bench_gather():
    case = make_case("8th", 8192)

    def sim():
        return LatencySimulator(CoupledRunSimulator(case), scale=GATHER_SCALE)

    serial, t_serial = _timed(lambda: gather_benchmarks(sim(), points=5))
    with ProcessExecutor(WORKERS) as ex:
        parallel, t_parallel = _timed(
            lambda: gather_benchmarks(sim(), points=5, executor=ex)
        )
    return serial, parallel, t_serial, t_parallel


def test_gather_speedup_with_process_workers(benchmark, report):
    serial, parallel, t_serial, t_parallel = run_once(benchmark, bench_gather)
    speedup = t_serial / t_parallel
    report(
        f"gather (8th, 20 latency-bearing jobs): serial {t_serial:.2f} s, "
        f"{WORKERS} process workers {t_parallel:.2f} s ({speedup:.1f}x)"
    )
    assert serial.components() == parallel.components()
    for comp in serial.components():
        assert np.array_equal(serial.times(comp), parallel.times(comp)), comp
    assert speedup >= MIN_SPEEDUP, (
        f"gather speedup {speedup:.2f}x < {MIN_SPEEDUP}x at {WORKERS} workers"
    )


def bench_grid_search():
    case = make_case("1deg", 128)

    def sim():
        return LatencySimulator(CoupledRunSimulator(case), scale=GRID_SCALE)

    serial, t_serial = _timed(lambda: grid_search_allocation(sim()))
    with ProcessExecutor(WORKERS) as ex:
        parallel, t_parallel = _timed(
            lambda: grid_search_allocation(sim(), executor=ex)
        )
    return serial, parallel, t_serial, t_parallel


def test_grid_search_speedup_with_process_workers(benchmark, report):
    serial, parallel, t_serial, t_parallel = run_once(
        benchmark, bench_grid_search
    )
    speedup = t_serial / t_parallel
    report(
        f"grid search (1deg, 24 coupled runs): serial {t_serial:.2f} s, "
        f"{WORKERS} process workers {t_parallel:.2f} s ({speedup:.1f}x)"
    )
    assert parallel == serial
    assert speedup >= MIN_SPEEDUP, (
        f"grid speedup {speedup:.2f}x < {MIN_SPEEDUP}x at {WORKERS} workers"
    )
