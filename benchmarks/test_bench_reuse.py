"""Wall-clock speedup of warm solve families over cold re-solves.

The reuse engine's perf claim (and its honesty conditions) in two suites,
both recorded to ``BENCH_5.json``:

1.  **What-if ladder.**  The Sec. IV-C optimal-job-size question re-solves
    the HYBRID layout MINLP down a budget ladder (2048 -> 128 nodes).  One
    warm :class:`SolveFamily` must be at least 2x faster than five cold
    solves while staying bit-identical with no per-member tree growth.
2.  **Table-I layout suite.**  The same ladder across all three paper
    layouts, one family per layout (curves are shared, so carried cuts
    re-tag across layouts but incumbents stay within each layout's
    channel).  Same 2x floor, same bit-identity and no-growth gates, plus
    the total branch-and-bound tree must shrink outright.

Both suites opt into the *full* feature set explicitly
(``SolveFamily(pseudocosts=False)`` — cut carry-over is what buys the 2x,
and it is validated for these fitted curves; carried pseudocosts are not,
at this spread).  The conservative ``reuse=True`` auto-configuration
(incumbent + basis only on wide ladders) is covered by the differential
tests, not benchmarked: its wins are real but under 2x.

Speedup here is real work avoided — fewer LP/NLP solves via carried cuts,
seeded incumbents, and warm bases — not latency simulation, so the ratios
are stable across machines.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import run_once
from repro.analysis.whatif import solve_layout_points
from repro.cesm import ComponentId, Layout, make_case
from repro.hslb import HSLBPipeline
from repro.reuse import SolveFamily

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

MIN_SPEEDUP = 2.0
LADDER = (2048, 1024, 512, 256, 128)
LAYOUTS = (Layout.HYBRID, Layout.SEQUENTIAL_SPLIT, Layout.FULLY_SEQUENTIAL)
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_5.json"


def calibrated():
    """Fitted 1-degree curves + bounds + allowed ocean counts (seed 0)."""
    case = make_case("1deg", 128, seed=0)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
    return perf, bounds, case.ocean_allowed()


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def record(suite: str, payload: dict) -> None:
    """Merge one suite's numbers into BENCH_5.json."""
    data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    data[suite] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _check_pair(cold, warm):
    """Bit-identity + no per-member tree growth; returns node-count pairs."""
    pairs = []
    for c, w in zip(cold, warm):
        assert w.makespan.hex() == c.makespan.hex(), c.total_nodes
        assert w.allocation == c.allocation, c.total_nodes
        assert w.solver_result.nodes <= c.solver_result.nodes, c.total_nodes
        pairs.append((c.solver_result.nodes, w.solver_result.nodes))
    return pairs


def bench_whatif_ladder():
    perf, bounds, ocn = calibrated()

    def ladder(reuse):
        return solve_layout_points(
            perf, bounds, LADDER, layout=Layout.HYBRID, ocn_allowed=ocn,
            method="lpnlp", reuse=reuse,
        )

    cold, t_cold = _timed(lambda: ladder(False))
    warm, t_warm = _timed(lambda: ladder(SolveFamily(pseudocosts=False)))
    return cold, warm, t_cold, t_warm


def test_whatif_ladder_speedup(benchmark, report):
    cold, warm, t_cold, t_warm = run_once(benchmark, bench_whatif_ladder)
    speedup = t_cold / t_warm
    pairs = _check_pair(cold, warm)
    report(
        f"what-if ladder (1deg HYBRID, N={list(LADDER)}): cold {t_cold:.2f} s, "
        f"warm family {t_warm:.2f} s ({speedup:.1f}x); "
        f"B&B nodes cold->warm {pairs}"
    )
    record("whatif_ladder", {
        "layout": "HYBRID",
        "method": "lpnlp",
        "family": "cuts+incumbent+basis+fbbt (pseudocosts off)",
        "node_counts": list(LADDER),
        "cold_seconds": round(t_cold, 3),
        "warm_seconds": round(t_warm, 3),
        "speedup": round(speedup, 2),
        "bnb_nodes_cold": [c for c, _ in pairs],
        "bnb_nodes_warm": [w for _, w in pairs],
        "bit_identical": True,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"ladder speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )


def bench_layout_suite():
    perf, bounds, ocn = calibrated()

    def suite(warm):
        return {
            layout: solve_layout_points(
                perf, bounds, LADDER, layout=layout, ocn_allowed=ocn,
                method="lpnlp",
                reuse=SolveFamily(pseudocosts=False) if warm else False,
            )
            for layout in LAYOUTS
        }

    cold, t_cold = _timed(lambda: suite(False))
    warm, t_warm = _timed(lambda: suite(True))
    return cold, warm, t_cold, t_warm


def test_layout_suite_speedup(benchmark, report):
    cold, warm, t_cold, t_warm = run_once(benchmark, bench_layout_suite)
    speedup = t_cold / t_warm
    by_layout = {
        layout.name: _check_pair(cold[layout], warm[layout])
        for layout in LAYOUTS
    }
    total_cold = sum(c for pairs in by_layout.values() for c, _ in pairs)
    total_warm = sum(w for pairs in by_layout.values() for _, w in pairs)
    report(
        f"Table-I layout suite (3 layouts x N={list(LADDER)}): "
        f"cold {t_cold:.2f} s, warm families {t_warm:.2f} s ({speedup:.1f}x); "
        f"total B&B nodes {total_cold} -> {total_warm}"
    )
    record("table_i_layout_suite", {
        "layouts": [layout.name for layout in LAYOUTS],
        "method": "lpnlp",
        "family": "cuts+incumbent+basis+fbbt (pseudocosts off), one per layout",
        "node_counts": list(LADDER),
        "cold_seconds": round(t_cold, 3),
        "warm_seconds": round(t_warm, 3),
        "speedup": round(speedup, 2),
        "bnb_nodes_cold_total": total_cold,
        "bnb_nodes_warm_total": total_warm,
        "bnb_nodes_by_layout": {
            name: {"cold": [c for c, _ in pairs], "warm": [w for _, w in pairs]}
            for name, pairs in by_layout.items()
        },
        "bit_identical": True,
    })
    assert total_warm < total_cold
    assert speedup >= MIN_SPEEDUP, (
        f"layout-suite speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
