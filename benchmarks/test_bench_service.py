"""Load benchmark for the tuning service: latency under realistic traffic.

Two 1000-request workloads over a 20-spec ladder (one reuse channel),
each served by a fresh daemon over real sockets with 8 concurrent
clients, recorded to ``BENCH_8.json``:

1.  **skewed** — 80% of requests hit 3 hot specs (the tuning-dashboard
    shape: everyone asks the same few what-ifs);
2.  **uniform** — requests spread evenly over the whole ladder.

The daemon runs its production shape: the supervised process backend
(4 workers), so compatible cold requests that land in one batching
window solve in parallel while exact-tier hits keep streaming off the
event loop.

For each workload: p50/p99/mean latency, throughput, and per-tier hit
rates.  The service claim: the mean answer latency must be at least
**5x lower** than the mean cold per-request solve (the no-service
baseline where every request pays a fresh MINLP solve).

Correctness gates, in two layers:

- **bit-identity** — replaying each workload's request stream through the
  engine answers every request with *exactly* the payload (objective,
  allocation, B&B node counts) that the equivalent direct library calls
  produce: one live :class:`SolveFamily`, uniques solved in first-arrival
  order.  The engine's clone-plus-delta-merge is unobservable.
- **optimality vs cold** — every socket response's objective equals the
  fresh cold solve's optimal value to 1e-9 relative, and repeats of one
  spec answer identically.  (Exact float equality against a *fresh* solve
  is not the contract here: with arbitrary arrival order, a warm search
  may legitimately land on an alternate optimal allocation whose makespan
  ties within LP tolerance — the recorded ``max_rel_objective_gap`` shows
  the observed tie magnitude, ~1e-13.)

The ladder's budget spread stays inside the family's pseudocost guard
(2048/1744 < 1.2x) so the warm tier serves with the full feature set.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.analysis.whatif import _solve_layout_point, layout_point_specs
from repro.cesm import ComponentId, make_case
from repro.hslb import HSLBPipeline
from repro.reuse import SolveFamily
from repro.service import ServiceConfig, ServiceEngine, serve_in_thread
from repro.service.engine import point_result_payload

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

MIN_SPEEDUP = 5.0
OBJECTIVE_RTOL = 1e-9
POOL_SIZES = tuple(range(2048, 1728, -16))  # 20 budgets, spread < 1.2x
REQUESTS = 1000
CLIENTS = 8
HOT_SPECS = 3
HOT_FRACTION = 0.8
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_8.json"


def calibrated_specs():
    """The 20-spec solve ladder on the fitted 1-degree case (seed 0).

    Calibration happens at N=128 (the paper's Table I case); the ladder
    then asks the Sec. IV-C what-if question at job sizes around 2048 —
    the same extrapolation the BENCH_5 what-if ladder exercises.
    """
    case = make_case("1deg", 128, seed=0)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
    return layout_point_specs(
        perf, bounds, POOL_SIZES,
        layout=case.layout,
        ocn_allowed=case.ocean_allowed(),
        atm_allowed=case.atm_allowed(),
        method="lpnlp",
    )


def record(suite: str, payload: dict) -> None:
    """Merge one suite's numbers into BENCH_8.json."""
    data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    data[suite] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def percentile(latencies: list, q: float) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def workload_indices(shape: str, n_specs: int) -> list:
    """A deterministic 1000-draw request stream over the spec pool."""
    rng = np.random.default_rng(0 if shape == "skewed" else 1)
    if shape == "uniform":
        return [int(i) for i in rng.integers(0, n_specs, size=REQUESTS)]
    hot = rng.random(size=REQUESTS) < HOT_FRACTION
    hot_picks = rng.integers(0, HOT_SPECS, size=REQUESTS)
    cold_picks = rng.integers(HOT_SPECS, n_specs, size=REQUESTS)
    return [int(h if is_hot else c)
            for is_hot, h, c in zip(hot, hot_picks, cold_picks)]


def run_workload(specs: list, stream: list) -> dict:
    """Serve one request stream through a fresh daemon; measure latency."""
    per_client = [stream[i::CLIENTS] for i in range(CLIENTS)]
    latencies: list = [[] for _ in range(CLIENTS)]
    answers: list = [[] for _ in range(CLIENTS)]

    config = ServiceConfig(backend="supervised", workers=4,
                           max_queue=256, batch_window=0.005)
    with serve_in_thread(config) as handle:
        def drive(c):
            with handle.client(client_id=f"bench{c}") as client:
                for spec_index in per_client[c]:
                    t0 = time.perf_counter()
                    response = client.solve_point(specs[spec_index])
                    latencies[c].append(time.perf_counter() - t0)
                    answers[c].append((spec_index, response))

        threads = [threading.Thread(target=drive, args=(c,))
                   for c in range(CLIENTS)]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        counters = handle.daemon.engine.stats()["counters"]

    flat_lat = [lat for per in latencies for lat in per]
    flat_ans = [a for per in answers for a in per]
    assert len(flat_ans) == len(stream)
    assert all(response.ok for _, response in flat_ans)
    total = counters["requests"]
    return {
        "answers": flat_ans,
        "latency": flat_lat,
        "wall": wall,
        "counters": counters,
        "tier_rates": {
            "exact": counters["exact_hits"] / total,
            "warm": counters["warm_hits"] / total,
            "cold": counters["cold_solves"] / total,
            "dedup": counters["dedup_hits"] / total,
        },
    }


def assert_replay_bit_identical(specs: list, stream: list) -> None:
    """Service answers == direct library answers, bit for bit.

    The direct comparator performs the same work a user would without the
    service: one live family for the channel, each unique spec solved on
    first arrival, repeats re-read.  Replaying the stream through a fresh
    engine must reproduce every payload field exactly — including the
    solver's node/cut/iteration counts.
    """
    family = SolveFamily()
    direct: dict = {}
    for spec_index in stream:
        if spec_index not in direct:
            direct[spec_index] = point_result_payload(
                specs[spec_index],
                _solve_layout_point(specs[spec_index], family),
            )
    engine = ServiceEngine()
    for position, spec_index in enumerate(stream):
        response = engine.handle({
            "kind": "solve_point",
            "spec": specs[spec_index].to_dict(),
            "id": f"q{position}",
        })
        assert response.ok, response.to_dict()
        assert response.result == direct[spec_index], (position, spec_index)


def check_against_cold(reference: dict, answers: list) -> float:
    """Per-spec consistency + optimal-value equality; returns the max gap."""
    first: dict = {}
    max_gap = 0.0
    for spec_index, response in answers:
        payload = response.result
        if spec_index in first:
            assert payload == first[spec_index], spec_index
        else:
            first[spec_index] = payload
            want = reference[spec_index]["objective"]
            gap = abs(payload["objective"] - want) / abs(want)
            max_gap = max(max_gap, gap)
            assert gap <= OBJECTIVE_RTOL, (spec_index, gap)
    return max_gap


def bench_service_load():
    specs = calibrated_specs()

    # The no-service baseline: every request pays a fresh cold solve.
    # Mean per-request cost over the whole ladder, measured directly.
    reference = {}
    t0 = time.perf_counter()
    for i, spec in enumerate(specs):
        reference[i] = point_result_payload(
            spec, _solve_layout_point(spec, SolveFamily()))
    cold_mean = (time.perf_counter() - t0) / len(specs)

    results = {}
    for shape in ("skewed", "uniform"):
        stream = workload_indices(shape, len(specs))
        result = run_workload(specs, stream)
        result["max_gap"] = check_against_cold(reference, result["answers"])
        assert_replay_bit_identical(specs, stream)
        results[shape] = result
    return cold_mean, results


def test_service_load(benchmark, report):
    cold_mean, results = run_once(benchmark, bench_service_load)

    payload = {"requests": REQUESTS, "clients": CLIENTS,
               "spec_pool": len(POOL_SIZES),
               "cold_solve_mean_seconds": round(cold_mean, 4),
               "min_speedup": MIN_SPEEDUP,
               "bit_identical_to_direct_reuse": True}
    lines = []
    for shape, result in results.items():
        mean = sum(result["latency"]) / len(result["latency"])
        speedup = cold_mean / mean
        stats = {
            "mean_latency_seconds": round(mean, 5),
            "p50_latency_seconds": round(percentile(result["latency"], 0.50), 5),
            "p99_latency_seconds": round(percentile(result["latency"], 0.99), 5),
            "throughput_rps": round(REQUESTS / result["wall"], 1),
            "speedup_vs_cold": round(speedup, 1),
            "max_rel_objective_gap": result["max_gap"],
            "tier_hit_rates": {
                tier: round(rate, 4)
                for tier, rate in result["tier_rates"].items()
            },
        }
        payload[shape] = stats
        lines.append(
            f"{shape}: mean {mean * 1e3:.2f} ms, p50 "
            f"{stats['p50_latency_seconds'] * 1e3:.2f} ms, p99 "
            f"{stats['p99_latency_seconds'] * 1e3:.2f} ms, "
            f"{stats['throughput_rps']:.0f} req/s, "
            f"{speedup:.0f}x vs cold ({cold_mean * 1e3:.0f} ms); tiers "
            f"{stats['tier_hit_rates']}"
        )
    report("service load (1000 req x 8 clients, 20-spec ladder)\n  "
           + "\n  ".join(lines))
    record("service_load", payload)
    for shape, result in results.items():
        mean = sum(result["latency"]) / len(result["latency"])
        assert cold_mean / mean >= MIN_SPEEDUP, (
            f"{shape}: service mean latency {mean:.4f}s is only "
            f"{cold_mean / mean:.1f}x below the cold mean {cold_mean:.4f}s "
            f"(need {MIN_SPEEDUP}x)"
        )
