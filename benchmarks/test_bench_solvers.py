"""Micro-benchmarks of the solver substrates.

Not paper artifacts, but the numbers that explain the paper's "< 60 s"
claim at our scale: simplex throughput on a master-LP-sized problem, one
barrier solve, one full LP/NLP branch-and-bound, and one multistart fit.
These use full pytest-benchmark statistics (many rounds) since each call is
fast and deterministic-in, deterministic-out.
"""

import numpy as np

from repro.cesm import ComponentId, ground_truth, make_case
from repro.expr import var
from repro.fitting import FitOptions, fit_perf_model
from repro.hslb.layout_models import layout_model_for_case
from repro.lp import LinearProgram, RowSense, solve_lp
from repro.minlp import solve_lpnlp
from repro.nlp import NLPProblem, solve_nlp

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


def master_sized_lp(n_cols: int = 300, n_rows: int = 25, seed: int = 0):
    rng = np.random.default_rng(seed)
    c = rng.uniform(-1.0, 1.0, n_cols)
    lp = LinearProgram(c, np.zeros(n_cols), np.ones(n_cols))
    for _ in range(n_rows):
        row = rng.uniform(0.0, 1.0, n_cols)
        lp.add_row(row, RowSense.LE, float(row.sum()) * 0.4)
    return lp


class TestSimplexBench:
    def test_bench_simplex_master_sized(self, benchmark):
        lp = master_sized_lp()
        result = benchmark(lambda: solve_lp(lp.copy()))
        assert result.is_optimal


class TestWarmStartBench:
    def test_bench_warm_vs_cold_resolve(self, benchmark):
        """The branch-and-bound pattern: tighten one bound, re-solve.

        The timed path is the warm (dual-simplex) solve; the assertion
        checks it does strictly less pivoting than the cold solve."""
        lp = master_sized_lp()
        cold = solve_lp(lp)
        child = lp.copy()
        j = int(np.argmax(cold.x))
        child.ub[j] = cold.x[j] / 2.0

        warm_res = benchmark(lambda: solve_lp(child.copy(), warm=cold.warm))
        cold_res = solve_lp(child.copy())
        assert warm_res.is_optimal
        assert warm_res.objective == cold_res.objective or abs(
            warm_res.objective - cold_res.objective
        ) < 1e-7
        assert warm_res.iterations < cold_res.iterations


class TestBarrierBench:
    def test_bench_barrier_layout_relaxation(self, benchmark):
        T, ni, nl, na, no = (var(s) for s in ("T", "n_i", "n_l", "n_a", "n_o"))
        truth = ground_truth("1deg")
        p = NLPProblem(
            names=["T", "n_i", "n_l", "n_a", "n_o"],
            objective=T,
            inequalities=[
                ("ci", truth[I].law.expr("n_i") - T),
                ("cl", truth[L].law.expr("n_l") - T),
                ("ca", truth[A].law.expr("n_a") - T),
                ("co", truth[O].law.expr("n_o") - T),
                ("cap", ni + nl + na + no - 2048.0),
            ],
            lb=np.array([0.0, 4.0, 4.0, 8.0, 8.0]),
            ub=np.array([1e5, 2048.0, 2048.0, 2048.0, 2048.0]),
        )
        result = benchmark(lambda: solve_nlp(p))
        assert result.is_optimal


class TestMINLPBench:
    def test_bench_lpnlp_1deg_2048(self, benchmark):
        case = make_case("1deg", 2048, seed=0)
        perf = {c: ground_truth("1deg")[c].law for c in (I, L, A, O)}

        def solve():
            return solve_lpnlp(layout_model_for_case(case, perf))

        result = benchmark(solve)
        assert result.is_optimal


class TestFittingBench:
    def test_bench_multistart_fit(self, benchmark):
        truth = ground_truth("1deg")[A].law
        nodes = np.array([8, 23, 64, 181, 512, 1448, 2048], float)
        times = truth(nodes) * np.random.default_rng(0).lognormal(0, 0.02, nodes.size)
        result = benchmark(
            lambda: fit_perf_model(nodes, times, FitOptions(n_starts=8, seed=0))
        )
        assert result.r_squared > 0.99
