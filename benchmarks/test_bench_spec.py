"""Dispatch cost of description-driven specs vs pickled models.

The spec refactor's perf claim, recorded to ``BENCH_6.json``: shipping a
:class:`~repro.spec.SolvePointSpec`-style description to a process worker
is **no slower** than pickling the built :class:`~repro.model.Model`, and
the payload is several times smaller.  The fair accounting is end to end —
the model must be *built* somewhere either way — so the two dispatch
recipes compared per Table I problem are:

- **model path**: build in the parent, pickle the object graph across the
  boundary, unpickle worker-side;
- **spec path**: pickle the spec across the boundary, unpickle, rebuild
  through the builder registry worker-side.

Both produce a solvable model; the spec path just moves the build to the
worker and ships ~4x fewer bytes.  A third suite times the real thing — a
what-if ladder fanned out on a :class:`ProcessExecutor`, which ships specs
since the refactor — and checks it returns the serial sweep's exact
results.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

from conftest import run_once
from repro.analysis.whatif import solve_layout_points
from repro.cesm import ComponentId, Layout, make_case
from repro.hslb import (
    HSLBPipeline,
    build_layout_model_from_spec,
    layout_model_for_case,
    layout_problem_spec_for_case,
)
from repro.spec.schema import canonical_json

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

SIZES = (128, 120, 112)
LAYOUTS = (Layout.HYBRID, Layout.SEQUENTIAL_SPLIT, Layout.FULLY_SEQUENTIAL)
REPS = 100                   # per-problem repetitions for stable timings
MIN_SIZE_REDUCTION = 2.0     # spec pickle must be >= 2x smaller than model pickle
MAX_SLOWDOWN = 1.10          # "no slower", with timer-noise headroom
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_6.json"


def record(suite: str, payload: dict) -> None:
    """Merge one suite's numbers into BENCH_6.json."""
    data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    data[suite] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def calibrated():
    case = make_case("1deg", max(SIZES), seed=0)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
    return case, fits, perf, bounds, case.ocean_allowed()


def bench_dispatch():
    case, fits, *_ = calibrated()
    rows = []
    for layout in LAYOUTS:
        spec = layout_problem_spec_for_case(case, fits, layout=layout)
        t0 = time.perf_counter()
        for _ in range(REPS):
            model = layout_model_for_case(case, fits, layout=layout)
            pickle.loads(pickle.dumps(model))
        t_model = (time.perf_counter() - t0) / REPS
        t0 = time.perf_counter()
        for _ in range(REPS):
            build_layout_model_from_spec(pickle.loads(pickle.dumps(spec)))
        t_spec = (time.perf_counter() - t0) / REPS
        rows.append(
            {
                "layout": layout.name,
                "model_path_ms": round(t_model * 1e3, 4),
                "spec_path_ms": round(t_spec * 1e3, 4),
                "ratio": round(t_spec / t_model, 3),
            }
        )
    return rows


def test_spec_dispatch_no_slower_than_model_pickling(benchmark, report):
    rows = run_once(benchmark, bench_dispatch)
    record("dispatch", {"reps": REPS, "rows": rows})
    for row in rows:
        report(
            f"{row['layout']:>16}: ship model {row['model_path_ms']:.3f} ms, "
            f"ship spec {row['spec_path_ms']:.3f} ms "
            f"({row['ratio']:.2f}x)"
        )
        assert row["ratio"] <= MAX_SLOWDOWN, (
            f"{row['layout']}: spec dispatch {row['ratio']:.2f}x the model "
            f"path (gate {MAX_SLOWDOWN}x)"
        )


def bench_payload_sizes():
    case, fits, *_ = calibrated()
    rows = []
    for layout in LAYOUTS:
        spec = layout_problem_spec_for_case(case, fits, layout=layout)
        model = layout_model_for_case(case, fits, layout=layout)
        rows.append(
            {
                "layout": layout.name,
                "model_pickle_bytes": len(pickle.dumps(model)),
                "spec_pickle_bytes": len(pickle.dumps(spec)),
                "spec_json_bytes": len(canonical_json(spec.to_dict()).encode()),
            }
        )
    return rows


def test_spec_payloads_are_smaller(benchmark, report):
    rows = run_once(benchmark, bench_payload_sizes)
    record("payload", {"rows": rows})
    for row in rows:
        reduction = row["model_pickle_bytes"] / row["spec_pickle_bytes"]
        report(
            f"{row['layout']:>16}: model pickle {row['model_pickle_bytes']} B, "
            f"spec pickle {row['spec_pickle_bytes']} B "
            f"({reduction:.1f}x smaller), canonical JSON "
            f"{row['spec_json_bytes']} B"
        )
        assert reduction >= MIN_SIZE_REDUCTION, (
            f"{row['layout']}: payload reduction {reduction:.1f}x "
            f"< {MIN_SIZE_REDUCTION}x"
        )


def bench_process_sweep():
    _, _, perf, bounds, ocn = calibrated()
    kwargs = dict(
        layout=Layout.HYBRID, ocn_allowed=ocn, method="lpnlp", reuse=False
    )
    t0 = time.perf_counter()
    serial = solve_layout_points(perf, bounds, SIZES, **kwargs)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    shipped = solve_layout_points(
        perf, bounds, SIZES, executor="process", workers=2, **kwargs
    )
    t_process = time.perf_counter() - t0
    return serial, shipped, t_serial, t_process


def test_process_sweep_ships_specs_and_matches(benchmark, report):
    serial, shipped, t_serial, t_process = run_once(benchmark, bench_process_sweep)
    record(
        "process_sweep",
        {
            "sizes": list(SIZES),
            "serial_s": round(t_serial, 3),
            "process_2_workers_s": round(t_process, 3),
        },
    )
    report(
        f"what-if ladder {SIZES}: serial {t_serial:.2f} s, "
        f"2 process workers {t_process:.2f} s (spec-shipping dispatch)"
    )
    for s, p in zip(serial, shipped):
        assert p.makespan.hex() == s.makespan.hex(), s.total_nodes
        assert p.allocation == s.allocation, s.total_nodes
        assert p.solver_result.nodes == s.solver_result.nodes, s.total_nodes
