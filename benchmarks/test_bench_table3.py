"""Table III regeneration (experiments T3-1 .. T3-6).

Each benchmark reruns one published block end-to-end (gather -> fit ->
solve -> execute, plus the paper's manual allocation re-executed on the
same simulator) and asserts the block's comparison structure:

- 1 degree: HSLB ties the expert (the paper's manual/HSLB totals are within
  ~2% of each other at both sizes),
- 1/8 degree constrained: HSLB beats the expert by ~8-10%,
- 1/8 degree unconstrained at 32,768 nodes: lifting the hard-coded ocean
  set buys a further large improvement (paper: 25% actual / 40% predicted).
"""

import pytest

from conftest import run_once
from repro.cesm import ComponentId
from repro.experiments.table3 import run_table3_entry

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class TestTable3OneDegree:
    def test_table3_1deg_128(self, benchmark, report):
        rep = run_once(benchmark, run_table3_entry, "1deg-128", seed=0)
        report(rep)
        # paper: manual 416.0, HSLB predicted 410.6, HSLB actual 425.2
        assert rep.manual_total == pytest.approx(416.0, rel=0.08)
        assert rep.hslb_predicted_total == pytest.approx(410.6, rel=0.08)
        assert rep.hslb_actual_total == pytest.approx(425.2, rel=0.08)
        assert rep.hslb_beats_or_ties_manual
        assert rep.prediction_error < 0.10
        assert min(rep.fit_r_squared.values()) > 0.95

    def test_table3_1deg_2048(self, benchmark, report):
        rep = run_once(benchmark, run_table3_entry, "1deg-2048", seed=0)
        report(rep)
        # paper: manual 79.9, predicted 84.5, actual 86.5 — HSLB a hair
        # behind the expert but "very close", with far fewer person-hours.
        assert rep.manual_total == pytest.approx(79.9, rel=0.15)
        assert rep.hslb_actual_total == pytest.approx(86.5, rel=0.15)
        assert rep.hslb_actual_total <= rep.manual_total * 1.15
        # node allocations differ substantially from manual yet totals agree
        assert rep.hslb_nodes != rep.paper.manual_nodes


class TestTable3EighthConstrained:
    def test_table3_8th_8192_constrained(self, benchmark, report):
        rep = run_once(benchmark, run_table3_entry, "8th-8192", seed=0)
        report(rep)
        # paper: manual 3785, HSLB actual 3489 (~8% better); ocean moves off
        # the manual 2356 to a larger allowed count.
        assert rep.hslb_actual_total < rep.manual_total
        assert rep.actual_improvement_over_manual > 0.03
        assert rep.hslb_nodes[O] in (2356, 3136, 4564, 6124)
        assert rep.hslb_nodes[O] >= 2356

    def test_table3_8th_32768_constrained(self, benchmark, report):
        rep = run_once(benchmark, run_table3_entry, "8th-32768", seed=0)
        report(rep)
        # paper: manual 1645 -> HSLB 1612; the optimizer jumps the ocean to
        # the big 19460 sweet spot exactly as the paper reports.
        assert rep.hslb_actual_total < rep.manual_total
        assert rep.hslb_nodes[O] == 19460
        assert rep.hslb_actual_total == pytest.approx(1612.0, rel=0.10)


class TestTable3EighthUnconstrained:
    def test_table3_8th_8192_unconstrained(self, benchmark, report):
        rep = run_once(benchmark, run_table3_entry, "8th-8192-unconstrained", seed=0)
        report(rep)
        con = run_table3_entry("8th-8192", seed=0)
        # paper: at 8192 "the optimization is relatively unchanged".
        assert rep.hslb_actual_total == pytest.approx(
            con.hslb_actual_total, rel=0.10
        )

    def test_table3_8th_32768_unconstrained(self, benchmark, report):
        rep = run_once(benchmark, run_table3_entry, "8th-32768-unconstrained", seed=0)
        report(rep)
        con = run_table3_entry("8th-32768", seed=0)
        # paper headline: predicted 1129 vs 1593 (-29% on the ratio, "about
        # 40%" as reported); actual 1256 vs 1612 (-22%, "about 25%").
        predicted_gain = 1.0 - rep.hslb_predicted_total / con.hslb_predicted_total
        actual_gain = 1.0 - rep.hslb_actual_total / con.hslb_actual_total
        assert predicted_gain > 0.15
        assert actual_gain > 0.12
        # the chosen ocean count sits in the paper's 9812-11880 region
        assert 8000 <= rep.hslb_nodes[O] <= 14000
