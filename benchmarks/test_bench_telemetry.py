"""Telemetry overhead under service load, to ``BENCH_9.json``.

The same traffic shape as the BENCH_8 load benchmark — 1000 requests from
8 concurrent socket clients over a 20-spec what-if ladder, served by the
supervised-backend daemon — run twice: once with telemetry disabled (the
no-op default) and once with a live :class:`MetricsRegistry` recording
every request, batch, solver node and worker delta.

Recorded per run: mean/p50/p99 latency, throughput, and the overhead
ratio between them, plus a sample of the instrumented run's Prometheus
scrape (the artifact an operator's monitoring would actually ingest).

Gates:

- every response in both runs is ``ok``, and repeats of one spec inside
  a run answer identically — observation changes no payload;
- the instrumented registry saw the whole workload (request counts match
  the daemon's own counters);
- mean-latency overhead stays under 5% when ``REPRO_PERF_STRICT=1``
  (the CI perf job); elsewhere a loose 50% sanity bound absorbs shared-
  machine noise.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro import telemetry
from repro.analysis.whatif import layout_point_specs
from repro.cesm import ComponentId, make_case
from repro.hslb import HSLBPipeline
from repro.service import ServiceConfig, serve_in_thread
from repro.telemetry import MetricsRegistry, names, to_prometheus

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

POOL_SIZES = tuple(range(2048, 1728, -16))  # 20 budgets, spread < 1.2x
REQUESTS = 1000
CLIENTS = 8
HOT_SPECS = 3
HOT_FRACTION = 0.8
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_9.json"
SCRAPE_SAMPLE_LINES = 40


def calibrated_specs():
    case = make_case("1deg", 128, seed=0)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
    return layout_point_specs(
        perf, bounds, POOL_SIZES,
        layout=case.layout,
        ocn_allowed=case.ocean_allowed(),
        atm_allowed=case.atm_allowed(),
        method="lpnlp",
    )


def record(suite: str, payload: dict) -> None:
    """Merge one suite's numbers into BENCH_9.json."""
    data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    data[suite] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def percentile(latencies: list, q: float) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def workload_indices(n_specs: int) -> list:
    """The BENCH_8 skewed stream: 80% of requests hit 3 hot specs."""
    rng = np.random.default_rng(0)
    hot = rng.random(size=REQUESTS) < HOT_FRACTION
    hot_picks = rng.integers(0, HOT_SPECS, size=REQUESTS)
    cold_picks = rng.integers(HOT_SPECS, n_specs, size=REQUESTS)
    return [int(h if is_hot else c)
            for is_hot, h, c in zip(hot, hot_picks, cold_picks)]


def run_workload(specs: list, stream: list) -> dict:
    """Serve one request stream through a fresh daemon; measure latency."""
    per_client = [stream[i::CLIENTS] for i in range(CLIENTS)]
    latencies: list = [[] for _ in range(CLIENTS)]
    answers: list = [[] for _ in range(CLIENTS)]

    config = ServiceConfig(backend="supervised", workers=4,
                           max_queue=256, batch_window=0.005)
    with serve_in_thread(config) as handle:
        def drive(c):
            with handle.client(client_id=f"bench{c}") as client:
                for spec_index in per_client[c]:
                    t0 = time.perf_counter()
                    response = client.solve_point(specs[spec_index])
                    latencies[c].append(time.perf_counter() - t0)
                    answers[c].append((spec_index, response))

        threads = [threading.Thread(target=drive, args=(c,))
                   for c in range(CLIENTS)]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        counters = handle.daemon.engine.stats()["counters"]

    flat_lat = [lat for per in latencies for lat in per]
    flat_ans = [a for per in answers for a in per]
    assert len(flat_ans) == len(stream)
    assert all(response.ok for _, response in flat_ans)
    first: dict = {}
    for spec_index, response in flat_ans:
        if spec_index in first:
            assert response.result == first[spec_index], spec_index
        else:
            first[spec_index] = response.result
    return {"latency": flat_lat, "wall": wall, "counters": counters}


def latency_stats(result: dict) -> dict:
    mean = sum(result["latency"]) / len(result["latency"])
    return {
        "mean_latency_seconds": round(mean, 5),
        "p50_latency_seconds": round(percentile(result["latency"], 0.50), 5),
        "p99_latency_seconds": round(percentile(result["latency"], 0.99), 5),
        "throughput_rps": round(REQUESTS / result["wall"], 1),
    }


def bench_telemetry_overhead():
    specs = calibrated_specs()
    stream = workload_indices(len(specs))

    telemetry.disable()
    baseline = run_workload(specs, stream)

    registry = telemetry.enable(MetricsRegistry())
    try:
        instrumented = run_workload(specs, stream)
        snapshot = registry.snapshot()
        scrape = to_prometheus(snapshot)
        # The registry saw every socket request the daemon's own
        # always-on counters saw (rejected/expired do not occur here).
        recorded = registry.counter_total(names.SERVICE_REQUESTS)
        assert recorded == instrumented["counters"]["requests"] == REQUESTS
        assert registry.counter_total(names.FLEET_WORKER_DELTAS) > 0
        assert registry.counter_total(names.MINLP_NODES) > 0
    finally:
        telemetry.disable()
    return baseline, instrumented, scrape


def test_telemetry_overhead(benchmark, report):
    baseline, instrumented, scrape = run_once(benchmark, bench_telemetry_overhead)

    base_stats = latency_stats(baseline)
    instr_stats = latency_stats(instrumented)
    overhead = (instr_stats["mean_latency_seconds"]
                / base_stats["mean_latency_seconds"] - 1.0)
    payload = {
        "requests": REQUESTS,
        "clients": CLIENTS,
        "spec_pool": len(POOL_SIZES),
        "noop": base_stats,
        "instrumented": instr_stats,
        "mean_latency_overhead": round(overhead, 4),
        "scrape_lines": len(scrape.splitlines()),
        "sample_scrape": scrape.splitlines()[:SCRAPE_SAMPLE_LINES],
    }
    report(
        "telemetry overhead (1000 req x 8 clients, 20-spec ladder)\n"
        f"  no-op:        mean {base_stats['mean_latency_seconds'] * 1e3:.2f} ms, "
        f"p99 {base_stats['p99_latency_seconds'] * 1e3:.2f} ms, "
        f"{base_stats['throughput_rps']:.0f} req/s\n"
        f"  instrumented: mean {instr_stats['mean_latency_seconds'] * 1e3:.2f} ms, "
        f"p99 {instr_stats['p99_latency_seconds'] * 1e3:.2f} ms, "
        f"{instr_stats['throughput_rps']:.0f} req/s\n"
        f"  mean-latency overhead: {overhead:+.1%}; scrape: "
        f"{payload['scrape_lines']} exposition lines"
    )
    record("telemetry_overhead", payload)

    limit = 0.05 if os.environ.get("REPRO_PERF_STRICT") == "1" else 0.50
    assert overhead < limit, (
        f"telemetry overhead {overhead:.1%} exceeds {limit:.0%} "
        f"(instrumented {instr_stats['mean_latency_seconds']}s vs "
        f"no-op {base_stats['mean_latency_seconds']}s mean)"
    )
