"""Pick a cost-efficient job size (paper Sec. IV-C).

"Another important HSLB application may be the prediction of the optimal
nodes to run a job ... a cost-efficient goal where nodes are increased
until scaling is reduced to a predefined limit or ... the shortest time to
solution."  This example fits the 1-degree curves once and asks both
questions.

    python examples/cost_efficient_sizing.py
"""

from repro.analysis import optimal_node_count
from repro.cesm import ComponentId, make_case
from repro.hslb import HSLBPipeline
from repro.util.tables import TextTable

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND
CANDIDATES = (128, 256, 512, 1024, 2048)


def main() -> None:
    base = make_case("1deg", max(CANDIDATES), seed=0)
    pipeline = HSLBPipeline(base)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: base.component_bounds(c) for c in (I, L, A, O)}
    kwargs = dict(
        ocn_allowed=base.ocean_allowed(), atm_allowed=base.atm_allowed()
    )

    fastest = optimal_node_count(
        perf, bounds, CANDIDATES, criterion="fastest", **kwargs
    )
    table = TextTable(
        ["# nodes", "optimally balanced total, sec"],
        title="Predicted totals per job size (1 deg, layout 1)",
    )
    for n, t in fastest.evaluated:
        table.add_row([n, t])
    print(table.render())

    print(f"\nshortest time to solution: {fastest.total_nodes} nodes "
          f"({fastest.total_time:.1f} s)")

    for floor in (0.7, 0.5, 0.3):
        rec = optimal_node_count(
            perf, bounds, CANDIDATES,
            criterion="cost_efficient", efficiency_floor=floor, **kwargs,
        )
        print(
            f"cost-efficient at floor {floor:.0%}: {rec.total_nodes} nodes "
            f"({rec.total_time:.1f} s, marginal efficiency {rec.efficiency:.0%})"
        )


if __name__ == "__main__":
    main()
