"""Use the MINLP machinery directly for a custom static-load-balancing
problem — the paper's closing point: "any coarse-grained application with
large tasks of diverse size can benefit from the present approach".

A made-up pipeline of three coupled stages (a particle pusher, a field
solver, an I/O stage) with measured scaling curves is balanced on a
512-node cluster.  The field solver only runs on power-of-two node counts
(its FFT layout), which becomes a special-ordered set exactly like the
paper's ocean model.

    python examples/custom_minlp.py
"""

import numpy as np

from repro.fitting import fit_perf_model
from repro.minlp import solve_lpnlp
from repro.model import Model, Objective, ObjSense, Sense, VarType

TOTAL_NODES = 512


def measured_curves():
    """Fake 'benchmark' data for the three stages (seconds at node counts)."""
    rng = np.random.default_rng(7)
    nodes = np.array([4, 16, 64, 256, 512], float)
    truth = {
        "pusher": lambda n: 9000.0 / n + 4.0,
        "fields": lambda n: 5200.0 / n + 12.0,
        "io": lambda n: 600.0 / n + 25.0,
    }
    return {
        name: (nodes, f(nodes) * rng.lognormal(0, 0.02, nodes.size))
        for name, f in truth.items()
    }


def main() -> None:
    # 1-2. Gather + fit, exactly as HSLB does for CESM components.
    fits = {}
    for name, (nodes, times) in measured_curves().items():
        fits[name] = fit_perf_model(nodes, times)
        a, b, c, d = fits[name].model.as_tuple()
        print(f"{name:>7}: T(n) = {a:.0f}/n + {b:.3g} n^{c:.2f} + {d:.1f}   "
              f"(R^2 = {fits[name].r_squared:.4f})")

    # 3. A custom layout: pusher and fields run concurrently, then I/O runs
    #    on the pusher's nodes -> minimize max(pusher + io, fields).
    m = Model("particle_pipeline")
    T = m.add_variable("T", lb=0.0, ub=1e5)
    n = {
        name: m.add_variable(f"n_{name}", VarType.INTEGER, 2, TOTAL_NODES)
        for name in fits
    }
    m.add_allowed_values(n["fields"], [2 ** k for k in range(1, 10)], prefix="z_fft")
    m.add_constraint(
        "t_pusher_io",
        T.ref(),
        Sense.GE,
        fits["pusher"].model.expr("n_pusher") + fits["io"].model.expr("n_io"),
    )
    m.add_constraint("t_fields", T.ref(), Sense.GE, fits["fields"].model.expr("n_fields"))
    m.add_constraint("io_shares_pusher", n["io"].ref(), Sense.LE, n["pusher"].ref())
    m.add_constraint(
        "capacity", n["pusher"].ref() + n["fields"].ref(), Sense.LE, float(TOTAL_NODES)
    )
    m.set_objective(Objective("makespan", T.ref(), ObjSense.MINIMIZE))

    result = solve_lpnlp(m)
    assert result.is_optimal, result.message

    print(f"\noptimal make-span: {result.objective:.2f} s")
    for name in fits:
        print(f"  n_{name} = {int(result.solution[f'n_{name}'])}")
    print(
        f"solver: {result.nodes} B&B nodes, {result.cuts_added} cuts, "
        f"{result.wall_time:.2f} s"
    )


if __name__ == "__main__":
    main()
