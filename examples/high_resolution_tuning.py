"""The paper's headline experiment: 1/8-degree CESM at 32,768 nodes.

Compares three allocations on the same simulated machine:

1. the paper's published expert ("manual") allocation,
2. HSLB with the production ocean node-count constraint (the hard-coded
   set {480, 512, 2356, 3136, 4564, 6124, 19460}),
3. HSLB with the constraint lifted — the configuration where the paper
   found a ~25% actual / ~40% predicted improvement and concluded that
   "component models processor counts should not be arbitrarily limited".

    python examples/high_resolution_tuning.py
"""

from repro.baselines import paper_manual_allocation
from repro.cesm import make_case
from repro.hslb import HSLBPipeline
from repro.util.tables import TextTable

NODES = 32_768


def main() -> None:
    rows = TextTable(
        ["configuration", "ocn nodes", "predicted, sec", "actual, sec"],
        title=f"1/8 degree on {NODES} nodes (layout 1)",
    )

    # 1. The expert's allocation, re-executed on our simulator.
    constrained_case = make_case("8th", NODES, seed=0)
    pipeline = HSLBPipeline(constrained_case)
    manual = pipeline.simulator.run_coupled(paper_manual_allocation("8th", NODES))
    rows.add_row(["manual (paper's expert)", 6124, "", manual.total])

    # 2. HSLB under the hard-coded ocean set.
    constrained = pipeline.run()
    rows.add_row([
        "HSLB, constrained ocean",
        _ocn(constrained),
        constrained.predicted_total,
        constrained.actual_total,
    ])

    # 3. HSLB with the ocean constraint lifted.
    unconstrained = HSLBPipeline(
        make_case("8th", NODES, unconstrained_ocean=True, seed=0)
    ).run()
    rows.add_row([
        "HSLB, unconstrained ocean",
        _ocn(unconstrained),
        unconstrained.predicted_total,
        unconstrained.actual_total,
    ])

    print(rows.render())

    gain_manual = 1.0 - unconstrained.actual_total / manual.total
    gain_constrained = 1.0 - unconstrained.actual_total / constrained.actual_total
    print(
        f"\nunconstrained HSLB vs manual:      {gain_manual:.1%} faster"
        f"\nunconstrained vs constrained HSLB: {gain_constrained:.1%} faster"
        "\n(paper: ~25% actual improvement at this scale)"
    )


def _ocn(result):
    from repro.cesm import ComponentId

    return result.allocation[ComponentId.OCN]


if __name__ == "__main__":
    main()
