"""Predict how the three CESM component layouts scale (paper Figure 4).

Fits the performance curves once from 1-degree benchmarks, then
re-optimizes each layout of Figure 1 at a sweep of job sizes — no further
simulated runs needed; this is the "prediction of optimal layout" use-case
of paper Sec. IV-C.

    python examples/layout_comparison.py
"""

from repro.analysis import predicted_layout_scaling
from repro.cesm import ComponentId, Layout, make_case
from repro.hslb import HSLBPipeline
from repro.util.tables import TextTable

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND
NODE_COUNTS = (128, 256, 512, 1024, 2048)


def main() -> None:
    base = make_case("1deg", max(NODE_COUNTS), seed=0)
    pipeline = HSLBPipeline(base)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: base.component_bounds(c) for c in (I, L, A, O)}

    curves = {
        layout: predicted_layout_scaling(
            perf,
            bounds,
            NODE_COUNTS,
            layout,
            ocn_allowed=base.ocean_allowed(),
            atm_allowed=base.atm_allowed(),
        )
        for layout in Layout
    }

    table = TextTable(
        ["# nodes"] + [f"layout ({lay.value}), sec" for lay in Layout],
        title="Predicted optimally-balanced total time per layout (1 deg)",
    )
    for i, n in enumerate(NODE_COUNTS):
        table.add_row([n] + [float(curves[lay].times[i]) for lay in Layout])
    print(table.render())

    t1 = curves[Layout.HYBRID].times
    t3 = curves[Layout.FULLY_SEQUENTIAL].times
    print(
        f"\nlayout 3 penalty vs layout 1: "
        f"{t3[0] / t1[0] - 1:.0%} at {NODE_COUNTS[0]} nodes, "
        f"{t3[-1] / t1[-1] - 1:.0%} at {NODE_COUNTS[-1]} nodes"
        "\n(paper Fig. 4: layouts 1 and 2 similar, layout 3 the worst)"
    )


if __name__ == "__main__":
    main()
