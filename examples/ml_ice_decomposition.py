"""Machine-learned sea-ice decomposition selection (the paper's ref. [10]).

The noisy ice scaling curves of the paper's Sec. IV-A come from CICE's
default decomposition heuristic switching strategies across the node sweep.
This example trains the k-NN cost models of `repro.mlice` and compares the
ice component under three policies — the default heuristic, the learned
selector, and the exhaustive oracle — at the awkward (odd/prime) node
counts where the default stumbles.

    python examples/ml_ice_decomposition.py
"""

import numpy as np

from repro.cesm import ComponentId, CoupledRunSimulator, make_case
from repro.cesm.decomp import default_strategy, imbalance_factor
from repro.mlice import train_selector
from repro.util.tables import TextTable

ICE = ComponentId.ICE
AWKWARD = (91, 113, 247, 331, 505, 1021, 2003)


def main() -> None:
    case = make_case("1deg", 2048, seed=0)
    grid = case.ice_grid

    print("training k-NN cost models on simulated decomposition timings...")
    selector = train_selector(grid, n=500, seed=0)
    loo = np.mean([m.loo_rmse() for m in selector.models.values()])
    print(f"mean leave-one-out RMSE across the 7 strategy models: {loo:.4f}\n")

    table = TextTable(
        ["tasks", "default strategy", "learned strategy",
         "default factor", "learned factor"],
        title="Decomposition choice at awkward task counts (gx1 grid)",
    )
    for tasks in AWKWARD:
        d = default_strategy(tasks)
        s = selector.select(tasks)
        table.add_row([
            tasks, d.value, s.value,
            f"{imbalance_factor(grid, tasks, d):.3f}",
            f"{imbalance_factor(grid, tasks, s):.3f}",
        ])
    print(table.render())

    sim_default = CoupledRunSimulator(case)
    sim_learned = CoupledRunSimulator(case, ice_strategy_for=selector.select)
    t_def = sum(sim_default.benchmark(ICE, n) for n in AWKWARD)
    t_ml = sum(sim_learned.benchmark(ICE, n) for n in AWKWARD)
    print(
        f"\nice benchmark total over the sweep: {t_def:.1f} s (default) "
        f"-> {t_ml:.1f} s (learned), {1 - t_ml / t_def:.1%} faster"
    )


if __name__ == "__main__":
    main()
