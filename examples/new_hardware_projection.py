"""Project CESM tuning onto hypothetical hardware (paper Sec. IV-C).

"... it might even be possible to do more exotic and less reliable
predictions such as the prediction of CESM scaling on new hardware (e.g.,
exascale supercomputers)".  This example does the defensible version of
that: fit the curves once on the calibrated baseline, scale them for
machines 2x/4x/8x faster per node, and re-optimize — while flagging which
predictions leave the fit's calibrated node range entirely.

    python examples/new_hardware_projection.py
"""

from repro.analysis import extrapolate_component
from repro.cesm import ComponentId, make_case
from repro.hslb import HSLBPipeline, solve_allocation
from repro.util.tables import TextTable

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


def main() -> None:
    case = make_case("1deg", 2048, seed=0)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())

    table = TextTable(
        ["machine", "optimal total, sec", "speedup vs baseline"],
        title="Projected optimally-balanced totals (1 deg, 2048 nodes)",
    )
    baseline = solve_allocation(case, fits, method="oracle").predicted_total
    table.add_row(["baseline (Intrepid-like)", baseline, "1.00x"])
    for speed in (2.0, 4.0, 8.0):
        scaled = {comp: fit.model.scaled(speed) for comp, fit in fits.items()}
        total = solve_allocation(case, scaled, method="oracle").predicted_total
        table.add_row([f"{speed:g}x faster nodes", total, f"{baseline / total:.2f}x"])
    print(table.render())

    # The reliability caveat, quantified: which node counts would such a
    # projection query outside the calibrated range?
    lo, hi = case.component_bounds(A)
    curve = extrapolate_component(
        fits[A], [128, 2048, 16384, 40960], calibrated_range=(lo, hi)
    )
    flagged = [int(n) for n, ex in zip(curve.nodes, curve.extrapolated) if ex]
    print(
        f"\natm fit calibrated on [{lo}, {hi}] nodes; "
        f"projections at {flagged} are extrapolations — "
        "the paper calls these 'less reliable' for good reason."
    )


if __name__ == "__main__":
    main()
