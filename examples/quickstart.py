"""Quickstart: tune a 1-degree CESM job on 128 nodes with HSLB.

Runs the paper's four steps — gather benchmarks, fit the performance model,
solve the layout MINLP, execute the coupled run — and prints a Table
III-style report plus the solver statistics.

    python examples/quickstart.py
"""

from repro.cesm import make_case
from repro.hslb import HSLBPipeline


def main() -> None:
    # A case bundles resolution, job size, layout and the noise seed.
    case = make_case("1deg", total_nodes=128, seed=0)
    print(f"case: {case.grid_description}")
    print(f"machine: {case.machine.name}, {case.machine.cores} cores "
          f"({case.machine.cores_per_node}/node)\n")

    pipeline = HSLBPipeline(case)
    result = pipeline.run()

    print(result.report())

    print("\nfit quality (R^2):")
    for comp, r2 in result.fit_r_squared().items():
        print(f"  {comp.value}: {r2:.4f}")

    solver = result.solve.solver_result
    print(
        f"\nMINLP solve: {solver.nodes} branch-and-bound nodes, "
        f"{solver.cuts_added} outer-approximation cuts, "
        f"{solver.wall_time:.2f} s wall"
    )
    print(
        f"prediction error: {result.prediction_error():.1%} "
        f"(predicted {result.predicted_total:.1f} s, "
        f"actual {result.actual_total:.1f} s)"
    )


if __name__ == "__main__":
    main()
