"""Legacy setup shim.

The runtime environment has setuptools 65 without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) fall back to this setup.py
via ``--no-use-pep517``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
