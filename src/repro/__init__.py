"""repro — reproduction of "The Heuristic Static Load-Balancing Algorithm
Applied to the Community Earth System Model" (Alexeev et al., IPDPSW 2014).

The package implements the paper's HSLB pipeline end to end on a calibrated
synthetic CESM performance simulator:

- :mod:`repro.expr` / :mod:`repro.model` — algebraic modeling layer (the
  AMPL stand-in) with symbolic differentiation,
- :mod:`repro.lp` — bounded-variable revised simplex (the CLP stand-in),
- :mod:`repro.nlp` — log-barrier interior-point solver (the filterSQP
  stand-in),
- :mod:`repro.minlp` — branch-and-bound MINLP solvers, including the paper's
  LP/NLP outer-approximation algorithm with SOS1 branching (the MINOTAUR
  stand-in),
- :mod:`repro.fitting` — the performance model T(n) = a/n + b·n^c + d and
  positivity-constrained least squares,
- :mod:`repro.machine` / :mod:`repro.cesm` — machine abstraction and the
  synthetic coupled-climate-model simulator calibrated to the paper's
  Table III,
- :mod:`repro.hslb` — the four-step HSLB algorithm and the Table I layout
  models (the paper's contribution),
- :mod:`repro.baselines`, :mod:`repro.analysis`, :mod:`repro.experiments` —
  manual-tuning baselines, prediction tooling, and one module per paper
  table/figure.

Quickstart::

    from repro.cesm import make_case
    from repro.hslb import HSLBPipeline

    case = make_case("1deg", total_nodes=128)
    result = HSLBPipeline(case, seed=0).run()
    print(result.report())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
