"""Prediction and what-if tooling built on fitted models (paper Sec. IV-C).

Once the performance curves are fitted, HSLB's mathematical machinery can
answer questions without any further runs: how each layout scales
(Figure 4), what the cost-efficient job size is, how constraining a
component's node set hurts, and how the scaling curve of one component
decomposes into its T_sca / T_nln / T_ser parts (Figure 2).
"""

from repro.analysis.scaling import (
    ScalingCurve,
    component_curve,
    predicted_layout_scaling,
    speedup,
    parallel_efficiency,
)
from repro.analysis.whatif import (
    LayoutPoint,
    NodeCountRecommendation,
    constraint_cost,
    layout_point_specs,
    optimal_node_count,
    solve_layout_points,
)
from repro.analysis.extrapolate import (
    ExtrapolatedCurve,
    SwapEffect,
    component_swap_effect,
    component_swap_sweep,
    extrapolate_component,
)

__all__ = [
    "ScalingCurve",
    "component_curve",
    "predicted_layout_scaling",
    "speedup",
    "parallel_efficiency",
    "LayoutPoint",
    "NodeCountRecommendation",
    "constraint_cost",
    "layout_point_specs",
    "optimal_node_count",
    "solve_layout_points",
    "ExtrapolatedCurve",
    "SwapEffect",
    "component_swap_effect",
    "component_swap_sweep",
    "extrapolate_component",
]
