"""Speculative predictions (paper Sec. IV-C, second paragraph).

"Later, as the mathematical model becomes more sophisticated, it might even
be possible to do more exotic and less reliable predictions such as the
prediction of CESM scaling on new hardware (e.g., exascale supercomputers)
or prediction of what parts of the model need to be rewritten to improve
performance."

These helpers implement the two concrete tools behind that sentence —
swapping one component's curve (what if POP were replaced / rewritten?) and
evaluating fits outside their calibrated range — while making the paper's
*reliability caveat* explicit: every result carries an ``extrapolated``
flag, because Sec. III-C insists that "performance function predictions
will be interpolated rather than extrapolated which is important for
accuracy".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout
from repro.exceptions import ConfigurationError
from repro.hslb.objectives import ObjectiveKind
from repro.hslb.oracle import LayoutOracle


@dataclass(frozen=True)
class SwapEffect:
    """Result of replacing one component's performance curve."""

    component: ComponentId
    baseline_makespan: float
    swapped_makespan: float
    baseline_allocation: dict
    swapped_allocation: dict

    @property
    def improvement(self) -> float:
        """Relative make-span change (positive = the swap helps)."""
        return 1.0 - self.swapped_makespan / self.baseline_makespan


def component_swap_effect(
    perf: dict,
    bounds: dict,
    total_nodes: int,
    component: ComponentId,
    replacement,
    layout: Layout = Layout.HYBRID,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
) -> SwapEffect:
    """Re-optimize the layout with ``component``'s curve replaced.

    Answers "how replacing one component with another will affect scaling"
    (Sec. IV-C): both configurations are solved to optimality, so the
    comparison accounts for the re-balancing the swap enables, not just the
    component's own speedup.
    """
    if component not in perf:
        raise ConfigurationError(f"unknown component {component}")

    def solve(p):
        oracle = LayoutOracle(
            layout, total_nodes, p, bounds,
            ocn_allowed=ocn_allowed, atm_allowed=atm_allowed,
        )
        return oracle.solve(ObjectiveKind.MIN_MAX)

    base = solve(perf)
    swapped_perf = dict(perf)
    swapped_perf[component] = (
        replacement.model if hasattr(replacement, "model") else replacement
    )
    swapped = solve(swapped_perf)
    return SwapEffect(
        component=component,
        baseline_makespan=base.makespan,
        swapped_makespan=swapped.makespan,
        baseline_allocation=base.allocation,
        swapped_allocation=swapped.allocation,
    )


@dataclass(frozen=True)
class ExtrapolatedCurve:
    """A predicted series annotated with its trust region."""

    nodes: np.ndarray
    times: np.ndarray
    extrapolated: np.ndarray      # bool mask: outside the calibrated range
    calibrated_range: tuple       # (lo, hi) node counts the fit has seen

    @property
    def any_extrapolated(self) -> bool:
        return bool(self.extrapolated.any())


def extrapolate_component(
    model,
    node_counts,
    calibrated_range: tuple,
) -> ExtrapolatedCurve:
    """Evaluate a fitted curve with explicit in/out-of-sample flags.

    ``calibrated_range`` is the (min, max) node count the fit's benchmark
    data covered; predictions outside it are the paper's "less reliable"
    regime (cf. the 1/8-degree ocean at 9812 nodes, where the fit missed by
    ~11% because "the ocean scaling curve was not captured well during our
    fit step").
    """
    lo, hi = calibrated_range
    if lo <= 0 or hi < lo:
        raise ConfigurationError("calibrated_range must be 0 < lo <= hi")
    n = np.asarray(sorted(int(v) for v in node_counts), dtype=float)
    pm = model.model if hasattr(model, "model") else model
    return ExtrapolatedCurve(
        nodes=n,
        times=np.asarray(pm(n)),
        extrapolated=(n < lo) | (n > hi),
        calibrated_range=(int(lo), int(hi)),
    )
