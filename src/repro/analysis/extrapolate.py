"""Speculative predictions (paper Sec. IV-C, second paragraph).

"Later, as the mathematical model becomes more sophisticated, it might even
be possible to do more exotic and less reliable predictions such as the
prediction of CESM scaling on new hardware (e.g., exascale supercomputers)
or prediction of what parts of the model need to be rewritten to improve
performance."

These helpers implement the two concrete tools behind that sentence —
swapping one component's curve (what if POP were replaced / rewritten?) and
evaluating fits outside their calibrated range — while making the paper's
*reliability caveat* explicit: every result carries an ``extrapolated``
flag, because Sec. III-C insists that "performance function predictions
will be interpolated rather than extrapolated which is important for
accuracy".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout
from repro.exceptions import ConfigurationError
from repro.analysis.whatif import (
    _check_method,
    _solve_layout_point,
    _sweep_family,
    layout_point_specs,
)
from repro.reuse import family_map


@dataclass(frozen=True)
class SwapEffect:
    """Result of replacing one component's performance curve."""

    component: ComponentId
    baseline_makespan: float
    swapped_makespan: float
    baseline_allocation: dict
    swapped_allocation: dict

    @property
    def improvement(self) -> float:
        """Relative make-span change (positive = the swap helps)."""
        return 1.0 - self.swapped_makespan / self.baseline_makespan


def _swapped_perf(perf: dict, component: ComponentId, replacement) -> dict:
    out = dict(perf)
    out[component] = (
        replacement.model if hasattr(replacement, "model") else replacement
    )
    return out


def _solve_swap_pair(item, family) -> SwapEffect:
    """Solve the baseline/swapped pair at one size (process-pool payload).

    Both solves share the family: cut-validity tags are per-body structural
    hashes, so the swapped component's cuts never contaminate the baseline's
    (and every *other* component's cuts serve both sides).
    """
    component, base_spec, swap_spec = item
    base = _solve_layout_point(base_spec, family)
    swapped = _solve_layout_point(swap_spec, family)
    return SwapEffect(
        component=component,
        baseline_makespan=base.makespan,
        swapped_makespan=swapped.makespan,
        baseline_allocation=base.allocation,
        swapped_allocation=swapped.allocation,
    )


def component_swap_sweep(
    perf: dict,
    bounds: dict,
    node_counts,
    component: ComponentId,
    replacement,
    layout: Layout = Layout.HYBRID,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
    method: str = "oracle",
    reuse=True,
    options=None,
    executor=None,
    workers: int | None = None,
) -> list:
    """:func:`component_swap_effect` at each of ``node_counts``.

    Returns one :class:`SwapEffect` per count, in the given order.  For the
    B&B methods the whole sweep — both sides of every pair — is one reuse
    family, fanned out over ``executor``/``workers`` with results
    independent of backend and worker count (see
    :func:`repro.reuse.family_map`).
    """
    if component not in perf:
        raise ConfigurationError(f"unknown component {component}")
    _check_method(method)
    family = _sweep_family(method, reuse, node_counts)
    swapped = _swapped_perf(perf, component, replacement)

    def spec_for(p, n):
        [spec] = layout_point_specs(
            p, bounds, [int(n)], layout=layout,
            ocn_allowed=ocn_allowed, atm_allowed=atm_allowed,
            method=method, options=options,
        )
        return spec

    items = [
        (component, spec_for(perf, n), spec_for(swapped, n))
        for n in node_counts
    ]
    # Solve largest-first for the same reason solve_layout_points does:
    # family state transfers safely down the budget ladder, not up it.
    order = sorted(range(len(items)), key=lambda i: -items[i][1].problem.total_nodes)
    solved = family_map(
        _solve_swap_pair, [items[i] for i in order], family=family,
        executor=executor, workers=workers,
    )
    results: list = [None] * len(items)
    for position, index in enumerate(order):
        results[index] = solved[position]
    return results


def component_swap_effect(
    perf: dict,
    bounds: dict,
    total_nodes: int,
    component: ComponentId,
    replacement,
    layout: Layout = Layout.HYBRID,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
    method: str = "oracle",
    reuse=True,
    options=None,
) -> SwapEffect:
    """Re-optimize the layout with ``component``'s curve replaced.

    Answers "how replacing one component with another will affect scaling"
    (Sec. IV-C): both configurations are solved to optimality, so the
    comparison accounts for the re-balancing the swap enables, not just the
    component's own speedup.  With a B&B ``method`` the baseline and
    swapped solves share one reuse family (see :mod:`repro.reuse`).
    """
    if component not in perf:
        raise ConfigurationError(f"unknown component {component}")
    _check_method(method)
    family = _sweep_family(method, reuse)

    def solve(p):
        [spec] = layout_point_specs(
            p, bounds, [int(total_nodes)], layout=layout,
            ocn_allowed=ocn_allowed, atm_allowed=atm_allowed,
            method=method, options=options,
        )
        return _solve_layout_point(spec, family)

    base = solve(perf)
    swapped = solve(_swapped_perf(perf, component, replacement))
    return SwapEffect(
        component=component,
        baseline_makespan=base.makespan,
        swapped_makespan=swapped.makespan,
        baseline_allocation=base.allocation,
        swapped_allocation=swapped.allocation,
    )


@dataclass(frozen=True)
class ExtrapolatedCurve:
    """A predicted series annotated with its trust region."""

    nodes: np.ndarray
    times: np.ndarray
    extrapolated: np.ndarray      # bool mask: outside the calibrated range
    calibrated_range: tuple       # (lo, hi) node counts the fit has seen

    @property
    def any_extrapolated(self) -> bool:
        return bool(self.extrapolated.any())


def extrapolate_component(
    model,
    node_counts,
    calibrated_range: tuple,
) -> ExtrapolatedCurve:
    """Evaluate a fitted curve with explicit in/out-of-sample flags.

    ``calibrated_range`` is the (min, max) node count the fit's benchmark
    data covered; predictions outside it are the paper's "less reliable"
    regime (cf. the 1/8-degree ocean at 9812 nodes, where the fit missed by
    ~11% because "the ocean scaling curve was not captured well during our
    fit step").
    """
    lo, hi = calibrated_range
    if lo <= 0 or hi < lo:
        raise ConfigurationError("calibrated_range must be 0 < lo <= hi")
    n = np.asarray(sorted(int(v) for v in node_counts), dtype=float)
    pm = model.model if hasattr(model, "model") else model
    return ExtrapolatedCurve(
        nodes=n,
        times=np.asarray(pm(n)),
        extrapolated=(n < lo) | (n > hi),
        calibrated_range=(int(lo), int(hi)),
    )
