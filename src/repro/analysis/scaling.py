"""Scaling-curve prediction (Figures 2 and 4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm.layouts import Layout
from repro.exceptions import ConfigurationError
from repro.fitting.perfmodel import PerfModel
from repro.hslb.objectives import ObjectiveKind
from repro.hslb.oracle import LayoutOracle
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ScalingCurve:
    """A predicted time-vs-nodes series."""

    label: str
    nodes: np.ndarray
    times: np.ndarray

    def __post_init__(self):
        if self.nodes.shape != self.times.shape:
            raise ConfigurationError("nodes/times shape mismatch")

    def speedup_series(self) -> np.ndarray:
        """Speedup relative to the smallest node count in the series."""
        return self.times[0] / self.times


def component_curve(
    model: PerfModel, nodes, label: str = "", parts: bool = False
):
    """Fitted component curve over ``nodes`` (Figure 2).

    With ``parts=True`` returns the (total, T_sca, T_nln, T_ser) split the
    paper illustrates in Figure 2's inset.
    """
    n = np.asarray(nodes, dtype=float)
    total = ScalingCurve(label or "total", n, np.asarray(model(n)))
    if not parts:
        return total
    return {
        "total": total,
        "T_sca": ScalingCurve(f"{label} T_sca", n, np.asarray(model.scalable_part(n))),
        "T_nln": ScalingCurve(f"{label} T_nln", n, np.asarray(model.nonlinear_part(n))),
        "T_ser": ScalingCurve(f"{label} T_ser", n, np.full_like(n, model.serial_part)),
    }


def predicted_layout_scaling(
    perf: dict,
    bounds: dict,
    node_counts,
    layout: Layout,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
) -> ScalingCurve:
    """Optimal total time at each job size for ``layout`` (Figure 4).

    For each N the layout problem is re-optimized exactly (enumeration
    oracle), so the curve is "scaling under optimal load balance" — the
    quantity Figure 4 plots.
    """
    counts = [int(v) for v in node_counts]
    times = []
    for N in counts:
        oracle = LayoutOracle(
            layout,
            N,
            perf,
            bounds,
            ocn_allowed=ocn_allowed,
            atm_allowed=atm_allowed,
        )
        times.append(oracle.solve(objective=ObjectiveKind.MIN_MAX).makespan)
    return ScalingCurve(
        f"layout ({layout.value})",
        np.asarray(counts, dtype=float),
        np.asarray(times),
    )


def speedup(t_base: float, t: float) -> float:
    """Classic speedup t_base / t."""
    check_positive(t_base, "t_base")
    check_positive(t, "t")
    return t_base / t


def parallel_efficiency(t_base: float, n_base: int, t: float, n: int) -> float:
    """Efficiency = speedup / (node ratio)."""
    return speedup(t_base, t) / (n / n_base)
