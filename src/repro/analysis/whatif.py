"""What-if analyses (paper Sec. IV-C).

"Another important HSLB application may be the prediction of the optimal
nodes to run a job.  The definition of optimal depends on the goal; it
could be a cost-efficient goal where nodes are increased until scaling is
reduced to a predefined limit or it could be the shortest time to
solution."

The searches here are *solve families* in the sense of
:mod:`repro.reuse`: every candidate job size re-solves a layout MINLP that
shares its nonlinear structure with the others.  With ``method`` set to a
branch-and-bound backend and ``reuse`` on (the default), the sweep threads
a :class:`~repro.reuse.SolveFamily` through the sequence — carried cuts,
seeded incumbents, shared branching history — and fans out over a
:mod:`repro.parallel` executor via :func:`~repro.reuse.family_map`, whose
submission-order delta merging keeps results independent of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout
from repro.exceptions import ConfigurationError, SolverError
from repro.hslb.layout_models import VAR_NAMES, layout_problem_spec
from repro.hslb.objectives import ObjectiveKind
from repro.hslb.oracle import LayoutOracle
from repro.minlp import MINLPOptions, solve_lpnlp, solve_nlp_bnb
from repro.reuse import SolveFamily, family_map
from repro.spec import SolvePointSpec, build_from_spec
from repro.util.validation import check_in_range

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

_METHODS = ("oracle", "lpnlp", "bnb")


@dataclass(frozen=True)
class LayoutPoint:
    """One optimally-balanced layout solve inside a what-if sweep."""

    total_nodes: int
    makespan: float
    allocation: dict
    solver_result: object = None  # MINLPResult for the B&B methods


def layout_point_specs(
    perf: dict,
    bounds: dict,
    node_counts,
    layout: Layout = Layout.HYBRID,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
    method: str = "oracle",
    options: MINLPOptions | None = None,
) -> list:
    """The spec ladder for a what-if sweep: one serializable
    :class:`~repro.spec.SolvePointSpec` per candidate node count.

    This is what actually crosses process boundaries in
    :func:`solve_layout_points` — pure data, no live models or option
    objects — and what a tuning service would persist to replay a sweep.
    """
    _check_method(method)
    return [
        SolvePointSpec.for_problem(
            layout_problem_spec(
                layout=layout,
                total_nodes=int(n),
                perf=perf,
                bounds=bounds,
                ocn_allowed=ocn_allowed,
                atm_allowed=atm_allowed,
                objective=ObjectiveKind.MIN_MAX,
                name=f"whatif_{int(n)}",
            ),
            method=method,
            options=options,
        )
        for n in node_counts
    ]


def _solve_layout_point(spec: SolvePointSpec, family) -> LayoutPoint:
    """Solve one balanced layout; module-level so process backends can run it.

    ``spec`` is pure data: the model is rebuilt here, in whatever process
    this runs in, through the builder registry — workers never unpickle a
    :class:`~repro.model.Model`.
    """
    problem = spec.problem
    total_nodes = int(problem.total_nodes)
    if spec.method == "oracle":
        oracle = LayoutOracle(
            Layout(int(problem.layout)), total_nodes,
            problem.perf(), problem.component_bounds(),
            ocn_allowed=problem.ocn_allowed_list(),
            atm_allowed=problem.atm_allowed_dict(),
        )
        res = oracle.solve(ObjectiveKind(problem.objective))
        return LayoutPoint(
            total_nodes=total_nodes,
            makespan=float(res.makespan),
            allocation=dict(res.allocation),
        )
    model = build_from_spec(problem)
    opts = spec.minlp_options() or MINLPOptions()
    if family is not None:
        opts = replace(opts, reuse=family)
    solver = solve_lpnlp if spec.method == "lpnlp" else solve_nlp_bnb
    result = solver(model, opts)
    if result.solution is None:
        raise SolverError(
            f"what-if solve at N={total_nodes} failed: "
            f"{result.status.value} {result.message}"
        )
    allocation = {
        comp: int(round(result.solution[VAR_NAMES[comp]]))
        for comp in (I, L, A, O)
    }
    return LayoutPoint(
        total_nodes=total_nodes,
        makespan=float(result.objective),
        allocation=allocation,
        solver_result=result,
    )


def _check_method(method: str) -> None:
    if method not in _METHODS:
        raise ConfigurationError(f"unknown method {method!r}; known: {_METHODS}")


def _sweep_family(method: str, reuse, node_counts=()) -> SolveFamily | None:
    """The family threading a sweep, honoring an explicit SolveFamily.

    When the family is auto-created (``reuse=True``), ``node_counts`` decides
    whether pseudocost carry-over is safe — see
    :meth:`SolveFamily.for_counts`.  An explicitly passed family is always
    used as configured.
    """
    if method == "oracle" or reuse is False or reuse is None:
        return None
    if isinstance(reuse, SolveFamily):
        return reuse
    return SolveFamily.for_counts(node_counts)


def solve_layout_points(
    perf: dict,
    bounds: dict,
    node_counts,
    layout: Layout = Layout.HYBRID,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
    method: str = "oracle",
    reuse=True,
    options: MINLPOptions | None = None,
    executor=None,
    workers: int | None = None,
) -> list:
    """Optimally balance ``layout`` at each of ``node_counts``.

    Returns one :class:`LayoutPoint` per count, in the given order.  For the
    B&B methods with ``reuse`` on, the solves form one
    :class:`~repro.reuse.SolveFamily` (pass an existing family as ``reuse``
    to keep feeding a longer-lived pool); ``executor``/``workers`` fan the
    family out without changing any result.

    Members are *solved* in decreasing node-count order whatever the input
    order: state transfers safely downward (a larger member's incumbent
    violates a smaller budget and is rejected during re-certification, its
    cuts and bases stay valid), whereas a small member's optimum seeded
    upward is a weak bound that misleads the branch-and-bound search.
    """
    _check_method(method)
    family = _sweep_family(method, reuse, node_counts)
    specs = layout_point_specs(
        perf, bounds, node_counts, layout=layout,
        ocn_allowed=ocn_allowed, atm_allowed=atm_allowed,
        method=method, options=options,
    )
    order = sorted(range(len(specs)), key=lambda i: -specs[i].problem.total_nodes)
    solved = family_map(
        _solve_layout_point, [specs[i] for i in order], family=family,
        executor=executor, workers=workers,
    )
    results: list = [None] * len(specs)
    for position, index in enumerate(order):
        results[index] = solved[position]
    return results


@dataclass(frozen=True)
class NodeCountRecommendation:
    """Result of an optimal-job-size search."""

    criterion: str               # "fastest" or "cost_efficient"
    total_nodes: int
    total_time: float
    efficiency: float            # marginal efficiency at the chosen size
    evaluated: tuple             # (N, time) pairs examined


def optimal_node_count(
    perf: dict,
    bounds: dict,
    candidate_nodes,
    layout: Layout = Layout.HYBRID,
    criterion: str = "cost_efficient",
    efficiency_floor: float = 0.5,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
    method: str = "oracle",
    reuse=True,
    options: MINLPOptions | None = None,
    executor=None,
    workers: int | None = None,
    points: list | None = None,
) -> NodeCountRecommendation:
    """Pick a job size from ``candidate_nodes`` under ``criterion``.

    ``"fastest"`` returns the size with the smallest optimally-balanced
    total time.  ``"cost_efficient"`` walks the sizes in increasing order
    and keeps growing while the *marginal* parallel efficiency (speedup
    gained / node-growth factor between consecutive candidates) stays at or
    above ``efficiency_floor``.

    ``method`` selects the per-size solver (``"oracle"`` enumeration or the
    ``"lpnlp"``/``"bnb"`` branch-and-bound backends); for the B&B methods
    the sweep runs as one reuse family unless ``reuse`` is False.  Callers
    that already hold the solved :class:`LayoutPoint` list (e.g. to render
    it) can pass it as ``points`` to skip the re-solve.
    """
    if criterion not in ("fastest", "cost_efficient"):
        raise ConfigurationError(f"unknown criterion {criterion!r}")
    check_in_range(efficiency_floor, "efficiency_floor", 0.0, 1.0)
    if points is None:
        counts = sorted({int(v) for v in candidate_nodes})
        if not counts:
            raise ConfigurationError("no candidate node counts given")
        points = solve_layout_points(
            perf, bounds, counts, layout=layout,
            ocn_allowed=ocn_allowed, atm_allowed=atm_allowed,
            method=method, reuse=reuse, options=options,
            executor=executor, workers=workers,
        )
    else:
        points = sorted(points, key=lambda p: p.total_nodes)
    evaluated = [(p.total_nodes, p.makespan) for p in points]

    if criterion == "fastest":
        best_n, best_t = min(evaluated, key=lambda p: p[1])
        idx = [n for n, _ in evaluated].index(best_n)
        eff = _marginal_efficiency(evaluated, idx)
        return NodeCountRecommendation(
            "fastest", best_n, best_t, eff, tuple(evaluated)
        )

    # cost-efficient: largest size whose step from the previous one still
    # bought enough speedup.
    chosen = 0
    for idx in range(1, len(evaluated)):
        if _marginal_efficiency(evaluated, idx) >= efficiency_floor:
            chosen = idx
        else:
            break
    n, t = evaluated[chosen]
    return NodeCountRecommendation(
        "cost_efficient", n, t, _marginal_efficiency(evaluated, chosen), tuple(evaluated)
    )


def _marginal_efficiency(evaluated: list, idx: int) -> float:
    """Speedup over node-growth for the step ending at ``idx`` (1.0 at 0)."""
    if idx == 0:
        return 1.0
    n0, t0 = evaluated[idx - 1]
    n1, t1 = evaluated[idx]
    return (t0 / t1) / (n1 / n0)


def constraint_cost(
    perf: dict,
    bounds: dict,
    total_nodes: int,
    constrained_ocn: list,
    unconstrained_ocn: list,
    layout: Layout = Layout.HYBRID,
    atm_allowed: dict | None = None,
    method: str = "oracle",
    reuse=True,
    options: MINLPOptions | None = None,
) -> dict:
    """Quantify what a hard-coded ocean node set costs (paper Sec. IV-B).

    Returns the constrained and unconstrained optimal totals and the
    relative improvement from lifting the constraint — the paper's headline
    40% (predicted) / 25% (actual) at 32,768 nodes.  With a B&B ``method``
    the two solves share one reuse family (the performance curves — and so
    the cut-validity tags — are identical on both sides).
    """
    _check_method(method)
    family = _sweep_family(method, reuse)

    def solve(ocn):
        [spec] = layout_point_specs(
            perf, bounds, [int(total_nodes)], layout=layout,
            ocn_allowed=list(ocn), atm_allowed=atm_allowed,
            method=method, options=options,
        )
        return _solve_layout_point(spec, family)

    con = solve(constrained_ocn)
    unc = solve(unconstrained_ocn)
    return {
        "constrained": con,
        "unconstrained": unc,
        "improvement": 1.0 - unc.makespan / con.makespan,
    }
