"""What-if analyses (paper Sec. IV-C).

"Another important HSLB application may be the prediction of the optimal
nodes to run a job.  The definition of optimal depends on the goal; it
could be a cost-efficient goal where nodes are increased until scaling is
reduced to a predefined limit or it could be the shortest time to
solution."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.layouts import Layout
from repro.exceptions import ConfigurationError
from repro.hslb.objectives import ObjectiveKind
from repro.hslb.oracle import LayoutOracle
from repro.util.validation import check_in_range


@dataclass(frozen=True)
class NodeCountRecommendation:
    """Result of an optimal-job-size search."""

    criterion: str               # "fastest" or "cost_efficient"
    total_nodes: int
    total_time: float
    efficiency: float            # marginal efficiency at the chosen size
    evaluated: tuple             # (N, time) pairs examined


def optimal_node_count(
    perf: dict,
    bounds: dict,
    candidate_nodes,
    layout: Layout = Layout.HYBRID,
    criterion: str = "cost_efficient",
    efficiency_floor: float = 0.5,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
) -> NodeCountRecommendation:
    """Pick a job size from ``candidate_nodes`` under ``criterion``.

    ``"fastest"`` returns the size with the smallest optimally-balanced
    total time.  ``"cost_efficient"`` walks the sizes in increasing order
    and keeps growing while the *marginal* parallel efficiency (speedup
    gained / node-growth factor between consecutive candidates) stays at or
    above ``efficiency_floor``.
    """
    if criterion not in ("fastest", "cost_efficient"):
        raise ConfigurationError(f"unknown criterion {criterion!r}")
    check_in_range(efficiency_floor, "efficiency_floor", 0.0, 1.0)
    counts = sorted({int(v) for v in candidate_nodes})
    if not counts:
        raise ConfigurationError("no candidate node counts given")

    evaluated = []
    for N in counts:
        oracle = LayoutOracle(
            layout, N, perf, bounds, ocn_allowed=ocn_allowed, atm_allowed=atm_allowed
        )
        evaluated.append((N, oracle.solve(ObjectiveKind.MIN_MAX).makespan))

    if criterion == "fastest":
        best_n, best_t = min(evaluated, key=lambda p: p[1])
        idx = [n for n, _ in evaluated].index(best_n)
        eff = _marginal_efficiency(evaluated, idx)
        return NodeCountRecommendation(
            "fastest", best_n, best_t, eff, tuple(evaluated)
        )

    # cost-efficient: largest size whose step from the previous one still
    # bought enough speedup.
    chosen = 0
    for idx in range(1, len(evaluated)):
        if _marginal_efficiency(evaluated, idx) >= efficiency_floor:
            chosen = idx
        else:
            break
    n, t = evaluated[chosen]
    return NodeCountRecommendation(
        "cost_efficient", n, t, _marginal_efficiency(evaluated, chosen), tuple(evaluated)
    )


def _marginal_efficiency(evaluated: list, idx: int) -> float:
    """Speedup over node-growth for the step ending at ``idx`` (1.0 at 0)."""
    if idx == 0:
        return 1.0
    n0, t0 = evaluated[idx - 1]
    n1, t1 = evaluated[idx]
    return (t0 / t1) / (n1 / n0)


def constraint_cost(
    perf: dict,
    bounds: dict,
    total_nodes: int,
    constrained_ocn: list,
    unconstrained_ocn: list,
    layout: Layout = Layout.HYBRID,
    atm_allowed: dict | None = None,
) -> dict:
    """Quantify what a hard-coded ocean node set costs (paper Sec. IV-B).

    Returns the constrained and unconstrained optimal totals and the
    relative improvement from lifting the constraint — the paper's headline
    40% (predicted) / 25% (actual) at 32,768 nodes.
    """
    def solve(ocn):
        oracle = LayoutOracle(
            layout, total_nodes, perf, bounds, ocn_allowed=ocn, atm_allowed=atm_allowed
        )
        return oracle.solve(ObjectiveKind.MIN_MAX)

    con = solve(constrained_ocn)
    unc = solve(unconstrained_ocn)
    return {
        "constrained": con,
        "unconstrained": unc,
        "improvement": 1.0 - unc.makespan / con.makespan,
    }
