"""Baseline allocation strategies HSLB is compared against.

- :mod:`repro.baselines.manual` — an iterative "human expert" tuner that
  mimics the paper's manual process: eyeball per-component scaling curves,
  pick allocations, run, adjust toward the bottleneck, repeat for five to
  ten rounds (Sec. II: "This process may involve trial and error").  It
  also carries the paper's *published* manual allocations for the Table III
  configurations.
- :mod:`repro.baselines.grid_search` — coarse exhaustive search over
  allocation fractions, charged for every coupled run it executes.
- :mod:`repro.baselines.proportional` — a single-shot split proportional to
  observed single-benchmark work, the simplest defensible allocation.
"""

from repro.baselines.manual import (
    PAPER_MANUAL_ALLOCATIONS,
    ManualTuningResult,
    manual_expert_tuning,
    paper_manual_allocation,
)
from repro.baselines.grid_search import GridSearchResult, grid_search_allocation
from repro.baselines.proportional import proportional_allocation

__all__ = [
    "PAPER_MANUAL_ALLOCATIONS",
    "ManualTuningResult",
    "manual_expert_tuning",
    "paper_manual_allocation",
    "GridSearchResult",
    "grid_search_allocation",
    "proportional_allocation",
]
