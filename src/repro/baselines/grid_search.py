"""Coarse exhaustive grid-search baseline.

Enumerates allocation *fractions* on a coarse grid and runs the coupled
model at each feasible point — the brute-force answer to "what if we just
tried everything", charged for every run.  Useful as a cost/quality anchor:
it typically finds allocations close to HSLB's but spends one coupled run
per grid point where HSLB spends ~5 cheap component benchmarks total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout
from repro.cesm.simulator import CoupledRunSimulator
from repro.exceptions import ConfigurationError, SimulationError

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


@dataclass
class GridSearchResult:
    allocation: dict
    total_time: float
    coupled_runs: int
    evaluated: list = field(default_factory=list)  # (allocation, total)


def grid_search_allocation(
    simulator: CoupledRunSimulator,
    ocean_fractions: int = 6,
    ice_fractions: int = 4,
) -> GridSearchResult:
    """Exhaustive coarse search over (ocean share, ice share) for layout 1."""
    case = simulator.case
    if case.layout is not Layout.HYBRID:
        raise ConfigurationError("grid search models layout 1")
    N = case.total_nodes
    ocn_values = sorted(case.ocean_allowed())

    best = None
    evaluated = []
    runs = 0
    for f_o in np.linspace(0.08, 0.6, ocean_fractions):
        n_o = min(ocn_values, key=lambda v: abs(v - f_o * N))
        n_a_cap = N - n_o
        lo_a, hi_a = case.component_bounds(A)
        n_a = int(min(max(n_a_cap, lo_a), hi_a))
        if n_a + n_o > N:
            continue
        for f_i in np.linspace(0.3, 0.9, ice_fractions):
            lo_i, hi_i = case.component_bounds(I)
            lo_l, hi_l = case.component_bounds(L)
            n_i = int(min(max(round(f_i * n_a), lo_i), hi_i))
            n_l = int(min(max(n_a - n_i, lo_l), hi_l))
            if n_i + n_l > n_a:
                continue
            alloc = {I: n_i, L: n_l, A: n_a, O: n_o}
            try:
                t = simulator.run_coupled(alloc)
            except SimulationError:
                continue
            runs += 1
            evaluated.append((alloc, t.total))
            if best is None or t.total < best[1]:
                best = (alloc, t.total)
    if best is None:
        raise ConfigurationError("grid search found no feasible allocation")
    return GridSearchResult(
        allocation=best[0], total_time=best[1], coupled_runs=runs, evaluated=evaluated
    )
