"""Coarse exhaustive grid-search baseline.

Enumerates allocation *fractions* on a coarse grid and runs the coupled
model at each feasible point — the brute-force answer to "what if we just
tried everything", charged for every run.  Useful as a cost/quality anchor:
it typically finds allocations close to HSLB's but spends one coupled run
per grid point where HSLB spends ~5 cheap component benchmarks total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout
from repro.cesm.simulator import CoupledRunSimulator
from repro.exceptions import ConfigurationError, SimulationError
from repro.parallel.executor import executor_scope

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


@dataclass
class GridSearchResult:
    allocation: dict
    total_time: float
    coupled_runs: int
    evaluated: list = field(default_factory=list)  # (allocation, total)
    reuse_hits: int = 0            # grid points served from an earlier run


@dataclass
class _GridPoint:
    """One coupled run at a grid allocation (picklable process payload)."""

    simulator: object
    allocation: dict


def _run_grid_point(point: _GridPoint):
    """Coupled-run total, or None for an infeasible point — mirroring the
    serial loop's try/except so parallel reduction sees the same stream."""
    try:
        return point.simulator.run_coupled(point.allocation).total
    except SimulationError:
        return None


def _grid_candidates(case, ocean_fractions: int, ice_fractions: int) -> list:
    """Candidate allocations in the exact order the historical loop ran them."""
    N = case.total_nodes
    ocn_values = sorted(case.ocean_allowed())
    candidates = []
    for f_o in np.linspace(0.08, 0.6, ocean_fractions):
        n_o = min(ocn_values, key=lambda v: abs(v - f_o * N))
        n_a_cap = N - n_o
        lo_a, hi_a = case.component_bounds(A)
        n_a = int(min(max(n_a_cap, lo_a), hi_a))
        if n_a + n_o > N:
            continue
        for f_i in np.linspace(0.3, 0.9, ice_fractions):
            lo_i, hi_i = case.component_bounds(I)
            lo_l, hi_l = case.component_bounds(L)
            n_i = int(min(max(round(f_i * n_a), lo_i), hi_i))
            n_l = int(min(max(n_a - n_i, lo_l), hi_l))
            if n_i + n_l > n_a:
                continue
            candidates.append({I: n_i, L: n_l, A: n_a, O: n_o})
    return candidates


def grid_search_allocation(
    simulator: CoupledRunSimulator,
    ocean_fractions: int = 6,
    ice_fractions: int = 4,
    executor=None,
    workers: int | None = None,
    reuse: bool = True,
) -> GridSearchResult:
    """Exhaustive coarse search over (ocean share, ice share) for layout 1.

    ``executor``/``workers`` (see :mod:`repro.parallel`) run the coupled
    evaluations concurrently; the reduction walks results in candidate
    order, so the winner — including the first-wins tie-break — is
    identical to the serial search.

    ``reuse`` dedupes the coupled runs: the fraction grid snaps to allowed
    node sets, so distinct fractions often land on the same allocation, and
    a coupled total is a pure function of ``(case.seed, allocation)`` —
    repeats are served from the first run's result, bit-identically.
    """
    case = simulator.case
    if case.layout is not Layout.HYBRID:
        raise ConfigurationError("grid search models layout 1")

    candidates = _grid_candidates(case, ocean_fractions, ice_fractions)

    if reuse:
        unique: list = []
        index_of: dict = {}
        order = []
        for alloc in candidates:
            key = tuple(sorted((c.value, int(n)) for c, n in alloc.items()))
            if key not in index_of:
                index_of[key] = len(unique)
                unique.append(alloc)
            order.append(index_of[key])
        reuse_hits = len(candidates) - len(unique)
    else:
        unique = candidates
        order = list(range(len(candidates)))
        reuse_hits = 0

    with executor_scope(executor, workers) as ex:
        unique_totals = ex.map_ordered(
            _run_grid_point,
            [_GridPoint(simulator, alloc) for alloc in unique],
        )
    ran = [False] * len(unique)

    best = None
    evaluated = []
    runs = 0
    for alloc, idx in zip(candidates, order):
        total = unique_totals[idx]
        if total is None:
            continue
        if not ran[idx]:
            ran[idx] = True
            runs += 1
        evaluated.append((alloc, total))
        if best is None or total < best[1]:
            best = (alloc, total)
    if best is None:
        raise ConfigurationError("grid search found no feasible allocation")
    return GridSearchResult(
        allocation=best[0], total_time=best[1], coupled_runs=runs,
        evaluated=evaluated, reuse_hits=reuse_hits,
    )
