"""The "manual/human optimization" baseline.

Two artifacts:

- :data:`PAPER_MANUAL_ALLOCATIONS` — the expert allocations the paper's
  Table III reports verbatim, used by the Table III reproduction so the
  comparison target is exactly the published one.
- :func:`manual_expert_tuning` — an algorithmic stand-in for the human
  process, for configurations the paper does not cover: run ~5 core counts,
  plot, pick a layout from the curves, then iterate (build, submit, wait,
  adjust toward the bottleneck) for a handful of rounds.  It is charged one
  coupled run per iteration, mirroring the queue round-trips the paper
  complains about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout
from repro.cesm.simulator import CoupledRunSimulator
from repro.exceptions import ConfigurationError, SimulationError

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

#: Expert allocations published in Table III, keyed by
#: (resolution, total_nodes).  Times are the paper's, recorded in
#: repro.experiments.paperdata; only the node choices live here.
PAPER_MANUAL_ALLOCATIONS = {
    ("1deg", 128): {L: 24, I: 80, A: 104, O: 24},
    ("1deg", 2048): {L: 384, I: 1280, A: 1664, O: 384},
    ("8th", 8192): {L: 486, I: 5350, A: 5836, O: 2356},
    ("8th", 32768): {L: 2220, I: 24424, A: 26644, O: 6124},
}


def paper_manual_allocation(resolution: str, total_nodes: int) -> dict:
    """The paper's published manual allocation for a Table III entry."""
    try:
        return dict(PAPER_MANUAL_ALLOCATIONS[(resolution, total_nodes)])
    except KeyError:
        raise ConfigurationError(
            f"the paper reports no manual allocation for "
            f"({resolution!r}, {total_nodes})"
        ) from None


@dataclass
class ManualTuningResult:
    """Outcome of the iterative expert-tuning heuristic."""

    allocation: dict
    total_time: float
    iterations: int
    coupled_runs: int            # the cost the paper attributes to the human loop
    history: list = field(default_factory=list)  # (allocation, total) per round


def manual_expert_tuning(
    simulator: CoupledRunSimulator,
    max_iterations: int = 8,
    step: float = 0.15,
) -> ManualTuningResult:
    """Iterative human-style tuning on ``simulator``'s case (layout 1).

    Start from a curve-informed split (ocean sized so its time roughly
    matches the rest, atmosphere gets the remainder, ice/land share the
    atmosphere group weighted by their work), then repeatedly move ``step``
    of the node budget toward whichever side of the concurrent split is the
    bottleneck — exactly the "look at the timing output, nudge, resubmit"
    loop the paper describes replacing.
    """
    case = simulator.case
    if case.layout is not Layout.HYBRID:
        raise ConfigurationError("the manual-tuning heuristic models layout 1")
    N = case.total_nodes
    ocn_values = sorted(case.ocean_allowed())

    def snap_ocn(target: float) -> int:
        return min(ocn_values, key=lambda v: abs(v - target))

    def clamp(comp, value: float) -> int:
        lo, hi = case.component_bounds(comp)
        return int(min(max(round(value), lo), hi))

    def build(frac_ocn: float, frac_ice: float) -> dict | None:
        n_o = snap_ocn(frac_ocn * N)
        n_a = N - n_o
        lo_a, hi_a = case.component_bounds(A)
        n_a = int(min(max(n_a, lo_a), hi_a))
        if n_a + n_o > N:
            n_o = snap_ocn(N - n_a)
            if n_a + n_o > N:
                return None
        n_i = clamp(I, frac_ice * n_a)
        n_l = clamp(L, n_a - n_i)
        if n_i + n_l > n_a:
            n_l = max(case.component_bounds(L)[0], n_a - n_i)
            if n_i + n_l > n_a:
                return None
        return {I: n_i, L: n_l, A: n_a, O: n_o}

    frac_ocn, frac_ice = 0.25, 0.8
    best = None
    history = []
    runs = 0
    for it in range(max_iterations):
        alloc = build(frac_ocn, frac_ice)
        if alloc is None:
            break
        try:
            timings = simulator.run_coupled(alloc)
        except SimulationError:
            break
        runs += 1
        history.append((dict(alloc), timings.total))
        if best is None or timings.total < best[1]:
            best = (dict(alloc), timings.total)

        # Adjust like an expert reading the timing table.
        t = timings.times
        stage1 = max(t[I], t[L]) + t[A]
        if t[O] > stage1 * (1 + 1e-3):
            frac_ocn = min(0.9, frac_ocn * (1 + step))     # ocean is the bottleneck
        elif stage1 > t[O] * (1 + 1e-3):
            frac_ocn = max(0.02, frac_ocn * (1 - step))    # shrink the ocean side
        if t[I] > t[L] * (1 + 1e-3):
            frac_ice = min(0.95, frac_ice * (1 + step / 2))
        elif t[L] > t[I] * (1 + 1e-3):
            frac_ice = max(0.05, frac_ice * (1 - step / 2))

    if best is None:
        raise ConfigurationError("manual tuning found no feasible allocation")
    return ManualTuningResult(
        allocation=best[0],
        total_time=best[1],
        iterations=len(history),
        coupled_runs=runs,
        history=history,
    )
