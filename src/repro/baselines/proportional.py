"""Single-shot proportional allocation.

Benchmarks each component once at a common reference size and splits the
machine proportionally to the observed work — the simplest allocation a
user could defend without any modeling.  It ignores the layout's
concurrency structure entirely, which is exactly why HSLB beats it.
"""

from __future__ import annotations

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout
from repro.cesm.simulator import CoupledRunSimulator
from repro.exceptions import ConfigurationError

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


def proportional_allocation(simulator: CoupledRunSimulator) -> dict:
    """Work-proportional layout-1 allocation from one benchmark per component."""
    case = simulator.case
    if case.layout is not Layout.HYBRID:
        raise ConfigurationError("proportional split models layout 1")
    N = case.total_nodes

    # One measurement per component at a shared reference size.
    ref = {}
    for comp in (I, L, A, O):
        lo, hi = case.component_bounds(comp)
        nodes = min(max(lo, N // 8), hi)
        ref[comp] = simulator.benchmark(comp, nodes) * nodes  # ~ total work

    # Ocean gets its work share of N; atmosphere group gets the rest.
    stage1_work = ref[A] + max(ref[I], ref[L])
    share_o = ref[O] / (ref[O] + stage1_work)
    ocn_values = sorted(case.ocean_allowed())
    n_o = min(ocn_values, key=lambda v: abs(v - share_o * N))
    lo_a, hi_a = case.component_bounds(A)
    n_a = int(min(max(N - n_o, lo_a), hi_a))

    # Ice and land split the atmosphere group by their work ratio.
    share_i = ref[I] / (ref[I] + ref[L])
    lo_i, hi_i = case.component_bounds(I)
    lo_l, hi_l = case.component_bounds(L)
    n_i = int(min(max(round(share_i * n_a), lo_i), hi_i))
    n_l = int(min(max(n_a - n_i, lo_l), hi_l))
    if n_i + n_l > n_a:
        n_i = max(lo_i, n_a - n_l)
    if n_i + n_l > n_a or n_a + n_o > N:
        raise ConfigurationError("proportional split infeasible for this case")
    return {I: n_i, L: n_l, A: n_a, O: n_o}
