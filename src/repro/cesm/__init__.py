"""Synthetic CESM performance simulator (the paper's testbed stand-in).

The paper's HSLB never inspects CESM internals — it consumes wall-clock
samples ``(component, node count) -> seconds`` from short benchmark runs,
plus the layout composition rules of Figure 1.  This subpackage provides
exactly that surface:

- :mod:`repro.cesm.components` — the six model components (CAM, POP, CICE,
  CLM, RTM, CPL7) and their roles,
- :mod:`repro.cesm.calibration` — ground-truth timing laws *calibrated by
  least squares against the 44 published measurements in the paper's
  Table III* (see the module docstring for the provenance of every number),
- :mod:`repro.cesm.decomp` — the CICE block-decomposition model that makes
  the sea-ice curve noisy (Sec. IV-A attributes the ice misfit to CICE's
  seven decomposition strategies),
- :mod:`repro.cesm.layouts` — the three component layouts of Figure 1 and
  their make-span composition rules,
- :mod:`repro.cesm.sweetspots` — the allowed ocean/atmosphere node-count
  sets of Table I (lines 5-7),
- :mod:`repro.cesm.case` / :mod:`repro.cesm.simulator` — experiment
  configurations and the coupled-run simulator that produces benchmark
  samples and "actual" run timings with reproducible noise.
"""

from repro.cesm.components import COMPONENTS, ComponentId
from repro.cesm.calibration import CalibratedComponent, ground_truth
from repro.cesm.layouts import Layout, composed_total, validate_allocation
from repro.cesm.sweetspots import atm_allowed_nodes, ocn_allowed_nodes
from repro.cesm.case import CESMCase, make_case
from repro.cesm.simulator import Allocation, ComponentTimings, CoupledRunSimulator

__all__ = [
    "COMPONENTS",
    "ComponentId",
    "CalibratedComponent",
    "ground_truth",
    "Layout",
    "composed_total",
    "validate_allocation",
    "atm_allowed_nodes",
    "ocn_allowed_nodes",
    "CESMCase",
    "make_case",
    "Allocation",
    "ComponentTimings",
    "CoupledRunSimulator",
]
