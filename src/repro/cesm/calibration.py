"""Ground-truth timing laws, calibrated against the paper's Table III.

The paper's measurements were taken on Intrepid (IBM Blue Gene/P), which we
do not have; per the reproduction's substitution policy the simulator's
"true" component behaviour is the performance-model family itself,

    T(n) = a/n + b*n^c + d,

with parameters obtained by running this library's own positivity-
constrained least-squares fitter (:func:`repro.fitting.fit_perf_model`,
16 multistarts, seed 0) over every published (nodes, seconds) pair in
Table III — both the "manual" and the "HSLB actual" columns, i.e. 4 points
per component at 1 degree and 6 points per component at 1/8 degree.  The
resulting R^2 values (0.975..0.99997) match the paper's statement that
"R^2 was very close to 1 for each component".

On top of the smooth law the simulator adds (a) multiplicative log-normal
run-to-run noise and (b) for CICE a deterministic decomposition-imbalance
factor (:mod:`repro.cesm.decomp`), because the paper singles out the ice
curve as the noisy one ("This increased the noise in the sea ice
performance curve fit and impacted the timing estimates", Sec. IV-A).

``noise_sigma`` values are chosen to reproduce the magnitude of the paper's
predicted-vs-actual discrepancies (a few percent for atm/lnd/ocn, larger
for ice); ``min_nodes`` models the memory floor the paper uses to pick the
smallest benchmark size (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.components import ComponentId
from repro.fitting.perfmodel import PerfModel


@dataclass(frozen=True)
class CalibratedComponent:
    """Ground truth for one component at one resolution."""

    component: ComponentId
    law: PerfModel
    noise_sigma: float     # lognormal sigma of run-to-run variation
    min_nodes: int         # memory floor: smallest node count that fits
    max_nodes: int         # scaling ceiling used when generating benchmarks
    decomp_sensitivity: float = 0.0  # amplitude of CICE decomposition bumps


# -- 1 degree: FV atmosphere/land, 1-degree displaced-pole ocean/ice ----------
# Fits over Table III rows "1deg/128" and "1deg/2048" (manual + HSLB-actual).

_TRUTH_1DEG = {
    ComponentId.LND: CalibratedComponent(
        ComponentId.LND,
        PerfModel(a=1465.25, b=0.0, c=1.0, d=2.58604),   # R^2 = 0.99992
        noise_sigma=0.015,
        min_nodes=4,
        max_nodes=2048,
    ),
    ComponentId.ICE: CalibratedComponent(
        ComponentId.ICE,
        PerfModel(a=7985.71, b=0.0, c=1.0, d=18.2535),   # R^2 = 0.97475
        noise_sigma=0.02,
        min_nodes=8,
        max_nodes=2048,
        decomp_sensitivity=0.5,
    ),
    ComponentId.ATM: CalibratedComponent(
        ComponentId.ATM,
        PerfModel(a=27362.3, b=0.0, c=1.0, d=44.7259),   # R^2 = 0.99997
        noise_sigma=0.01,
        min_nodes=8,
        max_nodes=2048,
    ),
    ComponentId.OCN: CalibratedComponent(
        ComponentId.OCN,
        PerfModel(a=7884.52, b=0.0237, c=1.0, d=36.24),  # R^2 = 0.99932
        noise_sigma=0.015,
        min_nodes=8,
        max_nodes=2048,
    ),
    # Excluded-from-optimization components: small constant-ish overheads
    # riding on their host component's processors (Sec. II).
    ComponentId.RTM: CalibratedComponent(
        ComponentId.RTM, PerfModel(a=60.0, d=1.0), 0.05, 1, 2048
    ),
    ComponentId.CPL: CalibratedComponent(
        ComponentId.CPL, PerfModel(a=120.0, d=2.0), 0.05, 1, 2048
    ),
}

# -- 1/8 degree: HOMME-SE atmosphere, 1/4-degree land, 1/10-degree ocean/ice --
# Fits over Table III rows "8th/8192" and "8th/32768" (constrained +
# unconstrained, manual + HSLB-actual).

_TRUTH_8TH = {
    ComponentId.LND: CalibratedComponent(
        ComponentId.LND,
        PerfModel(a=59218.0, b=0.0, c=1.0, d=22.9914),       # R^2 = 0.99828
        noise_sigma=0.03,
        min_nodes=64,
        max_nodes=32768,
    ),
    ComponentId.ICE: CalibratedComponent(
        ComponentId.ICE,
        PerfModel(a=1.93075e6, b=0.00154, c=1.0, d=109.106),  # R^2 = 0.98345
        noise_sigma=0.025,
        min_nodes=512,
        max_nodes=32768,
        decomp_sensitivity=0.6,
    ),
    ComponentId.ATM: CalibratedComponent(
        ComponentId.ATM,
        PerfModel(a=1.3306e7, b=0.000427, c=1.0, d=290.581),  # R^2 = 0.99833
        noise_sigma=0.02,
        min_nodes=1024,
        max_nodes=32768,
    ),
    ComponentId.OCN: CalibratedComponent(
        ComponentId.OCN,
        PerfModel(a=8.0932e6, b=0.0, c=1.0, d=424.097),       # R^2 = 0.98906
        noise_sigma=0.03,
        min_nodes=256,
        max_nodes=32768,
    ),
    ComponentId.RTM: CalibratedComponent(
        ComponentId.RTM, PerfModel(a=2000.0, d=5.0), 0.05, 1, 32768
    ),
    ComponentId.CPL: CalibratedComponent(
        ComponentId.CPL, PerfModel(a=8000.0, d=10.0), 0.05, 1, 32768
    ),
}

_BY_RESOLUTION = {"1deg": _TRUTH_1DEG, "8th": _TRUTH_8TH}


def ground_truth(resolution: str) -> dict:
    """Calibrated truth table for ``resolution`` ("1deg" or "8th")."""
    try:
        return _BY_RESOLUTION[resolution]
    except KeyError:
        raise ValueError(
            f"unknown resolution {resolution!r}; expected one of "
            f"{sorted(_BY_RESOLUTION)}"
        ) from None
