"""Experiment configurations: which grids, machine partition and layout.

A :class:`CESMCase` bundles everything HSLB needs to know about one tuning
problem: the resolution (which selects the calibrated component truths and
the sweet-spot sets), the target job size, the layout, and the noise seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.calibration import ground_truth
from repro.cesm.components import OPTIMIZED_COMPONENTS, ComponentId
from repro.cesm.decomp import GX1, TX0_1, IceGrid
from repro.cesm.layouts import Layout
from repro.cesm.sweetspots import atm_allowed_nodes, ocn_allowed_nodes
from repro.exceptions import ConfigurationError
from repro.machine import INTREPID, Machine

#: Human-readable grid descriptions per supported resolution.
GRID_DESCRIPTIONS = {
    "1deg": "1-deg FV atm/lnd, 1-deg displaced-pole ocn/ice (CESM 1.1.1)",
    "8th": "1/8-deg HOMME-SE atm, 1/4-deg FV lnd, 1/10-deg tri-pole ocn/ice "
    "(pre-release CESM 1.2)",
}


@dataclass(frozen=True)
class CESMCase:
    """One load-balancing problem instance."""

    resolution: str
    total_nodes: int
    layout: Layout = Layout.HYBRID
    unconstrained_ocean: bool = False
    machine: Machine = INTREPID
    seed: int = 0

    def __post_init__(self):
        if self.resolution not in GRID_DESCRIPTIONS:
            raise ConfigurationError(
                f"unknown resolution {self.resolution!r}; expected one of "
                f"{sorted(GRID_DESCRIPTIONS)}"
            )
        if not 1 <= self.total_nodes <= self.machine.nodes:
            raise ConfigurationError(
                f"total_nodes={self.total_nodes} outside machine capacity "
                f"1..{self.machine.nodes}"
            )

    # -- derived configuration -------------------------------------------------

    @property
    def grid_description(self) -> str:
        return GRID_DESCRIPTIONS[self.resolution]

    @property
    def ice_grid(self) -> IceGrid:
        return GX1 if self.resolution == "1deg" else TX0_1

    def truth(self, component: ComponentId):
        """Calibrated ground truth for ``component`` at this resolution."""
        return ground_truth(self.resolution)[component]

    def optimized_components(self) -> tuple:
        return OPTIMIZED_COMPONENTS

    def ocean_allowed(self) -> list:
        """Allowed ocean node counts for this case (Table I line 5)."""
        return ocn_allowed_nodes(
            self.resolution, self.total_nodes, self.unconstrained_ocean
        )

    def atm_allowed(self) -> dict:
        """Allowed atmosphere node counts (Table I lines 6, 29-31)."""
        return atm_allowed_nodes(self.resolution, self.total_nodes)

    def component_bounds(self, component: ComponentId) -> tuple:
        """Box (min_nodes, max_nodes) for a component within this job."""
        truth = self.truth(component)
        lo = min(truth.min_nodes, self.total_nodes)
        hi = min(truth.max_nodes, self.total_nodes)
        return (max(1, lo), max(1, hi))

    def benchmark_node_counts(self, component: ComponentId, points: int = 5) -> list:
        """Geometric sweep from the memory floor to the job size (Sec. III-C:
        smallest allowed by memory, largest possible, a few in between)."""
        import numpy as np

        lo, hi = self.component_bounds(component)
        if points < 2 or lo >= hi:
            return [lo]
        grid = np.unique(
            np.round(np.geomspace(lo, hi, points)).astype(int)
        )
        return [int(v) for v in grid]


def make_case(
    resolution: str,
    total_nodes: int,
    layout: int | Layout = Layout.HYBRID,
    unconstrained_ocean: bool = False,
    seed: int = 0,
    machine: Machine = INTREPID,
) -> CESMCase:
    """Convenience factory: ``make_case("1deg", 128)``."""
    if not isinstance(layout, Layout):
        layout = Layout(layout)
    return CESMCase(
        resolution=resolution,
        total_nodes=total_nodes,
        layout=layout,
        unconstrained_ocean=unconstrained_ocean,
        machine=machine,
        seed=seed,
    )
