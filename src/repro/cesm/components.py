"""CESM model components (paper Sec. II).

CESM 1.1.1 couples six components through CPL7.  HSLB optimizes the four
that dominate the runtime — atmosphere, ocean, sea ice, land — and excludes
the river model and the coupler "because the contribution to the total time
is small" (they still contribute small overheads to *actual* coupled-run
totals in the simulator, which is why HSLB-predicted and actual times differ
slightly, exactly as the paper describes in Sec. III-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ComponentId(enum.Enum):
    """Short component keys as used in the paper's Table I (set C)."""

    ATM = "atm"
    OCN = "ocn"
    ICE = "ice"
    LND = "lnd"
    RTM = "rtm"
    CPL = "cpl"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ComponentInfo:
    """Static description of one CESM component."""

    id: ComponentId
    model_name: str
    description: str
    optimized: bool  # included in the HSLB decision problem?


COMPONENTS: dict = {
    ComponentId.ATM: ComponentInfo(
        ComponentId.ATM,
        "CAM",
        "Community Atmosphere Model (NCAR); FV or HOMME-SE dynamical core",
        True,
    ),
    ComponentId.OCN: ComponentInfo(
        ComponentId.OCN,
        "POP",
        "Parallel Ocean Program (LANL); displaced-pole or tri-pole grid",
        True,
    ),
    ComponentId.ICE: ComponentInfo(
        ComponentId.ICE,
        "CICE",
        "Community Ice Code (LANL); seven block-decomposition strategies",
        True,
    ),
    ComponentId.LND: ComponentInfo(
        ComponentId.LND,
        "CLM",
        "Community Land Model (NCAR)",
        True,
    ),
    ComponentId.RTM: ComponentInfo(
        ComponentId.RTM,
        "RTM",
        "River Transport Model; runs on the land model's processors",
        False,
    ),
    ComponentId.CPL: ComponentInfo(
        ComponentId.CPL,
        "CPL7",
        "Coupler; runs on the atmosphere model's processors",
        False,
    ),
}

#: The four components in the optimization set C = {ice, lnd, atm, ocn}
#: (paper Table I, line 3), in the paper's table-reporting order.
OPTIMIZED_COMPONENTS = (
    ComponentId.LND,
    ComponentId.ICE,
    ComponentId.ATM,
    ComponentId.OCN,
)
