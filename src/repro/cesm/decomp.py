"""CICE block-decomposition model.

The paper (Sec. IV-A): "The ice component supports seven decomposition
strategies with varying block sizes ... In our tests, we used the default
decompositions for CICE which resulted in the tests using varying
decomposition types and block sizes.  This increased the noise in the sea
ice performance curve fit and impacted the timing estimates."  A follow-up
paper [10] selects decompositions by machine learning.

This module reproduces the *mechanism*.  Two families:

- **tile strategies** (cartesian, slender, square variants): the task count
  factors into a ``px x py`` processor tiling (px constrained to divide the
  task count); the busiest rank owns ``ceil(nx/px) * ceil(ny/py)`` cells
  against the ideal ``nx*ny/tasks``, so awkward (prime-ish) task counts pay
  a visible rounding penalty;
- **block strategies** (round-robin, space-filling curve): the grid tiles
  into small square blocks (size adapted to the task count) dealt out
  round-robin; the busiest rank owns ``ceil(blocks/tasks)`` blocks.

On top of the balance term each strategy carries a small halo/communication
overhead (slender strips maximize perimeter, squares minimize it).  CICE's
*default* strategy choice switches between families as the task count
sweeps, so the efficiency factor bounces around — which is exactly what
makes the paper's ice scaling data noisy.
"""

from __future__ import annotations

import enum
import math

from repro.util.validation import check_integer, check_positive


class DecompStrategy(enum.Enum):
    """The seven CICE decomposition strategies."""

    CARTESIAN = "cartesian"
    SLENDERX1 = "slenderX1"
    SLENDERX2 = "slenderX2"
    SQUARE_ICE = "square-ice"
    SQUARE_POP = "square-pop"
    ROUNDROBIN = "roundrobin"
    SPACECURVE = "spacecurve"


#: Relative halo/communication overhead per strategy: slender strips
#: maximize halo perimeter, square-ish tilings minimize it, round-robin and
#: space-filling-curve trade halo cost for balance.
_HALO_FACTOR = {
    DecompStrategy.CARTESIAN: 0.35,
    DecompStrategy.SLENDERX1: 1.00,
    DecompStrategy.SLENDERX2: 0.70,
    DecompStrategy.SQUARE_ICE: 0.25,
    DecompStrategy.SQUARE_POP: 0.30,
    DecompStrategy.ROUNDROBIN: 0.55,
    DecompStrategy.SPACECURVE: 0.40,
}

_BLOCK_STRATEGIES = (DecompStrategy.ROUNDROBIN, DecompStrategy.SPACECURVE)


class IceGrid:
    """Horizontal grid dimensions of the sea-ice model."""

    __slots__ = ("nx", "ny")

    def __init__(self, nx: int, ny: int):
        check_integer(nx, "nx")
        check_positive(nx, "nx")
        check_integer(ny, "ny")
        check_positive(ny, "ny")
        self.nx = nx
        self.ny = ny

    @property
    def cells(self) -> int:
        return self.nx * self.ny

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IceGrid({self.nx}x{self.ny})"


#: gx1v6, the 1-degree displaced-pole ocean/ice grid.
GX1 = IceGrid(nx=320, ny=384)
#: tx0.1, the 1/10-degree tri-pole grid used with the 1/8-degree CESM case.
TX0_1 = IceGrid(nx=3600, ny=2400)


def _divisor_near(n: int, target: float) -> int:
    """The divisor of ``n`` closest to ``target`` (ties -> smaller)."""
    best, best_dist = 1, abs(1 - target)
    d = 1
    while d * d <= n:
        if n % d == 0:
            for cand in (d, n // d):
                dist = abs(cand - target)
                if dist < best_dist:
                    best, best_dist = cand, dist
        d += 1
    return best


def tile_dims(grid: IceGrid, tasks: int, strategy: DecompStrategy) -> tuple:
    """Processor tiling (px, py) with ``px * py == tasks`` for tile
    strategies (raises for block strategies)."""
    if strategy in _BLOCK_STRATEGIES:
        raise ValueError(f"{strategy.value} distributes blocks, not tiles")
    if strategy is DecompStrategy.SLENDERX1:
        px = 1
    elif strategy is DecompStrategy.SLENDERX2:
        px = 2 if tasks % 2 == 0 else 1
    elif strategy is DecompStrategy.CARTESIAN:
        px = _divisor_near(tasks, math.sqrt(tasks * grid.nx / grid.ny))
    elif strategy is DecompStrategy.SQUARE_ICE:
        px = _divisor_near(tasks, math.sqrt(tasks))
    else:  # SQUARE_POP: POP-style tiling biased toward wide tiles
        px = _divisor_near(tasks, math.sqrt(2.0 * tasks))
    return px, tasks // px


def block_size(grid: IceGrid, tasks: int) -> int:
    """Square block edge for the block strategies, adapted so there are at
    least ~4 blocks per task (power-of-two edges, as CICE setups use)."""
    target = math.sqrt(grid.cells / (4.0 * max(tasks, 1)))
    for edge in (32, 16, 8, 4):
        if edge <= target:
            return edge
    return 4


def block_counts(grid: IceGrid, tasks: int, strategy: DecompStrategy) -> int:
    """Number of distribution units (tiles or blocks) for ``strategy``."""
    check_integer(tasks, "tasks")
    check_positive(tasks, "tasks")
    if strategy in _BLOCK_STRATEGIES:
        bs = block_size(grid, tasks)
        return math.ceil(grid.nx / bs) * math.ceil(grid.ny / bs)
    px, py = tile_dims(grid, tasks, strategy)
    return px * py


def default_strategy(tasks: int) -> DecompStrategy:
    """CICE's out-of-the-box strategy choice as a function of task count.

    Mirrors the behaviour the paper describes: the default switches between
    strategies across the sweep, so neighbouring node counts can land on
    decompositions of quite different quality.
    """
    check_integer(tasks, "tasks")
    check_positive(tasks, "tasks")
    if tasks <= 16:
        return DecompStrategy.SLENDERX1
    if tasks <= 64:
        return DecompStrategy.SLENDERX2
    if tasks % 96 == 0:
        return DecompStrategy.SQUARE_ICE
    if tasks % 16 == 0:
        return DecompStrategy.CARTESIAN
    if tasks % 6 == 0:
        return DecompStrategy.SQUARE_POP
    if tasks % 2 == 0:
        return DecompStrategy.ROUNDROBIN
    return DecompStrategy.SPACECURVE


def imbalance_factor(grid: IceGrid, tasks: int, strategy: DecompStrategy) -> float:
    """Run-time inflation (>= 1) from load imbalance plus halo cost."""
    check_integer(tasks, "tasks")
    check_positive(tasks, "tasks")
    ideal = grid.cells / tasks
    if strategy in _BLOCK_STRATEGIES:
        blocks = block_counts(grid, tasks, strategy)
        bs = block_size(grid, tasks)
        per_task = math.ceil(blocks / tasks)
        busiest_cells = per_task * bs * bs
        balance = max(1.0, busiest_cells / ideal)
    else:
        px, py = tile_dims(grid, tasks, strategy)
        busiest_cells = math.ceil(grid.nx / px) * math.ceil(grid.ny / py)
        balance = max(1.0, busiest_cells / ideal)
    halo = 1.0 + 0.02 * _HALO_FACTOR[strategy]
    return balance * halo


def efficiency_factor(
    grid: IceGrid, tasks: int, sensitivity: float, strategy: DecompStrategy | None = None
) -> float:
    """The multiplicative timing factor the simulator applies to CICE.

    ``sensitivity`` in [0, 1] scales how strongly the imbalance shows up in
    wall-clock (communication/compute overlap hides part of it); 0 disables
    the decomposition effect entirely.
    """
    if sensitivity == 0.0:
        return 1.0
    strat = strategy or default_strategy(tasks)
    raw = imbalance_factor(grid, tasks, strat)
    return 1.0 + sensitivity * (raw - 1.0)


def best_strategy(grid: IceGrid, tasks: int) -> DecompStrategy:
    """The imbalance-minimizing strategy for ``tasks`` (what the paper's
    machine-learning follow-up [10] effectively learns to predict)."""
    return min(
        DecompStrategy,
        key=lambda s: imbalance_factor(grid, tasks, s),
    )
