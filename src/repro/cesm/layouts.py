"""Component layouts and their make-span composition rules (Figure 1).

Layout (1), "hybrid": the atmosphere runs sequentially after the
concurrently-running ice and land models on one processor group, while the
ocean runs concurrently on the rest.  Layout (2) runs ice, land and
atmosphere sequentially on one group with the ocean concurrent.  Layout (3)
runs all four sequentially across all processors.

Total-time rules (Table I, "Minimize" rows):

    (1)  max( max(T_ice, T_lnd) + T_atm,  T_ocn )
    (2)  max( T_ice + T_lnd + T_atm,      T_ocn )
    (3)  T_ice + T_lnd + T_atm + T_ocn

Node-validity rules (Table I, lines 20-21, 24-26, 28):

    (1)  n_ice + n_lnd <= n_atm,  n_atm + n_ocn <= N
    (2)  n_ice, n_lnd, n_atm <= N - n_ocn
    (3)  every component <= N
"""

from __future__ import annotations

import enum

from repro.cesm.components import ComponentId
from repro.exceptions import SimulationError

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class Layout(enum.Enum):
    """The three layouts of Figure 1."""

    HYBRID = 1
    SEQUENTIAL_SPLIT = 2
    FULLY_SEQUENTIAL = 3

    @property
    def figure_panel(self) -> int:
        return self.value


def composed_total(layout: Layout, times: dict) -> float:
    """Coupled-run make-span from per-component times under ``layout``."""
    t_i, t_l, t_a, t_o = times[I], times[L], times[A], times[O]
    if layout is Layout.HYBRID:
        return max(max(t_i, t_l) + t_a, t_o)
    if layout is Layout.SEQUENTIAL_SPLIT:
        return max(t_i + t_l + t_a, t_o)
    return t_i + t_l + t_a + t_o


def validate_allocation(layout: Layout, alloc: dict, total_nodes: int) -> None:
    """Raise :class:`SimulationError` if ``alloc`` is invalid for ``layout``.

    ``alloc`` maps the four optimized components to node counts.
    """
    for comp in (A, O, I, L):
        if comp not in alloc:
            raise SimulationError(f"allocation missing component {comp.value}")
        n = alloc[comp]
        if int(n) != n or n < 1:
            raise SimulationError(
                f"allocation for {comp.value} must be a positive integer, got {n!r}"
            )
    n_a, n_o, n_i, n_l = alloc[A], alloc[O], alloc[I], alloc[L]
    if layout is Layout.HYBRID:
        if n_i + n_l > n_a:
            raise SimulationError(
                f"layout 1 requires n_ice + n_lnd <= n_atm "
                f"({n_i} + {n_l} > {n_a})"
            )
        if n_a + n_o > total_nodes:
            raise SimulationError(
                f"layout 1 requires n_atm + n_ocn <= N ({n_a} + {n_o} > {total_nodes})"
            )
    elif layout is Layout.SEQUENTIAL_SPLIT:
        cap = total_nodes - n_o
        for comp, n in ((I, n_i), (L, n_l), (A, n_a)):
            if n > cap:
                raise SimulationError(
                    f"layout 2 requires n_{comp.value} <= N - n_ocn ({n} > {cap})"
                )
        if n_o > total_nodes:
            raise SimulationError("layout 2 requires n_ocn <= N")
    else:
        for comp, n in ((I, n_i), (L, n_l), (A, n_a), (O, n_o)):
            if n > total_nodes:
                raise SimulationError(
                    f"layout 3 requires n_{comp.value} <= N ({n} > {total_nodes})"
                )
