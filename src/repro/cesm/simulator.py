"""The coupled-run simulator.

Produces the two kinds of measurements HSLB consumes:

- :meth:`CoupledRunSimulator.benchmark` — the wall-clock of one component in
  a short (5-day) benchmark run at a given node count.  These feed the fit
  step.  As in the paper, the timer *includes* intra-component communication
  and internal load imbalance (the CICE decomposition factor lives here) but
  *excludes* coupler time.
- :meth:`CoupledRunSimulator.run_coupled` — a full coupled run at a concrete
  allocation, returning per-component times and the total.  The total
  additionally carries the small coupler + river overhead that HSLB excludes
  from its model, which is why "the HSLB reported time for the whole run may
  differ slightly from the one found in the CESM output files" (Sec. III-C).

All randomness is deterministic in ``(case.seed, component, nodes)`` —
conceptually each configuration is one recorded measurement, replayed on
demand — so experiments are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.cesm.case import CESMCase
from repro.cesm.components import OPTIMIZED_COMPONENTS, ComponentId
from repro.cesm.decomp import efficiency_factor
from repro.cesm.layouts import Layout, composed_total, validate_allocation
from repro.exceptions import SimulationError
from repro.util.rng import keyed_rng

#: Allocation = node count per optimized component.
Allocation = dict


@dataclass(frozen=True)
class ComponentTimings:
    """One coupled run's timing record."""

    allocation: dict
    times: dict                 # ComponentId -> seconds (optimized four)
    overhead: float             # coupler + river contribution to the total
    layout: Layout
    total: float = field(init=False)

    def __post_init__(self):
        object.__setattr__(
            self,
            "total",
            composed_total(self.layout, self.times) + self.overhead,
        )

    def time_of(self, component: ComponentId) -> float:
        return self.times[component]


class CoupledRunSimulator:
    """Synthetic CESM on a machine partition (see module docstring).

    ``ice_strategy_for`` optionally overrides how the sea-ice decomposition
    is chosen per task count (signature ``tasks -> DecompStrategy``); the
    default is CICE's out-of-the-box heuristic, and :mod:`repro.mlice`
    provides a learned alternative.
    """

    def __init__(self, case: CESMCase, ice_strategy_for=None):
        self.case = case
        self.ice_strategy_for = ice_strategy_for

    # -- internal -----------------------------------------------------------------

    def _noise(self, purpose: str, key: str, sigma: float) -> float:
        """Log-normal factor that is a pure function of (seed, purpose, key):
        each configuration is one recorded measurement, independent of the
        order experiments sample it in."""
        if sigma <= 0.0:
            return 1.0
        rng = keyed_rng(self.case.seed, purpose, key)
        return float(rng.lognormal(mean=0.0, sigma=sigma))

    def _component_time(
        self, component: ComponentId, nodes: int, noise_key: str
    ) -> float:
        truth = self.case.truth(component)
        if nodes < 1:
            raise SimulationError(f"{component.value}: node count must be >= 1")
        if nodes > self.case.machine.nodes:
            raise SimulationError(
                f"{component.value}: {nodes} nodes exceeds the machine"
            )
        if nodes < truth.min_nodes:
            raise SimulationError(
                f"{component.value}: {nodes} nodes is below the memory floor "
                f"of {truth.min_nodes} at {self.case.resolution}"
            )
        base = float(truth.law(nodes)) / self.case.machine.relative_speed
        if component is ComponentId.ICE and truth.decomp_sensitivity > 0.0:
            tasks = nodes * self.case.machine.mpi_tasks_per_node
            strategy = (
                self.ice_strategy_for(tasks)
                if self.ice_strategy_for is not None
                else None
            )
            base *= efficiency_factor(
                self.case.ice_grid, tasks, truth.decomp_sensitivity, strategy
            )
        return base * self._noise(
            "bench" if noise_key.startswith("bench") else "run",
            f"{noise_key}:{component.value}:{nodes}",
            truth.noise_sigma,
        )

    # -- public API -----------------------------------------------------------------

    def benchmark(self, component: ComponentId, nodes: int, repeat: int = 0) -> float:
        """Component wall-clock (seconds) of a 5-day benchmark run.

        ``repeat`` selects an independent re-measurement of the same
        configuration (fresh noise draw); ``repeat=0`` is *the* recorded
        measurement every caller historically observed.  The resilient
        gather stage uses ``repeat > 0`` when it re-runs a rejected point.
        """
        key = "bench" if repeat == 0 else f"bench#{int(repeat)}"
        return self._component_time(component, nodes, key)

    def benchmark_sweep(self, component: ComponentId, node_counts) -> list:
        """``[(nodes, seconds), ...]`` over a sweep of node counts."""
        return [(int(n), self.benchmark(component, int(n))) for n in node_counts]

    def run_coupled(self, allocation: Allocation) -> ComponentTimings:
        """Execute a full coupled run at ``allocation``.

        ``allocation`` maps the four optimized components (or their string
        values) to node counts; validity under the case's layout is checked
        first (science constraints from Table I).
        """
        alloc = _normalize_allocation(allocation)
        validate_allocation(self.case.layout, alloc, self.case.total_nodes)
        key = "run:" + ",".join(
            f"{c.value}={alloc[c]}" for c in OPTIMIZED_COMPONENTS
        )
        times = {
            comp: self._component_time(comp, alloc[comp], key)
            for comp in OPTIMIZED_COMPONENTS
        }
        overhead = self._overhead(alloc, key)
        return ComponentTimings(
            allocation=dict(alloc),
            times=times,
            overhead=overhead,
            layout=self.case.layout,
        )

    def _overhead(self, alloc: dict, key: str) -> float:
        """Coupler (on the atmosphere's nodes) + river (on the land's)."""
        speed = self.case.machine.relative_speed
        cpl = self.case.truth(ComponentId.CPL)
        rtm = self.case.truth(ComponentId.RTM)
        t_cpl = float(cpl.law(alloc[ComponentId.ATM])) / speed
        t_rtm = float(rtm.law(alloc[ComponentId.LND])) / speed
        wiggle = self._noise("run", f"{key}:overhead", cpl.noise_sigma)
        return (t_cpl + t_rtm) * wiggle


def _normalize_allocation(allocation: dict) -> dict:
    out = {}
    for k, v in allocation.items():
        comp = k if isinstance(k, ComponentId) else ComponentId(str(k))
        out[comp] = int(v)
    missing = [c for c in OPTIMIZED_COMPONENTS if c not in out]
    if missing:
        raise SimulationError(
            f"allocation missing components: {[c.value for c in missing]}"
        )
    return out
