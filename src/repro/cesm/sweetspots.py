"""Allowed node-count ("sweet spot") sets for ocean and atmosphere.

Table I, lines 5-7:

    O = {2, 4, ..., 480, 768}       possible allocations for ocn (1 degree)
    A = {1, 2, ..., 1638, 1664}     possible allocations for atm (1 degree)

At 1/8 degree the ocean model "was initially limited to a few handful of
node counts including 480, 512, 2356, 3136, 4564, 6124, and 19460 as a
result of prior testing" (Sec. IV-B); the unconstrained variant relaxes that
to the full range, which is the experiment where HSLB found the 25-40%
improvement.  The 1/8-degree atmosphere's sweet spots "decompose the grid
evenly"; the published allocations do not follow a closed form, so we model
it as the full integer range (a contiguous special set degenerates to plain
integer bounds).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

#: Hard-coded POP node counts at 1/8 degree (paper Sec. IV-B).
OCN_8TH_CONSTRAINED = (480, 512, 2356, 3136, 4564, 6124, 19460)


def ocn_allowed_nodes(
    resolution: str, total_nodes: int, unconstrained: bool = False
) -> list:
    """Allowed ocean node counts, truncated to the job size."""
    if resolution == "1deg":
        values = list(range(2, 481, 2)) + [768]
    elif resolution == "8th":
        if unconstrained:
            # "relatively arbitrary processor counts": even node counts from
            # the memory floor up (POP wants an even decomposition).
            values = list(range(256, total_nodes + 1, 2))
        else:
            values = list(OCN_8TH_CONSTRAINED)
    else:
        raise ConfigurationError(f"unknown resolution {resolution!r}")
    out = [v for v in values if v <= total_nodes]
    if not out:
        raise ConfigurationError(
            f"no allowed ocean node count fits in {total_nodes} nodes"
        )
    return out


def atm_allowed_nodes(resolution: str, total_nodes: int) -> dict:
    """Allowed atmosphere node counts.

    Returns ``{"values": list | None, "lo": int, "hi": int}``: an explicit
    list when the set is non-contiguous (1 degree: {1..1638} plus 1664) and
    ``values=None`` with plain bounds when it degenerates to a range.
    """
    if resolution == "1deg":
        values = list(range(1, 1639)) + [1664]
        values = [v for v in values if v <= total_nodes]
        if not values:
            raise ConfigurationError("atmosphere set empty for this job size")
        contiguous = values == list(range(values[0], values[0] + len(values)))
        if contiguous:
            return {"values": None, "lo": values[0], "hi": values[-1]}
        return {"values": values, "lo": values[0], "hi": values[-1]}
    if resolution == "8th":
        hi = min(total_nodes, 32768)
        return {"values": None, "lo": 1, "hi": hi}
    raise ConfigurationError(f"unknown resolution {resolution!r}")
