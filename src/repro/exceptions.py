"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing solver-level failures
(infeasible models, iteration limits) from user-level modeling mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """A model is malformed: unknown variables, bad bounds, empty SOS sets."""


class ExpressionError(ReproError):
    """An expression tree is used in an unsupported way (e.g. non-smooth
    operator where a derivative is required)."""


class SolverError(ReproError):
    """Base class for numerical solver failures."""


class InfeasibleError(SolverError):
    """The problem instance has no feasible point.

    Carries an optional certificate/explanation in ``args[0]``.
    """


class UnboundedError(SolverError):
    """The problem instance has an unbounded optimum."""


class IterationLimitError(SolverError):
    """A solver hit its iteration budget before converging."""


class FittingError(ReproError):
    """Least-squares fitting failed (too few points, degenerate data...)."""


class SimulationError(ReproError):
    """The CESM simulator was asked to run an invalid configuration."""


class ConfigurationError(ReproError):
    """An experiment or pipeline was configured inconsistently."""
