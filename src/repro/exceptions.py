"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing solver-level failures
(infeasible models, iteration limits) from user-level modeling mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """A model is malformed: unknown variables, bad bounds, empty SOS sets."""


class ExpressionError(ReproError):
    """An expression tree is used in an unsupported way (e.g. non-smooth
    operator where a derivative is required)."""


class SolverError(ReproError):
    """Base class for numerical solver failures."""


class InfeasibleError(SolverError):
    """The problem instance has no feasible point.

    Carries an optional certificate/explanation in ``args[0]``.
    """


class UnboundedError(SolverError):
    """The problem instance has an unbounded optimum."""


class IterationLimitError(SolverError):
    """A solver hit its iteration budget before converging."""


class DeadlineExceededError(SolverError):
    """A wall-clock :class:`~repro.resilience.Deadline` expired mid-stage."""


class FittingError(ReproError):
    """Least-squares fitting failed (too few points, degenerate data...)."""


class SimulationError(ReproError):
    """The CESM simulator was asked to run an invalid configuration."""


class InjectedFaultError(SimulationError):
    """A fault deliberately injected by a :class:`~repro.resilience.FaultySimulator`.

    Modeled after the failure modes of real benchmark jobs on Intrepid:
    crashes and queue timeouts abort the run (raised), while corrupted or
    outlying timings come back as bad *values* and must be caught by the
    gather stage's validation and outlier rejection.
    """


class InjectedCrashError(InjectedFaultError):
    """The simulated benchmark job crashed before producing a timing."""


class InjectedTimeoutError(InjectedFaultError):
    """The simulated benchmark job hit its queue time limit.

    ``timeout_seconds`` carries the simulated wall-clock that was lost.
    """

    def __init__(self, message: str, timeout_seconds: float = 0.0):
        super().__init__(message)
        self.timeout_seconds = float(timeout_seconds)


class WorkerLostError(ReproError):
    """A parallel worker process was lost while it held a task.

    Raised (via the ordered merge) when supervision exhausts its retry
    budget for the task, or by the plain process backend when its pool
    breaks.  ``attempts`` counts how many times the task was dispatched.
    """

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = int(attempts)


class WorkerCrashError(WorkerLostError):
    """A worker process died abnormally (signal or nonzero exit)."""


class WorkerHangError(WorkerLostError):
    """A worker missed its task deadline or stopped heartbeating."""


class JournalError(ReproError):
    """A run journal is corrupt beyond the recoverable torn tail."""


class GatherError(ReproError):
    """Benchmark gathering degraded past the point of a usable fit.

    ``partial`` carries whatever :class:`~repro.hslb.gather.BenchmarkData`
    survived, so callers can inspect (or persist) the salvaged points.
    """

    def __init__(self, message: str, partial=None):
        super().__init__(message)
        self.partial = partial


class ConfigurationError(ReproError):
    """An experiment or pipeline was configured inconsistently."""


class ServiceError(ReproError):
    """Base class for tuning-service failures (see :mod:`repro.service`)."""


class ProtocolError(ServiceError):
    """A service message is malformed: bad JSON, missing fields, unknown kind."""


class AdmissionError(ServiceError):
    """A request was refused admission (queue full or service shutting down)."""
