"""Experiment harness: one module per paper table/figure plus ablations.

Every artifact of the paper's evaluation section has a regeneration entry
point here, shared by the pytest benchmarks (``benchmarks/``) and the CLI
(``python -m repro``):

- :mod:`repro.experiments.paperdata` — the published numbers (Table III and
  the claims of Secs. III-E, IV-B) as data,
- :mod:`repro.experiments.table3` — the six Table III blocks (T3-1..T3-6),
- :mod:`repro.experiments.figures` — Figure 2 (component scaling curves),
  Figure 3 (1/8-degree manual vs HSLB), Figure 4 (layout scaling),
- :mod:`repro.experiments.ablations` — objective comparison (A-OBJ), SOS vs
  binary branching (A-SOS), solver time at 40,960 nodes (A-SOLVE), T_sync
  sweep (A-SYNC), benchmark-point count (A-FIT), multistart fitting
  variability (A-START),
- :mod:`repro.experiments.registry` — id -> runner mapping.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentCellSpec,
    quarantine_text,
    run_experiment,
    run_experiments,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentCellSpec",
    "quarantine_text",
    "run_experiment",
    "run_experiments",
]
