"""Ablation experiments backing the paper's textual claims.

- A-OBJ   (Sec. III-D): min-max vs max-min vs min-sum objectives.
- A-SOS   (Sec. III-E): SOS1 branching vs individual binary branching.
- A-SOLVE (Sec. III-E): MINLP solve time at 40,960 nodes (< 60 s claim).
- A-SYNC  (Sec. III-A): the T_sync band "may actually result in reduced
  performance".
- A-FIT   (Sec. III-C): how many benchmark points a good fit needs.
- A-START (Sec. III-C): multistart least squares finds different local
  optima whose allocations are of similar quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cesm import ComponentId, CoupledRunSimulator, make_case
from repro.fitting import FitOptions, fit_perf_model
from repro.hslb import HSLBPipeline, ObjectiveKind, solve_allocation
from repro.minlp import BranchRule, MINLPOptions, solve_lpnlp
from repro.util.tables import TextTable

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


# -- A-OBJ -----------------------------------------------------------------------


@dataclass
class ObjectiveAblation:
    """Coupled make-span achieved by each objective's allocation."""

    makespans: dict          # ObjectiveKind -> predicted makespan
    allocations: dict        # ObjectiveKind -> allocation

    def render(self) -> str:
        t = TextTable(
            ["objective", "eq.", "predicted make-span, sec"],
            title="A-OBJ: objective function comparison (1 deg)",
        )
        for kind, ms in self.makespans.items():
            t.add_row([kind.value, kind.paper_equation, ms])
        return t.render()


def run_objective_ablation(total_nodes: int = 512, seed: int = 0) -> ObjectiveAblation:
    case = make_case("1deg", total_nodes, seed=seed)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    makespans, allocations = {}, {}
    for kind in ObjectiveKind:
        out = solve_allocation(case, fits, objective=kind, method="oracle")
        makespans[kind] = out.predicted_total
        allocations[kind] = out.allocation
    return ObjectiveAblation(makespans, allocations)


# -- A-SOS -----------------------------------------------------------------------


@dataclass
class BranchingAblation:
    """Solver effort under SOS1 vs individual-binary branching."""

    set_size: int
    sos_nodes: int
    binary_nodes: int
    sos_seconds: float
    binary_seconds: float
    objectives_agree: bool

    @property
    def node_ratio(self) -> float:
        return self.binary_nodes / max(1, self.sos_nodes)

    def render(self) -> str:
        t = TextTable(
            ["branching", "B&B nodes", "seconds"],
            title=f"A-SOS: branching rule, {self.set_size}-member ocean set",
        )
        t.add_row(["SOS1 set", self.sos_nodes, self.sos_seconds])
        t.add_row(["individual binaries", self.binary_nodes, self.binary_seconds])
        return t.render()


def run_branching_ablation(
    set_size: int = 200, total_nodes: int = 2048, seed: int = 0
) -> BranchingAblation:
    """Same model, two branching rules.

    The ocean set is deliberately made awkward (non-progression, many
    members near each other) so the relaxation is fractional and branching
    effort dominates — the regime the paper's two-orders-of-magnitude claim
    concerns.
    """
    case = make_case("1deg", total_nodes, seed=seed)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}

    # An awkward ocean set: offset-perturbed values so no stride is common.
    rng = np.random.default_rng(seed)
    base = np.unique(
        np.round(np.geomspace(8, total_nodes // 3, set_size)).astype(int)
        + rng.integers(0, 3, size=set_size)
    )
    results = {}
    for rule in (BranchRule.SOS_FIRST, BranchRule.INTEGER_ONLY):
        from repro.hslb.layout_models import build_layout_model

        model = build_layout_model(
            layout=case.layout,
            total_nodes=case.total_nodes,
            perf=perf,
            bounds={c: case.component_bounds(c) for c in (I, L, A, O)},
            ocn_allowed=[int(v) for v in base],
            atm_allowed=case.atm_allowed(),
        )
        # Force the binary set-choice encoding decision upstream: the
        # perturbed set has no common stride, so both rules see binaries.
        # Warm starts are disabled so the comparison isolates the branching
        # rule (they would otherwise perturb which degenerate LP vertex each
        # node reports, confounding the tree shapes).
        start = time.perf_counter()
        res = solve_lpnlp(
            model,
            MINLPOptions(
                branch_rule=rule, time_limit=300.0, use_warm_start=False
            ),
        )
        results[rule] = (res, time.perf_counter() - start)

    sos, t_sos = results[BranchRule.SOS_FIRST]
    bin_, t_bin = results[BranchRule.INTEGER_ONLY]
    agree = (
        sos.solution is not None
        and bin_.solution is not None
        and abs(sos.objective - bin_.objective) <= 1e-4 * max(1.0, abs(sos.objective))
    )
    return BranchingAblation(
        set_size=len(base),
        sos_nodes=sos.nodes,
        binary_nodes=bin_.nodes,
        sos_seconds=t_sos,
        binary_seconds=t_bin,
        objectives_agree=agree,
    )


# -- A-SOLVE ----------------------------------------------------------------------


@dataclass
class SolverTimeResult:
    total_nodes: int
    seconds: float
    bnb_nodes: int
    cuts: int
    objective: float

    def render(self) -> str:
        return (
            f"A-SOLVE: MINLP at N={self.total_nodes} solved in "
            f"{self.seconds:.2f} s ({self.bnb_nodes} B&B nodes, "
            f"{self.cuts} OA cuts) - paper claim: < 60 s"
        )


def run_solver_time(total_nodes: int = 40_960, seed: int = 0) -> SolverTimeResult:
    """Sec. III-E: 'the MINLP for 40960 nodes took less than 60 seconds'."""
    case = make_case("8th", total_nodes, unconstrained_ocean=True, seed=seed)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    start = time.perf_counter()
    out = solve_allocation(case, fits, method="lpnlp")
    seconds = time.perf_counter() - start
    sr = out.solver_result
    return SolverTimeResult(
        total_nodes=total_nodes,
        seconds=seconds,
        bnb_nodes=sr.nodes,
        cuts=sr.cuts_added,
        objective=out.objective_value,
    )


# -- A-SYNC -----------------------------------------------------------------------


@dataclass
class TsyncAblation:
    """Make-span as the synchronization band tightens."""

    tsync_values: tuple          # None = no band, else seconds
    makespans: dict

    def render(self) -> str:
        t = TextTable(
            ["T_sync, sec", "predicted make-span, sec"],
            title="A-SYNC: synchronization-band cost (1 deg)",
        )
        for v in self.tsync_values:
            t.add_row(["off" if v is None else v, self.makespans[v]])
        return t.render()


def run_tsync_ablation(
    total_nodes: int = 512, seed: int = 0,
    bands=(None, 5.0, 1.0, 0.25, 0.1, 0.02),
) -> TsyncAblation:
    case = make_case("1deg", total_nodes, seed=seed)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    makespans = {}
    for band in bands:
        out = solve_allocation(case, fits, tsync=band, method="oracle")
        makespans[band] = out.predicted_total
    return TsyncAblation(tuple(bands), makespans)


# -- A-FIT ------------------------------------------------------------------------


@dataclass
class FitPointsAblation:
    """Fit quality and downstream allocation quality vs #benchmark points.

    ``actual`` is the judge: the coupled run executed at each fit's chosen
    allocation (a poor fit's *predicted* time is optimistically biased)."""

    points: tuple
    r_squared: dict              # points -> worst component R^2
    predicted: dict              # points -> predicted make-span
    actual: dict                 # points -> executed coupled total

    def render(self) -> str:
        t = TextTable(
            ["# points", "worst R^2", "predicted, sec", "actual, sec"],
            title="A-FIT: benchmark points per component (1 deg)",
        )
        for p in self.points:
            t.add_row(
                [p, f"{self.r_squared[p]:.4f}", self.predicted[p], self.actual[p]]
            )
        return t.render()


def run_fit_points_ablation(
    total_nodes: int = 512, seed: int = 0, points=(3, 4, 5, 8, 12)
) -> FitPointsAblation:
    case = make_case("1deg", total_nodes, seed=seed)
    r2, predicted, actual = {}, {}, {}
    for p in points:
        pipeline = HSLBPipeline(case, points=p)
        fits = pipeline.fit(pipeline.gather())
        r2[p] = min(f.r_squared for f in fits.values())
        out = solve_allocation(case, fits, method="oracle")
        predicted[p] = out.predicted_total
        actual[p] = pipeline.simulator.run_coupled(out.allocation).total
    return FitPointsAblation(tuple(points), r2, predicted, actual)


# -- A-START ----------------------------------------------------------------------


@dataclass
class MultistartAblation:
    """Different LS starting points -> different parameters, similar
    allocation quality (Sec. III-C's observation)."""

    n_starts: int
    distinct_parameter_sets: int
    sse_spread: float            # (worst - best) / best local-optimum SSE
    makespan_spread: float       # relative make-span spread across refits

    def render(self) -> str:
        return (
            f"A-START: {self.n_starts} starts -> "
            f"{self.distinct_parameter_sets} distinct local optima, "
            f"SSE spread {self.sse_spread:.2%}, "
            f"downstream make-span spread {self.makespan_spread:.2%}"
        )


def run_multistart_ablation(total_nodes: int = 512, seed: int = 0) -> MultistartAblation:
    case = make_case("1deg", total_nodes, seed=seed)
    sim = CoupledRunSimulator(case)
    pipeline = HSLBPipeline(case)
    data = pipeline.gather()

    # Refit the noisiest component (ice) from independent seeds and push
    # each local fit through the full solve.
    makespans = []
    params = set()
    sses = []
    for s in range(6):
        fits = {}
        for comp in data.components():
            fits[comp] = fit_perf_model(
                data.nodes(comp), data.times(comp), FitOptions(seed=s, n_starts=4)
            )
        ice_fit = fits[I]
        params.add(tuple(round(v, 4) for v in ice_fit.model.as_tuple()))
        sses.append(ice_fit.sse)
        out = solve_allocation(case, fits, method="oracle")
        makespans.append(out.predicted_total)

    makespans = np.asarray(makespans)
    sses = np.asarray(sses)
    best_sse = max(float(sses.min()), 1e-12)
    return MultistartAblation(
        n_starts=6,
        distinct_parameter_sets=len(params),
        sse_spread=float((sses.max() - sses.min()) / best_sse),
        makespan_spread=float((makespans.max() - makespans.min()) / makespans.min()),
    )
