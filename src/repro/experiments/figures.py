"""Figure reproductions (F2, F3, F4).

Figures are regenerated as *data series* (plus a text rendering): the same
numbers the paper plots, so shape comparisons are assertable in benchmarks
without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import component_curve, predicted_layout_scaling
from repro.cesm import ComponentId, CoupledRunSimulator, Layout, make_case
from repro.fitting.quality import r_squared
from repro.hslb import HSLBPipeline
from repro.hslb.oracle import oracle_for_case
from repro.baselines import paper_manual_allocation
from repro.util.tables import TextTable

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

FIG4_NODE_COUNTS = (128, 256, 512, 1024, 2048)


# -- Figure 2: per-component scaling curves at 1 degree ------------------------


@dataclass
class Figure2Data:
    """Per component: benchmark samples, fitted curve, and the
    T_sca/T_nln/T_ser split of the fit (the paper's inset)."""

    samples: dict        # comp -> (nodes, seconds)
    fit_params: dict     # comp -> (a, b, c, d)
    curves: dict         # comp -> {"total"/"T_sca"/"T_nln"/"T_ser": ScalingCurve}
    r_squared: dict      # comp -> R^2 of the fit

    def render(self) -> str:
        t = TextTable(
            ["component", "a", "b", "c", "d", "R^2"],
            title="Figure 2: fitted T(n) = a/n + b*n^c + d per component (1 deg, layout 1)",
        )
        for comp, (a, b, c, d) in self.fit_params.items():
            t.add_row([comp.value, f"{a:.4g}", f"{b:.4g}", f"{c:.3g}",
                       f"{d:.4g}", f"{self.r_squared[comp]:.4f}"])
        return t.render()


def run_figure2(seed: int = 0, total_nodes: int = 2048) -> Figure2Data:
    """Figure 2: scaling curves for each component in layout 1, 1 degree."""
    case = make_case("1deg", total_nodes, seed=seed)
    pipeline = HSLBPipeline(case)
    data = pipeline.gather()
    fits = pipeline.fit(data)
    grid = np.unique(np.round(np.geomspace(8, total_nodes, 40)).astype(int))
    curves = {
        comp: component_curve(res.model, grid, label=comp.value, parts=True)
        for comp, res in fits.items()
    }
    return Figure2Data(
        samples={c: data.samples[c] for c in data.components()},
        fit_params={c: res.model.as_tuple() for c, res in fits.items()},
        curves=curves,
        r_squared={c: res.r_squared for c, res in fits.items()},
    )


# -- Figure 3: 1/8-degree manual vs HSLB-predicted vs HSLB-actual --------------


@dataclass
class Figure3Data:
    """Grouped-bar data: for each node count, the three totals."""

    node_counts: tuple
    manual: dict       # N -> seconds ("human guess")
    predicted: dict    # N -> seconds (HSLB prediction)
    actual: dict       # N -> seconds (HSLB executed)

    def render(self) -> str:
        t = TextTable(
            ["# nodes", "human guess, sec", "HSLB predicted, sec", "HSLB actual, sec"],
            title="Figure 3: 1/8 deg scaling, layout (1)",
        )
        for n in self.node_counts:
            t.add_row([n, self.manual[n], self.predicted[n], self.actual[n]])
        return t.render()


def run_figure3(seed: int = 0, node_counts=(8192, 32768)) -> Figure3Data:
    manual, predicted, actual = {}, {}, {}
    for n in node_counts:
        case = make_case("8th", n, seed=seed)
        pipeline = HSLBPipeline(case)
        result = pipeline.run()
        manual_run = pipeline.simulator.run_coupled(
            paper_manual_allocation("8th", n)
        )
        manual[n] = manual_run.total
        predicted[n] = result.predicted_total
        actual[n] = result.actual_total
    return Figure3Data(tuple(node_counts), manual, predicted, actual)


# -- Figure 4: predicted scaling of layouts 1-3 at 1 degree ---------------------


@dataclass
class Figure4Data:
    """Predicted layout curves plus the 'experimental' layout-1 series."""

    node_counts: tuple
    predicted: dict          # Layout -> np.ndarray of seconds
    experimental_layout1: np.ndarray
    r2_layout1: float        # paper: 1.0

    def render(self) -> str:
        t = TextTable(
            ["# nodes", "layout (1)", "layout (2)", "layout (3)", "layout (1exp)"],
            title=f"Figure 4: layout scaling at 1 deg (R^2 layout 1 = {self.r2_layout1:.4f})",
        )
        for i, n in enumerate(self.node_counts):
            t.add_row(
                [
                    n,
                    float(self.predicted[Layout.HYBRID][i]),
                    float(self.predicted[Layout.SEQUENTIAL_SPLIT][i]),
                    float(self.predicted[Layout.FULLY_SEQUENTIAL][i]),
                    float(self.experimental_layout1[i]),
                ]
            )
        return t.render()


def run_figure4(seed: int = 0, node_counts=FIG4_NODE_COUNTS) -> Figure4Data:
    """Figure 4: re-optimize each layout at every job size from the fits of
    the largest 1-degree case, and execute layout 1 for the experimental
    series."""
    base_case = make_case("1deg", max(node_counts), seed=seed)
    pipeline = HSLBPipeline(base_case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: base_case.component_bounds(c) for c in (I, L, A, O)}

    predicted = {}
    for layout in Layout:
        curve = predicted_layout_scaling(
            perf,
            bounds,
            node_counts,
            layout,
            ocn_allowed=base_case.ocean_allowed(),
            atm_allowed=base_case.atm_allowed(),
        )
        predicted[layout] = curve.times

    experimental = []
    for i, n in enumerate(node_counts):
        case = make_case("1deg", n, seed=seed)
        oracle = oracle_for_case(case, perf)
        alloc = oracle.solve().allocation
        run = CoupledRunSimulator(case).run_coupled(alloc)
        experimental.append(run.total)
    experimental = np.asarray(experimental)

    r2 = r_squared(experimental, predicted[Layout.HYBRID])
    return Figure4Data(tuple(node_counts), predicted, experimental, r2)
