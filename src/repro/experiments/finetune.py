"""A-FINETUNE: coupler/river fine-tuning (paper Sec. II's deferred step).

"The coupler and the river models take less time to run compared to the
other components, so these components were not included in our HSLB models,
but they can be added later for fine tuning the work load balance."

This experiment performs that addition: the pipeline also benchmarks and
fits RTM and CPL, and the layout model charges their fitted time to the
land/atmosphere groups they ride on.  Expected outcome: the total-time
*prediction* sharpens dramatically (the four-component model systematically
under-predicts by the overhead, cf. Sec. III-C's "the HSLB reported time
... may differ slightly from the one found in the CESM output files"), and
the allocation shifts at most marginally — which is exactly why the paper
could defer it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm import make_case
from repro.hslb import HSLBPipeline
from repro.util.tables import TextTable


@dataclass
class FineTuneComparison:
    standard_allocation: dict
    finetuned_allocation: dict
    standard_predicted: float
    finetuned_predicted: float
    standard_actual: float
    finetuned_actual: float

    @property
    def standard_prediction_error(self) -> float:
        return abs(self.standard_predicted - self.standard_actual) / self.standard_actual

    @property
    def finetuned_prediction_error(self) -> float:
        return abs(self.finetuned_predicted - self.finetuned_actual) / self.finetuned_actual

    def render(self) -> str:
        t = TextTable(
            ["model", "predicted, sec", "actual, sec", "prediction error"],
            title="A-FINETUNE: coupler/river fine-tuning (1 deg, 128 nodes)",
        )
        t.add_row([
            "4 components (paper's)", self.standard_predicted,
            self.standard_actual, f"{self.standard_prediction_error:.2%}",
        ])
        t.add_row([
            "+ coupler & river", self.finetuned_predicted,
            self.finetuned_actual, f"{self.finetuned_prediction_error:.2%}",
        ])
        return t.render()


def run_finetune_comparison(
    seed: int = 0, resolution: str = "1deg", nodes: int = 128
) -> FineTuneComparison:
    std = HSLBPipeline(make_case(resolution, nodes, seed=seed)).run()
    fine = HSLBPipeline(
        make_case(resolution, nodes, seed=seed), fine_tuning=True
    ).run()
    return FineTuneComparison(
        standard_allocation=std.allocation,
        finetuned_allocation=fine.allocation,
        standard_predicted=std.predicted_total,
        finetuned_predicted=fine.predicted_total,
        standard_actual=std.actual_total,
        finetuned_actual=fine.actual_total,
    )
