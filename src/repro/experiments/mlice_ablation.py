"""A-MLICE: machine-learned sea-ice decomposition selection (ref. [10]).

The paper's Sec. IV-A blames the noisy ice fit on CICE's default
decomposition choice, and Sec. V announces a machine-learning follow-up.
This experiment measures what that follow-up buys on our substrate: the ice
benchmark sweep is refit under three decomposition policies (default
heuristic / learned k-NN selector / exhaustive oracle), comparing curve
smoothness (fit R²) and raw component speed at awkward task counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm import ComponentId, CoupledRunSimulator, make_case
from repro.fitting import fit_perf_model
from repro.mlice import IceDecompPolicy, train_selector
from repro.mlice.selector import strategy_for
from repro.util.tables import TextTable

I = ComponentId.ICE


@dataclass
class MliceAblation:
    """Per policy: mean ice time over the sweep and the refit R^2."""

    node_counts: tuple
    mean_seconds: dict           # IceDecompPolicy -> mean ice benchmark time
    fit_r_squared: dict          # IceDecompPolicy -> R^2 of the curve refit
    selector_loo_rmse: float     # k-NN model quality (leave-one-out)

    def render(self) -> str:
        t = TextTable(
            ["decomposition policy", "mean ice time, sec", "ice fit R^2"],
            title="A-MLICE: sea-ice decomposition selection (1 deg, awkward node counts)",
        )
        for policy in IceDecompPolicy:
            t.add_row(
                [policy.value, self.mean_seconds[policy],
                 f"{self.fit_r_squared[policy]:.4f}"]
            )
        return t.render() + f"\nselector LOO-RMSE: {self.selector_loo_rmse:.4f}"


def run_mlice_ablation(total_nodes: int = 2048, seed: int = 0) -> MliceAblation:
    case = make_case("1deg", total_nodes, seed=seed)
    selector = train_selector(case.ice_grid, n=500, seed=seed)
    # Deliberately awkward sweep: odd, prime-ish and near-miss counts where
    # the default heuristic's strategy switching shows as curve noise.
    counts = sorted(
        {9, 13, 27, 45, 91, 113, 183, 247, 331, 505, 731, 1021, 1477, 2003}
    )
    counts = [c for c in counts if c <= total_nodes]

    mean_seconds, r2 = {}, {}
    for policy in IceDecompPolicy:
        if policy is IceDecompPolicy.DEFAULT:
            sim = CoupledRunSimulator(case)
        else:
            chooser = (
                selector.select
                if policy is IceDecompPolicy.LEARNED
                else (lambda tasks: strategy_for(case.ice_grid, tasks, IceDecompPolicy.ORACLE))
            )
            sim = CoupledRunSimulator(case, ice_strategy_for=chooser)
        times = np.array([sim.benchmark(I, n) for n in counts])
        mean_seconds[policy] = float(times.mean())
        r2[policy] = fit_perf_model(np.array(counts, float), times).r_squared

    loo = float(
        np.mean([m.loo_rmse() for m in selector.models.values()])
    )
    return MliceAblation(
        node_counts=tuple(counts),
        mean_seconds=mean_seconds,
        fit_r_squared=r2,
        selector_loo_rmse=loo,
    )
