"""The paper's published numbers, as data.

Everything the reproduction compares against lives here: the six Table III
blocks (per-component node counts and seconds for the manual, HSLB-predicted
and HSLB-actual columns) and the headline claims from the text.  Component
keys are :class:`~repro.cesm.ComponentId`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.components import ComponentId

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


@dataclass(frozen=True)
class PaperTable3Entry:
    """One block of Table III as published."""

    key: str
    resolution: str
    total_nodes: int
    unconstrained_ocean: bool
    manual_nodes: dict | None
    manual_times: dict | None
    manual_total: float | None
    hslb_nodes: dict
    hslb_predicted: dict
    hslb_predicted_total: float
    hslb_actual_nodes: dict
    hslb_actual: dict
    hslb_actual_total: float


TABLE3: dict = {
    "1deg-128": PaperTable3Entry(
        key="1deg-128",
        resolution="1deg",
        total_nodes=128,
        unconstrained_ocean=False,
        manual_nodes={L: 24, I: 80, A: 104, O: 24},
        manual_times={L: 63.766, I: 109.054, A: 306.952, O: 362.669},
        manual_total=416.006,
        hslb_nodes={L: 15, I: 89, A: 104, O: 24},
        hslb_predicted={L: 100.951, I: 102.972, A: 307.651, O: 365.649},
        hslb_predicted_total=410.623,
        hslb_actual_nodes={L: 15, I: 89, A: 104, O: 24},
        hslb_actual={L: 100.202, I: 116.472, A: 308.699, O: 365.853},
        hslb_actual_total=425.171,
    ),
    "1deg-2048": PaperTable3Entry(
        key="1deg-2048",
        resolution="1deg",
        total_nodes=2048,
        unconstrained_ocean=False,
        manual_nodes={L: 384, I: 1280, A: 1664, O: 384},
        manual_times={L: 5.777, I: 17.912, A: 61.987, O: 61.987},
        manual_total=79.899,
        hslb_nodes={L: 71, I: 1454, A: 1525, O: 256},
        hslb_predicted={L: 22.693, I: 22.822, A: 61.662, O: 78.532},
        hslb_predicted_total=84.484,
        hslb_actual_nodes={L: 71, I: 1454, A: 1525, O: 256},
        hslb_actual={L: 23.158, I: 18.242, A: 63.313, O: 79.139},
        hslb_actual_total=86.471,
    ),
    "8th-8192": PaperTable3Entry(
        key="8th-8192",
        resolution="8th",
        total_nodes=8192,
        unconstrained_ocean=False,
        manual_nodes={L: 486, I: 5350, A: 5836, O: 2356},
        manual_times={L: 147.397, I: 475.614, A: 2533.76, O: 3785.333},
        manual_total=3785.333,
        hslb_nodes={L: 138, I: 4918, A: 5056, O: 3136},
        hslb_predicted={L: 487.853, I: 511.596, A: 2878.798, O: 2919.052},
        hslb_predicted_total=3390.394,
        hslb_actual_nodes={L: 138, I: 4918, A: 5056, O: 3136},
        hslb_actual={L: 457.052, I: 499.691, A: 2989.115, O: 2898.102},
        hslb_actual_total=3488.806,
    ),
    "8th-32768": PaperTable3Entry(
        key="8th-32768",
        resolution="8th",
        total_nodes=32768,
        unconstrained_ocean=False,
        manual_nodes={L: 2220, I: 24424, A: 26644, O: 6124},
        manual_times={L: 44.225, I: 214.203, A: 787.478, O: 1645.009},
        manual_total=1645.009,
        hslb_nodes={L: 302, I: 13006, A: 13308, O: 19460},
        hslb_predicted={L: 232.158, I: 290.088, A: 1302.562, O: 712.525},
        hslb_predicted_total=1592.649,
        hslb_actual_nodes={L: 302, I: 13006, A: 13308, O: 19460},
        hslb_actual={L: 223.284, I: 311.195, A: 1301.136, O: 700.373},
        hslb_actual_total=1612.331,
    ),
    "8th-8192-unconstrained": PaperTable3Entry(
        key="8th-8192-unconstrained",
        resolution="8th",
        total_nodes=8192,
        unconstrained_ocean=True,
        manual_nodes=None,
        manual_times=None,
        manual_total=None,
        hslb_nodes={L: 137, I: 5238, A: 5375, O: 2817},
        hslb_predicted={L: 487.853, I: 489.904, A: 2727.934, O: 3216.924},
        hslb_predicted_total=3217.837,
        hslb_actual_nodes={L: 146, I: 5287, A: 5433, O: 2759},
        hslb_actual={L: 417.162, I: 475.249, A: 2702.651, O: 3496.331},
        hslb_actual_total=3496.331,
    ),
    "8th-32768-unconstrained": PaperTable3Entry(
        key="8th-32768-unconstrained",
        resolution="8th",
        total_nodes=32768,
        unconstrained_ocean=True,
        manual_nodes=None,
        manual_times=None,
        manual_total=None,
        hslb_nodes={L: 299, I: 22657, A: 22956, O: 9812},
        hslb_predicted={L: 232.158, I: 232.735, A: 896.67, O: 1129.335},
        hslb_predicted_total=1129.405,
        hslb_actual_nodes={L: 272, I: 20616, A: 20888, O: 11880},
        hslb_actual={L: 238.46, I: 231.631, A: 956.558, O: 1255.593},
        hslb_actual_total=1255.593,
    ),
}

#: Headline claims from the text, used as assertions in the benchmarks.
CLAIMS = {
    # Sec. III-E: "the MINLP for 40960 nodes took less than 60 seconds to
    # solve on one core".
    "solver_seconds_at_40960": 60.0,
    # Sec. III-E: SOS branching "improved the runtime of the MINLP solver
    # by two orders of magnitude".
    "sos_speedup_orders": 2,
    # Sec. V: "we improved the speed of CESM on 32,768 nodes for 1/8-degree
    # resolution simulations by 25% compared to a baseline guess".
    "actual_improvement_32768": 0.25,
    # Sec. IV-B: predicted improvement ~40% (1129 vs 1593 seconds).
    "predicted_improvement_32768": 0.40,
    # Sec. IV (Figure 4): R^2 between predicted and experimental layout-1
    # scaling equals 1.0.
    "fig4_layout1_r2": 1.0,
    # Sec. III-C: at least 4 benchmark points per component; R^2 close to 1.
    "min_benchmark_points": 4,
}
