"""Experiment registry: ids -> runners (shared by CLI and benchmarks)."""

from __future__ import annotations

from repro.exceptions import ConfigurationError


def _table3(key):
    def run(seed: int = 0):
        from repro.experiments.table3 import run_table3_entry

        return run_table3_entry(key, seed=seed)

    return run


def _fig(runner_name):
    def run(seed: int = 0):
        from repro.experiments import figures

        return getattr(figures, runner_name)(seed=seed)

    return run


def _ablation(runner_name):
    def run(seed: int = 0):
        from repro.experiments import ablations

        return getattr(ablations, runner_name)(seed=seed)

    return run


def _mlice(seed: int = 0):
    from repro.experiments.mlice_ablation import run_mlice_ablation

    return run_mlice_ablation(seed=seed)


def _seeds(seed: int = 0):
    from repro.experiments.stability import run_seed_stability

    return run_seed_stability(seed=seed)


def _finetune(seed: int = 0):
    from repro.experiments.finetune import run_finetune_comparison

    return run_finetune_comparison(seed=seed)


def _reuse(seed: int = 0):
    from repro.experiments.reuse_sweep import run_reuse_sweep

    return run_reuse_sweep(seed=seed)


#: id -> (description, runner).  Runners take ``seed`` and return an object
#: with a ``render()`` method.
EXPERIMENTS = {
    "t3-1": ("Table III: 1 deg, 128 nodes", _table3("1deg-128")),
    "t3-2": ("Table III: 1 deg, 2048 nodes", _table3("1deg-2048")),
    "t3-3": ("Table III: 1/8 deg, 8192 nodes, constrained ocean", _table3("8th-8192")),
    "t3-4": ("Table III: 1/8 deg, 32768 nodes, constrained ocean", _table3("8th-32768")),
    "t3-5": (
        "Table III: 1/8 deg, 8192 nodes, unconstrained ocean",
        _table3("8th-8192-unconstrained"),
    ),
    "t3-6": (
        "Table III: 1/8 deg, 32768 nodes, unconstrained ocean",
        _table3("8th-32768-unconstrained"),
    ),
    "fig2": ("Figure 2: component scaling curves (1 deg)", _fig("run_figure2")),
    "fig3": ("Figure 3: 1/8 deg manual vs HSLB", _fig("run_figure3")),
    "fig4": ("Figure 4: layout scaling (1 deg)", _fig("run_figure4")),
    "a-obj": ("Ablation: objective functions", _ablation("run_objective_ablation")),
    "a-sos": ("Ablation: SOS vs binary branching", _ablation("run_branching_ablation")),
    "a-solve": ("Ablation: solver time at 40,960 nodes", _ablation("run_solver_time")),
    "a-sync": ("Ablation: T_sync band", _ablation("run_tsync_ablation")),
    "a-fit": ("Ablation: benchmark point count", _ablation("run_fit_points_ablation")),
    "a-start": ("Ablation: multistart fitting", _ablation("run_multistart_ablation")),
    "a-mlice": (
        "Extension: ML-based sea-ice decomposition selection (ref. [10])",
        _mlice,
    ),
    "a-seeds": (
        "Extension: seed-replication of the Table III headline comparison",
        _seeds,
    ),
    "a-finetune": (
        "Extension: coupler/river fine-tuning (paper Sec. II deferred step)",
        _finetune,
    ),
    "a-reuse": (
        "Extension: cross-solve reuse family vs cold what-if sweep",
        _reuse,
    ),
}


def run_experiment(experiment_id: str, seed: int = 0):
    """Run one experiment by id; returns its data object (has .render())."""
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(seed=seed)


def _render_entry(job: tuple) -> tuple:
    """Process-pool worker: run one experiment and render it to text.

    Takes ``(experiment_id, seed)`` rather than a runner closure — closures
    do not pickle, ids do.  Returning the rendered text (not the data
    object) keeps the payload picklable for every experiment type.
    """
    experiment_id, seed = job
    return experiment_id, run_experiment(experiment_id, seed=seed).render()


def run_experiments(
    experiment_ids, seed: int = 0, executor=None, workers: int | None = None
):
    """Run several experiments, optionally concurrently.

    Returns ``[(experiment_id, rendered_text), ...]`` in the order given,
    whatever the backend (see :mod:`repro.parallel`).  Each experiment is
    internally deterministic given ``seed``, so concurrent execution
    renders the same text serial execution would.
    """
    from repro.parallel.executor import executor_scope

    jobs = [(experiment_id, seed) for experiment_id in experiment_ids]
    with executor_scope(executor, workers) as ex:
        return ex.map_ordered(_render_entry, jobs)
