"""Experiment registry: ids -> runners (shared by CLI and benchmarks).

Each scheduled cell (one experiment id at one seed) is described by an
:class:`ExperimentCellSpec` — serializable, structurally hashable — which
is what crosses process boundaries and what checkpoint files are keyed by:
``run_experiments(..., checkpoint_dir=...)`` skips cells whose spec_key
already has a saved result and replays only the rest.

Two durability layers stack on top of checkpoints:

- ``journal=`` appends every cell start/finish/quarantine to an fsync'd
  :class:`~repro.io.journal.RunJournal`; a run killed at any instant
  resumes from the journal alone, replaying only unfinished cells.
- ``supervised=True`` (or ``executor="supervised"``) runs cells under
  :class:`~repro.parallel.supervised.SupervisedProcessExecutor`: crashed
  or hung workers are respawned and their cells retried; a cell that
  exhausts its retry budget is *quarantined* — the roll-up completes with
  a ``QUARANTINED`` line for that cell instead of dying.

Corrupt checkpoint files (truncated JSON, garbage bytes, spec-key
mismatches) are never fatal: they are renamed to ``*.corrupt``, reported
via ``warnings`` and the event log, and the cell re-runs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.spec.schema import check_schema, spec_key, stamp


def _table3(key):
    def run(seed: int = 0):
        from repro.experiments.table3 import run_table3_entry

        return run_table3_entry(key, seed=seed)

    return run


def _fig(runner_name):
    def run(seed: int = 0):
        from repro.experiments import figures

        return getattr(figures, runner_name)(seed=seed)

    return run


def _ablation(runner_name):
    def run(seed: int = 0):
        from repro.experiments import ablations

        return getattr(ablations, runner_name)(seed=seed)

    return run


def _mlice(seed: int = 0):
    from repro.experiments.mlice_ablation import run_mlice_ablation

    return run_mlice_ablation(seed=seed)


def _seeds(seed: int = 0):
    from repro.experiments.stability import run_seed_stability

    return run_seed_stability(seed=seed)


def _finetune(seed: int = 0):
    from repro.experiments.finetune import run_finetune_comparison

    return run_finetune_comparison(seed=seed)


def _reuse(seed: int = 0):
    from repro.experiments.reuse_sweep import run_reuse_sweep

    return run_reuse_sweep(seed=seed)


#: id -> (description, runner).  Runners take ``seed`` and return an object
#: with a ``render()`` method.
EXPERIMENTS = {
    "t3-1": ("Table III: 1 deg, 128 nodes", _table3("1deg-128")),
    "t3-2": ("Table III: 1 deg, 2048 nodes", _table3("1deg-2048")),
    "t3-3": ("Table III: 1/8 deg, 8192 nodes, constrained ocean", _table3("8th-8192")),
    "t3-4": ("Table III: 1/8 deg, 32768 nodes, constrained ocean", _table3("8th-32768")),
    "t3-5": (
        "Table III: 1/8 deg, 8192 nodes, unconstrained ocean",
        _table3("8th-8192-unconstrained"),
    ),
    "t3-6": (
        "Table III: 1/8 deg, 32768 nodes, unconstrained ocean",
        _table3("8th-32768-unconstrained"),
    ),
    "fig2": ("Figure 2: component scaling curves (1 deg)", _fig("run_figure2")),
    "fig3": ("Figure 3: 1/8 deg manual vs HSLB", _fig("run_figure3")),
    "fig4": ("Figure 4: layout scaling (1 deg)", _fig("run_figure4")),
    "a-obj": ("Ablation: objective functions", _ablation("run_objective_ablation")),
    "a-sos": ("Ablation: SOS vs binary branching", _ablation("run_branching_ablation")),
    "a-solve": ("Ablation: solver time at 40,960 nodes", _ablation("run_solver_time")),
    "a-sync": ("Ablation: T_sync band", _ablation("run_tsync_ablation")),
    "a-fit": ("Ablation: benchmark point count", _ablation("run_fit_points_ablation")),
    "a-start": ("Ablation: multistart fitting", _ablation("run_multistart_ablation")),
    "a-mlice": (
        "Extension: ML-based sea-ice decomposition selection (ref. [10])",
        _mlice,
    ),
    "a-seeds": (
        "Extension: seed-replication of the Table III headline comparison",
        _seeds,
    ),
    "a-finetune": (
        "Extension: coupler/river fine-tuning (paper Sec. II deferred step)",
        _finetune,
    ),
    "a-reuse": (
        "Extension: cross-solve reuse family vs cold what-if sweep",
        _reuse,
    ),
}


def run_experiment(experiment_id: str, seed: int = 0):
    """Run one experiment by id; returns its data object (has .render())."""
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(seed=seed)


@dataclass(frozen=True)
class ExperimentCellSpec:
    """One schedulable experiment cell (id + seed) as serializable data.

    This is the payload shipped to process workers and the identity key of
    checkpoint files: :meth:`spec_key` hashes the canonical dict, so a
    saved cell is only reused for exactly the experiment and seed that
    produced it.
    """

    experiment_id: str
    seed: int = 0

    kind = "experiment_cell"

    def __post_init__(self):
        if self.experiment_id not in EXPERIMENTS:
            raise ConfigurationError(
                f"unknown experiment {self.experiment_id!r}; "
                f"known: {sorted(EXPERIMENTS)}"
            )

    def to_dict(self) -> dict:
        return stamp(
            {
                "kind": self.kind,
                "experiment_id": self.experiment_id,
                "seed": int(self.seed),
            },
            "spec",
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentCellSpec":
        check_schema(payload, "spec")
        if payload.get("kind") != cls.kind:
            raise ConfigurationError(
                f"expected an {cls.kind!r} spec, got kind={payload.get('kind')!r}"
            )
        return cls(
            experiment_id=payload["experiment_id"], seed=int(payload.get("seed", 0))
        )

    def spec_key(self) -> str:
        return spec_key(self.to_dict())

    def run(self):
        return run_experiment(self.experiment_id, seed=self.seed)


def _render_cell(payload: dict) -> tuple:
    """Process-pool worker: run one experiment cell and render it to text.

    Takes the cell's *spec payload* rather than a runner closure — closures
    do not pickle; pure data does, in any worker.  Returning the rendered
    text (not the data object) keeps the result picklable for every
    experiment type.
    """
    cell = ExperimentCellSpec.from_dict(payload)
    return cell.experiment_id, cell.run().render()


def _checkpoint_path(checkpoint_dir, cell: ExperimentCellSpec) -> Path:
    digest = cell.spec_key().removeprefix("spec:")[:16]
    return Path(checkpoint_dir) / f"{cell.experiment_id}-s{cell.seed}-{digest}.json"


def quarantine_text(experiment_id: str, attempts: int, reason: str, detail: str) -> str:
    """The roll-up line standing in for a poisoned cell's report.

    A pure function of the poison record, so a journal resume reproduces
    the exact text the original run rolled up.
    """
    return (
        f"experiment {experiment_id} QUARANTINED: {reason} persisted through "
        f"{attempts} attempt{'s' if attempts != 1 else ''}; cell skipped.\n"
        f"  {detail}"
    )


def _load_checkpoint(path: Path, cell: ExperimentCellSpec, log):
    """Load one checkpoint, quarantining damage instead of raising.

    Returns the rendered text, or ``None`` when the file is absent, corrupt
    (truncated/garbage JSON, bad schema) or keyed to a different spec — in
    the damaged cases the file is moved aside to ``<name>.corrupt`` so the
    fresh result can be saved in its place.
    """
    from repro.io import load_experiment_cell
    from repro.resilience.events import EventKind

    if not path.exists():
        return None
    try:
        _, recorded_key, rendered = load_experiment_cell(path)
        # json.JSONDecodeError is a ValueError; missing keys raise KeyError;
        # structurally wrong payloads raise ConfigurationError or TypeError.
    except (ConfigurationError, OSError, ValueError, KeyError, TypeError) as exc:
        problem = f"{type(exc).__name__}: {exc}"
    else:
        if recorded_key == cell.spec_key():
            return rendered
        problem = (
            f"spec_key mismatch: file is {recorded_key}, "
            f"cell {cell.experiment_id} (seed {cell.seed}) is {cell.spec_key()}"
        )
    quarantined = path.with_name(path.name + ".corrupt")
    try:
        path.replace(quarantined)
    except OSError:
        quarantined = path  # unmovable: leave it; the save below overwrites
    warnings.warn(
        f"checkpoint {path} is unusable ({problem}); "
        f"quarantined to {quarantined.name} and re-running the cell",
        RuntimeWarning,
        stacklevel=4,
    )
    if log is not None:
        log.record(
            EventKind.CHECKPOINT_QUARANTINED, "fleet", f"{path.name}: {problem}"
        )
    return None


def run_experiments(
    experiment_ids,
    seed: int = 0,
    executor=None,
    workers: int | None = None,
    checkpoint_dir=None,
    journal=None,
    supervised: bool = False,
    retry_policy=None,
    task_deadline: float | None = None,
    chaos=None,
    events=None,
):
    """Run several experiments, optionally concurrently, with resume.

    Returns ``[(experiment_id, rendered_text), ...]`` in the order given,
    whatever the backend (see :mod:`repro.parallel`).  Each experiment is
    internally deterministic given ``seed``, so concurrent execution
    renders the same text serial execution would.

    With ``checkpoint_dir`` set, every finished cell is saved there
    (keyed by its :class:`ExperimentCellSpec`'s spec_key) and an
    interrupted batch resumes by replaying only the missing cells; an
    unusable saved cell (corrupt JSON or spec-key mismatch) is quarantined
    to ``*.corrupt`` with a warning, never trusted and never fatal.

    With ``journal`` set (a path or an open
    :class:`~repro.io.journal.RunJournal`), every cell start/finish is
    appended to the fsync'd journal *as it happens*: after a hard kill,
    calling this again with the same journal (what ``exp resume`` does)
    replays finished cells from the journal and runs only the rest —
    checkpoints are not required for recovery.  A journal that already
    holds a plan must match ``experiment_ids``/``seed``.

    With ``supervised=True`` (or ``executor="supervised"``), cells run
    under the supervised process pool: crashed/hung workers are respawned
    and cells retried per ``retry_policy``; a cell that exhausts its
    budget is quarantined — its slot in the roll-up carries
    :func:`quarantine_text` and the run still completes.  ``chaos``
    (a :class:`~repro.resilience.chaos.ChaosProfile`) injects
    deterministic worker faults for testing; ``events`` receives the
    supervision/journal/checkpoint event stream.
    """
    from repro.parallel.executor import executor_scope
    from repro.parallel.supervised import PoisonedTask, SupervisedProcessExecutor
    from repro.resilience.events import EventKind, EventLog

    cells = [ExperimentCellSpec(experiment_id, seed) for experiment_id in experiment_ids]
    log = events if events is not None else EventLog()

    book = None
    owns_journal = False
    if journal is not None:
        from repro.io.journal import RunJournal

        if isinstance(journal, RunJournal):
            book = journal
        else:
            book = RunJournal.open(journal)
            owns_journal = True
        if book.state.torn_tail:
            log.record(
                EventKind.JOURNAL_RECOVERED,
                "fleet",
                f"{book.path.name}: torn tail record dropped",
            )
        if book.is_new:
            book.plan([cell.experiment_id for cell in cells], seed)
        elif book.state.plan is not None:
            plan = book.state.plan
            if (
                plan["experiment_ids"] != [cell.experiment_id for cell in cells]
                or plan["seed"] != seed
            ):
                if owns_journal:
                    book.close()
                raise ConfigurationError(
                    f"journal {book.path} records a different run "
                    f"(ids={plan['experiment_ids']}, seed={plan['seed']}); "
                    "use a fresh journal file per batch"
                )

    try:
        finished: dict = {}
        pending: list = []
        if checkpoint_dir is not None:
            Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
        for index, cell in enumerate(cells):
            key = cell.spec_key()
            if book is not None and key in book.state.completed:
                finished[index] = (
                    cell.experiment_id,
                    book.state.completed[key]["rendered"],
                )
                log.record(
                    EventKind.JOURNAL_RECOVERED,
                    "fleet",
                    f"{cell.experiment_id} (seed {cell.seed}) replayed from journal",
                )
                continue
            if book is not None and key in book.state.poisoned:
                record = book.state.poisoned[key]
                finished[index] = (
                    cell.experiment_id,
                    quarantine_text(
                        cell.experiment_id,
                        record.get("attempts", 0),
                        record.get("reason", "loss"),
                        record.get("detail", ""),
                    ),
                )
                continue
            if checkpoint_dir is not None:
                rendered = _load_checkpoint(
                    _checkpoint_path(checkpoint_dir, cell), cell, log
                )
                if rendered is not None:
                    finished[index] = (cell.experiment_id, rendered)
                    if book is not None:
                        # Make the journal self-sufficient: a cell recovered
                        # from a checkpoint is recorded as finished too.
                        book.start(key, cell.experiment_id)
                        book.finish(key, cell.experiment_id, rendered)
                    continue
            pending.append(index)

        if pending:

            def on_done(position: int, outcome) -> None:
                # Runs in the parent, in completion order: the crash-safe
                # moment to persist each cell.
                index = pending[position]
                cell = cells[index]
                if isinstance(outcome, PoisonedTask):
                    if book is not None:
                        book.poison(
                            cell.spec_key(),
                            cell.experiment_id,
                            outcome.attempts,
                            outcome.reason,
                            outcome.detail,
                        )
                    return
                _, rendered = outcome
                if checkpoint_dir is not None:
                    from repro.io import save_experiment_cell

                    save_experiment_cell(
                        _checkpoint_path(checkpoint_dir, cell), cell, rendered
                    )
                if book is not None:
                    book.finish(cell.spec_key(), cell.experiment_id, rendered)

            if book is not None:
                for index in pending:
                    book.start(cells[index].spec_key(), cells[index].experiment_id)

            fleet = supervised or (
                isinstance(executor, str) and executor == "supervised"
            )
            if fleet and not hasattr(executor, "map_ordered"):
                scope = SupervisedProcessExecutor(
                    workers,
                    retry_policy=retry_policy,
                    task_deadline=task_deadline,
                    chaos=chaos,
                    seed=seed,
                    events=log,
                )
            else:
                scope = executor
            payloads = [cells[i].to_dict() for i in pending]
            with executor_scope(scope, workers) as ex:
                if hasattr(ex, "map_supervised"):
                    fresh = ex.map_supervised(_render_cell, payloads, progress=on_done)
                else:
                    fresh = ex.map_ordered(_render_cell, payloads, progress=on_done)
            for index, outcome in zip(pending, fresh):
                if isinstance(outcome, PoisonedTask):
                    cell = cells[index]
                    finished[index] = (
                        cell.experiment_id,
                        quarantine_text(
                            cell.experiment_id,
                            outcome.attempts,
                            outcome.reason,
                            outcome.detail,
                        ),
                    )
                else:
                    finished[index] = outcome
        return [finished[i] for i in range(len(cells))]
    finally:
        if owns_journal and book is not None:
            book.close()
