"""Experiment registry: ids -> runners (shared by CLI and benchmarks).

Each scheduled cell (one experiment id at one seed) is described by an
:class:`ExperimentCellSpec` — serializable, structurally hashable — which
is what crosses process boundaries and what checkpoint files are keyed by:
``run_experiments(..., checkpoint_dir=...)`` skips cells whose spec_key
already has a saved result and replays only the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.spec.schema import check_schema, spec_key, stamp


def _table3(key):
    def run(seed: int = 0):
        from repro.experiments.table3 import run_table3_entry

        return run_table3_entry(key, seed=seed)

    return run


def _fig(runner_name):
    def run(seed: int = 0):
        from repro.experiments import figures

        return getattr(figures, runner_name)(seed=seed)

    return run


def _ablation(runner_name):
    def run(seed: int = 0):
        from repro.experiments import ablations

        return getattr(ablations, runner_name)(seed=seed)

    return run


def _mlice(seed: int = 0):
    from repro.experiments.mlice_ablation import run_mlice_ablation

    return run_mlice_ablation(seed=seed)


def _seeds(seed: int = 0):
    from repro.experiments.stability import run_seed_stability

    return run_seed_stability(seed=seed)


def _finetune(seed: int = 0):
    from repro.experiments.finetune import run_finetune_comparison

    return run_finetune_comparison(seed=seed)


def _reuse(seed: int = 0):
    from repro.experiments.reuse_sweep import run_reuse_sweep

    return run_reuse_sweep(seed=seed)


#: id -> (description, runner).  Runners take ``seed`` and return an object
#: with a ``render()`` method.
EXPERIMENTS = {
    "t3-1": ("Table III: 1 deg, 128 nodes", _table3("1deg-128")),
    "t3-2": ("Table III: 1 deg, 2048 nodes", _table3("1deg-2048")),
    "t3-3": ("Table III: 1/8 deg, 8192 nodes, constrained ocean", _table3("8th-8192")),
    "t3-4": ("Table III: 1/8 deg, 32768 nodes, constrained ocean", _table3("8th-32768")),
    "t3-5": (
        "Table III: 1/8 deg, 8192 nodes, unconstrained ocean",
        _table3("8th-8192-unconstrained"),
    ),
    "t3-6": (
        "Table III: 1/8 deg, 32768 nodes, unconstrained ocean",
        _table3("8th-32768-unconstrained"),
    ),
    "fig2": ("Figure 2: component scaling curves (1 deg)", _fig("run_figure2")),
    "fig3": ("Figure 3: 1/8 deg manual vs HSLB", _fig("run_figure3")),
    "fig4": ("Figure 4: layout scaling (1 deg)", _fig("run_figure4")),
    "a-obj": ("Ablation: objective functions", _ablation("run_objective_ablation")),
    "a-sos": ("Ablation: SOS vs binary branching", _ablation("run_branching_ablation")),
    "a-solve": ("Ablation: solver time at 40,960 nodes", _ablation("run_solver_time")),
    "a-sync": ("Ablation: T_sync band", _ablation("run_tsync_ablation")),
    "a-fit": ("Ablation: benchmark point count", _ablation("run_fit_points_ablation")),
    "a-start": ("Ablation: multistart fitting", _ablation("run_multistart_ablation")),
    "a-mlice": (
        "Extension: ML-based sea-ice decomposition selection (ref. [10])",
        _mlice,
    ),
    "a-seeds": (
        "Extension: seed-replication of the Table III headline comparison",
        _seeds,
    ),
    "a-finetune": (
        "Extension: coupler/river fine-tuning (paper Sec. II deferred step)",
        _finetune,
    ),
    "a-reuse": (
        "Extension: cross-solve reuse family vs cold what-if sweep",
        _reuse,
    ),
}


def run_experiment(experiment_id: str, seed: int = 0):
    """Run one experiment by id; returns its data object (has .render())."""
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(seed=seed)


@dataclass(frozen=True)
class ExperimentCellSpec:
    """One schedulable experiment cell (id + seed) as serializable data.

    This is the payload shipped to process workers and the identity key of
    checkpoint files: :meth:`spec_key` hashes the canonical dict, so a
    saved cell is only reused for exactly the experiment and seed that
    produced it.
    """

    experiment_id: str
    seed: int = 0

    kind = "experiment_cell"

    def __post_init__(self):
        if self.experiment_id not in EXPERIMENTS:
            raise ConfigurationError(
                f"unknown experiment {self.experiment_id!r}; "
                f"known: {sorted(EXPERIMENTS)}"
            )

    def to_dict(self) -> dict:
        return stamp(
            {
                "kind": self.kind,
                "experiment_id": self.experiment_id,
                "seed": int(self.seed),
            },
            "spec",
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentCellSpec":
        check_schema(payload, "spec")
        if payload.get("kind") != cls.kind:
            raise ConfigurationError(
                f"expected an {cls.kind!r} spec, got kind={payload.get('kind')!r}"
            )
        return cls(
            experiment_id=payload["experiment_id"], seed=int(payload.get("seed", 0))
        )

    def spec_key(self) -> str:
        return spec_key(self.to_dict())

    def run(self):
        return run_experiment(self.experiment_id, seed=self.seed)


def _render_cell(payload: dict) -> tuple:
    """Process-pool worker: run one experiment cell and render it to text.

    Takes the cell's *spec payload* rather than a runner closure — closures
    do not pickle; pure data does, in any worker.  Returning the rendered
    text (not the data object) keeps the result picklable for every
    experiment type.
    """
    cell = ExperimentCellSpec.from_dict(payload)
    return cell.experiment_id, cell.run().render()


def _checkpoint_path(checkpoint_dir, cell: ExperimentCellSpec) -> Path:
    digest = cell.spec_key().removeprefix("spec:")[:16]
    return Path(checkpoint_dir) / f"{cell.experiment_id}-s{cell.seed}-{digest}.json"


def run_experiments(
    experiment_ids,
    seed: int = 0,
    executor=None,
    workers: int | None = None,
    checkpoint_dir=None,
):
    """Run several experiments, optionally concurrently, with resume.

    Returns ``[(experiment_id, rendered_text), ...]`` in the order given,
    whatever the backend (see :mod:`repro.parallel`).  Each experiment is
    internally deterministic given ``seed``, so concurrent execution
    renders the same text serial execution would.

    With ``checkpoint_dir`` set, every finished cell is saved there
    (keyed by its :class:`ExperimentCellSpec`'s spec_key) and an
    interrupted batch resumes by replaying only the missing cells; a saved
    cell whose recorded hash does not match its spec is treated as absent
    rather than trusted.
    """
    from repro.parallel.executor import executor_scope

    cells = [ExperimentCellSpec(experiment_id, seed) for experiment_id in experiment_ids]
    finished: dict = {}
    pending: list = []
    if checkpoint_dir is not None:
        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
        from repro.io import load_experiment_cell

        for index, cell in enumerate(cells):
            path = _checkpoint_path(checkpoint_dir, cell)
            if path.exists():
                try:
                    _, recorded_key, rendered = load_experiment_cell(path)
                except ConfigurationError:
                    pending.append(index)
                    continue
                if recorded_key == cell.spec_key():
                    finished[index] = (cell.experiment_id, rendered)
                    continue
            pending.append(index)
    else:
        pending = list(range(len(cells)))

    if pending:
        with executor_scope(executor, workers) as ex:
            fresh = ex.map_ordered(
                _render_cell, [cells[i].to_dict() for i in pending]
            )
        for index, result in zip(pending, fresh):
            finished[index] = result
            if checkpoint_dir is not None:
                from repro.io import save_experiment_cell

                save_experiment_cell(
                    _checkpoint_path(checkpoint_dir, cells[index]),
                    cells[index],
                    result[1],
                )
    return [finished[i] for i in range(len(cells))]
