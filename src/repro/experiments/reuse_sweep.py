"""A-REUSE: cross-solve reuse on a what-if node-count sweep.

Runs the Sec. IV-C optimal-job-size sweep twice with the LP/NLP solver —
cold (every size solved from scratch) and as one
:class:`~repro.reuse.SolveFamily` — and reports per-size node counts,
total wall time and the speedup, while verifying the reuse run reproduced
every cold makespan bit-for-bit (the engine's core guarantee).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cesm import ComponentId, make_case
from repro.analysis.whatif import solve_layout_points
from repro.hslb import HSLBPipeline
from repro.util.tables import TextTable

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


@dataclass
class ReuseSweep:
    """Cold vs reuse sweep comparison."""

    node_counts: tuple
    cold_nodes: dict             # N -> B&B nodes explored, cold
    warm_nodes: dict             # N -> B&B nodes explored, with reuse
    cold_seconds: float
    warm_seconds: float
    bit_identical: bool
    family_stats: dict

    @property
    def speedup(self) -> float:
        return self.cold_seconds / max(self.warm_seconds, 1e-12)

    def render(self) -> str:
        t = TextTable(
            ["total nodes", "B&B nodes (cold)", "B&B nodes (reuse)"],
            title="A-REUSE: warm solve family vs cold solves (1 deg, lpnlp)",
        )
        for n in self.node_counts:
            t.add_row([n, self.cold_nodes[n], self.warm_nodes[n]])
        lines = [
            t.render(),
            f"wall time: cold {self.cold_seconds:.3f} s, "
            f"reuse {self.warm_seconds:.3f} s ({self.speedup:.2f}x)",
            f"bit-identical makespans: {self.bit_identical}",
            "family: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.family_stats.items())
            ),
        ]
        return "\n".join(lines)


def run_reuse_sweep(
    seed: int = 0,
    node_counts=(128, 120, 112),
    resolution: str = "1deg",
) -> ReuseSweep:
    case = make_case(resolution, max(node_counts), seed=seed)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
    kwargs = dict(
        layout=case.layout,
        ocn_allowed=case.ocean_allowed(),
        atm_allowed=case.atm_allowed(),
        method="lpnlp",
    )

    t0 = time.perf_counter()
    cold = solve_layout_points(
        perf, bounds, node_counts, reuse=False, **kwargs
    )
    cold_seconds = time.perf_counter() - t0

    from repro.reuse import SolveFamily

    family = SolveFamily()
    t0 = time.perf_counter()
    warm = solve_layout_points(
        perf, bounds, node_counts, reuse=family, **kwargs
    )
    warm_seconds = time.perf_counter() - t0

    bit_identical = all(
        c.makespan.hex() == w.makespan.hex() and c.allocation == w.allocation
        for c, w in zip(cold, warm)
    )
    return ReuseSweep(
        node_counts=tuple(int(n) for n in node_counts),
        cold_nodes={p.total_nodes: p.solver_result.nodes for p in cold},
        warm_nodes={p.total_nodes: p.solver_result.nodes for p in warm},
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        bit_identical=bit_identical,
        family_stats=family.stats(),
    )
