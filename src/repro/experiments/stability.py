"""A-SEEDS: statistical stability of the headline comparison.

The paper reports single runs.  On a simulator we can afford replication:
this experiment repeats the 1-degree/128-node Table III comparison across
independent noise seeds and reports mean +/- spread for the manual total,
the HSLB totals, and the prediction error — evidence that the "HSLB ties
the expert" conclusion is not a draw of the noise."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import paper_manual_allocation
from repro.cesm import make_case
from repro.hslb import HSLBPipeline
from repro.util.tables import TextTable


@dataclass
class SeedStability:
    seeds: tuple
    manual_totals: np.ndarray
    hslb_predicted: np.ndarray
    hslb_actual: np.ndarray

    @property
    def mean_actual_gap(self) -> float:
        """Mean relative difference of HSLB-actual vs manual (negative =
        HSLB faster)."""
        return float(np.mean(self.hslb_actual / self.manual_totals - 1.0))

    @property
    def mean_prediction_error(self) -> float:
        return float(
            np.mean(np.abs(self.hslb_predicted - self.hslb_actual) / self.hslb_actual)
        )

    def render(self) -> str:
        t = TextTable(
            ["series", "mean, sec", "std, sec", "min", "max"],
            title=f"A-SEEDS: 1 deg / 128 nodes over {len(self.seeds)} noise seeds",
        )
        for label, arr in (
            ("manual (paper alloc)", self.manual_totals),
            ("HSLB predicted", self.hslb_predicted),
            ("HSLB actual", self.hslb_actual),
        ):
            t.add_row(
                [label, float(arr.mean()), float(arr.std()),
                 float(arr.min()), float(arr.max())]
            )
        return (
            t.render()
            + f"\nmean HSLB-vs-manual gap: {self.mean_actual_gap:+.2%}"
            + f"\nmean prediction error:  {self.mean_prediction_error:.2%}"
        )


def run_seed_stability(
    seed: int = 0, n_seeds: int = 8, resolution: str = "1deg", nodes: int = 128
) -> SeedStability:
    """Replicate the Table III comparison across ``n_seeds`` seeds.

    (``seed`` offsets the seed range so the registry's seed knob still
    selects disjoint replications.)
    """
    seeds = tuple(seed * 1000 + k for k in range(n_seeds))
    manual_alloc = paper_manual_allocation(resolution, nodes)
    manual, predicted, actual = [], [], []
    for s in seeds:
        pipeline = HSLBPipeline(make_case(resolution, nodes, seed=s))
        result = pipeline.run()
        manual.append(pipeline.simulator.run_coupled(manual_alloc).total)
        predicted.append(result.predicted_total)
        actual.append(result.actual_total)
    return SeedStability(
        seeds=seeds,
        manual_totals=np.asarray(manual),
        hslb_predicted=np.asarray(predicted),
        hslb_actual=np.asarray(actual),
    )
