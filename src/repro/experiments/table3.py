"""Table III reproduction (experiments T3-1 .. T3-6).

For each published block this module runs the full pipeline on the
calibrated simulator:

1. the *manual* column re-executes the paper's published expert allocation,
2. the *HSLB* columns run gather -> fit -> solve -> execute,

then renders both our block and the paper's side by side and computes the
comparison metrics the benchmarks assert on (who wins, by how much, and
whether HSLB's predicted total tracks its actual total).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm import make_case
from repro.cesm.components import ComponentId
from repro.exceptions import ConfigurationError
from repro.hslb import HSLBPipeline
from repro.hslb.report import format_table3_block as _block
from repro.experiments.paperdata import TABLE3, PaperTable3Entry

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


@dataclass
class Table3Reproduction:
    """Our measurements for one Table III block, next to the paper's."""

    paper: PaperTable3Entry
    manual_times: dict | None     # our simulator at the paper's manual alloc
    manual_total: float | None
    hslb_nodes: dict
    hslb_predicted: dict
    hslb_predicted_total: float
    hslb_actual: dict
    hslb_actual_total: float
    fit_r_squared: dict

    # -- comparison metrics -------------------------------------------------

    @property
    def hslb_beats_or_ties_manual(self) -> bool:
        if self.manual_total is None:
            return True
        return self.hslb_actual_total <= self.manual_total * 1.05

    @property
    def actual_improvement_over_manual(self) -> float:
        """Relative improvement of HSLB-actual over the manual run (can be
        negative when manual was already optimal)."""
        if self.manual_total is None:
            raise ConfigurationError("entry has no manual column")
        return 1.0 - self.hslb_actual_total / self.manual_total

    @property
    def prediction_error(self) -> float:
        return abs(self.hslb_predicted_total - self.hslb_actual_total) / (
            self.hslb_actual_total
        )

    def render(self) -> str:
        title = (
            f"Table III block {self.paper.key} "
            f"({self.paper.resolution}, {self.paper.total_nodes} nodes"
            + (", unconstrained ocean)" if self.paper.unconstrained_ocean else ")")
        )
        ours = _block(
            title=f"{title} - THIS REPRODUCTION",
            manual=self.paper.manual_nodes,
            manual_times=self.manual_times,
            predicted_nodes=self.hslb_nodes,
            predicted_times=self.hslb_predicted,
            actual_times=self.hslb_actual,
            manual_total=self.manual_total,
            predicted_total=self.hslb_predicted_total,
            actual_total=self.hslb_actual_total,
        )
        paper = _block(
            title=f"{title} - PAPER",
            manual=self.paper.manual_nodes,
            manual_times=self.paper.manual_times,
            predicted_nodes=self.paper.hslb_nodes,
            predicted_times=self.paper.hslb_predicted,
            actual_times=self.paper.hslb_actual,
            manual_total=self.paper.manual_total,
            predicted_total=self.paper.hslb_predicted_total,
            actual_total=self.paper.hslb_actual_total,
        )
        return ours + "\n\n" + paper


def run_table3_entry(key: str, seed: int = 0, points: int = 5) -> Table3Reproduction:
    """Reproduce one Table III block (see :data:`TABLE3` for keys)."""
    try:
        paper = TABLE3[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown Table III entry {key!r}; known: {sorted(TABLE3)}"
        ) from None

    case = make_case(
        paper.resolution,
        paper.total_nodes,
        unconstrained_ocean=paper.unconstrained_ocean,
        seed=seed,
    )
    pipeline = HSLBPipeline(case, points=points)
    result = pipeline.run()

    manual_times = None
    manual_total = None
    if paper.manual_nodes is not None:
        manual_run = pipeline.simulator.run_coupled(paper.manual_nodes)
        manual_times = dict(manual_run.times)
        manual_total = manual_run.total

    return Table3Reproduction(
        paper=paper,
        manual_times=manual_times,
        manual_total=manual_total,
        hslb_nodes=result.allocation,
        hslb_predicted=result.solve.predicted_times,
        hslb_predicted_total=result.predicted_total,
        hslb_actual=dict(result.actual.times),
        hslb_actual_total=result.actual_total,
        fit_r_squared=result.fit_r_squared(),
    )


def run_full_table3(seed: int = 0) -> dict:
    """All six blocks; returns ``{key: Table3Reproduction}``."""
    return {key: run_table3_entry(key, seed=seed) for key in TABLE3}
