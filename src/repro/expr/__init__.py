"""Algebraic expression trees with symbolic differentiation.

This subpackage is the computational core of the modeling layer
(:mod:`repro.model`): constraints and objectives are expression trees over
named variables.  It provides

- node types (:mod:`repro.expr.node`): constants, variable references and the
  smooth arithmetic operators ``+ - * / **`` plus ``neg``,
- evaluation (scalar and numpy-vectorized) via :meth:`Expr.evaluate`,
- symbolic differentiation (:mod:`repro.expr.diff`), used by the NLP barrier
  solver (gradients + Hessians) and by outer-approximation cut generation,
- simplification / constant folding (:mod:`repro.expr.simplify`),
- linearity and linear-coefficient extraction (:mod:`repro.expr.linear`),
- first-order linearization around a point (:mod:`repro.expr.linearize`),
  i.e. the paper's equation (4) cut ``∇f(xk)ᵀ(x − xk) + f(xk) ≤ 0``,
- rule-based convexity analysis (:mod:`repro.expr.convexity`) specialized to
  the performance-model family ``a/n + b·n^c + d``.
"""

from repro.expr.node import (
    Expr,
    Const,
    VarRef,
    Add,
    Mul,
    Div,
    Pow,
    Neg,
    as_expr,
    var,
    const,
)
from repro.expr.diff import differentiate, gradient, hessian
from repro.expr.simplify import simplify
from repro.expr.linear import is_linear, linear_coefficients, LinearForm
from repro.expr.linearize import linearize_at, TangentCut
from repro.expr.convexity import Curvature, curvature
from repro.expr.substitute import substitute

__all__ = [
    "Expr",
    "Const",
    "VarRef",
    "Add",
    "Mul",
    "Div",
    "Pow",
    "Neg",
    "as_expr",
    "var",
    "const",
    "differentiate",
    "gradient",
    "hessian",
    "simplify",
    "is_linear",
    "linear_coefficients",
    "LinearForm",
    "linearize_at",
    "TangentCut",
    "Curvature",
    "curvature",
    "substitute",
]
