"""Compile expression trees to fast callables.

Tree-walking evaluation pays Python dispatch and dict-lookup costs at every
node on every call; the barrier solver evaluates the same gradients and
Hessian entries thousands of times per solve.  :func:`compile_expr` emits
the expression as a single Python source expression over an input vector
``x`` (indexed by a fixed variable ordering) and ``eval``-compiles it once —
after which each evaluation is one bytecode-compiled expression.

The generated source draws only from the expression grammar this package
defines (numbers, ``x[i]``, ``+ - * / **`` and parentheses), and the
compilation namespace is emptied of builtins, so there is no injection
surface as long as variable *indices* — never names — are interpolated.
"""

from __future__ import annotations

from repro.exceptions import ExpressionError
from repro.expr.node import Add, Const, Div, Expr, Mul, Neg, Pow, VarRef

__all__ = ["compile_expr", "expr_source"]


def expr_source(expr: Expr, index: dict) -> str:
    """Python source for ``expr`` over vector ``x`` with ``index[name] -> i``."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, VarRef):
        try:
            return f"x[{int(index[expr.name])}]"
        except KeyError:
            raise ExpressionError(
                f"variable {expr.name!r} missing from the compilation index"
            ) from None
    if isinstance(expr, Add):
        return "(" + " + ".join(expr_source(t, index) for t in expr.terms) + ")"
    if isinstance(expr, Neg):
        return f"(-{expr_source(expr.operand, index)})"
    if isinstance(expr, Mul):
        return f"({expr_source(expr.left, index)} * {expr_source(expr.right, index)})"
    if isinstance(expr, Div):
        return (
            f"({expr_source(expr.numerator, index)} / "
            f"{expr_source(expr.denominator, index)})"
        )
    if isinstance(expr, Pow):
        return (
            f"({expr_source(expr.base, index)} ** "
            f"{expr_source(expr.exponent, index)})"
        )
    raise ExpressionError(f"cannot compile node type {type(expr).__name__}")


def compile_expr(expr: Expr, index: dict):
    """A callable ``f(x) -> float`` equivalent to ``expr.evaluate``.

    ``x`` may be any indexable of numbers (list, numpy vector); numpy
    arrays as *entries* broadcast exactly as tree evaluation does.
    """
    source = f"lambda x: {expr_source(expr, index)}"
    return eval(source, {"__builtins__": {}}, {})  # noqa: S307 - closed grammar
