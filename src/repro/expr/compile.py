"""Compile expression trees to fast callables.

Tree-walking evaluation pays Python dispatch and dict-lookup costs at every
node on every call; the barrier solver evaluates the same gradients and
Hessian entries thousands of times per solve.  :func:`compile_expr` emits
the expression as Python source over an input vector ``x`` (indexed by a
fixed variable ordering) and compiles it once — after which each evaluation
is one bytecode-compiled expression.

Two emission strategies share one grammar:

- :func:`expr_source` renders a *single* Python expression.  It walks the
  tree iteratively (no recursion limit) and flattens left-leaning ``Add``/
  ``Mul`` chains — the shape produced by ``expr = expr + term`` loops — into
  n-ary operator chains, which Python evaluates in exactly the tree's
  left-associative order (bit-identical results).  Shapes that cannot be
  flattened below CPython's own parser/compiler limits raise a clear
  :class:`~repro.exceptions.ExpressionError` carrying the offending depth.
- :func:`cse_source` renders an *expression set* as a sequence of
  assignment statements with common-subexpression elimination: every
  distinct subtree (by :meth:`~repro.expr.node.Expr.struct_key`) is
  computed exactly once into a temporary.  Statements nest only one level,
  so arbitrarily deep and wide trees compile, and the same source evaluates
  a scalar point ``x`` (shape ``(n,)``) or a batch ``X`` (shape ``(m, n)``)
  when loads use ``X[..., i]`` indexing.

The generated source draws only from the expression grammar this package
defines (numbers, vector loads, ``+ - * / **`` and parentheses), and the
compilation namespace is emptied of builtins, so there is no injection
surface as long as variable *indices* — never names — are interpolated.

Constants are always emitted as *floats* (``repr(float(v))``): a bare
integer literal like ``2`` would let ``x ** 2`` stay integer-typed for
integer inputs, silently diverging from tree evaluation's float dtype.
"""

from __future__ import annotations

from repro.exceptions import ExpressionError
from repro.expr.node import Add, Const, Div, Expr, Mul, Neg, Pow, VarRef

__all__ = [
    "compile_expr",
    "expr_source",
    "cse_source",
    "compile_expr_set",
    "compile_expr_single",
]

#: CPython's parser rejects ~200 nested parentheses; stay well below.
_MAX_NESTING = 150
#: CPython's compiler recurses per chained binary operator (~3000 limit);
#: chains longer than this are emitted (or rejected) accordingly.
_MAX_CHAIN = 1200


class _SourceTooDeep(ExpressionError):
    """Single-expression emission would exceed CPython's compile limits."""


def _const_source(value) -> str:
    """Float literal source; negatives parenthesized so they are safe as
    ``Pow`` bases (``-2.0 ** x`` parses as ``-(2.0 ** x)``)."""
    text = repr(float(value))
    return f"({text})" if text.startswith("-") else text


def _flat_operands(node: Expr) -> tuple:
    """Operands of an ``Add``/``Mul`` with first-position chains of the same
    type expanded.  Only the *first* operand is expanded: left-associativity
    makes the flat chain evaluate in exactly the tree's order."""
    cls = type(node)
    tails = []
    first: Expr = node
    while isinstance(first, cls):
        terms = first.terms if cls is Add else (first.left, first.right)
        tails.append(terms[1:])
        first = terms[0]
    ops = [first]
    for tail in reversed(tails):
        ops.extend(tail)
    return tuple(ops)


def _operands(node: Expr) -> tuple:
    if isinstance(node, (Add, Mul)):
        return _flat_operands(node)
    return node.children()


def expr_source(expr: Expr, index: dict) -> str:
    """Python source for ``expr`` over vector ``x`` with ``index[name] -> i``."""
    memo: dict = {}  # id(node) -> (source, paren_depth)
    stack = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in memo:
            continue
        if not ready:
            stack.append((node, True))
            for child in _operands(node):
                if id(child) not in memo:
                    stack.append((child, False))
            continue
        memo[id(node)] = _emit_one(node, memo, index)
    return memo[id(expr)][0]


def _emit_one(node: Expr, memo: dict, index: dict):
    if isinstance(node, Const):
        return _const_source(node.value), 0
    if isinstance(node, VarRef):
        try:
            return f"x[{int(index[node.name])}]", 0
        except KeyError:
            raise ExpressionError(
                f"variable {node.name!r} missing from the compilation index"
            ) from None
    ops = _operands(node)
    parts = [memo[id(c)] for c in ops]
    depth = 1 + max(d for _, d in parts)
    if depth > _MAX_NESTING:
        raise _SourceTooDeep(
            f"expression nests {depth} levels deep; single-expression "
            f"compilation is limited to {_MAX_NESTING} (use the statement "
            "emitter: compile_expr falls back to it automatically)"
        )
    if len(parts) > _MAX_CHAIN:
        raise _SourceTooDeep(
            f"operator chain of {len(parts)} terms exceeds the "
            f"{_MAX_CHAIN}-term single-expression limit (use the statement "
            "emitter: compile_expr falls back to it automatically)"
        )
    srcs = [s for s, _ in parts]
    if isinstance(node, Add):
        return "(" + " + ".join(srcs) + ")", depth
    if isinstance(node, Mul):
        return "(" + " * ".join(srcs) + ")", depth
    if isinstance(node, Neg):
        return f"(-{srcs[0]})", depth
    if isinstance(node, Div):
        return f"({srcs[0]} / {srcs[1]})", depth
    if isinstance(node, Pow):
        return f"({srcs[0]} ** {srcs[1]})", depth
    raise ExpressionError(f"cannot compile node type {type(node).__name__}")


# -- CSE statement emission ----------------------------------------------------


def cse_source(exprs, index: dict, load: str = "x[{}]"):
    """Assignment statements evaluating every expression in ``exprs``.

    Returns ``(lines, outputs)``: after executing ``lines`` top to bottom,
    ``outputs[i]`` is the atom (temporary name or float literal) holding the
    value of ``exprs[i]``.  Subtrees that are structurally equal — by
    :meth:`~repro.expr.node.Expr.struct_key` — are computed exactly once,
    *across* the whole expression set, so gradients and Hessian entries
    sharing structure with the objective cost one evaluation.

    ``load`` formats a variable load from the input vector/batch; the
    default ``"x[{}]"`` serves scalar points, ``"X[..., {}]"`` serves
    batches (the emitted arithmetic is shape-agnostic).
    """
    atoms: dict = {}      # struct_key -> atom string
    lines: list = []
    counter = [0]

    def fresh() -> str:
        name = f"v{counter[0]}"
        counter[0] += 1
        return name

    for expr in exprs:
        stack = [(expr, False)]
        while stack:
            node, ready = stack.pop()
            key = node.struct_key()
            if key in atoms:
                continue
            if not ready:
                stack.append((node, True))
                for child in node.children():
                    if child.struct_key() not in atoms:
                        stack.append((child, False))
                continue
            atoms[key] = _emit_statement(node, atoms, index, lines, fresh, load)
    return lines, [atoms[e.struct_key()] for e in exprs]


def _emit_statement(node, atoms, index, lines, fresh, load):
    if isinstance(node, Const):
        return _const_source(node.value)  # inline literal, no temp
    if isinstance(node, VarRef):
        try:
            column = int(index[node.name])
        except KeyError:
            raise ExpressionError(
                f"variable {node.name!r} missing from the compilation index"
            ) from None
        name = fresh()
        lines.append(f"{name} = {load.format(column)}")
        return name
    child_atoms = [atoms[c.struct_key()] for c in node.children()]
    name = fresh()
    if isinstance(node, Add):
        # Chunk very wide sums: one chained expression per ~_MAX_CHAIN terms
        # keeps each statement inside CPython's compiler limits while
        # preserving left-associative accumulation order bit for bit.
        first, rest = child_atoms[0], child_atoms[1:]
        if not rest:
            lines.append(f"{name} = {first}")
        acc = first
        for start in range(0, len(rest), _MAX_CHAIN):
            chunk = rest[start:start + _MAX_CHAIN]
            lines.append(f"{name} = {acc} + " + " + ".join(chunk))
            acc = name
    elif isinstance(node, Mul):
        lines.append(f"{name} = {child_atoms[0]} * {child_atoms[1]}")
    elif isinstance(node, Neg):
        lines.append(f"{name} = -{child_atoms[0]}")
    elif isinstance(node, Div):
        lines.append(f"{name} = {child_atoms[0]} / {child_atoms[1]}")
    elif isinstance(node, Pow):
        lines.append(f"{name} = {child_atoms[0]} ** {child_atoms[1]}")
    else:
        raise ExpressionError(f"cannot compile node type {type(node).__name__}")
    return name


def compile_expr_set(exprs, index: dict, load: str = "x[{}]", arg: str = "x"):
    """One callable evaluating every expression in ``exprs`` in a single pass.

    The callable takes the input vector (or batch, with the appropriate
    ``load`` format) and returns a tuple with one entry per expression;
    entries for fully-constant expressions come back as plain floats.
    """
    lines, outputs = cse_source(exprs, index, load=load)
    body = lines + ["return (" + ", ".join(outputs) + ("," if len(outputs) == 1 else "") + ")"]
    source = f"def _compiled({arg}):\n    " + "\n    ".join(body)
    namespace: dict = {"__builtins__": {}}
    exec(source, namespace)  # noqa: S102 - closed grammar, empty builtins
    fn = namespace["_compiled"]
    fn.__source__ = source
    return fn


def compile_expr_single(expr: Expr, index: dict, load: str = "x[{}]", arg: str = "x"):
    """Like :func:`compile_expr_set` for one expression, returning its value
    directly instead of a 1-tuple (no unpacking layer on the hot path)."""
    lines, outputs = cse_source([expr], index, load=load)
    body = lines + [f"return {outputs[0]}"]
    source = f"def _compiled({arg}):\n    " + "\n    ".join(body)
    namespace: dict = {"__builtins__": {}}
    exec(source, namespace)  # noqa: S102 - closed grammar, empty builtins
    fn = namespace["_compiled"]
    fn.__source__ = source
    return fn


def compile_expr(expr: Expr, index: dict):
    """A callable ``f(x) -> float`` equivalent to ``expr.evaluate``.

    ``x`` may be any indexable of numbers (list, numpy vector); numpy
    arrays as *entries* broadcast exactly as tree evaluation does.  Trees
    too deep or too wide for a single Python expression are compiled
    through the statement emitter instead (same semantics, no size limit).
    """
    try:
        source = f"lambda x: {expr_source(expr, index)}"
    except _SourceTooDeep:
        return compile_expr_single(expr, index)
    return eval(source, {"__builtins__": {}}, {})  # noqa: S307 - closed grammar
