"""Rule-based convexity analysis.

The LP/NLP branch-and-bound algorithm is globally optimal only when every
nonlinear constraint function is convex (paper Sec. III-E: "The positivity of
the coefficients a_j, b_j, d_j implies that the nonlinear functions are
convex, which ensures that MINOTAUR finds a global solution").  This module
implements a conservative disciplined-convex-programming-style calculus that
certifies exactly that family:

- constants and variables are affine,
- nonnegative combinations preserve curvature; negation flips it,
- ``k / x`` with ``k >= 0`` is convex on ``x > 0``,
- ``k * x**p`` with ``k >= 0`` is convex on ``x > 0`` for ``p >= 1`` or
  ``p <= 0``, concave for ``0 <= p <= 1``.

Verdicts are *conservative*: :attr:`Curvature.UNKNOWN` means "could not
certify", not "nonconvex".  Domain assumption throughout: all variables are
positive (node counts are >= 1), which the model layer enforces via bounds.
"""

from __future__ import annotations

import enum

from repro.expr.node import Add, Const, Div, Expr, Mul, Neg, Pow, VarRef
from repro.expr.simplify import simplify

__all__ = ["Curvature", "curvature"]


class Curvature(enum.Enum):
    """Curvature verdict for an expression over the positive orthant."""

    CONSTANT = "constant"
    AFFINE = "affine"
    CONVEX = "convex"
    CONCAVE = "concave"
    UNKNOWN = "unknown"

    def is_convex(self) -> bool:
        return self in (Curvature.CONSTANT, Curvature.AFFINE, Curvature.CONVEX)

    def is_concave(self) -> bool:
        return self in (Curvature.CONSTANT, Curvature.AFFINE, Curvature.CONCAVE)

    def negated(self) -> "Curvature":
        if self is Curvature.CONVEX:
            return Curvature.CONCAVE
        if self is Curvature.CONCAVE:
            return Curvature.CONVEX
        return self


def curvature(expr: Expr) -> Curvature:
    """Certify the curvature of ``expr`` assuming all variables are > 0."""
    return _curv(simplify(expr))


def _combine_sum(curvatures) -> Curvature:
    kinds = set(curvatures)
    if Curvature.UNKNOWN in kinds:
        return Curvature.UNKNOWN
    if Curvature.CONVEX in kinds and Curvature.CONCAVE in kinds:
        return Curvature.UNKNOWN  # convex + concave: indeterminate
    if Curvature.CONVEX in kinds:
        return Curvature.CONVEX
    if Curvature.CONCAVE in kinds:
        return Curvature.CONCAVE
    if Curvature.AFFINE in kinds:
        return Curvature.AFFINE
    return Curvature.CONSTANT


def _curv(expr: Expr) -> Curvature:
    if isinstance(expr, Const):
        return Curvature.CONSTANT
    if isinstance(expr, VarRef):
        return Curvature.AFFINE
    if isinstance(expr, Neg):
        return _curv(expr.operand).negated()
    if isinstance(expr, Add):
        return _combine_sum([_curv(t) for t in expr.terms])
    if isinstance(expr, Mul):
        left, right = expr.left, expr.right
        if isinstance(left, Const):
            scale, body = left.value, right
        elif isinstance(right, Const):
            scale, body = right.value, left
        else:
            return Curvature.UNKNOWN
        inner = _curv(body)
        if scale >= 0:
            return inner
        return inner.negated()
    if isinstance(expr, Div):
        numer, denom = expr.numerator, expr.denominator
        if isinstance(denom, Const):
            if denom.value == 0.0:
                return Curvature.UNKNOWN
            return _curv(Mul(Const(1.0 / denom.value), numer))
        # k / x  (k const, x a bare variable): convex on x > 0 for k >= 0.
        if isinstance(numer, Const) and isinstance(denom, VarRef):
            return Curvature.CONVEX if numer.value >= 0 else Curvature.CONCAVE
        # k / x**p with p > 0 behaves like k * x**(-p): convex for k >= 0.
        if (
            isinstance(numer, Const)
            and isinstance(denom, Pow)
            and isinstance(denom.base, VarRef)
            and isinstance(denom.exponent, Const)
            and denom.exponent.value > 0
        ):
            return Curvature.CONVEX if numer.value >= 0 else Curvature.CONCAVE
        return Curvature.UNKNOWN
    if isinstance(expr, Pow):
        base, expo = expr.base, expr.exponent
        if isinstance(base, VarRef) and isinstance(expo, Const):
            p = expo.value
            if p >= 1.0 or p <= 0.0:
                return Curvature.CONVEX
            return Curvature.CONCAVE
        # Affine base to a constant power >= 1 is convex where the base >= 0;
        # we cannot certify sign of a general affine base, so be conservative.
        return Curvature.UNKNOWN
    return Curvature.UNKNOWN
