"""Symbolic differentiation of expression trees.

The rules cover exactly the node family in :mod:`repro.expr.node`.  For
``Pow`` we distinguish the common case of a *constant* exponent (power rule),
which covers the performance-model family ``a/n + b·n^c + d``; general
``f(x)**g(x)`` would require logarithms of possibly-negative bases and is
rejected with :class:`~repro.exceptions.ExpressionError`, except for the
constant-base case ``k**g(x)`` with k > 0.

Derivatives are simplified on the way out so repeated differentiation (for
Hessians) does not blow up the tree.
"""

from __future__ import annotations

import math

from repro.exceptions import ExpressionError
from repro.expr.node import Add, Const, Div, Expr, Mul, Neg, Pow, VarRef
from repro.expr.simplify import simplify

__all__ = ["differentiate", "gradient", "hessian"]

_ZERO = Const(0.0)
_ONE = Const(1.0)


def differentiate(expr: Expr, name: str) -> Expr:
    """Return the simplified partial derivative ``d expr / d name``."""
    return simplify(_diff(expr, name))


def gradient(expr: Expr, names: list) -> dict:
    """Partial derivatives of ``expr`` w.r.t. each name, as ``{name: Expr}``."""
    return {n: differentiate(expr, n) for n in names}


def hessian(expr: Expr, names: list) -> dict:
    """Second partials as ``{(ni, nj): Expr}`` for the upper triangle.

    Symmetric entries are stored once with ``ni <= nj`` in list order; the
    NLP solver mirrors them when assembling the dense Hessian.
    """
    grads = gradient(expr, names)
    out = {}
    for i, ni in enumerate(names):
        for nj in names[i:]:
            out[(ni, nj)] = differentiate(grads[ni], nj)
    return out


def _diff(expr: Expr, name: str) -> Expr:
    if isinstance(expr, Const):
        return _ZERO
    if isinstance(expr, VarRef):
        return _ONE if expr.name == name else _ZERO
    if isinstance(expr, Add):
        return Add(tuple(_diff(t, name) for t in expr.terms))
    if isinstance(expr, Neg):
        return Neg(_diff(expr.operand, name))
    if isinstance(expr, Mul):
        # Product rule.
        return Add(
            (
                Mul(_diff(expr.left, name), expr.right),
                Mul(expr.left, _diff(expr.right, name)),
            )
        )
    if isinstance(expr, Div):
        # Quotient rule: (u'v - uv') / v^2.
        u, v = expr.numerator, expr.denominator
        numer = Add((Mul(_diff(u, name), v), Neg(Mul(u, _diff(v, name)))))
        return Div(numer, Mul(v, v))
    if isinstance(expr, Pow):
        return _diff_pow(expr, name)
    raise ExpressionError(f"cannot differentiate node type {type(expr).__name__}")


def _diff_pow(expr: Pow, name: str) -> Expr:
    base, expo = expr.base, expr.exponent
    expo_s = simplify(expo)
    if isinstance(expo_s, Const):
        # Power rule: d/dx f^k = k * f^(k-1) * f'.
        k = expo_s.value
        if k == 0.0:
            return _ZERO
        inner = _diff(base, name)
        return Mul(Mul(Const(k), Pow(base, Const(k - 1.0))), inner)
    base_s = simplify(base)
    if isinstance(base_s, Const):
        # d/dx k^g = k^g * ln(k) * g'   (requires k > 0).
        k = base_s.value
        if k <= 0.0:
            raise ExpressionError(
                "cannot differentiate k**g(x) with non-positive constant base"
            )
        return Mul(Mul(expr, Const(math.log(k))), _diff(expo, name))
    raise ExpressionError(
        "cannot differentiate f(x)**g(x) with both base and exponent variable"
    )
