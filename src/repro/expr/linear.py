"""Linearity detection and linear-coefficient extraction.

The LP/NLP branch-and-bound solver separates a model's constraints into a
*linear* part (handed to the simplex LP solver directly) and a *nonlinear*
part (handled via outer-approximation cuts).  This module decides which side
each constraint falls on and extracts ``coeffs · x + constant`` for the
linear ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ExpressionError
from repro.expr.node import Add, Const, Div, Expr, Mul, Neg, Pow, VarRef
from repro.expr.simplify import simplify

__all__ = ["LinearForm", "is_linear", "linear_coefficients"]


@dataclass
class LinearForm:
    """An affine function ``sum_j coeffs[name_j] * x_j + constant``."""

    coeffs: dict = field(default_factory=dict)
    constant: float = 0.0

    def scaled(self, factor: float) -> "LinearForm":
        return LinearForm(
            {k: v * factor for k, v in self.coeffs.items()}, self.constant * factor
        )

    def plus(self, other: "LinearForm") -> "LinearForm":
        coeffs = dict(self.coeffs)
        for k, v in other.coeffs.items():
            coeffs[k] = coeffs.get(k, 0.0) + v
        return LinearForm(coeffs, self.constant + other.constant)

    def evaluate(self, env: dict) -> float:
        return self.constant + sum(c * env[k] for k, c in self.coeffs.items())


def is_linear(expr: Expr) -> bool:
    """True iff ``expr`` is affine in its variables."""
    try:
        linear_coefficients(expr)
        return True
    except ExpressionError:
        return False


def linear_coefficients(expr: Expr) -> LinearForm:
    """Extract the affine form of ``expr`` or raise :class:`ExpressionError`.

    Handles sums, negation, products/quotients with one constant side, and
    powers that fold to constants.  Anything genuinely nonlinear (a product
    of two variable subtrees, a variable exponent or denominator...) raises.
    """
    return _extract(simplify(expr))


def _extract(expr: Expr) -> LinearForm:
    if isinstance(expr, Const):
        return LinearForm({}, expr.value)
    if isinstance(expr, VarRef):
        return LinearForm({expr.name: 1.0}, 0.0)
    if isinstance(expr, Neg):
        return _extract(expr.operand).scaled(-1.0)
    if isinstance(expr, Add):
        total = LinearForm()
        for t in expr.terms:
            total = total.plus(_extract(t))
        return total
    if isinstance(expr, Mul):
        left, right = expr.left, expr.right
        if isinstance(left, Const):
            return _extract(right).scaled(left.value)
        if isinstance(right, Const):
            return _extract(left).scaled(right.value)
        raise ExpressionError("product of two non-constant subtrees is nonlinear")
    if isinstance(expr, Div):
        if isinstance(expr.denominator, Const):
            if expr.denominator.value == 0.0:
                raise ExpressionError("division by constant zero")
            return _extract(expr.numerator).scaled(1.0 / expr.denominator.value)
        raise ExpressionError("variable denominator is nonlinear")
    if isinstance(expr, Pow):
        # simplify() already folded x**1 and constants; any remaining Pow
        # with variables is nonlinear.
        if not expr.variables():
            return LinearForm({}, float(expr.evaluate({})))
        raise ExpressionError("power of a variable is nonlinear")
    raise ExpressionError(f"unsupported node type {type(expr).__name__}")
