"""First-order linearization of nonlinear expressions (outer approximation).

Given a smooth constraint ``f(x) <= 0`` and a point ``xk``, the paper's
equation (4) relaxes it to the supporting hyperplane

    f(xk) + grad f(xk) . (x - xk) <= 0

which is valid (an *outer* approximation) whenever ``f`` is convex.  The
LP/NLP branch-and-bound solver adds these :class:`TangentCut` rows to its
mixed-integer linear relaxation lazily, only for constraints the current LP
solution violates (Sec. III-E of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.expr.diff import gradient
from repro.expr.node import Expr
from repro.util.validation import check_finite_array

__all__ = ["TangentCut", "linearize_at"]


@dataclass(frozen=True)
class TangentCut:
    """An affine inequality ``sum coeffs[name]*x_name <= rhs``."""

    coeffs: dict
    rhs: float

    def violation(self, env: dict) -> float:
        """Positive amount by which ``env`` violates the cut (0 if satisfied)."""
        lhs = sum(c * env[k] for k, c in self.coeffs.items())
        return max(0.0, lhs - self.rhs)


def linearize_at(expr: Expr, point: dict) -> TangentCut:
    """Linearize the constraint ``expr <= 0`` around ``point``.

    Returns the tangent cut ``grad . x <= grad . xk - f(xk)``.  The caller is
    responsible for only using this on convex ``expr`` (for concave ``expr``
    the same formula yields an *inner* approximation and would cut off
    feasible points).
    """
    names = sorted(expr.variables())
    try:
        f0 = float(expr.evaluate(point))
        grads = gradient(expr, names)
        gvals = np.array([float(grads[n].evaluate(point)) for n in names])
    except ArithmeticError as exc:
        raise ValueError(f"cannot linearize at {point!r}: {exc}") from exc
    check_finite_array(gvals, "gradient at linearization point")
    if not np.isfinite(f0):
        raise ValueError("expression value at linearization point is not finite")
    xk = np.array([float(point[n]) for n in names])
    rhs = float(gvals @ xk - f0)
    coeffs = {n: float(g) for n, g in zip(names, gvals) if g != 0.0}
    return TangentCut(coeffs=coeffs, rhs=rhs)
