"""Expression-tree node types.

Expressions are immutable trees over *named* variables.  ``VarRef("n_atm")``
stands for whatever value the evaluation environment binds to ``"n_atm"``;
the model layer owns the mapping from names to :class:`~repro.model.Variable`
objects.  Python operators are overloaded so models read like AMPL:

>>> n = var("n")
>>> t = 100.0 / n + 0.01 * n ** 1.2 + 5.0
>>> round(t.evaluate({"n": 10.0}), 4)
15.1585

Evaluation accepts numpy arrays as bindings and broadcasts, which the fitting
and analysis layers use to evaluate scaling curves over whole node grids at
once (per the vectorize-don't-loop guidance for numerical Python).
"""

from __future__ import annotations

import hashlib
import numbers
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExpressionError

__all__ = [
    "Expr",
    "Const",
    "VarRef",
    "Add",
    "Mul",
    "Div",
    "Pow",
    "Neg",
    "as_expr",
    "var",
    "const",
]


def as_expr(value) -> "Expr":
    """Coerce a number or Expr to an Expr (numbers become :class:`Const`)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise ExpressionError("booleans are not valid expression constants")
    if isinstance(value, numbers.Real):
        return Const(float(value))
    raise ExpressionError(
        f"cannot convert {type(value).__name__} to an expression"
    )


def var(name: str) -> "VarRef":
    """Shorthand for :class:`VarRef`."""
    return VarRef(name)


def const(value: float) -> "Const":
    """Shorthand for :class:`Const`."""
    return Const(float(value))


#: Global intern table for structural keys: identical structures anywhere in
#: the process share one key *object*, so dict lookups keyed by struct keys
#: compare by pointer first.  Keys are tiny fixed-size strings; the table
#: grows with the number of *distinct* structures, not with tree sizes.
_KEY_INTERN: dict = {}


def _intern_key(key: str) -> str:
    return _KEY_INTERN.setdefault(key, key)


def _digest(parts) -> str:
    h = hashlib.blake2b(digest_size=16)
    for p in parts:
        h.update(p.encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


class Expr:
    """Base class for expression nodes.

    Subclasses are frozen dataclasses; trees are safe to share and hash.
    """

    __slots__ = ()

    # -- structural API -----------------------------------------------------

    def children(self) -> tuple:
        """Child expressions, left to right."""
        return ()

    def variables(self) -> frozenset:
        """The set of variable names appearing in this tree."""
        out = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, VarRef):
                out.add(node.name)
            else:
                stack.extend(node.children())
        return frozenset(out)

    def evaluate(self, env: dict):
        """Evaluate with ``env`` mapping variable names to floats/arrays."""
        raise NotImplementedError

    def struct_key(self) -> str:
        """A canonical structural hash of this tree, interned process-wide.

        Two expressions have the same key iff they are structurally equal
        (same node types, same shape, same constants and variable names).
        Keys are computed iteratively (no recursion limit), cached on every
        node they pass through, and interned so equal keys are one object.
        The kernel layer uses them to cache compiled evaluators across
        branch-and-bound nodes, whose subproblems share almost all of their
        expression trees.
        """
        cached = getattr(self, "_struct_key", None)
        if cached is not None:
            return cached
        stack = [(self, False)]
        while stack:
            node, ready = stack.pop()
            if getattr(node, "_struct_key", None) is not None:
                continue
            if not ready:
                stack.append((node, True))
                for child in node.children():
                    if getattr(child, "_struct_key", None) is None:
                        stack.append((child, False))
                continue
            key = _intern_key(node._leaf_key() if not node.children() else _digest(
                [node._op] + [c._struct_key for c in node.children()]
            ))
            object.__setattr__(node, "_struct_key", key)
        return self._struct_key

    def _leaf_key(self) -> str:
        raise ExpressionError(
            f"node type {type(self).__name__} has children but no operator tag"
        )

    # -- operator overloading ------------------------------------------------

    def __add__(self, other):
        return Add((self, as_expr(other)))

    def __radd__(self, other):
        return Add((as_expr(other), self))

    def __sub__(self, other):
        return Add((self, Neg(as_expr(other))))

    def __rsub__(self, other):
        return Add((as_expr(other), Neg(self)))

    def __mul__(self, other):
        return Mul(self, as_expr(other))

    def __rmul__(self, other):
        return Mul(as_expr(other), self)

    def __truediv__(self, other):
        return Div(self, as_expr(other))

    def __rtruediv__(self, other):
        return Div(as_expr(other), self)

    def __pow__(self, other):
        return Pow(self, as_expr(other))

    def __rpow__(self, other):
        return Pow(as_expr(other), self)

    def __neg__(self):
        return Neg(self)

    def __pos__(self):
        return self

    # Expressions are compared structurally via dataclass __eq__; they are
    # not booleans, so refuse implicit truthiness to catch `if expr:` bugs.
    def __bool__(self):
        raise ExpressionError(
            "expressions have no truth value; use .evaluate() or build a "
            "Constraint via repro.model"
        )


@dataclass(frozen=True, eq=True)
class Const(Expr):
    """A floating-point constant leaf."""

    value: float

    def _leaf_key(self) -> str:
        return f"C{float(self.value)!r}"

    def evaluate(self, env: dict):
        return self.value

    def __repr__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True, eq=True)
class VarRef(Expr):
    """A reference to a named variable."""

    name: str

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ExpressionError("variable name must be a non-empty string")

    def _leaf_key(self) -> str:
        return f"V{self.name}"

    def evaluate(self, env: dict):
        try:
            return env[self.name]
        except KeyError:
            raise ExpressionError(f"no value bound for variable {self.name!r}") from None

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=True)
class Add(Expr):
    """N-ary sum of terms."""

    terms: tuple
    _op = "+"

    def __post_init__(self):
        if not self.terms:
            raise ExpressionError("Add requires at least one term")
        for t in self.terms:
            if not isinstance(t, Expr):
                raise ExpressionError("Add terms must be expressions")

    def children(self) -> tuple:
        return self.terms

    def evaluate(self, env: dict):
        total = self.terms[0].evaluate(env)
        for t in self.terms[1:]:
            total = total + t.evaluate(env)
        return total

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.terms)) + ")"


@dataclass(frozen=True, eq=True)
class Mul(Expr):
    """Binary product."""

    left: Expr
    right: Expr
    _op = "*"

    def children(self) -> tuple:
        return (self.left, self.right)

    def evaluate(self, env: dict):
        return self.left.evaluate(env) * self.right.evaluate(env)

    def __repr__(self) -> str:
        return f"({self.left!r} * {self.right!r})"


@dataclass(frozen=True, eq=True)
class Div(Expr):
    """Binary quotient."""

    numerator: Expr
    denominator: Expr
    _op = "/"

    def children(self) -> tuple:
        return (self.numerator, self.denominator)

    def evaluate(self, env: dict):
        denom = self.denominator.evaluate(env)
        return self.numerator.evaluate(env) / denom

    def __repr__(self) -> str:
        return f"({self.numerator!r} / {self.denominator!r})"


@dataclass(frozen=True, eq=True)
class Pow(Expr):
    """Power ``base ** exponent``.

    The NLP machinery only needs smooth powers; evaluation uses numpy
    semantics, so fractional powers of negative bases produce ``nan`` which
    the solvers guard against with variable lower bounds.
    """

    base: Expr
    exponent: Expr
    _op = "^"

    def children(self) -> tuple:
        return (self.base, self.exponent)

    def evaluate(self, env: dict):
        base = self.base.evaluate(env)
        expo = self.exponent.evaluate(env)
        return np.power(base, expo) if isinstance(base, np.ndarray) else base ** expo

    def __repr__(self) -> str:
        return f"({self.base!r} ** {self.exponent!r})"


@dataclass(frozen=True, eq=True)
class Neg(Expr):
    """Unary negation."""

    operand: Expr
    _op = "neg"

    def children(self) -> tuple:
        return (self.operand,)

    def evaluate(self, env: dict):
        return -self.operand.evaluate(env)

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"
