"""Expression simplification: constant folding and identity elimination.

This is a single bottom-up pass applying local rewrite rules.  It is not a
full computer-algebra system — the goal is to keep derivative trees small
(differentiation produces many ``0 * f`` and ``f + 0`` patterns) and to fold
fully-constant subtrees so linearity detection sees through them.
"""

from __future__ import annotations

from repro.expr.node import Add, Const, Div, Expr, Mul, Neg, Pow, VarRef

__all__ = ["simplify"]


def simplify(expr: Expr) -> Expr:
    """Return an equivalent, usually smaller, expression."""
    if isinstance(expr, (Const, VarRef)):
        return expr
    if isinstance(expr, Add):
        return _simplify_add(expr)
    if isinstance(expr, Neg):
        return _simplify_neg(expr)
    if isinstance(expr, Mul):
        return _simplify_mul(expr)
    if isinstance(expr, Div):
        return _simplify_div(expr)
    if isinstance(expr, Pow):
        return _simplify_pow(expr)
    return expr


def _is_const(expr: Expr, value=None) -> bool:
    if not isinstance(expr, Const):
        return False
    return value is None or expr.value == value


def _simplify_add(expr: Add) -> Expr:
    # Flatten nested sums, fold constants, drop zeros.
    terms = []
    const_total = 0.0
    stack = list(expr.terms)
    while stack:
        t = simplify(stack.pop(0))
        if isinstance(t, Add):
            stack = list(t.terms) + stack
        elif isinstance(t, Const):
            const_total += t.value
        else:
            terms.append(t)
    if const_total != 0.0 or not terms:
        terms.append(Const(const_total))
    if len(terms) == 1:
        return terms[0]
    return Add(tuple(terms))


def _simplify_neg(expr: Neg) -> Expr:
    inner = simplify(expr.operand)
    if isinstance(inner, Const):
        return Const(-inner.value)
    if isinstance(inner, Neg):
        return inner.operand
    return Neg(inner)


def _simplify_mul(expr: Mul) -> Expr:
    left = simplify(expr.left)
    right = simplify(expr.right)
    if _is_const(left, 0.0) or _is_const(right, 0.0):
        return Const(0.0)
    if isinstance(left, Const) and isinstance(right, Const):
        return Const(left.value * right.value)
    if _is_const(left, 1.0):
        return right
    if _is_const(right, 1.0):
        return left
    if _is_const(left, -1.0):
        return _simplify_neg(Neg(right))
    if _is_const(right, -1.0):
        return _simplify_neg(Neg(left))
    # Pull constants to the left and merge c1 * (c2 * f) -> (c1*c2) * f.
    if isinstance(right, Const):
        left, right = right, left
    if isinstance(left, Const) and isinstance(right, Mul) and isinstance(right.left, Const):
        return Mul(Const(left.value * right.left.value), right.right)
    return Mul(left, right)


def _simplify_div(expr: Div) -> Expr:
    numer = simplify(expr.numerator)
    denom = simplify(expr.denominator)
    if _is_const(numer, 0.0):
        return Const(0.0)
    if isinstance(numer, Const) and isinstance(denom, Const):
        return Const(numer.value / denom.value)
    if _is_const(denom, 1.0):
        return numer
    return Div(numer, denom)


def _simplify_pow(expr: Pow) -> Expr:
    base = simplify(expr.base)
    expo = simplify(expr.exponent)
    if _is_const(expo, 1.0):
        return base
    if _is_const(expo, 0.0):
        return Const(1.0)
    if isinstance(base, Const) and isinstance(expo, Const):
        return Const(base.value ** expo.value)
    # (f ** k1) ** k2  ->  f ** (k1*k2) for constant exponents.
    if (
        isinstance(base, Pow)
        and isinstance(base.exponent, Const)
        and isinstance(expo, Const)
    ):
        return Pow(base.base, Const(base.exponent.value * expo.value))
    return Pow(base, expo)
