"""Partial evaluation: replace variables with constants (or other trees).

Used by the NLP layer to eliminate *fixed* variables before a barrier solve
(a variable with ``lb == ub`` has no strict interior, so it must leave the
problem), and by the HSLB layout models to instantiate fitted performance
curves into constraint templates.
"""

from __future__ import annotations

from repro.expr.node import Add, Const, Div, Expr, Mul, Neg, Pow, VarRef, as_expr
from repro.expr.simplify import simplify

__all__ = ["substitute"]


def substitute(expr: Expr, bindings: dict) -> Expr:
    """Return ``expr`` with each ``VarRef(name)`` in ``bindings`` replaced.

    Binding values may be numbers (become :class:`Const`) or expressions.
    The result is simplified, so fully-bound subtrees fold to constants.
    """
    replacements = {k: as_expr(v) for k, v in bindings.items()}
    return simplify(_walk(expr, replacements))


def _walk(expr: Expr, repl: dict) -> Expr:
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, VarRef):
        return repl.get(expr.name, expr)
    if isinstance(expr, Add):
        return Add(tuple(_walk(t, repl) for t in expr.terms))
    if isinstance(expr, Neg):
        return Neg(_walk(expr.operand, repl))
    if isinstance(expr, Mul):
        return Mul(_walk(expr.left, repl), _walk(expr.right, repl))
    if isinstance(expr, Div):
        return Div(_walk(expr.numerator, repl), _walk(expr.denominator, repl))
    if isinstance(expr, Pow):
        return Pow(_walk(expr.base, repl), _walk(expr.exponent, repl))
    raise TypeError(f"cannot substitute into node type {type(expr).__name__}")
