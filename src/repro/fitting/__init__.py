"""Performance-model fitting (paper Sec. III-B/III-C, Table II).

The model family is

    T(n) = a/n + b*n**c + d        with a, b, c, d >= 0

where ``a/n`` is the perfectly scalable part (T_sca), ``b*n^c`` the
partially-parallel/communication part (T_nln, "parameters c, b almost equal
to zero" on the paper's machine), and ``d`` the serial floor (T_ser).

Fitting minimizes the sum of squared residuals over observed
``(nodes, seconds)`` pairs under positivity constraints (Table II line 11)
with a projected Levenberg–Marquardt method from multiple starting points —
the paper notes the problem is nonconvex with several local optima whose
allocations are nonetheless of similar quality, and the multistart ablation
reproduces that observation.
"""

from repro.fitting.perfmodel import PerfModel
from repro.fitting.least_squares import FitOptions, FitResult, fit_perf_model
from repro.fitting.quality import fit_diagnostics, r_squared, rmse

__all__ = [
    "PerfModel",
    "FitOptions",
    "FitResult",
    "fit_perf_model",
    "fit_diagnostics",
    "r_squared",
    "rmse",
]
