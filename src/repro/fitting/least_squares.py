"""Positivity-constrained least squares for the performance model.

Solves (Table II, line 10)

    min_{a,b,c,d >= 0}  sum_i ( y_i - a/n_i - b*n_i^c - d )^2

with a projected Levenberg–Marquardt iteration: the usual damped normal
equations step, projected onto the box, with the damping parameter adapted
on acceptance/rejection.  Because the problem is nonconvex in ``c`` the
solver restarts from several heuristic + randomized points and keeps the
best local solution — mirroring the paper's observation that different
starts give different parameters but allocations of similar quality.

By default ``c`` is constrained to [1, 3]: the fitted curve is then convex,
which the branch-and-bound layer requires for global optimality.  Pass
``FitOptions(c_bounds=(0.0, 3.0))`` to reproduce the unconstrained-exponent
variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import FittingError
from repro.fitting.perfmodel import PerfModel
from repro.fitting.quality import FitDiagnostics, fit_diagnostics
from repro.util.rng import as_rng


@dataclass
class FitOptions:
    """Tuning knobs for :func:`fit_perf_model`.

    ``loss`` selects the residual weighting: ``"absolute"`` is the paper's
    Table II objective (plain squared seconds — large-time points dominate);
    ``"relative"`` divides each residual by the observation, appropriate when
    the measurement noise is multiplicative (which run-to-run wall-clock
    noise is) and when the sweep spans orders of magnitude.
    """

    c_bounds: tuple = (1.0, 3.0)
    n_starts: int = 8               # heuristic + randomized restarts
    max_iterations: int = 200       # LM iterations per start
    gtol: float = 1e-10             # projected-gradient norm tolerance
    lambda0: float = 1e-3           # initial LM damping
    seed: int | None = 0
    loss: str = "absolute"          # "absolute" (paper) or "relative"


@dataclass
class FitResult:
    """Best fit plus diagnostics."""

    model: PerfModel
    diagnostics: FitDiagnostics
    sse: float
    starts_tried: int
    iterations: int
    local_optima: list = field(default_factory=list)  # (params, sse) per start

    @property
    def r_squared(self) -> float:
        return self.diagnostics.r_squared


def fit_perf_model(
    nodes, times, options: FitOptions | None = None
) -> FitResult:
    """Fit T(n) = a/n + b n^c + d to observed ``(nodes, times)``.

    Needs at least 3 distinct node counts (the paper recommends > 4); with 3
    the nonlinear term is pinned to b = 0.
    """
    opt = options or FitOptions()
    n = np.asarray(nodes, dtype=float)
    y = np.asarray(times, dtype=float)
    if n.shape != y.shape or n.ndim != 1:
        raise FittingError("nodes and times must be matching 1-D arrays")
    if n.size < 3:
        raise FittingError(f"need at least 3 data points, got {n.size}")
    if np.unique(n).size < 3:
        raise FittingError("need at least 3 distinct node counts")
    if np.any(n <= 0):
        raise FittingError("node counts must be positive")
    if np.any(y < 0) or not np.all(np.isfinite(y)) or not np.all(np.isfinite(n)):
        raise FittingError("times must be finite and nonnegative")
    if opt.loss not in ("absolute", "relative"):
        raise FittingError(f"unknown loss {opt.loss!r}")
    weights = None
    if opt.loss == "relative":
        weights = 1.0 / np.maximum(y, 1e-9 * max(1.0, float(y.max(initial=1.0))))

    rng = as_rng(opt.seed)
    lo = np.array([0.0, 0.0, opt.c_bounds[0], 0.0])
    hi = np.array([np.inf, np.inf, opt.c_bounds[1], np.inf])
    fit_b = n.size > 3  # with only 3 points, freeze the nonlinear term

    best_theta, best_sse, total_iters = None, np.inf, 0
    locals_found = []
    for theta0 in _starting_points(n, y, opt, rng):
        theta, sse, iters = _projected_lm(n, y, theta0, lo, hi, fit_b, opt, weights)
        total_iters += iters
        locals_found.append((tuple(theta), sse))
        if sse < best_sse:
            best_theta, best_sse = theta, sse

    model = PerfModel(*[float(v) for v in best_theta])
    predicted = model(n)
    return FitResult(
        model=model,
        diagnostics=fit_diagnostics(y, predicted),
        sse=float(best_sse),
        starts_tried=len(locals_found),
        iterations=total_iters,
        local_optima=locals_found,
    )


# ---------------------------------------------------------------------------


def _starting_points(n, y, opt: FitOptions, rng):
    """Heuristic start plus randomized perturbations."""
    n_min, n_max = float(n.min()), float(n.max())
    y_at_min = float(y[np.argmin(n)])
    y_at_max = float(y[np.argmax(n)])
    d0 = max(0.5 * y_at_max, 1e-6)
    a0 = max((y_at_min - d0) * n_min, 1e-6)
    c_lo, c_hi = opt.c_bounds
    c0 = float(np.clip(1.0, c_lo, c_hi))
    starts = [np.array([a0, 0.0, c0, d0]),
              np.array([a0, 1e-6 * y_at_max, c0, 0.5 * d0])]
    while len(starts) < opt.n_starts:
        scale_a = float(rng.uniform(0.2, 5.0))
        scale_d = float(rng.uniform(0.0, 2.0))
        b0 = float(rng.uniform(0.0, y_at_max / max(n_max, 1.0)))
        c_rand = float(rng.uniform(c_lo, c_hi))
        starts.append(np.array([a0 * scale_a, b0, c_rand, d0 * scale_d]))
    return starts


def _residual_jac(n, y, theta, fit_b, weights=None):
    a, b, c, d = theta
    nc = np.power(n, c)
    pred = a / n + b * nc + d
    r = pred - y
    J = np.empty((n.size, 4))
    J[:, 0] = 1.0 / n
    J[:, 1] = nc
    J[:, 2] = b * np.log(n) * nc
    J[:, 3] = 1.0
    if not fit_b:
        J[:, 1] = 0.0
        J[:, 2] = 0.0
    if weights is not None:
        r = r * weights
        J = J * weights[:, None]
    return r, J


def _projected_lm(n, y, theta0, lo, hi, fit_b, opt: FitOptions, weights=None):
    theta = np.clip(theta0, lo, np.where(np.isfinite(hi), hi, theta0))
    if not fit_b:
        theta[1] = 0.0
    r, J = _residual_jac(n, y, theta, fit_b, weights)
    sse = float(r @ r)
    lam = opt.lambda0
    iters = 0
    for _ in range(opt.max_iterations):
        iters += 1
        g = J.T @ r
        # Projected-gradient stationarity test on the box.
        pg = np.where((theta <= lo) & (g > 0), 0.0, g)
        pg = np.where((np.isfinite(hi)) & (theta >= hi) & (pg < 0), 0.0, pg)
        if float(np.abs(pg).max()) <= opt.gtol * (1.0 + sse):
            break
        H = J.T @ J
        step_ok = False
        for _ in range(30):
            A = H + lam * np.eye(4)
            try:
                delta = np.linalg.solve(A, -g)
            except np.linalg.LinAlgError:
                lam *= 10.0
                continue
            cand = np.clip(theta + delta, lo, hi)
            if not fit_b:
                cand[1] = 0.0
            r_new, J_new = _residual_jac(n, y, cand, fit_b, weights)
            sse_new = float(r_new @ r_new)
            if sse_new < sse:
                theta, r, J, sse = cand, r_new, J_new, sse_new
                lam = max(lam * 0.3, 1e-12)
                step_ok = True
                break
            lam *= 10.0
        if not step_ok:
            break  # no damping level improves: local optimum
    return theta, sse, iters
