"""The performance function T(n) = a/n + b*n^c + d."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.expr.node import Expr, VarRef, const
from repro.util.validation import check_nonnegative


@dataclass(frozen=True)
class PerfModel:
    """Fitted performance function for one component.

    Attributes mirror Table II of the paper: ``a`` scales the perfectly
    parallel part, ``b``/``c`` the nonlinear part, ``d`` is the serial
    floor.  All are nonnegative; ``c >= 1`` additionally certifies convexity
    (b·n^c with c in (0, 1) is concave), which the MINLP layer requires for
    global optimality — fits produced by :func:`repro.fitting.fit_perf_model`
    keep ``c`` in its convex range by default.
    """

    a: float
    b: float = 0.0
    c: float = 1.0
    d: float = 0.0

    def __post_init__(self):
        check_nonnegative(self.a, "a")
        check_nonnegative(self.b, "b")
        check_nonnegative(self.c, "c")
        check_nonnegative(self.d, "d")

    # -- evaluation ---------------------------------------------------------

    def __call__(self, n):
        """Vectorized T(n); accepts scalars or arrays of node counts."""
        n = np.asarray(n, dtype=float)
        out = self.a / n + self.b * np.power(n, self.c) + self.d
        return float(out) if out.ndim == 0 else out

    def scalable_part(self, n):
        """T_sca(n) = a/n."""
        n = np.asarray(n, dtype=float)
        out = self.a / n
        return float(out) if out.ndim == 0 else out

    def nonlinear_part(self, n):
        """T_nln(n) = b*n^c."""
        n = np.asarray(n, dtype=float)
        out = self.b * np.power(n, self.c)
        return float(out) if out.ndim == 0 else out

    @property
    def serial_part(self) -> float:
        """T_ser = d."""
        return self.d

    def derivative(self, n):
        """dT/dn, vectorized."""
        n = np.asarray(n, dtype=float)
        out = -self.a / n**2 + self.b * self.c * np.power(n, self.c - 1.0)
        return float(out) if out.ndim == 0 else out

    # -- structure ------------------------------------------------------------

    @property
    def is_convex(self) -> bool:
        """True when T is convex on n > 0 (b = 0, or c outside (0, 1))."""
        return self.b == 0.0 or self.c >= 1.0 or self.c == 0.0

    def expr(self, n: str | VarRef) -> Expr:
        """The symbolic T(n) over variable ``n`` for layout models."""
        ref = VarRef(n) if isinstance(n, str) else n
        out: Expr = const(self.a) / ref + const(self.d)
        if self.b > 0.0:
            out = out + const(self.b) * ref ** const(self.c)
        return out

    def min_nodes_for_time(self, target: float, n_max: int) -> int | None:
        """Smallest integer n in [1, n_max] with T(n) <= target, or None.

        T is decreasing-then-(possibly)-increasing; a vectorized scan is
        exact and cheap for the node ranges this library deals with.
        """
        grid = np.arange(1, int(n_max) + 1, dtype=float)
        ok = np.flatnonzero(self(grid) <= target)
        return int(ok[0] + 1) if ok.size else None

    def best_nodes(self, n_max: int) -> int:
        """The integer n in [1, n_max] minimizing T (ties -> smallest n)."""
        grid = np.arange(1, int(n_max) + 1, dtype=float)
        return int(np.argmin(self(grid)) + 1)

    def scaled(self, speed: float) -> "PerfModel":
        """The same curve on a machine ``speed`` times faster per node.

        A uniform speed factor divides every time contribution; the exponent
        ``c`` (shape of the nonlinear term) is machine-structure, not speed,
        so it stays.  This is the paper's Sec. IV-C "prediction ... on new
        hardware" primitive — explicitly one of its "less reliable"
        predictions, since real machines shift the compute/communication
        balance as well.
        """
        check_nonnegative(speed, "speed")
        if speed <= 0:
            raise ValueError("speed must be > 0")
        return PerfModel(a=self.a / speed, b=self.b / speed, c=self.c, d=self.d / speed)

    def as_tuple(self) -> tuple:
        return (self.a, self.b, self.c, self.d)
