"""Fit-quality metrics (the paper judges fits by R^2, Sec. III-C)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_finite_array


def r_squared(observed, predicted) -> float:
    """Coefficient of determination; 1.0 for a perfect fit.

    Degenerate case: when the observations are constant, returns 1.0 if the
    predictions match them (to residual-noise precision) and 0.0 otherwise.
    """
    y = check_finite_array(observed, "observed")
    p = check_finite_array(predicted, "predicted")
    if y.shape != p.shape:
        raise ValueError("observed/predicted shape mismatch")
    ss_res = float(np.sum((y - p) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res <= 1e-12 * max(1.0, float(np.abs(y).max())) else 0.0
    return 1.0 - ss_res / ss_tot


def rmse(observed, predicted) -> float:
    """Root-mean-square error."""
    y = check_finite_array(observed, "observed")
    p = check_finite_array(predicted, "predicted")
    if y.shape != p.shape:
        raise ValueError("observed/predicted shape mismatch")
    return float(np.sqrt(np.mean((y - p) ** 2)))


@dataclass(frozen=True)
class FitDiagnostics:
    """Summary statistics for one fitted component curve."""

    r_squared: float
    rmse: float
    max_abs_pct_error: float
    n_points: int


def fit_diagnostics(observed, predicted) -> FitDiagnostics:
    """Bundle of fit-quality metrics."""
    y = check_finite_array(observed, "observed")
    p = check_finite_array(predicted, "predicted")
    with np.errstate(divide="ignore", invalid="ignore"):
        pct = np.abs((p - y) / np.where(y == 0.0, np.nan, y)) * 100.0
    max_pct = float(np.nanmax(pct)) if np.any(np.isfinite(pct)) else float("nan")
    return FitDiagnostics(
        r_squared=r_squared(y, p),
        rmse=rmse(y, p),
        max_abs_pct_error=max_pct,
        n_points=int(y.size),
    )
