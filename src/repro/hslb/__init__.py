"""The Heuristic Static Load-Balancing algorithm (the paper's contribution).

The four steps (paper Sec. III-F):

1. **Gather** (:mod:`repro.hslb.gather`) — benchmark every component at a
   handful of node counts (smallest allowed by memory, largest possible,
   a few between; Sec. III-C).
2. **Fit** (:mod:`repro.hslb.fitstep`) — per-component least squares for
   T(n) = a/n + b n^c + d (Table II).
3. **Solve** (:mod:`repro.hslb.solve`) — build the Table I layout MINLP
   (:mod:`repro.hslb.layout_models`) and solve it with the LP/NLP
   branch-and-bound solver; :mod:`repro.hslb.oracle` provides an exact
   enumeration solver used for validation and for the nonconvex ablations
   (T_sync, max-min objective).
4. **Execute** (:mod:`repro.hslb.pipeline`) — run the coupled model at the
   chosen allocation and compare predicted vs. actual.

:class:`HSLBPipeline` wires the steps together over a
:class:`~repro.cesm.CESMCase`.
"""

from repro.hslb.objectives import ObjectiveKind
from repro.hslb.gather import BenchmarkData, gather_benchmarks
from repro.hslb.fitstep import fit_components
from repro.hslb.layout_models import (
    build_layout_model,
    build_layout_model_from_spec,
    layout_model_for_case,
    layout_problem_spec,
    layout_problem_spec_for_case,
)
from repro.hslb.oracle import LayoutOracle, OracleResult
from repro.hslb.solve import (
    SolveOutcome,
    proportional_baseline,
    solve_allocation,
    solve_allocation_resilient,
)
from repro.hslb.pipeline import HSLBPipeline, HSLBRunResult, pipeline_from_spec
from repro.hslb.report import format_table3_block

__all__ = [
    "ObjectiveKind",
    "BenchmarkData",
    "gather_benchmarks",
    "fit_components",
    "build_layout_model",
    "build_layout_model_from_spec",
    "layout_model_for_case",
    "layout_problem_spec",
    "layout_problem_spec_for_case",
    "LayoutOracle",
    "OracleResult",
    "SolveOutcome",
    "solve_allocation",
    "solve_allocation_resilient",
    "proportional_baseline",
    "HSLBPipeline",
    "HSLBRunResult",
    "pipeline_from_spec",
    "format_table3_block",
]
