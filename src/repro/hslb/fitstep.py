"""HSLB step 2: fit the performance model per component (Table II)."""

from __future__ import annotations

from repro.fitting import FitOptions, fit_perf_model
from repro.hslb.gather import BenchmarkData


def fit_components(
    data: BenchmarkData, options: FitOptions | None = None
) -> dict:
    """Least-squares fits for every component in ``data``.

    Returns ``{ComponentId: FitResult}``.  Four separate problems, one per
    component, exactly as the paper's step 2 ("solve 4 ... different least
    squares problems outlined in Table II").
    """
    return {
        comp: fit_perf_model(data.nodes(comp), data.times(comp), options)
        for comp in data.components()
    }


def fit_quality_summary(fits: dict) -> dict:
    """``{component: R^2}`` — the paper's fit-quality check (Sec. III-C)."""
    return {comp: res.r_squared for comp, res in fits.items()}
