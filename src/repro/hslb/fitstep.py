"""HSLB step 2: fit the performance model per component (Table II)."""

from __future__ import annotations

from dataclasses import replace

from repro.exceptions import FittingError
from repro.fitting import FitOptions, fit_perf_model
from repro.hslb.gather import BenchmarkData
from repro.resilience.events import EventKind, EventLog
from repro.resilience.retry import RetryPolicy


def fit_components(
    data: BenchmarkData,
    options: FitOptions | None = None,
    policy: RetryPolicy | None = None,
    events: EventLog | None = None,
) -> dict:
    """Least-squares fits for every component in ``data``.

    Returns ``{ComponentId: FitResult}``.  Four separate problems, one per
    component, exactly as the paper's step 2 ("solve 4 ... different least
    squares problems outlined in Table II").

    With ``policy``/``events`` set, a :class:`~repro.exceptions.FittingError`
    triggers a multi-start refit — doubling the restart count and reseeding
    each attempt — before giving up, recording each escalation on the event
    log.  The solver is nonconvex in ``c``, so more restarts genuinely widen
    the basin search (the paper's own remedy for disagreeing local optima).
    """
    if policy is None and events is None:
        return {
            comp: fit_perf_model(data.nodes(comp), data.times(comp), options)
            for comp in data.components()
        }
    policy = policy or RetryPolicy()
    events = events if events is not None else EventLog()
    fits = {}
    for comp in data.components():
        fits[comp] = _fit_resilient(
            comp, data.nodes(comp), data.times(comp), options, policy, events
        )
    return fits


def _fit_resilient(comp, nodes, times, options, policy: RetryPolicy, events: EventLog):
    opt = options or FitOptions()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fit_perf_model(nodes, times, opt)
        except FittingError as exc:
            if attempt >= policy.max_attempts:
                raise
            escalated = replace(
                opt,
                n_starts=opt.n_starts * 2,
                seed=(opt.seed or 0) + attempt,
            )
            events.record(
                EventKind.FIT_RETRY,
                stage="fit",
                detail=(
                    f"fit failed ({exc}); refitting with "
                    f"{escalated.n_starts} starts, seed {escalated.seed}"
                ),
                component=comp.value,
                attempt=attempt,
                n_starts=escalated.n_starts,
            )
            opt = escalated
    raise AssertionError("unreachable")  # pragma: no cover


def fit_quality_summary(fits: dict) -> dict:
    """``{component: R^2}`` — the paper's fit-quality check (Sec. III-C)."""
    return {comp: res.r_squared for comp, res in fits.items()}
