"""HSLB step 1: gather benchmarking data (paper Sec. III-C).

"CESM should be run on the minimal number of nodes allowed by memory
requirements and on the greatest number of nodes possible.  In addition, a
few simulations should be done in between to capture the curvature of the
scaling. ... the number of benchmarking runs ... should be at least greater
than four for each component."

The benchmark jobs behind those numbers crash, hit queue timeouts, and
return corrupted timings.  Pass a :class:`~repro.resilience.RetryPolicy`
(and optionally an :class:`~repro.resilience.EventLog` / ``deadline``) and
:func:`gather_benchmarks` runs a resilient sweep instead of the bare one:
failed points are retried with capped deterministic backoff, implausible
measurements are rejected by a MAD test and re-measured, exhausted points
are replaced by a neighboring node count or dropped, and the fit proceeds
as long as 3 distinct points per component survive — otherwise a
:class:`~repro.exceptions.GatherError` carries out the partial data.
Without a policy the historical clean path runs unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cesm.case import CESMCase
from repro.cesm.components import OPTIMIZED_COMPONENTS, ComponentId
from repro.cesm.simulator import CoupledRunSimulator
from repro.exceptions import ConfigurationError, GatherError, SimulationError
from repro.parallel.executor import executor_scope
from repro.resilience.events import EventKind, EventLog
from repro.resilience.outliers import worst_outlier
from repro.resilience.retry import Deadline, RetryPolicy


@dataclass
class BenchmarkData:
    """Observed (nodes, seconds) samples per optimized component."""

    samples: dict = field(default_factory=dict)  # ComponentId -> (nodes, times)

    def add(self, component: ComponentId, nodes, times) -> None:
        n = np.asarray(nodes, dtype=float)
        t = np.asarray(times, dtype=float)
        if n.shape != t.shape:
            raise ConfigurationError("nodes/times length mismatch")
        # Mirror fit_component's preconditions here, where corrupted
        # measurements first enter the pipeline: reject them loudly instead
        # of letting NaNs poison the fit three stages later.
        if not np.all(np.isfinite(n)) or np.any(n <= 0):
            raise ConfigurationError(
                f"{component.value}: node counts must be finite and positive"
            )
        if not np.all(np.isfinite(t)) or np.any(t < 0):
            raise ConfigurationError(
                f"{component.value}: times must be finite and nonnegative"
            )
        if component in self.samples:
            n0, t0 = self.samples[component]
            n, t = np.concatenate([n0, n]), np.concatenate([t0, t])
        order = np.argsort(n)
        self.samples[component] = (n[order], t[order])

    def nodes(self, component: ComponentId) -> np.ndarray:
        return self.samples[component][0]

    def times(self, component: ComponentId) -> np.ndarray:
        return self.samples[component][1]

    def components(self) -> list:
        return list(self.samples)

    def point_count(self, component: ComponentId) -> int:
        return int(self.samples[component][0].size)


def gather_benchmarks(
    simulator,
    points: int = 5,
    components: tuple = OPTIMIZED_COMPONENTS,
    policy: RetryPolicy | None = None,
    events: EventLog | None = None,
    deadline=None,
    executor=None,
    workers: int | None = None,
) -> BenchmarkData:
    """Run the benchmark sweeps for ``components`` on ``simulator``.

    ``points`` node counts per component are spread geometrically between
    the memory floor and the job size (the paper's recommendation, with the
    geometric spacing capturing the curvature where it lives).

    With ``policy`` (or ``events``/``deadline``) set, the sweep is fault
    tolerant — see the module docstring.  The clean path is bit-identical
    to the historical behavior.

    ``executor`` (an executor name or instance, see :mod:`repro.parallel`)
    runs the sweeps concurrently: the clean path parallelizes individual
    benchmark points, the resilient path whole component sweeps (each
    sweep's retry/replace/outlier decisions are sequential within the
    component).  Results, events, and errors are merged in submission
    order, so every backend is bit-identical to the default serial run.
    """
    if points < 3:
        raise ConfigurationError(
            "need at least 3 benchmark points per component to fit the model "
            "(the paper recommends more than 4)"
        )
    with executor_scope(executor, workers) as ex:
        if policy is None and events is None and deadline is None:
            if ex.kind == "serial":
                return _gather_plain(simulator, points, components)
            return _gather_plain_parallel(simulator, points, components, ex)
        policy = policy or RetryPolicy()
        events = events if events is not None else EventLog()
        deadline = Deadline.coerce(deadline)
        if ex.kind == "serial":
            return _gather_resilient(
                simulator, points, components, policy, events, deadline
            )
        return _gather_resilient_parallel(
            simulator, points, components, policy, events, deadline, ex
        )


def _sweep_counts(case: CESMCase, comp: ComponentId, points: int) -> list:
    counts = case.benchmark_node_counts(comp, points=points)
    if len(counts) < 3:
        raise ConfigurationError(
            f"component {comp.value}: node range too narrow for "
            f"{points} distinct benchmark sizes"
        )
    return counts


def _gather_plain(
    simulator: CoupledRunSimulator, points: int, components: tuple
) -> BenchmarkData:
    case: CESMCase = simulator.case
    data = BenchmarkData()
    for comp in components:
        counts = _sweep_counts(case, comp, points)
        sweep = simulator.benchmark_sweep(comp, counts)
        data.add(comp, [n for n, _ in sweep], [t for _, t in sweep])
    return data


# -- parallel clean path --------------------------------------------------------


@dataclass
class _PointTask:
    """One clean benchmark measurement (picklable process payload)."""

    simulator: object
    comp: ComponentId
    nodes: int


def _run_point_task(task: _PointTask) -> float:
    return task.simulator.benchmark(task.comp, task.nodes)


def _gather_plain_parallel(
    simulator, points: int, components: tuple, ex
) -> BenchmarkData:
    """Clean sweep with every (component, node count) point as one task.

    Submission order is the serial iteration order, so after the ordered
    merge the assembled :class:`BenchmarkData` — and, when a point fails,
    the raised :class:`~repro.exceptions.SimulationError` — match the
    serial path exactly.
    """
    case: CESMCase = simulator.case
    tasks: list = []
    spans: list = []
    for comp in components:
        counts = _sweep_counts(case, comp, points)
        spans.append((comp, len(counts)))
        tasks.extend(_PointTask(simulator, comp, int(n)) for n in counts)
    values = ex.map_ordered(_run_point_task, tasks)
    data = BenchmarkData()
    offset = 0
    for comp, width in spans:
        chunk = tasks[offset:offset + width]
        data.add(comp, [t.nodes for t in chunk], values[offset:offset + width])
        offset += width
    return data


# -- resilient path -------------------------------------------------------------


def _sweep_component(
    simulator,
    comp: ComponentId,
    counts: list,
    policy: RetryPolicy,
    events: EventLog,
    deadline: Deadline,
) -> dict:
    """One component's full resilient sweep; returns ``{nodes: seconds}``.

    Retries, neighbor replacement, and outlier re-measurement are all
    internal to the component, so this is the unit the parallel gather
    fans out — the decisions inside stay strictly sequential.
    """
    case: CESMCase = simulator.case
    budget = _SweepBudget(policy.sweep_budget)
    survived: dict = {}  # nodes -> seconds
    for n in counts:
        value = _measure_point(
            simulator, comp, n, policy, events, deadline, budget
        )
        if value is None:
            value, n = _replace_point(
                simulator, comp, n, counts, survived, case,
                policy, events, deadline, budget,
            )
        if value is None:
            continue
        survived[n] = value

    _reject_outliers(
        simulator, comp, survived, policy, events, deadline, budget
    )
    return survived


def _finish_component(
    comp: ComponentId,
    requested: int,
    survived: dict,
    data: BenchmarkData,
    partial: BenchmarkData,
    events: EventLog,
) -> None:
    """Fold one component's sweep into the results (or raise GatherError)."""
    if survived:
        ns = sorted(survived)
        partial.add(comp, ns, [survived[n] for n in ns])
    if len(survived) < 3:
        raise GatherError(
            f"component {comp.value}: only {len(survived)} of "
            f"{requested} benchmark points survived (need 3 to fit)",
            partial=partial,
        )
    if len(survived) < requested:
        events.record(
            EventKind.GATHER_DEGRADED,
            stage="gather",
            detail=(
                f"proceeding with {len(survived)}/{requested} points"
            ),
            component=comp.value,
            requested=requested,
            survived=len(survived),
        )
    ns = sorted(survived)
    data.add(comp, ns, [survived[n] for n in ns])


def _gather_resilient(
    simulator,
    points: int,
    components: tuple,
    policy: RetryPolicy,
    events: EventLog,
    deadline: Deadline,
) -> BenchmarkData:
    case: CESMCase = simulator.case
    data = BenchmarkData()
    partial = BenchmarkData()
    for comp in components:
        counts = _sweep_counts(case, comp, points)
        survived = _sweep_component(
            simulator, comp, counts, policy, events, deadline
        )
        _finish_component(comp, len(counts), survived, data, partial, events)
    return data


@dataclass
class _SweepTask:
    """One component's resilient sweep (picklable process payload).

    Thread workers receive the live :class:`Deadline` so all sweeps share
    one budget; process workers get the remaining seconds at submission
    (clock objects do not cross process boundaries) and rebuild one.
    """

    simulator: object
    comp: ComponentId
    counts: list
    policy: RetryPolicy
    deadline: Deadline | None
    deadline_seconds: float | None


@dataclass
class _SweepOutcome:
    comp: ComponentId
    requested: int
    survived: dict
    events: EventLog
    attempts_delta: dict


def _run_sweep_task(task: _SweepTask) -> _SweepOutcome:
    deadline = (
        task.deadline
        if task.deadline is not None
        else Deadline(task.deadline_seconds)
    )
    events = EventLog()
    simulator = task.simulator
    before = (
        simulator.attempt_counts()
        if hasattr(simulator, "attempt_counts")
        else {}
    )
    survived = _sweep_component(
        simulator, task.comp, task.counts, task.policy, events, deadline
    )
    delta = {}
    if hasattr(simulator, "attempt_counts"):
        after = simulator.attempt_counts()
        delta = {
            key: count - before.get(key, 0)
            for key, count in after.items()
            if count != before.get(key, 0)
        }
    return _SweepOutcome(
        comp=task.comp,
        requested=len(task.counts),
        survived=survived,
        events=events,
        attempts_delta=delta,
    )


def _gather_resilient_parallel(
    simulator,
    points: int,
    components: tuple,
    policy: RetryPolicy,
    events: EventLog,
    deadline: Deadline,
    ex,
) -> BenchmarkData:
    """Resilient gather with one task per component sweep.

    Worker event logs and fault-attempt spend are merged back in
    submission order; a failing component raises the same
    :class:`~repro.exceptions.GatherError` (message and partial data) the
    serial loop raises, with later components' events discarded exactly as
    if they had never run.
    """
    case: CESMCase = simulator.case
    share_deadline = ex.kind != "process"
    tasks = []
    for comp in components:
        counts = _sweep_counts(case, comp, points)
        tasks.append(
            _SweepTask(
                simulator=simulator,
                comp=comp,
                counts=counts,
                policy=policy,
                deadline=deadline if share_deadline else None,
                deadline_seconds=(
                    None
                    if not deadline.is_limited
                    else max(deadline.remaining(), 1e-3)
                ),
            )
        )
    outcomes = ex.map_ordered(_run_sweep_task, tasks)
    data = BenchmarkData()
    partial = BenchmarkData()
    merge_attempts = not share_deadline and hasattr(simulator, "merge_attempts")
    for outcome in outcomes:
        events.extend(outcome.events)
        if merge_attempts:
            simulator.merge_attempts(outcome.attempts_delta)
        _finish_component(
            outcome.comp, outcome.requested, outcome.survived,
            data, partial, events,
        )
    return data


class _SweepBudget:
    """Counts failed attempts across one component's sweep."""

    def __init__(self, total: int):
        self.remaining = int(total)

    def spend(self) -> None:
        self.remaining -= 1

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0


def _measure_point(
    simulator,
    comp: ComponentId,
    nodes: int,
    policy: RetryPolicy,
    events: EventLog,
    deadline: Deadline,
    budget: _SweepBudget,
    repeat: int = 0,
) -> float | None:
    """One point with retries; ``None`` when every attempt failed."""
    seed = simulator.case.seed
    for attempt in range(1, policy.max_attempts + 1):
        try:
            value = float(simulator.benchmark(comp, nodes, repeat=repeat))
            if math.isfinite(value) and value > 0.0:
                return value
            reason = f"corrupt measurement ({value!r})"
        except SimulationError as exc:
            reason = str(exc)
        budget.spend()
        # Out of retries for this point, sweep budget spent, or the global
        # deadline has passed: give up on the point (degrade, don't abort).
        if attempt >= policy.max_attempts or budget.exhausted or deadline.expired():
            events.record(
                EventKind.RETRY,
                stage="gather",
                detail=f"attempt {attempt} at {nodes} nodes failed: {reason}; giving up",
                component=comp.value,
                attempt=attempt,
                nodes=int(nodes),
                exhausted=True,
            )
            return None
        delay = policy.delay_for(attempt, seed, "bench", comp.value, str(nodes))
        events.record(
            EventKind.RETRY,
            stage="gather",
            detail=(
                f"attempt {attempt} at {nodes} nodes failed: {reason}; "
                f"retrying after {delay:.3f}s"
            ),
            component=comp.value,
            attempt=attempt,
            nodes=int(nodes),
            delay=round(delay, 6),
        )
        policy.pause(delay)
    return None


def _replace_point(
    simulator,
    comp: ComponentId,
    nodes: int,
    counts: list,
    survived: dict,
    case: CESMCase,
    policy: RetryPolicy,
    events: EventLog,
    deadline: Deadline,
    budget: _SweepBudget,
):
    """Try neighboring node counts for a point that exhausted its retries.

    Returns ``(value, nodes)`` on success, ``(None, nodes)`` when the point
    is dropped for good.
    """
    lo, hi = case.component_bounds(comp)
    taken = set(counts) | set(survived)
    candidates = []
    for distance in range(1, policy.replacement_candidates + 1):
        for cand in (nodes - distance, nodes + distance):
            if lo <= cand <= hi and cand not in taken:
                candidates.append(cand)
    for cand in candidates:
        if deadline.expired():
            break
        try:
            value = float(simulator.benchmark(comp, cand))
        except SimulationError:
            budget.spend()
            continue
        if math.isfinite(value) and value > 0.0:
            events.record(
                EventKind.POINT_REPLACED,
                stage="gather",
                detail=f"{nodes} nodes unusable; substituted neighbor {cand}",
                component=comp.value,
                nodes=int(nodes),
                replacement=int(cand),
            )
            return value, cand
        budget.spend()
    events.record(
        EventKind.POINT_DROPPED,
        stage="gather",
        detail=f"dropped {nodes} nodes (retries and neighbors exhausted)",
        component=comp.value,
        nodes=int(nodes),
    )
    return None, nodes


def _reject_outliers(
    simulator,
    comp: ComponentId,
    survived: dict,
    policy: RetryPolicy,
    events: EventLog,
    deadline: Deadline,
    budget: _SweepBudget,
) -> None:
    """Greedy MAD rejection + re-measurement, one worst point per round."""
    for round_no in range(1, policy.max_outlier_rounds + 1):
        if len(survived) < 4 or deadline.expired():
            return
        ns = sorted(survived)
        ts = [survived[n] for n in ns]
        idx = worst_outlier(ns, ts, policy.outlier_threshold)
        if idx is None:
            return
        bad_n = ns[idx]
        events.record(
            EventKind.OUTLIER_REJECTED,
            stage="gather",
            detail=(
                f"measurement {ts[idx]:.4g}s at {bad_n} nodes is implausible "
                f"against the sweep trend; re-measuring"
            ),
            component=comp.value,
            nodes=int(bad_n),
            value=round(float(ts[idx]), 6),
        )
        fresh = _measure_point(
            simulator, comp, bad_n, policy, events, deadline, budget,
            repeat=round_no,
        )
        if fresh is None:
            del survived[bad_n]
            events.record(
                EventKind.POINT_DROPPED,
                stage="gather",
                detail=f"dropped {bad_n} nodes (re-measurement failed)",
                component=comp.value,
                nodes=int(bad_n),
            )
        else:
            survived[bad_n] = fresh
            events.record(
                EventKind.REMEASURED,
                stage="gather",
                detail=f"re-measured {bad_n} nodes: {fresh:.4g}s",
                component=comp.value,
                nodes=int(bad_n),
                value=round(float(fresh), 6),
            )
