"""HSLB step 1: gather benchmarking data (paper Sec. III-C).

"CESM should be run on the minimal number of nodes allowed by memory
requirements and on the greatest number of nodes possible.  In addition, a
few simulations should be done in between to capture the curvature of the
scaling. ... the number of benchmarking runs ... should be at least greater
than four for each component."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cesm.case import CESMCase
from repro.cesm.components import OPTIMIZED_COMPONENTS, ComponentId
from repro.cesm.simulator import CoupledRunSimulator
from repro.exceptions import ConfigurationError


@dataclass
class BenchmarkData:
    """Observed (nodes, seconds) samples per optimized component."""

    samples: dict = field(default_factory=dict)  # ComponentId -> (nodes, times)

    def add(self, component: ComponentId, nodes, times) -> None:
        n = np.asarray(nodes, dtype=float)
        t = np.asarray(times, dtype=float)
        if n.shape != t.shape:
            raise ConfigurationError("nodes/times length mismatch")
        if component in self.samples:
            n0, t0 = self.samples[component]
            n, t = np.concatenate([n0, n]), np.concatenate([t0, t])
        order = np.argsort(n)
        self.samples[component] = (n[order], t[order])

    def nodes(self, component: ComponentId) -> np.ndarray:
        return self.samples[component][0]

    def times(self, component: ComponentId) -> np.ndarray:
        return self.samples[component][1]

    def components(self) -> list:
        return list(self.samples)

    def point_count(self, component: ComponentId) -> int:
        return int(self.samples[component][0].size)


def gather_benchmarks(
    simulator: CoupledRunSimulator,
    points: int = 5,
    components: tuple = OPTIMIZED_COMPONENTS,
) -> BenchmarkData:
    """Run the benchmark sweeps for ``components`` on ``simulator``.

    ``points`` node counts per component are spread geometrically between
    the memory floor and the job size (the paper's recommendation, with the
    geometric spacing capturing the curvature where it lives).
    """
    if points < 3:
        raise ConfigurationError(
            "need at least 3 benchmark points per component to fit the model "
            "(the paper recommends more than 4)"
        )
    case: CESMCase = simulator.case
    data = BenchmarkData()
    for comp in components:
        counts = case.benchmark_node_counts(comp, points=points)
        if len(counts) < 3:
            raise ConfigurationError(
                f"component {comp.value}: node range too narrow for "
                f"{points} distinct benchmark sizes"
            )
        sweep = simulator.benchmark_sweep(comp, counts)
        data.add(comp, [n for n, _ in sweep], [t for _, t in sweep])
    return data
