"""HSLB step 3a: build the Table I layout MINLPs.

Variable names follow the paper: ``n_ice, n_lnd, n_atm, n_ocn`` (integer
node counts), ``T`` (total wall-clock) and ``T_icelnd`` (the balanced
ice/land stage time of layout 1).  Constraint names carry the Table I line
numbers they implement.

The fitted performance functions enter as convex expressions
``T_j(n_j) = a/n + b n^c + d`` via :meth:`repro.fitting.PerfModel.expr`, and
the allowed-value sets for the ocean (line 5) and, at 1 degree, the
atmosphere (line 6) become binary set-choice blocks with SOS1 branching
structure (lines 12, 29-31).
"""

from __future__ import annotations

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout
from repro.exceptions import ConfigurationError
from repro.hslb.objectives import ObjectiveKind
from repro.model import Model, Objective, ObjSense, Sense, VarType

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

#: Model variable name per component.
VAR_NAMES = {A: "n_atm", O: "n_ocn", I: "n_ice", L: "n_lnd"}


def build_layout_model(
    layout: Layout,
    total_nodes: int,
    perf: dict,
    bounds: dict,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
    objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
    tsync: float | None = None,
    fine_tuning: bool = False,
    name: str = "hslb",
) -> Model:
    """Construct the MINLP for ``layout`` (paper Table I).

    ``perf`` maps the four optimized components to fitted
    :class:`~repro.fitting.PerfModel` curves; ``bounds`` maps them to
    ``(min_nodes, max_nodes)`` boxes.  ``ocn_allowed`` (line 5) and
    ``atm_allowed`` (line 6, the dict from
    :func:`repro.cesm.sweetspots.atm_allowed_nodes`) are optional explicit
    node sets.  ``tsync`` adds the line 18-19 synchronization band (note:
    those rows are differences of convex functions — the resulting model is
    not convex-certifiable and must be solved with the enumeration oracle).

    ``fine_tuning`` implements the paper's deferred refinement ("the coupler
    and the river models take less time to run ... so these components were
    not included in our HSLB models, but they can be added later for fine
    tuning"): ``perf`` must then also carry RTM (riding the land model's
    nodes) and CPL (riding the atmosphere's); their fitted times join the
    objective, so the optimizer sees the overhead the four-component model
    ignores.  Supported for the min-max objective on layout 1.
    """
    for comp in (A, O, I, L):
        if comp not in perf:
            raise ConfigurationError(f"missing performance model for {comp.value}")
        if comp not in bounds:
            raise ConfigurationError(f"missing bounds for {comp.value}")
    if fine_tuning:
        if layout is not Layout.HYBRID or objective is not ObjectiveKind.MIN_MAX:
            raise ConfigurationError(
                "coupler/river fine-tuning is defined for layout 1 with the "
                "min-max objective"
            )
        for comp in (ComponentId.RTM, ComponentId.CPL):
            if comp not in perf:
                raise ConfigurationError(
                    f"fine-tuning needs a performance model for {comp.value}"
                )

    m = Model(name=f"{name}_layout{layout.value}_{objective.value}")

    n = {}
    for comp in (I, L, A, O):
        lo, hi = bounds[comp]
        lo = max(1, int(lo))
        hi = min(int(hi), total_nodes)
        if lo > hi:
            raise ConfigurationError(
                f"{comp.value}: empty node box [{lo}, {hi}] for N={total_nodes}"
            )
        n[comp] = m.add_variable(VAR_NAMES[comp], VarType.INTEGER, lo, hi)

    t_expr = {comp: perf[comp].expr(VAR_NAMES[comp]) for comp in (I, L, A, O)}
    # A safe upper bound for the time variables: every component at its
    # smallest allowed size, summed (the fully sequential worst case).
    t_cap = 2.0 * sum(float(perf[c](bounds[c][0])) for c in (I, L, A, O)) + 10.0

    # -- allowed-value sets (Table I lines 5-7, 29-31) --------------------------
    if ocn_allowed is not None:
        values = [v for v in ocn_allowed if n[O].lb <= v <= n[O].ub]
        if not values:
            raise ConfigurationError(
                "no allowed ocean node count inside the ocean's node box"
            )
        m.add_allowed_values(n[O], values, prefix="z_ocn")
    if atm_allowed is not None:
        if atm_allowed.get("values"):
            values = [v for v in atm_allowed["values"] if n[A].lb <= v <= n[A].ub]
            if not values:
                raise ConfigurationError(
                    "no allowed atmosphere node count inside the atmosphere box"
                )
            m.add_allowed_values(n[A], values, prefix="z_atm")
        else:
            n[A].lb = max(n[A].lb, float(atm_allowed["lo"]))
            n[A].ub = min(n[A].ub, float(atm_allowed["hi"]))
            if n[A].lb > n[A].ub:
                raise ConfigurationError("empty atmosphere node range")

    # -- node constraints (lines 20-21, 24-26, 28) ------------------------------
    if layout is Layout.HYBRID:
        m.add_constraint("node_na_no_leq_N_l20", n[A].ref() + n[O].ref(), Sense.LE, float(total_nodes))
        m.add_constraint("node_ni_nl_leq_na_l21", n[I].ref() + n[L].ref(), Sense.LE, n[A].ref())
    elif layout is Layout.SEQUENTIAL_SPLIT:
        for comp, line in ((L, 24), (I, 25), (A, 26)):
            m.add_constraint(
                f"node_{comp.value}_leq_N_minus_no_l{line}",
                n[comp].ref() + n[O].ref(),
                Sense.LE,
                float(total_nodes),
            )
    else:  # FULLY_SEQUENTIAL: boxes already say n_j <= N (line 28)
        pass

    # -- temporal constraints + objective ---------------------------------------
    if objective is ObjectiveKind.MIN_MAX:
        T = m.add_variable("T", VarType.CONTINUOUS, 0.0, t_cap)
        if layout is Layout.HYBRID:
            T_il = m.add_variable("T_icelnd", VarType.CONTINUOUS, 0.0, t_cap)
            m.add_constraint("t_icelnd_geq_ice_l15", T_il.ref(), Sense.GE, t_expr[I])
            m.add_constraint("t_icelnd_geq_lnd_l16", T_il.ref(), Sense.GE, t_expr[L])
            m.add_constraint("t_geq_icelnd_plus_atm_l17", T.ref(), Sense.GE, T_il.ref() + t_expr[A])
            m.add_constraint("t_geq_ocn_l18", T.ref(), Sense.GE, t_expr[O])
        elif layout is Layout.SEQUENTIAL_SPLIT:
            m.add_constraint(
                "t_geq_ice_lnd_atm_l22", T.ref(), Sense.GE,
                t_expr[I] + t_expr[L] + t_expr[A],
            )
            m.add_constraint("t_geq_ocn_l23", T.ref(), Sense.GE, t_expr[O])
        else:
            m.add_constraint(
                "t_geq_all_l27", T.ref(), Sense.GE,
                t_expr[I] + t_expr[L] + t_expr[A] + t_expr[O],
            )
        if fine_tuning:
            # The coupler rides the atmosphere's processors and the river
            # model the land's; their fitted times join the objective so the
            # optimizer sees the overhead the four-component model ignores.
            total = (
                T.ref()
                + perf[ComponentId.CPL].expr(VAR_NAMES[A])
                + perf[ComponentId.RTM].expr(VAR_NAMES[L])
            )
            m.set_objective(Objective("total_time", total, ObjSense.MINIMIZE))
        else:
            m.set_objective(Objective("total_time", T.ref(), ObjSense.MINIMIZE))
    elif objective is ObjectiveKind.MIN_SUM:
        total = t_expr[I] + t_expr[L] + t_expr[A] + t_expr[O]
        m.set_objective(Objective("sum_time", total, ObjSense.MINIMIZE))
    else:  # MAX_MIN
        Tmin = m.add_variable("T_min", VarType.CONTINUOUS, 0.0, t_cap)
        for comp in (I, L, A, O):
            # T_min <= T_j(n_j): nonconvex rows (documented; oracle-only).
            m.add_constraint(
                f"tmin_leq_{comp.value}", Tmin.ref(), Sense.LE, t_expr[comp]
            )
        m.set_objective(Objective("min_time", Tmin.ref(), ObjSense.MAXIMIZE))

    # -- synchronization band (lines 18-19 of the layout-1 block) ---------------
    if tsync is not None:
        if layout is not Layout.HYBRID:
            raise ConfigurationError("T_sync applies to layout 1 only")
        m.add_constraint(
            "sync_lnd_geq_ice_l19a", t_expr[L], Sense.GE, t_expr[I] - float(tsync)
        )
        m.add_constraint(
            "sync_lnd_leq_ice_l19b", t_expr[L], Sense.LE, t_expr[I] + float(tsync)
        )

    return m


def layout_problem_spec(
    layout: Layout,
    total_nodes: int,
    perf: dict,
    bounds: dict,
    ocn_allowed: list | None = None,
    atm_allowed: dict | None = None,
    objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
    tsync: float | None = None,
    fine_tuning: bool = False,
    name: str = "hslb",
) -> "LayoutProblemSpec":
    """The serializable description of a :func:`build_layout_model` call.

    Same signature as the builder; returns the
    :class:`~repro.spec.LayoutProblemSpec` whose
    :func:`build_layout_model_from_spec` rebuild is bit-identical to
    calling :func:`build_layout_model` directly (it *is* that call).
    """
    from repro.spec import LayoutProblemSpec

    return LayoutProblemSpec.from_args(
        layout=layout,
        total_nodes=total_nodes,
        perf=perf,
        bounds=bounds,
        ocn_allowed=ocn_allowed,
        atm_allowed=atm_allowed,
        objective=objective,
        tsync=tsync,
        fine_tuning=fine_tuning,
        name=name,
    )


def layout_problem_spec_for_case(
    case,
    fits: dict,
    objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
    tsync: float | None = None,
    layout: Layout | None = None,
    fine_tuning: bool = False,
) -> "LayoutProblemSpec":
    """Spec for a :class:`~repro.cesm.CESMCase` plus fitted curves.

    ``fits`` maps components to :class:`~repro.fitting.FitResult` or
    directly to :class:`~repro.fitting.PerfModel`; with ``fine_tuning`` it
    must also cover RTM and CPL.
    """
    perf = {
        comp: (f.model if hasattr(f, "model") else f) for comp, f in fits.items()
    }
    return layout_problem_spec(
        layout=layout or case.layout,
        total_nodes=case.total_nodes,
        perf=perf,
        bounds={c: case.component_bounds(c) for c in (A, O, I, L)},
        ocn_allowed=case.ocean_allowed(),
        atm_allowed=case.atm_allowed(),
        objective=objective,
        tsync=tsync,
        fine_tuning=fine_tuning,
        name=f"{case.resolution}_{case.total_nodes}",
    )


def build_layout_model_from_spec(spec) -> Model:
    """Registry builder for ``kind="layout_model"``: spec -> live Model.

    Accepts the :class:`~repro.spec.LayoutProblemSpec` or its stamped dict
    payload, and funnels it through :func:`build_layout_model` — the exact
    code path a direct call takes, which is what makes rebuilt models
    bit-identical to in-memory ones.
    """
    from repro.spec import LayoutProblemSpec

    if isinstance(spec, dict):
        spec = LayoutProblemSpec.from_dict(spec)
    return build_layout_model(
        layout=Layout(int(spec.layout)),
        total_nodes=int(spec.total_nodes),
        perf=spec.perf(),
        bounds=spec.component_bounds(),
        ocn_allowed=spec.ocn_allowed_list(),
        atm_allowed=spec.atm_allowed_dict(),
        objective=ObjectiveKind(spec.objective),
        tsync=spec.tsync,
        fine_tuning=spec.fine_tuning,
        name=spec.name,
    )


def build_layout_model_from_point(spec) -> Model:
    """Registry builder for ``kind="solve_point"``: the point's model."""
    from repro.spec import SolvePointSpec

    if isinstance(spec, dict):
        spec = SolvePointSpec.from_dict(spec)
    return build_layout_model_from_spec(spec.problem)


def layout_model_for_case(
    case,
    fits: dict,
    objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
    tsync: float | None = None,
    layout: Layout | None = None,
    fine_tuning: bool = False,
) -> Model:
    """Table I model for a :class:`~repro.cesm.CESMCase` and fitted curves.

    ``fits`` maps components to :class:`~repro.fitting.FitResult` or
    directly to :class:`~repro.fitting.PerfModel`; with ``fine_tuning`` it
    must also cover RTM and CPL.

    Since the spec refactor this routes through
    :func:`layout_problem_spec_for_case` + the builder registry, so the
    standard build path and the description-driven one are the same code.
    """
    spec = layout_problem_spec_for_case(
        case,
        fits,
        objective=objective,
        tsync=tsync,
        layout=layout,
        fine_tuning=fine_tuning,
    )
    return build_layout_model_from_spec(spec)
