"""Objective variants (paper Sec. III-D, equations (1)-(3)).

- ``MIN_MAX`` — minimize the coupled make-span (the layout's total-time
  composition).  "The min-max function performed slightly better than the
  max-min function ... and was the objective used in this work."
- ``MAX_MIN`` — maximize the minimum component time, under full node use;
  a balance-seeking heuristic.  Its epigraph rows are nonconvex, so it is
  solved by the exact enumeration oracle rather than branch-and-bound.
- ``MIN_SUM`` — minimize the plain sum of component times.  "Obviously out
  of consideration because CESM requires more complicated relationships
  between components than just a sum"; kept for the ablation benchmark.
"""

from __future__ import annotations

import enum


class ObjectiveKind(enum.Enum):
    MIN_MAX = "min_max"
    MAX_MIN = "max_min"
    MIN_SUM = "min_sum"

    @property
    def paper_equation(self) -> int:
        """Equation number in the paper's Sec. III-D."""
        return {"min_max": 1, "max_min": 2, "min_sum": 3}[self.value]

    @property
    def bnb_solvable(self) -> bool:
        """Whether the Table I MINLP for this objective is convex-certifiable
        (and therefore solvable by the LP/NLP branch-and-bound)."""
        return self is not ObjectiveKind.MAX_MIN
