"""Exact layout optimizer by structured enumeration.

Branch-and-bound answers must be *verifiable*: this module solves the same
Table I problems by exhaustive (but structured) enumeration over the integer
node counts, using the monotone structure of the prefix-minimized component
curves.  It is exact for every objective and constraint combination —
including the nonconvex ones (T_sync band, max-min objective) that the
LP/NLP solver's convexity certificate excludes — at the cost of scaling with
the node budget instead of with the combinatorial structure.

Complexities (N = total nodes):

- layout 1, min-max: O(N log N) via prefix minima + a bisection per budget,
- layouts 2/3: O(N) — the sequential stages separate,
- min-sum / max-min / T_sync on layout 1: O(N^2) pair scans, gated to
  N <= 8192 (they exist for the 1-degree ablations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout, composed_total
from repro.exceptions import ConfigurationError
from repro.expr.node import VarRef, const
from repro.fitting.perfmodel import PerfModel
from repro.hslb.objectives import ObjectiveKind
from repro.kernels import default_cache

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

_BRUTE_FORCE_LIMIT = 8192


def _tabulate(perf, idx: np.ndarray) -> np.ndarray:
    """Evaluate ``perf`` on the integer grid ``idx`` (as floats).

    :class:`PerfModel` curves go through a cached batched kernel
    (:meth:`repro.kernels.KernelCache.batch`) built from a symbolic tree
    whose operation order matches ``PerfModel.__call__`` exactly —
    ``(a/n + b*n**c) + d`` — so the tabulation is bit-identical to direct
    evaluation while the same fitted curve, re-tabulated across cases and
    components, compiles only once per process.  Arbitrary callables fall
    back to direct vectorized evaluation.
    """
    pts = idx.astype(float)
    if isinstance(perf, PerfModel):
        n = VarRef("n")
        expr = const(perf.a) / n + const(perf.b) * n ** const(perf.c) + const(perf.d)
        kernel = default_cache().batch([expr], {"n": 0})
        return kernel.values(pts[:, None])[:, 0]
    return perf(pts)


def _first_min_args(values: np.ndarray) -> np.ndarray:
    """Running argmin with *first-occurrence* tie-breaking.

    ``out[i]`` is the smallest index ``j <= i`` minimizing ``values[:i+1]``
    — the vectorized equivalent of a left-to-right scan keeping the first
    strict improvement.
    """
    running = np.minimum.accumulate(values)
    prev = np.concatenate(([np.inf], running[:-1]))
    improving = values < prev
    return np.maximum.accumulate(
        np.where(improving, np.arange(values.size), 0)
    )


@dataclass(frozen=True)
class OracleResult:
    """Exact optimum of one layout problem."""

    allocation: dict            # ComponentId -> int
    objective_value: float      # value of the chosen objective
    predicted_times: dict       # ComponentId -> seconds under the fits
    makespan: float             # layout composition of predicted_times

    def nodes_used(self) -> int:
        return sum(self.allocation.values())


class _Curve:
    """A component curve tabulated on [0, N] with prefix minima."""

    def __init__(self, perf, lo: int, hi: int, N: int, allowed=None):
        self.lo, self.hi = lo, hi
        values = np.full(N + 1, np.inf)
        if allowed is not None:
            idx = np.array([v for v in allowed if lo <= v <= hi], dtype=int)
        else:
            idx = np.arange(lo, hi + 1)
        if idx.size == 0:
            raise ConfigurationError("component has no admissible node count")
        values[idx] = _tabulate(perf, idx)
        self.values = values
        # prefix minimum and its arg: best time using at most x nodes.
        self.best = np.minimum.accumulate(values)
        arg = np.arange(N + 1)
        improving = values <= self.best  # True where a new minimum is set
        arg[~improving] = 0
        self.best_arg = np.maximum.accumulate(np.where(improving, arg, 0))

    def at(self, n: int) -> float:
        return float(self.values[n])


class LayoutOracle:
    """Exact solver over tabulated performance curves."""

    def __init__(
        self,
        layout: Layout,
        total_nodes: int,
        perf: dict,
        bounds: dict,
        ocn_allowed: list | None = None,
        atm_allowed: dict | None = None,
    ):
        self.layout = layout
        self.N = int(total_nodes)
        get = lambda c: (max(1, int(bounds[c][0])), min(int(bounds[c][1]), self.N))
        lo_i, hi_i = get(I)
        lo_l, hi_l = get(L)
        lo_a, hi_a = get(A)
        lo_o, hi_o = get(O)
        self.ice = _Curve(perf[I], lo_i, hi_i, self.N)
        self.lnd = _Curve(perf[L], lo_l, hi_l, self.N)

        if atm_allowed is not None and atm_allowed.get("values"):
            a_vals = [v for v in atm_allowed["values"] if lo_a <= v <= hi_a]
        else:
            if atm_allowed is not None:
                lo_a = max(lo_a, int(atm_allowed["lo"]))
                hi_a = min(hi_a, int(atm_allowed["hi"]))
            a_vals = list(range(lo_a, hi_a + 1))
        if not a_vals:
            raise ConfigurationError("empty atmosphere node set")
        self.atm = _Curve(perf[A], lo_a, hi_a, self.N, allowed=a_vals)
        self.atm_values = sorted(a_vals)

        if ocn_allowed is not None:
            o_vals = [v for v in ocn_allowed if lo_o <= v <= hi_o]
        else:
            o_vals = list(range(lo_o, hi_o + 1))
        if not o_vals:
            raise ConfigurationError("empty ocean node set")
        self.ocn = _Curve(perf[O], lo_o, hi_o, self.N, allowed=o_vals)
        self.ocn_values = sorted(o_vals)
        self.perf = perf

    # -- public ------------------------------------------------------------------

    def solve(
        self,
        objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
        tsync: float | None = None,
    ) -> OracleResult:
        """Exact optimum for ``objective`` (optionally with a T_sync band)."""
        if tsync is not None and self.layout is not Layout.HYBRID:
            raise ConfigurationError("T_sync applies to layout 1 only")
        if self.layout is Layout.HYBRID:
            if objective is ObjectiveKind.MIN_MAX:
                return self._solve_hybrid_minmax(tsync)
            if objective is ObjectiveKind.MIN_SUM:
                return self._solve_hybrid_pairscan(tsync, combine="sum")
            return self._solve_hybrid_maxmin(tsync)
        if objective is ObjectiveKind.MAX_MIN:
            raise ConfigurationError("max-min oracle is implemented for layout 1 only")
        return self._solve_sequential(objective)

    # -- layout 1 ----------------------------------------------------------------

    def _pair_minmax(self, budget_cap: int):
        """pair[m] = min over ice/lnd budgets summing to <= m of
        max(T_ice, T_lnd); plus the (ni, nl) choices realizing it."""
        ice, lnd = self.ice, self.lnd
        pair = np.full(budget_cap + 1, np.inf)
        choice = np.zeros((budget_cap + 1, 2), dtype=int)
        lo = ice.lo + lnd.lo
        for m in range(lo, budget_cap + 1):
            x_lo, x_hi = ice.lo, m - lnd.lo
            # max(ice.best[x], lnd.best[m-x]) is unimodal: bisect the
            # crossing of the non-increasing and non-decreasing branches.
            lo_b, hi_b = x_lo, x_hi
            while lo_b < hi_b:
                mid = (lo_b + hi_b) // 2
                if ice.best[mid] > lnd.best[m - mid]:
                    lo_b = mid + 1
                else:
                    hi_b = mid
            best_v, best_x = np.inf, x_lo
            for x in {lo_b, max(x_lo, lo_b - 1), x_hi, x_lo}:
                if x_lo <= x <= x_hi:
                    v = max(ice.best[x], lnd.best[m - x])
                    if v < best_v:
                        best_v, best_x = v, x
            pair[m] = best_v
            choice[m] = (ice.best_arg[best_x], lnd.best_arg[m - best_x])
        # enforce monotonicity (a bigger budget can reuse a smaller one)
        for m in range(lo + 1, budget_cap + 1):
            if pair[m - 1] < pair[m]:
                pair[m] = pair[m - 1]
                choice[m] = choice[m - 1]
        return pair, choice

    def _pair_scan(self, budget_cap: int, combine: str, tsync: float | None):
        """O(N^2) pair table for the nonconvex variants (gated by size)."""
        if budget_cap > _BRUTE_FORCE_LIMIT:
            raise ConfigurationError(
                f"pair scan needs N <= {_BRUTE_FORCE_LIMIT} "
                f"(requested budget {budget_cap}); use min-max without T_sync "
                "for large jobs"
            )
        ice, lnd = self.ice, self.lnd
        ni = np.arange(ice.lo, min(ice.hi, budget_cap) + 1)
        ti = ice.values[ni]
        pair = np.full(budget_cap + 1, np.inf)
        choice = np.zeros((budget_cap + 1, 2), dtype=int)
        for m in range(ice.lo + lnd.lo, budget_cap + 1):
            nl_for = m - ni
            ok = (nl_for >= lnd.lo) & (nl_for <= lnd.hi)
            if not ok.any():
                continue
            tl = np.full(ni.shape, np.inf)
            tl[ok] = lnd.values[nl_for[ok]]
            if combine == "sum":
                agg = ti + tl
            else:  # minmax
                agg = np.maximum(ti, tl)
            if tsync is not None:
                agg = np.where(np.abs(ti - tl) <= tsync, agg, np.inf)
            j = int(np.argmin(agg))
            if np.isfinite(agg[j]):
                pair[m] = float(agg[j])
                choice[m] = (int(ni[j]), int(m - ni[j]))
        for m in range(1, budget_cap + 1):  # budget monotonicity
            if pair[m - 1] < pair[m]:
                pair[m] = pair[m - 1]
                choice[m] = choice[m - 1]
        return pair, choice

    def _solve_hybrid_minmax(self, tsync):
        budget_cap = min(self.atm.hi, self.N - self.ocn.lo)
        if budget_cap < self.atm.lo:
            raise ConfigurationError("no room for the atmosphere group")
        if tsync is None:
            pair, choice = self._pair_minmax(budget_cap)
        else:
            pair, choice = self._pair_scan(budget_cap, "minmax", tsync)
        return self._combine_hybrid(pair, choice, stage_combine="minmax")

    def _solve_hybrid_pairscan(self, tsync, combine: str):
        budget_cap = min(self.atm.hi, self.N - self.ocn.lo)
        pair, choice = self._pair_scan(budget_cap, combine, tsync)
        return self._combine_hybrid(pair, choice, stage_combine=combine)

    def _combine_hybrid(self, pair, choice, stage_combine: str):
        """Minimize over (n_atm, n_ocn) given the ice/land pair table.

        All candidate ocean sizes are scored in one vectorized block:
        a ``searchsorted`` finds each candidate's largest admissible
        atmosphere size, prefix minima of the stage-1 table supply the best
        atmosphere choice at or below it, and a single ``argmin`` picks the
        winner (first-occurrence ties reproduce the scan order exactly).
        """
        a_vals = np.array([v for v in self.atm_values if v < pair.shape[0]])
        h = pair[a_vals] + self.atm.values[a_vals]
        # prefix-min of h over ascending atmosphere sizes
        h_pref = np.minimum.accumulate(h)
        h_arg = np.arange(len(a_vals))
        improving = h <= h_pref
        h_arg = np.maximum.accumulate(np.where(improving, h_arg, 0))

        o_vals = np.array(self.ocn_values)
        idx = np.searchsorted(a_vals, self.N - o_vals, side="right") - 1
        feasible = idx >= 0
        stage1 = h_pref[np.maximum(idx, 0)]
        t_o = self.ocn.values[o_vals]
        total = stage1 + t_o if stage_combine == "sum" else np.maximum(stage1, t_o)
        total = np.where(feasible, total, np.inf)
        j = int(np.argmin(total))
        if not np.isfinite(total[j]):
            raise ConfigurationError("no feasible (atm, ocn) split")
        na = int(a_vals[int(h_arg[idx[j]])])
        no = int(o_vals[j])
        ni, nl = map(int, choice[na])
        return self._result({I: ni, L: nl, A: na, O: no}, float(total[j]))

    def _solve_hybrid_maxmin(self, tsync):
        """max-min with full node use: n_ice + n_lnd = n_atm, n_atm + n_ocn = N."""
        if self.N > _BRUTE_FORCE_LIMIT:
            raise ConfigurationError(
                f"max-min oracle needs N <= {_BRUTE_FORCE_LIMIT}"
            )
        ice, lnd = self.ice, self.lnd
        best = (-np.inf, None)
        a_set = set(self.atm_values)
        for no in self.ocn_values:
            na = self.N - no
            if na not in a_set or not np.isfinite(self.atm.values[na]):
                continue
            ni = np.arange(ice.lo, min(ice.hi, na - lnd.lo) + 1)
            if ni.size == 0:
                continue
            nl = na - ni
            ok = (nl >= lnd.lo) & (nl <= lnd.hi)
            if not ok.any():
                continue
            ti, tl = ice.values[ni[ok]], lnd.values[nl[ok]]
            if tsync is not None:
                band = np.abs(ti - tl) <= tsync
                if not band.any():
                    continue
                ti, tl = ti[band], tl[band]
                ni_ok = ni[ok][band]
            else:
                ni_ok = ni[ok]
            inner = np.minimum(ti, tl)
            j = int(np.argmax(inner))
            value = min(
                float(inner[j]), self.atm.at(na), self.ocn.at(no)
            )
            if value > best[0]:
                best = (value, {I: int(ni_ok[j]), L: int(na - ni_ok[j]), A: na, O: no})
        value, alloc = best
        if alloc is None:
            raise ConfigurationError("no fully-using allocation exists for max-min")
        return self._result(alloc, value)

    # -- layouts 2 and 3 -----------------------------------------------------------

    def _solve_sequential(self, objective: ObjectiveKind):
        if self.layout is Layout.SEQUENTIAL_SPLIT:
            # Score every candidate ocean size in one vectorized block.
            # Each stage-1 component is independently prefix-minimized
            # within the cap left by the ocean; first-occurrence argmin
            # reproduces the scan order's tie-breaking.
            a_vals = np.array(self.atm_values)
            a_times = self.atm.values[a_vals]
            a_best = _first_min_args(a_times)

            o_vals = np.array(self.ocn_values)
            cap = self.N - o_vals
            idx = np.searchsorted(a_vals, cap, side="right") - 1
            cap_i = np.minimum(cap, self.ice.hi)
            cap_l = np.minimum(cap, self.lnd.hi)
            feasible = (
                (cap >= 1) & (idx >= 0)
                & (cap_i >= self.ice.lo) & (cap_l >= self.lnd.lo)
            )
            idx_s = np.maximum(idx, 0)
            cap_i = np.maximum(cap_i, 0)
            cap_l = np.maximum(cap_l, 0)
            na = a_vals[a_best[idx_s]]
            ni = self.ice.best_arg[cap_i]
            nl = self.lnd.best_arg[cap_l]
            stage1 = self.ice.values[ni] + self.lnd.values[nl] + self.atm.values[na]
            t_o = self.ocn.values[o_vals]
            total = (
                stage1 + t_o
                if objective is ObjectiveKind.MIN_SUM
                else np.maximum(stage1, t_o)
            )
            total = np.where(feasible, total, np.inf)
            j = int(np.argmin(total))
            if not np.isfinite(total[j]):
                raise ConfigurationError("layout 2: no feasible allocation")
            alloc = {I: int(ni[j]), L: int(nl[j]), A: int(na[j]), O: int(o_vals[j])}
            return self._result(alloc, float(total[j]))

        # FULLY_SEQUENTIAL: all components independent within N.
        ni = int(self.ice.best_arg[min(self.ice.hi, self.N)])
        nl = int(self.lnd.best_arg[min(self.lnd.hi, self.N)])
        na = self._best_atm_upto(self.N)
        no = min(self.ocn_values, key=self.ocn.at)
        alloc = {I: ni, L: nl, A: na, O: no}
        total = sum(self.perf[c](float(alloc[c])) for c in (I, L, A, O))
        return self._result(alloc, float(total))

    def _best_atm_upto(self, cap: int):
        vals = [v for v in self.atm_values if v <= cap]
        if not vals:
            return None
        return min(vals, key=self.atm.at)

    # -- shared ---------------------------------------------------------------------

    def _result(self, alloc: dict, objective_value: float) -> OracleResult:
        times = {c: float(self.perf[c](float(alloc[c]))) for c in (I, L, A, O)}
        return OracleResult(
            allocation=alloc,
            objective_value=float(objective_value),
            predicted_times=times,
            makespan=composed_total(self.layout, times),
        )


def oracle_for_case(case, fits: dict) -> LayoutOracle:
    """Oracle over a case's configuration and fitted curves."""
    perf = {c: (f.model if hasattr(f, "model") else f) for c, f in fits.items()}
    return LayoutOracle(
        layout=case.layout,
        total_nodes=case.total_nodes,
        perf=perf,
        bounds={c: case.component_bounds(c) for c in (A, O, I, L)},
        ocn_allowed=case.ocean_allowed(),
        atm_allowed=case.atm_allowed(),
    )
