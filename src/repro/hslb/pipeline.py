"""The end-to-end HSLB pipeline (paper Sec. III-F).

Gather -> fit -> solve -> execute over one :class:`~repro.cesm.CESMCase`:

>>> from repro.cesm import make_case
>>> from repro.hslb import HSLBPipeline
>>> result = HSLBPipeline(make_case("1deg", 128)).run()   # doctest: +SKIP
>>> print(result.report())                                # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.case import CESMCase
from repro.cesm.components import OPTIMIZED_COMPONENTS
from repro.cesm.simulator import ComponentTimings, CoupledRunSimulator
from repro.fitting import FitOptions
from repro.hslb.fitstep import fit_components
from repro.hslb.gather import BenchmarkData, gather_benchmarks
from repro.hslb.objectives import ObjectiveKind
from repro.hslb.report import format_run_result
from repro.hslb.solve import SolveOutcome, solve_allocation
from repro.minlp import MINLPOptions


@dataclass
class HSLBRunResult:
    """Everything one HSLB pass produced."""

    case: CESMCase
    benchmarks: BenchmarkData
    fits: dict                    # ComponentId -> FitResult
    solve: SolveOutcome
    actual: ComponentTimings

    @property
    def allocation(self) -> dict:
        return self.solve.allocation

    @property
    def predicted_total(self) -> float:
        return self.solve.predicted_total

    @property
    def actual_total(self) -> float:
        return self.actual.total

    def prediction_error(self) -> float:
        """Relative |predicted - actual| / actual of the total time."""
        return abs(self.predicted_total - self.actual_total) / self.actual_total

    def fit_r_squared(self) -> dict:
        return {c: f.r_squared for c, f in self.fits.items()}

    def report(self) -> str:
        """Table III-style text block for this run."""
        return format_run_result(self)


class HSLBPipeline:
    """Configure once, :meth:`run` to execute all four steps."""

    def __init__(
        self,
        case: CESMCase,
        points: int = 5,
        objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
        method: str = "lpnlp",
        fit_options: FitOptions | None = None,
        minlp_options: MINLPOptions | None = None,
        seed: int | None = None,
        fine_tuning: bool = False,
    ):
        # A pipeline-level seed overrides the case's (convenience for
        # repeated runs with fresh noise).
        if seed is not None and seed != case.seed:
            case = CESMCase(
                resolution=case.resolution,
                total_nodes=case.total_nodes,
                layout=case.layout,
                unconstrained_ocean=case.unconstrained_ocean,
                machine=case.machine,
                seed=seed,
            )
        self.case = case
        self.points = points
        self.objective = objective
        self.method = method
        self.fit_options = fit_options
        self.minlp_options = minlp_options
        self.fine_tuning = fine_tuning
        self.simulator = CoupledRunSimulator(self.case)

    # individual steps exposed for experimentation ------------------------------

    def gather(self) -> BenchmarkData:
        """Step 1: benchmark sweeps for the optimized components (plus the
        riding coupler/river components under fine-tuning)."""
        components = OPTIMIZED_COMPONENTS
        if self.fine_tuning:
            from repro.cesm.components import ComponentId

            components = OPTIMIZED_COMPONENTS + (
                ComponentId.RTM,
                ComponentId.CPL,
            )
        return gather_benchmarks(
            self.simulator, points=self.points, components=components
        )

    def fit(self, data: BenchmarkData) -> dict:
        """Step 2: least-squares fits."""
        return fit_components(data, self.fit_options)

    def solve(self, fits: dict) -> SolveOutcome:
        """Step 3: MINLP for the optimal allocation."""
        return solve_allocation(
            self.case,
            fits,
            objective=self.objective,
            method=self.method,
            options=self.minlp_options,
            fine_tuning=self.fine_tuning,
        )

    def execute(self, outcome: SolveOutcome) -> ComponentTimings:
        """Step 4: coupled run at the chosen allocation."""
        return self.simulator.run_coupled(
            {c: outcome.allocation[c] for c in OPTIMIZED_COMPONENTS}
        )

    def run(self) -> HSLBRunResult:
        """All four steps."""
        data = self.gather()
        fits = self.fit(data)
        outcome = self.solve(fits)
        actual = self.execute(outcome)
        return HSLBRunResult(
            case=self.case,
            benchmarks=data,
            fits=fits,
            solve=outcome,
            actual=actual,
        )
