"""The end-to-end HSLB pipeline (paper Sec. III-F).

Gather -> fit -> solve -> execute over one :class:`~repro.cesm.CESMCase`:

>>> from repro.cesm import make_case
>>> from repro.hslb import HSLBPipeline
>>> result = HSLBPipeline(make_case("1deg", 128)).run()   # doctest: +SKIP
>>> print(result.report())                                # doctest: +SKIP

Resilient mode — pass ``fault_profile`` (chaos injection), ``retry_policy``
and/or ``deadline`` — threads a shared :class:`~repro.resilience.EventLog`
through every step, retries failed benchmarks and coupled runs, and falls
back across solver backends; see :mod:`repro.resilience`.  With none of the
three set, every step runs the historical clean path bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cesm.case import CESMCase
from repro.cesm.components import OPTIMIZED_COMPONENTS
from repro.cesm.simulator import ComponentTimings, CoupledRunSimulator
from repro.exceptions import InjectedFaultError
from repro.fitting import FitOptions
from repro.hslb.fitstep import fit_components
from repro.hslb.gather import BenchmarkData, gather_benchmarks
from repro.hslb.objectives import ObjectiveKind
from repro.hslb.report import format_run_result
from repro.hslb.solve import SolveOutcome, solve_allocation, solve_allocation_resilient
from repro.minlp import MINLPOptions
from repro.resilience import Deadline, EventLog, FaultProfile, FaultySimulator, RetryPolicy
from repro.resilience.events import EventKind


@dataclass
class HSLBRunResult:
    """Everything one HSLB pass produced."""

    case: CESMCase
    benchmarks: BenchmarkData
    fits: dict                    # ComponentId -> FitResult
    solve: SolveOutcome
    actual: ComponentTimings
    events: EventLog = field(default_factory=EventLog)

    @property
    def allocation(self) -> dict:
        return self.solve.allocation

    @property
    def predicted_total(self) -> float:
        return self.solve.predicted_total

    @property
    def actual_total(self) -> float:
        return self.actual.total

    def prediction_error(self) -> float:
        """Relative |predicted - actual| / actual of the total time."""
        return abs(self.predicted_total - self.actual_total) / self.actual_total

    def fit_r_squared(self) -> dict:
        return {c: f.r_squared for c, f in self.fits.items()}

    def report(self) -> str:
        """Table III-style text block for this run."""
        return format_run_result(self)


class HSLBPipeline:
    """Configure once, :meth:`run` to execute all four steps."""

    def __init__(
        self,
        case: CESMCase,
        points: int = 5,
        objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
        method: str = "lpnlp",
        fit_options: FitOptions | None = None,
        minlp_options: MINLPOptions | None = None,
        seed: int | None = None,
        fine_tuning: bool = False,
        fault_profile: FaultProfile | None = None,
        retry_policy: RetryPolicy | None = None,
        deadline: float | Deadline | None = None,
        executor=None,
        workers: int | None = None,
        reuse=None,
    ):
        # A pipeline-level seed overrides the case's (convenience for
        # repeated runs with fresh noise).
        if seed is not None and seed != case.seed:
            case = CESMCase(
                resolution=case.resolution,
                total_nodes=case.total_nodes,
                layout=case.layout,
                unconstrained_ocean=case.unconstrained_ocean,
                machine=case.machine,
                seed=seed,
            )
        self.case = case
        self.points = points
        self.objective = objective
        self.method = method
        self.fit_options = fit_options
        self.minlp_options = minlp_options
        self.fine_tuning = fine_tuning
        self.fault_profile = fault_profile
        # Any resilience knob switches the whole pipeline onto the resilient
        # path; a fault profile without an explicit policy still needs
        # retries to survive its own chaos.
        self.resilient = (
            fault_profile is not None
            or retry_policy is not None
            or deadline is not None
        )
        self.retry_policy = retry_policy or (RetryPolicy() if self.resilient else None)
        self.deadline_seconds = deadline
        # Parallel execution (see repro.parallel): the gather step fans its
        # sweeps out on `executor`, and `workers` > 1 additionally enables
        # speculative node solves inside the MINLP step.  Results stay
        # bit-identical to the serial defaults.
        self.executor = executor
        self.workers = workers
        # Cross-solve reuse (see repro.reuse): pass a SolveFamily to thread
        # warm state through this pipeline's MINLP solve — and, by sharing
        # one family across several pipelines, through a whole sequence of
        # related tuning runs.  ``True`` creates a private family.
        if reuse is True:
            from repro.reuse import SolveFamily

            reuse = SolveFamily()
        self.reuse = reuse or None
        self.events = EventLog()
        self.simulator = CoupledRunSimulator(self.case)
        if fault_profile is not None and fault_profile.active:
            self.simulator = FaultySimulator(self.simulator, fault_profile)

    # individual steps exposed for experimentation ------------------------------

    def gather(self, deadline: Deadline | None = None) -> BenchmarkData:
        """Step 1: benchmark sweeps for the optimized components (plus the
        riding coupler/river components under fine-tuning)."""
        components = OPTIMIZED_COMPONENTS
        if self.fine_tuning:
            from repro.cesm.components import ComponentId

            components = OPTIMIZED_COMPONENTS + (
                ComponentId.RTM,
                ComponentId.CPL,
            )
        if not self.resilient:
            return gather_benchmarks(
                self.simulator, points=self.points, components=components,
                executor=self.executor, workers=self.workers,
            )
        return gather_benchmarks(
            self.simulator,
            points=self.points,
            components=components,
            policy=self.retry_policy,
            events=self.events,
            deadline=deadline if deadline is not None else self.deadline_seconds,
            executor=self.executor,
            workers=self.workers,
        )

    def fit(self, data: BenchmarkData) -> dict:
        """Step 2: least-squares fits."""
        if not self.resilient:
            return fit_components(data, self.fit_options)
        return fit_components(
            data, self.fit_options, policy=self.retry_policy, events=self.events
        )

    def solve(self, fits: dict, deadline: Deadline | None = None) -> SolveOutcome:
        """Step 3: MINLP for the optimal allocation."""
        options = self._solver_options()
        if not self.resilient:
            return solve_allocation(
                self.case,
                fits,
                objective=self.objective,
                method=self.method,
                options=options,
                fine_tuning=self.fine_tuning,
                reuse=self.reuse,
            )
        return solve_allocation_resilient(
            self.case,
            fits,
            objective=self.objective,
            method=self.method,
            options=options,
            fine_tuning=self.fine_tuning,
            events=self.events,
            deadline=deadline if deadline is not None else self.deadline_seconds,
            reuse=self.reuse,
        )

    def _solver_options(self) -> MINLPOptions | None:
        """MINLP options with the pipeline's worker count folded in.

        Explicit ``minlp_options.workers`` wins; the pipeline-level
        ``workers`` only fills the default.
        """
        options = self.minlp_options
        if self.workers is None or self.workers <= 1:
            return options
        if options is None:
            return MINLPOptions(workers=self.workers)
        if options.workers == 1:
            return replace(options, workers=self.workers)
        return options

    def execute(self, outcome: SolveOutcome) -> ComponentTimings:
        """Step 4: coupled run at the chosen allocation."""
        allocation = {c: outcome.allocation[c] for c in OPTIMIZED_COMPONENTS}
        if not self.resilient:
            return self.simulator.run_coupled(allocation)
        policy = self.retry_policy
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self.simulator.run_coupled(allocation)
            except InjectedFaultError as exc:
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.delay_for(attempt, self.case.seed, "run")
                self.events.record(
                    EventKind.EXECUTE_RETRY,
                    stage="execute",
                    detail=(
                        f"coupled run failed ({exc}); "
                        f"resubmitting after {delay:.3f}s"
                    ),
                    attempt=attempt,
                    delay=round(delay, 6),
                )
                policy.pause(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def run(self, data: BenchmarkData | None = None, fits: dict | None = None) -> HSLBRunResult:
        """All four steps.

        ``data`` (pre-gathered benchmarks) skips step 1; ``fits``
        (pre-fitted or spec-pinned curves) skips steps 1 *and* 2.  A
        :class:`~repro.spec.TuneSpec` carrying curves or benchmark samples
        lands here, which is what makes spec replays deterministic: nothing
        is re-measured.
        """
        deadline = None
        if self.resilient:
            # Fresh log + fault history per run: two runs of the same
            # pipeline replay the exact same chaos and events.
            self.events = EventLog()
            if isinstance(self.simulator, FaultySimulator):
                self.simulator.reset()
            deadline = Deadline.coerce(self.deadline_seconds)
        if fits is None:
            if data is None:
                data = self.gather(deadline=deadline)
            fits = self.fit(data)
        elif data is None:
            data = BenchmarkData()
        outcome = self.solve(fits, deadline=deadline)
        actual = self.execute(outcome)
        return HSLBRunResult(
            case=self.case,
            benchmarks=data,
            fits=fits,
            solve=outcome,
            actual=actual,
            events=self.events,
        )

    # -- description-driven construction (see docs/specs.md) --------------------

    def to_spec(self, curves: dict | None = None, benchmarks=None):
        """This pipeline's configuration as a :class:`~repro.spec.TuneSpec`.

        ``curves`` (``{ComponentId: PerfModel | FitResult}``) pins fitted
        curves into the spec so replays skip gather+fit; ``benchmarks`` (a
        :class:`BenchmarkData`) pins raw samples so replays skip gather but
        refit.  The solver worker count is folded into the serialized
        options (:meth:`_solver_options`), so a ``workers>1`` pipeline
        round-trips to an equivalent solve; the *executor* (serial, thread,
        process) is deliberately not part of the spec — it is deployment,
        not problem description, and results are bit-identical across
        executors by the parallel layer's contract.
        """
        from repro.spec import (
            BudgetSpec,
            CaseSpec,
            TuneSpec,
            curves_to_dict,
            fault_profile_to_dict,
            fit_options_to_dict,
        )
        from repro.minlp.options import minlp_options_to_dict

        deadline = self.deadline_seconds
        if isinstance(deadline, Deadline):
            deadline = deadline.seconds
        max_retries = None
        if self.resilient and self.retry_policy is not None:
            max_retries = self.retry_policy.max_attempts
        budget = None
        if deadline is not None or max_retries is not None:
            budget = BudgetSpec(deadline=deadline, max_retries=max_retries)
        options = self._solver_options()
        bench_payload = None
        if benchmarks is not None:
            bench_payload = {
                comp.value: {
                    "nodes": [int(v) for v in benchmarks.nodes(comp)],
                    "seconds": [float(v) for v in benchmarks.times(comp)],
                }
                for comp in benchmarks.components()
            }
        return TuneSpec(
            case=CaseSpec.from_case(self.case),
            points=self.points,
            objective=self.objective.value,
            method=self.method,
            fine_tuning=self.fine_tuning,
            reuse=self.reuse is not None,
            curves=None if curves is None else curves_to_dict(curves),
            benchmarks=bench_payload,
            options=None if options is None else minlp_options_to_dict(options),
            fit_options=(
                None if self.fit_options is None
                else fit_options_to_dict(self.fit_options)
            ),
            budget=budget,
            fault_profile=(
                None if self.fault_profile is None
                else fault_profile_to_dict(self.fault_profile)
            ),
        )

    @classmethod
    def from_spec(cls, spec, executor=None, workers=None, reuse=None) -> "HSLBPipeline":
        """Rebuild the pipeline a :class:`~repro.spec.TuneSpec` describes.

        ``executor``/``workers`` attach runtime resources (not part of the
        spec); ``reuse`` overrides the spec's boolean with a live
        :class:`~repro.reuse.SolveFamily` to share warm state across specs.
        """
        from repro.spec import (
            TuneSpec,
            fault_profile_from_dict,
            fit_options_from_dict,
        )
        from repro.minlp.options import minlp_options_from_dict

        if isinstance(spec, dict):
            spec = TuneSpec.from_dict(spec)
        budget = spec.budget
        retry_policy = None
        if budget is not None and budget.max_retries is not None:
            retry_policy = RetryPolicy(max_attempts=budget.max_retries)
        if reuse is None:
            reuse = True if spec.reuse else None
        return cls(
            spec.case.to_case(),
            points=spec.points,
            objective=ObjectiveKind(spec.objective),
            method=spec.method,
            fit_options=(
                None if spec.fit_options is None
                else fit_options_from_dict(spec.fit_options)
            ),
            minlp_options=(
                None if spec.options is None
                else minlp_options_from_dict(spec.options)
            ),
            fine_tuning=spec.fine_tuning,
            fault_profile=(
                None if spec.fault_profile is None
                else fault_profile_from_dict(spec.fault_profile)
            ),
            retry_policy=retry_policy,
            deadline=None if budget is None else budget.deadline,
            executor=executor,
            workers=workers,
            reuse=reuse,
        )


def pipeline_from_spec(spec, **kwargs) -> HSLBPipeline:
    """Registry builder for ``kind="tune"`` (see :mod:`repro.spec.registry`)."""
    return HSLBPipeline.from_spec(spec, **kwargs)
