"""Table III-style text reporting."""

from __future__ import annotations

from repro.cesm.components import OPTIMIZED_COMPONENTS
from repro.util.tables import TextTable


def format_table3_block(
    title: str,
    manual: dict | None,
    manual_times: dict | None,
    predicted_nodes: dict,
    predicted_times: dict,
    actual_times: dict | None,
    manual_total: float | None = None,
    predicted_total: float | None = None,
    actual_total: float | None = None,
) -> str:
    """One block of the paper's Table III as aligned text.

    ``manual*`` columns are optional (the unconstrained-ocean entries of the
    paper's table have no manual column either).
    """
    headers = ["components"]
    if manual is not None:
        headers += ["manual # nodes", "manual time, sec"]
    headers += ["HSLB # nodes", "HSLB predicted, sec"]
    if actual_times is not None:
        headers += ["HSLB actual, sec"]

    table = TextTable(headers, title=title)
    for comp in OPTIMIZED_COMPONENTS:
        row = [comp.value]
        if manual is not None:
            row += [manual[comp], manual_times[comp]]
        row += [predicted_nodes[comp], predicted_times[comp]]
        if actual_times is not None:
            row += [actual_times[comp]]
        table.add_row(row)

    total_row = ["Total time, sec"]
    if manual is not None:
        total_row += ["", manual_total if manual_total is not None else ""]
    total_row += ["", predicted_total if predicted_total is not None else ""]
    if actual_times is not None:
        total_row += [actual_total if actual_total is not None else ""]
    table.add_row(total_row)
    return table.render()


def format_run_result(result) -> str:
    """Render an :class:`~repro.hslb.pipeline.HSLBRunResult`."""
    case = result.case
    title = (
        f"{case.resolution} resolution, {case.total_nodes} nodes, "
        f"layout ({case.layout.value})"
        + (", unconstrained ocean nodes" if case.unconstrained_ocean else "")
    )
    block = format_table3_block(
        title=title,
        manual=None,
        manual_times=None,
        predicted_nodes=result.allocation,
        predicted_times=result.solve.predicted_times,
        actual_times=result.actual.times,
        predicted_total=result.predicted_total,
        actual_total=result.actual_total,
    )
    events = getattr(result, "events", None)
    if events:
        block += "\n\n" + events.summary()
    solver_result = getattr(result.solve, "solver_result", None)
    reuse_line = format_reuse_counters(
        getattr(solver_result, "reuse_counters", None)
    )
    if reuse_line:
        block += "\n" + reuse_line
    return block


#: Counter key -> human label, in display order.  Keys the solvers don't
#: emit for a given run simply don't appear.
_REUSE_LABELS = (
    ("cuts_carried", "cuts carried"),
    ("cuts_deduped", "cuts deduped"),
    ("seed_nlp_skipped", "seed NLPs skipped"),
    ("incumbent_seeded", "incumbents seeded"),
    ("incumbent_rejected", "incumbents rejected"),
    ("basis_reused", "bases reused"),
    ("fbbt_rounds", "FBBT rounds"),
    ("fbbt_tightenings", "FBBT tightenings"),
    ("pseudocost_entries", "pseudocost entries carried"),
)


def format_reuse_counters(counters: dict | None) -> str:
    """One-line summary of a solve's cross-solve reuse counters.

    Empty string when the solve ran cold (no counters), so callers can
    append the result unconditionally.
    """
    if not counters:
        return ""
    parts = [
        f"{label} {counters[key]}"
        for key, label in _REUSE_LABELS
        if key in counters
    ]
    for key in sorted(counters):
        if not any(key == k for k, _ in _REUSE_LABELS):
            parts.append(f"{key} {counters[key]}")
    return "reuse: " + ", ".join(parts)
