"""HSLB step 3b: solve the layout MINLP for the optimal allocation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.components import ComponentId
from repro.cesm.layouts import composed_total
from repro.exceptions import ConfigurationError, SolverError
from repro.hslb.layout_models import VAR_NAMES, layout_model_for_case
from repro.hslb.objectives import ObjectiveKind
from repro.hslb.oracle import oracle_for_case
from repro.minlp import MINLPOptions, solve_lpnlp, solve_nlp_bnb

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


@dataclass
class SolveOutcome:
    """Optimal allocation plus the model's own predictions."""

    allocation: dict            # ComponentId -> int nodes
    predicted_times: dict       # ComponentId -> seconds under the fits
    predicted_total: float      # layout make-span of predicted_times
    objective_value: float
    method: str
    solver_result: object = None  # MINLPResult when a B&B method ran

    def nodes_used(self) -> int:
        return sum(self.allocation.values())


def solve_allocation(
    case,
    fits: dict,
    objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
    tsync: float | None = None,
    method: str = "lpnlp",
    options: MINLPOptions | None = None,
    fine_tuning: bool = False,
) -> SolveOutcome:
    """Determine the optimal node allocation for ``case`` under ``fits``.

    ``method`` selects the decision engine:

    - ``"lpnlp"`` — the paper's LP/NLP branch-and-bound (default),
    - ``"bnb"`` — classic NLP-based branch-and-bound (cross-check),
    - ``"oracle"`` — exact enumeration (required for the nonconvex
      max-min / T_sync variants).

    ``fine_tuning`` includes the coupler/river overhead in the decision
    (paper Sec. II's deferred refinement); requires a B&B method and fits
    for RTM and CPL.
    """
    perf = {c: (f.model if hasattr(f, "model") else f) for c, f in fits.items()}

    if method == "oracle":
        if fine_tuning:
            raise ConfigurationError(
                "fine_tuning is solved by the B&B methods, not the oracle"
            )
        oracle = oracle_for_case(case, perf)
        res = oracle.solve(objective=objective, tsync=tsync)
        return SolveOutcome(
            allocation=res.allocation,
            predicted_times=res.predicted_times,
            predicted_total=res.makespan,
            objective_value=res.objective_value,
            method="oracle",
        )

    if method not in ("lpnlp", "bnb"):
        raise ConfigurationError(f"unknown solve method {method!r}")
    if not objective.bnb_solvable or tsync is not None:
        raise ConfigurationError(
            "the max-min objective and the T_sync band are nonconvex; "
            "solve them with method='oracle'"
        )

    model = layout_model_for_case(
        case, perf, objective=objective, tsync=tsync, fine_tuning=fine_tuning
    )
    solver = solve_lpnlp if method == "lpnlp" else solve_nlp_bnb
    result = solver(model, options)
    if result.solution is None:
        raise SolverError(
            f"MINLP solve failed: {result.status.value} {result.message}"
        )

    allocation = {
        comp: int(round(result.solution[VAR_NAMES[comp]]))
        for comp in (I, L, A, O)
    }
    predicted = {comp: float(perf[comp](allocation[comp])) for comp in (I, L, A, O)}
    predicted_total = composed_total(case.layout, predicted)
    if fine_tuning:
        # The fine-tuned prediction includes the riding components' time.
        from repro.cesm.components import ComponentId as _C

        predicted_total += float(perf[_C.CPL](allocation[A])) + float(
            perf[_C.RTM](allocation[L])
        )
    return SolveOutcome(
        allocation=allocation,
        predicted_times=predicted,
        predicted_total=predicted_total,
        objective_value=float(result.objective),
        method=method,
        solver_result=result,
    )
