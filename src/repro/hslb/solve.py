"""HSLB step 3b: solve the layout MINLP for the optimal allocation.

:func:`solve_allocation` is the bare solve; :func:`solve_allocation_resilient`
wraps it in a fallback chain (configured backend, then the other of
``bnb``/``lpnlp``, then a proportional allocation built from the fits as a
last resort) with an optional wall-clock :class:`~repro.resilience.Deadline`
threaded into both branch-and-bound loops via ``MINLPOptions.check_hook``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout, composed_total, validate_allocation
from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    SolverError,
)
from repro.hslb.layout_models import VAR_NAMES, layout_model_for_case
from repro.hslb.objectives import ObjectiveKind
from repro.hslb.oracle import oracle_for_case
from repro.minlp import MINLPOptions, solve_lpnlp, solve_nlp_bnb
from repro.resilience.events import EventKind, EventLog
from repro.resilience.retry import Deadline

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


@dataclass
class SolveOutcome:
    """Optimal allocation plus the model's own predictions."""

    allocation: dict            # ComponentId -> int nodes
    predicted_times: dict       # ComponentId -> seconds under the fits
    predicted_total: float      # layout make-span of predicted_times
    objective_value: float
    method: str
    solver_result: object = None  # MINLPResult when a B&B method ran
    events: EventLog = field(default_factory=EventLog)

    def nodes_used(self) -> int:
        return sum(self.allocation.values())


def solve_allocation(
    case,
    fits: dict,
    objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
    tsync: float | None = None,
    method: str = "lpnlp",
    options: MINLPOptions | None = None,
    fine_tuning: bool = False,
    reuse=None,
) -> SolveOutcome:
    """Determine the optimal node allocation for ``case`` under ``fits``.

    ``method`` selects the decision engine:

    - ``"lpnlp"`` — the paper's LP/NLP branch-and-bound (default),
    - ``"bnb"`` — classic NLP-based branch-and-bound (cross-check),
    - ``"oracle"`` — exact enumeration (required for the nonconvex
      max-min / T_sync variants).

    ``fine_tuning`` includes the coupler/river overhead in the decision
    (paper Sec. II's deferred refinement); requires a B&B method and fits
    for RTM and CPL.

    ``reuse`` threads a :class:`repro.reuse.SolveFamily` through the B&B
    solve, carrying cuts / incumbents / bases across a sequence of related
    calls; results stay bit-identical to a cold solve (see docs/reuse.md).
    """
    perf = {c: (f.model if hasattr(f, "model") else f) for c, f in fits.items()}

    if method == "oracle":
        if fine_tuning:
            raise ConfigurationError(
                "fine_tuning is solved by the B&B methods, not the oracle"
            )
        oracle = oracle_for_case(case, perf)
        res = oracle.solve(objective=objective, tsync=tsync)
        return SolveOutcome(
            allocation=res.allocation,
            predicted_times=res.predicted_times,
            predicted_total=res.makespan,
            objective_value=res.objective_value,
            method="oracle",
        )

    if method not in ("lpnlp", "bnb"):
        raise ConfigurationError(f"unknown solve method {method!r}")
    if not objective.bnb_solvable or tsync is not None:
        raise ConfigurationError(
            "the max-min objective and the T_sync band are nonconvex; "
            "solve them with method='oracle'"
        )

    model = layout_model_for_case(
        case, perf, objective=objective, tsync=tsync, fine_tuning=fine_tuning
    )
    if reuse is not None:
        options = replace(options or MINLPOptions(), reuse=reuse)
    solver = solve_lpnlp if method == "lpnlp" else solve_nlp_bnb
    result = solver(model, options)
    if result.solution is None:
        raise SolverError(
            f"MINLP solve failed: {result.status.value} {result.message}"
        )

    allocation = {
        comp: int(round(result.solution[VAR_NAMES[comp]]))
        for comp in (I, L, A, O)
    }
    predicted = {comp: float(perf[comp](allocation[comp])) for comp in (I, L, A, O)}
    predicted_total = composed_total(case.layout, predicted)
    if fine_tuning:
        # The fine-tuned prediction includes the riding components' time.
        from repro.cesm.components import ComponentId as _C

        predicted_total += float(perf[_C.CPL](allocation[A])) + float(
            perf[_C.RTM](allocation[L])
        )
    return SolveOutcome(
        allocation=allocation,
        predicted_times=predicted,
        predicted_total=predicted_total,
        objective_value=float(result.objective),
        method=method,
        solver_result=result,
    )


# -- resilient solve -------------------------------------------------------------


def solve_allocation_resilient(
    case,
    fits: dict,
    objective: ObjectiveKind = ObjectiveKind.MIN_MAX,
    tsync: float | None = None,
    method: str = "lpnlp",
    options: MINLPOptions | None = None,
    fine_tuning: bool = False,
    events: EventLog | None = None,
    deadline=None,
    reuse=None,
) -> SolveOutcome:
    """:func:`solve_allocation` behind a fallback chain.

    The configured backend runs first; on :class:`SolverError` the other
    branch-and-bound variant gets a try (their failure modes are disjoint —
    one stresses the simplex, the other the barrier), and if that also
    fails the proportional baseline built from the fitted models is the
    last resort — degraded but feasible, never an aborted tuning request.
    Every hand-off appends a typed event; ``deadline`` (seconds or a
    :class:`Deadline`) is enforced inside both MINLP loops via
    ``MINLPOptions.check_hook``.
    """
    events = events if events is not None else EventLog()
    deadline = Deadline.coerce(deadline)
    opts = options or MINLPOptions()
    if deadline.is_limited:
        opts = replace(
            opts,
            check_hook=deadline.as_hook(),
            time_limit=min(opts.time_limit, max(deadline.remaining(), 0.001)),
        )

    chain = [method]
    if method in ("lpnlp", "bnb"):
        chain.append("bnb" if method == "lpnlp" else "lpnlp")
    for index, backend in enumerate(chain):
        if deadline.expired():
            events.record(
                EventKind.DEADLINE_EXPIRED,
                stage="solve",
                detail=f"deadline expired before trying {backend!r}",
            )
            break
        try:
            outcome = solve_allocation(
                case,
                fits,
                objective=objective,
                tsync=tsync,
                method=backend,
                options=opts,
                fine_tuning=fine_tuning,
                reuse=reuse,
            )
            outcome.events = events
            return outcome
        except DeadlineExceededError as exc:
            events.record(
                EventKind.DEADLINE_EXPIRED,
                stage="solve",
                detail=f"{backend} aborted: {exc}",
            )
            break
        except ConfigurationError:
            raise  # a misconfigured request; retrying cannot fix it
        except SolverError as exc:
            fallback = chain[index + 1] if index + 1 < len(chain) else "baseline"
            events.record(
                EventKind.SOLVER_FALLBACK,
                stage="solve",
                detail=f"{backend} failed ({exc}); falling back to {fallback}",
                backend=backend,
                fallback=fallback,
            )

    perf = {c: (f.model if hasattr(f, "model") else f) for c, f in fits.items()}
    allocation = proportional_baseline(case, perf)
    predicted = {
        comp: float(perf[comp](allocation[comp])) for comp in (I, L, A, O)
    }
    predicted_total = composed_total(case.layout, predicted)
    events.record(
        EventKind.BASELINE_FALLBACK,
        stage="solve",
        detail=(
            "proportional baseline allocation used "
            f"(predicted total {predicted_total:.3f}s)"
        ),
        allocation={c.value: int(n) for c, n in allocation.items()},
    )
    return SolveOutcome(
        allocation=allocation,
        predicted_times=predicted,
        predicted_total=predicted_total,
        objective_value=predicted_total,
        method="baseline",
        solver_result=None,
        events=events,
    )


def proportional_baseline(case, perf: dict) -> dict:
    """Feasible allocation proportional to fitted work — no solver needed.

    Each component's work is proxied by ``n_ref * T(n_ref)`` under its
    fitted model at a common reference size; nodes are split by those
    shares and snapped onto the layout's validity region (Table I).  Crude
    next to the MINLP optimum, but it always returns *something* runnable.
    """
    N = case.total_nodes
    bounds = {c: case.component_bounds(c) for c in (I, L, A, O)}

    def clamp(value, lo, hi):
        return int(min(max(int(round(value)), lo), hi))

    def snap_atm(target):
        """Nearest *allowed* atmosphere count (the 1-degree set skips
        1639..1663) within the component's box."""
        lo, hi = bounds[A]
        allowed = case.atm_allowed()
        if allowed["values"] is None:
            return clamp(target, max(lo, allowed["lo"]), min(hi, allowed["hi"]))
        values = [v for v in allowed["values"] if lo <= v <= hi]
        if not values:
            return clamp(target, lo, hi)
        return min(values, key=lambda v: abs(v - target))

    work = {}
    for comp in (I, L, A, O):
        lo, hi = bounds[comp]
        ref = clamp(max(N // 8, lo), lo, hi)
        work[comp] = max(float(perf[comp](ref)) * ref, 1e-9)

    ocn_values = sorted(case.ocean_allowed())
    lo_a, hi_a = bounds[A]

    if case.layout is Layout.FULLY_SEQUENTIAL:
        # Everything sequential over all N nodes: each component simply gets
        # as many nodes as it can use.
        alloc = {
            I: clamp(N, *bounds[I]),
            L: clamp(N, *bounds[L]),
            A: snap_atm(N),
        }
        alloc[O] = max(v for v in ocn_values if v <= N)
    elif case.layout is Layout.SEQUENTIAL_SPLIT:
        # Ocean gets its work share; ice/land/atm each use the full rest.
        share_o = work[O] / (work[O] + work[A] + max(work[I], work[L]))
        floor_other = max(bounds[I][0], bounds[L][0], lo_a)
        usable = [v for v in ocn_values if N - v >= floor_other]
        if not usable:
            usable = [min(ocn_values)]
        n_o = min(usable, key=lambda v: abs(v - share_o * N))
        rest = N - n_o
        alloc = {
            I: clamp(rest, *bounds[I]),
            L: clamp(rest, *bounds[L]),
            A: min(snap_atm(rest), rest),
            O: n_o,
        }
    else:
        # Hybrid: ocean concurrent with the (ice|land) -> atm group.
        stage1_work = work[A] + max(work[I], work[L])
        share_o = work[O] / (work[O] + stage1_work)
        usable = [v for v in ocn_values if N - v >= lo_a]
        if not usable:
            usable = [min(ocn_values)]
        n_o = min(usable, key=lambda v: abs(v - share_o * N))
        n_a = min(snap_atm(N - n_o), N - n_o)
        share_i = work[I] / (work[I] + work[L])
        lo_i, hi_i = bounds[I]
        lo_l, hi_l = bounds[L]
        n_i = clamp(share_i * n_a, lo_i, min(hi_i, max(n_a - lo_l, lo_i)))
        n_l = clamp(n_a - n_i, lo_l, hi_l)
        if n_i + n_l > n_a:
            n_i = max(lo_i, n_a - n_l)
        alloc = {I: n_i, L: n_l, A: n_a, O: n_o}
    try:
        validate_allocation(case.layout, alloc, N)
    except Exception as exc:  # pragma: no cover - repair exhausted
        raise SolverError(
            f"baseline allocation infeasible for this case: {exc}"
        ) from exc
    return alloc
