"""Persistence: benchmark data, fitted models and run results as JSON.

The paper (Sec. III-F): "The data gathering step (1) can be avoided
altogether if reliable benchmarks are already available, for example, from
previous experiments."  These helpers make that workflow concrete: gather
once, save, and re-run fit/solve from the file — also how a user would feed
*real* CESM timing logs into this library instead of the simulator.

:mod:`repro.io.journal` adds the durability layer on top: an fsync'd
write-ahead run journal that lets ``exp resume`` recover a fleet run after
a hard kill, skipping finished cells and repairing a torn tail record.
"""

from repro.io.journal import JournalState, RunJournal
from repro.io.serialize import (
    append_metrics,
    benchmark_data_to_dict,
    benchmark_data_from_dict,
    experiment_cell_from_dict,
    experiment_cell_to_dict,
    fits_to_dict,
    fits_from_dict,
    load_experiment_cell,
    load_metrics,
    load_spec,
    metrics_snapshot_from_dict,
    metrics_snapshot_to_dict,
    save_benchmarks,
    load_benchmarks,
    save_experiment_cell,
    save_fits,
    load_fits,
    save_spec,
    run_result_to_dict,
)

__all__ = [
    "JournalState",
    "RunJournal",
    "append_metrics",
    "benchmark_data_to_dict",
    "benchmark_data_from_dict",
    "experiment_cell_from_dict",
    "experiment_cell_to_dict",
    "fits_to_dict",
    "fits_from_dict",
    "load_experiment_cell",
    "load_metrics",
    "load_spec",
    "metrics_snapshot_from_dict",
    "metrics_snapshot_to_dict",
    "save_benchmarks",
    "load_benchmarks",
    "save_experiment_cell",
    "save_fits",
    "load_fits",
    "save_spec",
    "run_result_to_dict",
]
