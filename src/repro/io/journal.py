"""Durable run journal: a write-ahead log that survives a hard kill.

Checkpoints (one JSON file per finished cell) make *finished* work
recoverable; the journal makes the *run itself* recoverable.  Every fleet
run appends fsync'd records to one JSONL file:

- ``plan`` — the batch being run (experiment ids + seed), written once
  when the journal is new.  ``exp resume`` reconstructs the run from it.
- ``start`` — a cell was dispatched.
- ``finish`` — a cell completed; carries the rendered report text inline,
  so the journal alone (no checkpoint directory) is enough to resume.
- ``poison`` — a cell was quarantined after its retry budget.

Records are canonical JSON (:func:`~repro.spec.schema.canonical_json`)
stamped with the ``repro/journal`` schema header and keyed by the cell's
:func:`~repro.spec.schema.spec_key`, one per line, each followed by
``flush`` + ``fsync``: after a SIGKILL at any instant, the file contains
every record that was ever acknowledged plus at most one *torn tail* — a
partial final line the kill interrupted mid-write.

:meth:`RunJournal.read` tolerates exactly that shape: a final line that is
incomplete or unparsable is dropped (and reported via ``torn_tail``), while
damage *before* the final line — garbage bytes, a sequence-number gap, a
wrong schema — raises :class:`~repro.exceptions.JournalError`, because no
crash writes the middle of a file.  :meth:`RunJournal.open` repairs a torn
tail by truncating to the last valid byte before appending, which is the
classic WAL recovery rule.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigurationError, JournalError
from repro.spec.schema import canonical_json, check_schema, stamp

__all__ = ["JournalState", "RunJournal"]

_OPS = ("plan", "start", "finish", "poison")


@dataclass
class JournalState:
    """Everything a resume needs, distilled from one journal read."""

    path: Path
    plan: dict | None = None            # {"experiment_ids": [...], "seed": int}
    completed: dict = field(default_factory=dict)   # spec_key -> finish record
    poisoned: dict = field(default_factory=dict)    # spec_key -> poison record
    started: dict = field(default_factory=dict)     # spec_key -> start record
    records: int = 0                    # valid records read
    torn_tail: bool = False             # a partial final line was dropped
    valid_bytes: int = 0                # file offset after the last valid record

    @property
    def in_flight(self) -> list:
        """Spec keys that started but neither finished nor were poisoned."""
        return [
            key for key in self.started
            if key not in self.completed and key not in self.poisoned
        ]

    def describe(self) -> str:
        lines = [f"journal: {self.path}"]
        if self.plan is None:
            lines.append("  plan: none (empty journal)")
        else:
            ids = ", ".join(self.plan.get("experiment_ids", []))
            lines.append(f"  plan: seed={self.plan.get('seed')} ids=[{ids}]")
        lines.append(
            f"  cells: {len(self.completed)} finished, "
            f"{len(self.poisoned)} poisoned, {len(self.in_flight)} in flight"
        )
        for key, record in self.poisoned.items():
            lines.append(
                f"    poisoned {record.get('experiment_id', '?')} [{key[:21]}...]: "
                f"{record.get('detail', '')}"
            )
        if self.torn_tail:
            lines.append("  tail: torn record dropped (hard kill mid-write)")
        lines.append(f"  records: {self.records} ({self.valid_bytes} bytes)")
        return "\n".join(lines)


def _parse_record(line: bytes, expected_seq: int) -> dict:
    """Decode and validate one journal line; raises ``ValueError`` family."""
    payload = json.loads(line.decode("utf-8"))
    record = check_schema(payload, "journal")
    op = record.get("op")
    if op not in _OPS:
        raise ConfigurationError(f"repro/journal: unknown op {op!r}")
    seq = record.get("seq")
    if seq != expected_seq:
        raise ConfigurationError(
            f"repro/journal: expected seq {expected_seq}, found {seq!r} "
            "(interleaved writers or interior damage)"
        )
    if op == "plan":
        if expected_seq != 0:
            raise ConfigurationError("repro/journal: plan record must be first")
    elif not isinstance(record.get("spec_key"), str):
        raise ConfigurationError(f"repro/journal: {op} record lacks a spec_key")
    return record


class RunJournal:
    """Append-only fsync'd JSONL journal for one experiment run.

    Use :meth:`open` (repairs a torn tail, continues the sequence) or
    :meth:`read` (pure inspection, never writes).  All appends are
    synchronous: when an append returns, the record is on disk.
    """

    def __init__(self, path, *, _state: JournalState | None = None):
        self.path = Path(path)
        if _state is None:
            _state = self.read(self.path)
        self.state = _state
        self._seq = _state.records
        self._fh = None

    # -- reading -----------------------------------------------------------------

    @staticmethod
    def read(path) -> JournalState:
        """Parse a journal file into a :class:`JournalState`.

        Missing file → empty state.  A damaged *final* line (partial write
        from a hard kill) is dropped and flagged ``torn_tail``; damage
        anywhere earlier raises :class:`~repro.exceptions.JournalError`.
        """
        path = Path(path)
        state = JournalState(path=path)
        if not path.exists():
            return state
        raw = path.read_bytes()
        offset = 0
        lines: list = []
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                state.torn_tail = True  # partial final line, no newline
                break
            lines.append((offset, raw[offset:newline]))
            offset = newline + 1
        for position, (start, line) in enumerate(lines):
            try:
                record = _parse_record(line, expected_seq=position)
            except (ValueError, ConfigurationError, UnicodeDecodeError) as exc:
                final = position == len(lines) - 1
                if final and not state.torn_tail:
                    # Unparsable last line: the kill landed mid-write but a
                    # newline from a previous page survived.  Same repair.
                    state.torn_tail = True
                    break
                raise JournalError(
                    f"journal {path} is corrupt at record {position}: {exc}"
                ) from exc
            state.records += 1
            state.valid_bytes = start + len(line) + 1
            op = record["op"]
            if op == "plan":
                state.plan = {
                    "experiment_ids": list(record.get("experiment_ids", [])),
                    "seed": record.get("seed"),
                }
            elif op == "start":
                state.started[record["spec_key"]] = record
            elif op == "finish":
                state.completed[record["spec_key"]] = record
            else:  # poison
                state.poisoned[record["spec_key"]] = record
        return state

    # -- writing -----------------------------------------------------------------

    @classmethod
    def open(cls, path) -> "RunJournal":
        """Open for append, truncating a torn tail first (WAL repair)."""
        path = Path(path)
        state = cls.read(path)
        if state.torn_tail:
            with path.open("r+b") as handle:
                handle.truncate(state.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            state.torn_tail = True  # preserved so callers can report the repair
        journal = cls(path, _state=state)
        path.parent.mkdir(parents=True, exist_ok=True)
        journal._fh = path.open("ab")
        return journal

    @property
    def is_new(self) -> bool:
        return self._seq == 0

    def _append(self, payload: dict) -> dict:
        if self._fh is None:
            raise JournalError(f"journal {self.path} is not open for writing")
        record = stamp({**payload, "seq": self._seq}, "journal")
        self._fh.write((canonical_json(record) + "\n").encode("utf-8"))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._seq += 1
        self.state.records = self._seq
        self.state.valid_bytes = self._fh.tell()
        return record

    def plan(self, experiment_ids, seed: int) -> None:
        """Record the batch; only valid as the very first record."""
        if self._seq != 0:
            raise JournalError(
                f"journal {self.path} already has {self._seq} records; "
                "the plan must be the first"
            )
        record = self._append(
            {"op": "plan", "experiment_ids": list(experiment_ids), "seed": int(seed)}
        )
        self.state.plan = {
            "experiment_ids": list(record["experiment_ids"]),
            "seed": record["seed"],
        }

    def start(self, spec_key: str, experiment_id: str) -> None:
        record = self._append(
            {"op": "start", "spec_key": spec_key, "experiment_id": experiment_id}
        )
        self.state.started[spec_key] = record

    def finish(self, spec_key: str, experiment_id: str, rendered: str) -> None:
        record = self._append(
            {
                "op": "finish",
                "spec_key": spec_key,
                "experiment_id": experiment_id,
                "rendered": str(rendered),
            }
        )
        self.state.completed[spec_key] = record

    def poison(
        self,
        spec_key: str,
        experiment_id: str,
        attempts: int,
        reason: str,
        detail: str,
    ) -> None:
        record = self._append(
            {
                "op": "poison",
                "spec_key": spec_key,
                "experiment_id": experiment_id,
                "attempts": int(attempts),
                "reason": str(reason),
                "detail": str(detail),
            }
        )
        self.state.poisoned[spec_key] = record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
