"""JSON (de)serialization for benchmark data, fits, run results and specs.

Every payload carries a ``format`` tag plus a ``schema_version`` field
(see :mod:`repro.spec.schema`): loaders validate both, accept the
historical ``repro/<kind>@1`` tags as version 1, and reject files written
by a *newer* library version with a clear error instead of a ``KeyError``
three layers down.  Everything is plain JSON so the artifacts diff and
archive cleanly next to a case's run scripts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cesm.components import ComponentId
from repro.exceptions import ConfigurationError
from repro.fitting.perfmodel import PerfModel
from repro.hslb.gather import BenchmarkData
from repro.spec.schema import check_schema, spec_key, stamp


# -- benchmark data --------------------------------------------------------------


def benchmark_data_to_dict(data: BenchmarkData, meta: dict | None = None) -> dict:
    """Serializable form of a :class:`BenchmarkData`."""
    return stamp(
        {
            "meta": dict(meta or {}),
            "samples": {
                comp.value: {
                    "nodes": [int(v) for v in data.nodes(comp)],
                    "seconds": [float(v) for v in data.times(comp)],
                }
                for comp in data.components()
            },
        },
        "benchmarks",
    )


def benchmark_data_from_dict(payload: dict) -> BenchmarkData:
    check_schema(payload, "benchmarks")
    data = BenchmarkData()
    for key, block in payload["samples"].items():
        try:
            comp = ComponentId(key)
        except ValueError:
            raise ConfigurationError(f"unknown component {key!r}") from None
        nodes = block["nodes"]
        seconds = block["seconds"]
        if len(nodes) != len(seconds):
            raise ConfigurationError(f"{key}: nodes/seconds length mismatch")
        data.add(comp, nodes, seconds)
    return data


def save_benchmarks(path, data: BenchmarkData, meta: dict | None = None) -> None:
    """Write benchmark samples as JSON."""
    Path(path).write_text(
        json.dumps(benchmark_data_to_dict(data, meta), indent=2, sort_keys=True)
    )


def load_benchmarks(path) -> BenchmarkData:
    """Read benchmark samples written by :func:`save_benchmarks`."""
    return benchmark_data_from_dict(json.loads(Path(path).read_text()))


# -- fitted models -----------------------------------------------------------------


def fits_to_dict(fits: dict, meta: dict | None = None) -> dict:
    """Serializable form of ``{ComponentId: FitResult | PerfModel}``."""
    out = stamp({"meta": dict(meta or {}), "models": {}}, "fits")
    for comp, fit in fits.items():
        model = fit.model if hasattr(fit, "model") else fit
        entry = {"a": model.a, "b": model.b, "c": model.c, "d": model.d}
        if hasattr(fit, "diagnostics"):
            entry["r_squared"] = fit.diagnostics.r_squared
            entry["rmse"] = fit.diagnostics.rmse
        out["models"][comp.value] = entry
    return out


def fits_from_dict(payload: dict) -> dict:
    """Load ``{ComponentId: PerfModel}`` (diagnostics are not round-tripped)."""
    check_schema(payload, "fits")
    out = {}
    for key, entry in payload["models"].items():
        try:
            comp = ComponentId(key)
        except ValueError:
            raise ConfigurationError(f"unknown component {key!r}") from None
        out[comp] = PerfModel(
            a=float(entry["a"]),
            b=float(entry["b"]),
            c=float(entry["c"]),
            d=float(entry["d"]),
        )
    return out


def save_fits(path, fits: dict, meta: dict | None = None) -> None:
    Path(path).write_text(json.dumps(fits_to_dict(fits, meta), indent=2, sort_keys=True))


def load_fits(path) -> dict:
    return fits_from_dict(json.loads(Path(path).read_text()))


# -- run results ---------------------------------------------------------------------


def run_result_to_dict(result) -> dict:
    """Flatten an :class:`~repro.hslb.pipeline.HSLBRunResult` for archiving."""
    case = result.case
    events = getattr(result, "events", None)
    return stamp(
        {
            "case": {
                "resolution": case.resolution,
                "total_nodes": case.total_nodes,
                "layout": case.layout.value,
                "unconstrained_ocean": case.unconstrained_ocean,
                "seed": case.seed,
            },
            "allocation": {c.value: int(n) for c, n in result.allocation.items()},
            "predicted_times": {
                c.value: float(t) for c, t in result.solve.predicted_times.items()
            },
            "predicted_total": float(result.predicted_total),
            "actual_times": {c.value: float(t) for c, t in result.actual.times.items()},
            "actual_total": float(result.actual_total),
            "fit_r_squared": {
                c.value: float(v) for c, v in result.fit_r_squared().items()
            },
            "events": events.to_list() if events is not None else [],
        },
        "run",
    )


# -- problem specs -------------------------------------------------------------------


def save_spec(path, spec) -> None:
    """Write any :mod:`repro.spec` spec (TuneSpec, LayoutProblemSpec, ...)."""
    Path(path).write_text(spec.to_json(indent=2))


def load_spec(path):
    """Read a spec file back into its dataclass (dispatches on ``kind``)."""
    from repro.spec import spec_from_dict

    return spec_from_dict(json.loads(Path(path).read_text()))


# -- telemetry metric snapshots (JSONL) ----------------------------------------------


def metrics_snapshot_to_dict(snapshot: dict, meta: dict | None = None) -> dict:
    """One stamped telemetry snapshot (see ``MetricsRegistry.snapshot``)."""
    return stamp({"meta": dict(meta or {}), "metrics": dict(snapshot)}, "metrics")


def metrics_snapshot_from_dict(payload: dict) -> dict:
    """The snapshot back out of a stamped record (header validated)."""
    check_schema(payload, "metrics")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise ConfigurationError("repro/metrics: 'metrics' must be an object")
    return metrics


def append_metrics(path, snapshot: dict, meta: dict | None = None) -> None:
    """Append one telemetry snapshot as a JSONL record.

    Snapshots accumulate one per line, so a long-running service can dump
    its registry periodically into a single scrape-history file that
    :func:`load_metrics` reads back as a time series.
    """
    record = json.dumps(
        metrics_snapshot_to_dict(snapshot, meta),
        sort_keys=True,
        separators=(",", ":"),
    )
    with Path(path).open("a") as handle:
        handle.write(record + "\n")


def load_metrics(path) -> list:
    """All snapshots from a JSONL file written by :func:`append_metrics`."""
    out = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(metrics_snapshot_from_dict(json.loads(line)))
    return out


# -- experiment cells (checkpoint/resume) --------------------------------------------


def experiment_cell_to_dict(cell_spec, rendered: str) -> dict:
    """One finished experiment cell: its spec, the spec's hash, its output."""
    payload = cell_spec.to_dict()
    return stamp(
        {"spec": payload, "spec_key": spec_key(payload), "rendered": str(rendered)},
        "experiment-cell",
    )


def experiment_cell_from_dict(payload: dict) -> tuple:
    """Returns ``(spec_payload, spec_key, rendered_text)``; validates the hash."""
    check_schema(payload, "experiment-cell")
    spec_payload = payload["spec"]
    recorded = payload["spec_key"]
    actual = spec_key(spec_payload)
    if recorded != actual:
        raise ConfigurationError(
            f"experiment cell is corrupt: recorded spec_key {recorded} "
            f"does not match its spec ({actual})"
        )
    return spec_payload, recorded, payload["rendered"]


def save_experiment_cell(path, cell_spec, rendered: str) -> None:
    Path(path).write_text(
        json.dumps(experiment_cell_to_dict(cell_spec, rendered), indent=2, sort_keys=True)
    )


def load_experiment_cell(path) -> tuple:
    return experiment_cell_from_dict(json.loads(Path(path).read_text()))
