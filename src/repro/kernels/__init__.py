"""Shared compiled-kernel evaluation layer.

The LP/NLP branch-and-bound evaluates the same objective/constraint
gradients and Hessian entries thousands of times per solve, and B&B
children would otherwise recompile what their parent already compiled.
This subpackage turns an *expression set* — objective, constraint bodies,
their symbolic gradients and Hessian entries — into one vectorized,
bytecode-compiled callable with common-subexpression elimination, and
caches the result under structural hashes of the expression trees
(:meth:`repro.expr.node.Expr.struct_key`).

Layering: ``repro.expr`` emits the source, this package owns compilation
policy (CSE grouping, batching, caching, counters); ``repro.nlp`` evaluates
through :class:`SmoothKernel`, the ``repro.minlp`` solvers share one
:class:`KernelCache` per solve across all tree nodes, and
``repro.hslb.oracle`` scores whole candidate-layout blocks through
:class:`BatchKernel`.  The tree-walk path (``Expr.evaluate``) stays intact
as the bit-identical reference implementation — select it with
``evaluator="tree"``.
"""

from repro.kernels.cache import KernelCache, default_cache
from repro.kernels.kernel import EVALUATORS, BatchKernel, SmoothCore, SmoothKernel

__all__ = [
    "BatchKernel",
    "SmoothCore",
    "SmoothKernel",
    "KernelCache",
    "EVALUATORS",
    "default_cache",
]
