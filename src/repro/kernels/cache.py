"""Kernel cache keyed by structural expression hashes.

Compiling a kernel costs symbolic differentiation plus two ``compile()``
calls; a branch-and-bound tree builds thousands of child NLPs whose
expressions are *identical* to their parent's (only variable bounds change
between children).  :class:`KernelCache` memoizes built kernels under

    (structural key(s) of the simplified expression(s),
     the (name -> vector position) layout restricted to their support,
     the evaluation back-end)

so a child node's rebuild is a dictionary hit.  Structural keys come from
:meth:`repro.expr.node.Expr.struct_key` — interned hashes, so key
comparison is cheap — and the support-restricted layout signature makes the
cache safe across subproblems that order their variable vectors
differently.

Hit/miss/compile counters accumulate in a
:class:`repro.util.timing.Counters`, which the MINLP solvers surface in
their solve reports.
"""

from __future__ import annotations

import threading

from repro.expr.simplify import simplify
from repro.kernels.kernel import BatchKernel, SmoothCore, SmoothKernel
from repro import telemetry
from repro.telemetry import names as metric
from repro.util.timing import Counters

__all__ = ["KernelCache", "default_cache"]


class KernelCache:
    """Memoized construction of :class:`SmoothKernel`/:class:`BatchKernel`."""

    def __init__(self, counters: Counters | None = None):
        self.counters = counters if counters is not None else Counters()
        self._smooth: dict = {}
        self._batch: dict = {}
        # Lookups compile-and-insert on miss; the lock makes that atomic so
        # concurrent callers (speculative MINLP node solves, parallel gather
        # sharing default_cache()) never compile the same kernel twice and
        # the hit/miss counters stay exact for cache operations.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks don't pickle; process workers get a fresh one
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- keys -------------------------------------------------------------------

    @staticmethod
    def _layout_sig(exprs, index: dict) -> tuple:
        """The (name, position) pairs for the expressions' joint support."""
        support: set = set()
        for e in exprs:
            support |= e.variables()
        return tuple((n, index[n]) for n in sorted(support))

    # -- lookups ----------------------------------------------------------------

    def smooth(self, expr, index: dict, evaluator: str = "kernel") -> SmoothKernel:
        """A (cached) smooth-function kernel for ``expr`` over ``index``.

        What is cached is the :class:`SmoothCore` — compiled against the
        expression's own sorted support, so the key needs no positions and
        subproblems that lay out their variable vectors differently (e.g.
        B&B children whose presolve fixed different variables) still hit.
        The returned :class:`SmoothKernel` is a cheap per-``index`` binding.
        """
        key = (expr.struct_key(), evaluator)
        with self._lock:
            core = self._smooth.get(key)
            if core is not None:
                self.counters.incr("kernel_hits")
                telemetry.count(metric.KERNEL_HITS)
            else:
                self.counters.incr("kernel_misses")
                self.counters.incr("kernel_compiles")
                telemetry.count(metric.KERNEL_MISSES)
                telemetry.count(metric.KERNEL_COMPILES)
                core = SmoothCore(expr, evaluator)
                self._smooth[key] = core
        return SmoothKernel(expr, index, evaluator=evaluator,
                            counters=self.counters, core=core)

    def batch(self, exprs, index: dict, presimplify: bool = True) -> BatchKernel:
        """A (cached) batched kernel evaluating ``exprs`` in one pass.

        ``presimplify`` folds constants first so trivially-equal variants
        (``x + 0``, ``1 * x``) of the same curve share a cache slot.
        """
        exprs = tuple(simplify(e) for e in exprs) if presimplify else tuple(exprs)
        key = (
            tuple(e.struct_key() for e in exprs),
            self._layout_sig(exprs, index),
        )
        with self._lock:
            kernel = self._batch.get(key)
            if kernel is not None:
                self.counters.incr("kernel_hits")
                telemetry.count(metric.KERNEL_HITS)
                return kernel
            self.counters.incr("kernel_misses")
            self.counters.incr("kernel_compiles")
            telemetry.count(metric.KERNEL_MISSES)
            telemetry.count(metric.KERNEL_COMPILES)
            kernel = BatchKernel(exprs, index, counters=self.counters)
            self._batch[key] = kernel
            return kernel

    # -- bookkeeping --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._smooth) + len(self._batch)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 before any lookup)."""
        return self.counters.ratio("kernel_hits", "kernel_hits", "kernel_misses")

    def summary(self) -> dict:
        """Counter snapshot for solve reports."""
        return self.counters.summary()

    def clear(self) -> None:
        with self._lock:
            self._smooth.clear()
            self._batch.clear()


_DEFAULT = KernelCache()


def default_cache() -> KernelCache:
    """The process-wide cache used by layers without a per-solve cache
    (e.g. the HSLB oracle's curve tabulation)."""
    return _DEFAULT
