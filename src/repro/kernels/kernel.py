"""Compiled evaluation kernels for expression sets.

A *kernel* is one bytecode-compiled function evaluating a whole set of
expressions — an objective, constraint bodies, their symbolic gradients and
Hessian entries — in a single pass, with common-subexpression elimination
across the set (:func:`repro.expr.compile.cse_source`).  Two shapes:

- :class:`BatchKernel` evaluates ``k`` expressions over a *batch* of points
  ``X`` of shape ``(m, n)`` in one vectorized numpy pass, returning an
  ``(m, k)`` array.  This is what the HSLB oracle and any candidate-layout
  scoring loop should use instead of a Python loop over points.
- :class:`SmoothKernel` packages value/gradient/Hessian evaluation of one
  smooth scalar function at a single point, the interface the barrier
  solver's inner loop needs.  Gradient entries are one compiled call, and
  Hessian entries another, each CSE'd internally.

Both produce results bit-identical to tree evaluation: emission preserves
the tree's left-associative operation order exactly, and CSE only reuses
values of *structurally identical* subtrees.

Kernels are built through a :class:`~repro.kernels.cache.KernelCache` in
production code — construction is the expensive part (symbolic
differentiation plus compilation), and branch-and-bound children share
almost every expression with their parent.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ExpressionError
from repro.expr.compile import (
    compile_expr,
    compile_expr_set,
    compile_expr_single,
)
from repro.expr.diff import gradient, hessian
from repro.expr.linear import linear_coefficients
from repro.expr.node import Expr

__all__ = ["BatchKernel", "SmoothKernel", "EVALUATORS"]

#: Evaluation back-ends for :class:`SmoothKernel`:
#: ``"kernel"`` — CSE'd compiled expression sets (the fast path),
#: ``"scalar"`` — one compiled lambda per expression (the pre-kernel path),
#: ``"tree"``   — direct tree walks via ``Expr.evaluate`` (the reference).
EVALUATORS = ("kernel", "scalar", "tree")


class BatchKernel:
    """``k`` expressions compiled into one vectorized pass.

    ``index`` maps variable names to columns of the input batch.  The
    compiled function is shape-agnostic: a 2-D batch ``X`` of shape
    ``(m, n)`` yields length-``m`` vectors per expression, a 1-D point
    yields scalars.
    """

    __slots__ = ("exprs", "index", "fn", "n_outputs", "counters")

    def __init__(self, exprs, index: dict, counters=None):
        self.exprs = tuple(exprs)
        if not self.exprs:
            raise ExpressionError("BatchKernel needs at least one expression")
        self.index = dict(index)
        self.fn = compile_expr_set(self.exprs, self.index, load="X[..., {}]", arg="X")
        self.n_outputs = len(self.exprs)
        self.counters = counters

    @property
    def source(self) -> str:
        """The generated Python source (for inspection and docs)."""
        return self.fn.__source__

    def __call__(self, X):
        """Raw outputs as a tuple (constants stay scalar)."""
        return self.fn(X)

    def values(self, X) -> np.ndarray:
        """Evaluate all expressions over the batch ``X``.

        ``X`` of shape ``(m, n)`` returns shape ``(m, k)``; a single point
        of shape ``(n,)`` returns shape ``(k,)``.  Constant expressions are
        broadcast across the batch.
        """
        X = np.asarray(X, dtype=float)
        raw = self.fn(X)
        out = np.empty(X.shape[:-1] + (self.n_outputs,))
        for j, column in enumerate(raw):
            out[..., j] = column
        if self.counters is not None:
            self.counters.incr("kernel_batch_evals")
            self.counters.incr(
                "kernel_batch_points", int(np.prod(X.shape[:-1], dtype=int))
            )
        return out


class SmoothCore:
    """The compiled, *position-independent* part of a smooth function.

    Evaluators are compiled against the expression's own support in sorted
    order (slots ``0..k-1``), never against a problem's variable layout —
    so one core serves every subproblem containing the same expression, no
    matter where its variables land in each problem's vector.  That is what
    makes the kernel cache effective across branch-and-bound nodes: a child
    whose presolve fixed *different* variables than its sibling still hits.

    ``support`` (sorted names), ``hess_pairs`` (upper-triangle name pairs)
    and ``linear`` describe the outputs; bindings map them to dense-array
    positions.
    """

    __slots__ = ("expr", "support", "hess_pairs", "linear",
                 "value", "grad_fn", "hess_fn")

    def __init__(self, expr: Expr, evaluator: str = "kernel"):
        if evaluator not in EVALUATORS:
            raise ExpressionError(
                f"unknown evaluator {evaluator!r}; expected one of {EVALUATORS}"
            )
        self.expr = expr
        self.support = tuple(sorted(expr.variables()))
        local = {n: i for i, n in enumerate(self.support)}
        try:
            self.linear = linear_coefficients(expr)
        except ExpressionError:
            self.linear = None
        grads = gradient(expr, self.support)
        grad_exprs = [grads[n] for n in self.support]
        hess_items = list(hessian(expr, self.support).items())
        self.hess_pairs = tuple(pair for pair, _ in hess_items)
        hess_exprs = [e for _, e in hess_items]

        if evaluator == "kernel":
            self.value = compile_expr_single(expr, local)
            self.grad_fn = (
                compile_expr_set(grad_exprs, local) if grad_exprs else _EMPTY
            )
            self.hess_fn = (
                compile_expr_set(hess_exprs, local) if hess_exprs else _EMPTY
            )
        elif evaluator == "scalar":
            self.value = compile_expr(expr, local)
            grad_fns = [compile_expr(e, local) for e in grad_exprs]
            hess_fns = [compile_expr(e, local) for e in hess_exprs]
            self.grad_fn = lambda x: tuple(f(x) for f in grad_fns)
            self.hess_fn = lambda x: tuple(f(x) for f in hess_fns)
        else:  # tree-walk reference
            names = self.support

            def env_of(x):
                return {n: x[i] for i, n in enumerate(names)}

            self.value = lambda x: expr.evaluate(env_of(x))
            self.grad_fn = lambda x: tuple(
                e.evaluate(env_of(x)) for e in grad_exprs
            )
            self.hess_fn = lambda x: tuple(
                e.evaluate(env_of(x)) for e in hess_exprs
            )


class SmoothKernel:
    """A :class:`SmoothCore` bound to one problem's variable layout.

    All callables take the problem's full variable vector ``x``; ``index``
    maps variable names to positions in that vector.  Binding is cheap —
    just position arrays — so sharing a core across subproblems costs
    nothing per problem.  ``grad_positions`` and ``hess_positions`` carry
    the dense-array targets for the entries the gradient/Hessian evaluators
    return, in matching order.
    """

    __slots__ = ("core", "grad_positions", "hess_positions", "_sel", "counters")

    def __init__(self, expr: Expr, index: dict, evaluator: str = "kernel",
                 counters=None, core: SmoothCore | None = None):
        self.core = core if core is not None else SmoothCore(expr, evaluator)
        self.counters = counters
        support = self.core.support
        self.grad_positions = [index[n] for n in support]
        self.hess_positions = [
            (index[a], index[b]) for a, b in self.core.hess_pairs
        ]
        self._sel = np.array(self.grad_positions, dtype=np.intp)

    @property
    def expr(self) -> Expr:
        return self.core.expr

    @property
    def linear(self):
        """Linear coefficients when the expression is affine, else None."""
        return self.core.linear

    # -- dense assembly (the barrier solver's interface) ----------------------

    def value(self, x) -> float:
        return self.core.value(x[self._sel])

    def grad_entries(self, x) -> tuple:
        """Gradient entries at ``x``, aligned with ``grad_positions``."""
        return self.core.grad_fn(x[self._sel])

    def hess_entries(self, x) -> tuple:
        """Upper-triangle Hessian entries, aligned with ``hess_positions``."""
        return self.core.hess_fn(x[self._sel])

    def grad_into(self, x, out: np.ndarray) -> None:
        """Accumulate the gradient at ``x`` into dense vector ``out``."""
        if self.counters is not None:
            self.counters.incr("kernel_grad_evals")
        for pos, val in zip(self.grad_positions, self.core.grad_fn(x[self._sel])):
            out[pos] += val

    def grad_vector(self, x, n: int) -> np.ndarray:
        out = np.zeros(n)
        self.grad_into(x, out)
        return out

    def hess_into(self, x, out: np.ndarray, scale: float) -> None:
        """Accumulate ``scale * Hessian`` at ``x`` into dense matrix ``out``."""
        if self.core.linear is not None:
            return  # affine: zero Hessian
        if self.counters is not None:
            self.counters.incr("kernel_hess_evals")
        entries = self.core.hess_fn(x[self._sel])
        for (ia, ib), entry in zip(self.hess_positions, entries):
            v = entry * scale
            if v == 0.0:
                continue
            out[ia, ib] += v
            if ia != ib:
                out[ib, ia] += v


def _EMPTY(x):
    return ()
