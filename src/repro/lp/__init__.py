"""Linear programming substrate (the paper's CLP stand-in).

:mod:`repro.lp` provides a dense, bounded-variable, two-phase revised
simplex solver.  Problems are stated in the matrix form

    minimize    c . x
    subject to  A x  (<=, >=, =)  b,     l <= x <= u

via :class:`LinearProgram`; :func:`solve_lp` returns an :class:`LPResult`
with primal solution, objective, duals and a status flag.  The MINLP
branch-and-bound layer builds these from :class:`~repro.model.Model`
objects, appending outer-approximation rows between solves; passing a
previous solve's :class:`WarmStart` re-optimizes through the dual simplex
(bound tightenings and appended cut rows break primal but not dual
feasibility, the branch-and-bound sweet spot).

Scale expectations: the paper's layout LPs have tens of rows and up to a
couple thousand columns (one binary per allowed atmosphere node count), so a
dense ``numpy`` implementation with an m×m basis factorization per iteration
is comfortably fast and, more importantly, exact and debuggable.
"""

from repro.lp.problem import LinearProgram, RowSense
from repro.lp.result import LPResult, LPStatus, WarmStart
from repro.lp.simplex import SimplexOptions, solve_lp

__all__ = [
    "LinearProgram",
    "RowSense",
    "LPResult",
    "LPStatus",
    "WarmStart",
    "SimplexOptions",
    "solve_lp",
]
