"""Matrix-form linear programs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError


class RowSense(enum.Enum):
    """Row sense for ``a . x  SENSE  b``."""

    LE = "<="
    GE = ">="
    EQ = "="


@dataclass
class LinearProgram:
    """``min c.x  s.t.  A x sense b,  l <= x <= u``.

    ``A`` is dense ``(m, n)``; ``senses`` has one entry per row.  Variable
    names are optional and only used for reporting.  Rows can be appended
    after construction (the LP/NLP solver adds outer-approximation cuts),
    so ``A``/``b``/``senses`` are kept as growable lists until
    :meth:`matrices` snapshots them.
    """

    c: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    names: list = field(default_factory=list)
    rows: list = field(default_factory=list)      # list of 1-D coefficient arrays
    senses: list = field(default_factory=list)    # list of RowSense
    rhs: list = field(default_factory=list)       # list of floats

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        self.lb = np.asarray(self.lb, dtype=float)
        self.ub = np.asarray(self.ub, dtype=float)
        n = self.c.shape[0]
        if self.lb.shape != (n,) or self.ub.shape != (n,):
            raise ModelError("c, lb, ub must have matching 1-D shapes")
        if np.any(self.lb > self.ub):
            raise ModelError("lb > ub for some variable")
        if not self.names:
            self.names = [f"x{j}" for j in range(n)]
        if len(self.names) != n:
            raise ModelError("names length must match number of variables")

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def add_row(self, coeffs: np.ndarray, sense: RowSense, rhs: float) -> int:
        """Append a row; returns its index."""
        row = np.asarray(coeffs, dtype=float)
        if row.shape != (self.num_vars,):
            raise ModelError(
                f"row has {row.shape} coefficients, expected ({self.num_vars},)"
            )
        if not np.all(np.isfinite(row)) or not np.isfinite(rhs):
            raise ModelError("row coefficients and rhs must be finite")
        self.rows.append(row)
        self.senses.append(sense)
        self.rhs.append(float(rhs))
        return len(self.rows) - 1

    def matrices(self):
        """Snapshot ``(A, b)`` as dense arrays (empty-shaped when no rows)."""
        if self.rows:
            return np.vstack(self.rows), np.asarray(self.rhs, dtype=float)
        return np.zeros((0, self.num_vars)), np.zeros(0)

    def copy(self) -> "LinearProgram":
        """Deep copy (used by branch-and-bound to branch on bounds)."""
        lp = LinearProgram(
            self.c.copy(), self.lb.copy(), self.ub.copy(), list(self.names)
        )
        lp.rows = [r.copy() for r in self.rows]
        lp.senses = list(self.senses)
        lp.rhs = list(self.rhs)
        return lp
