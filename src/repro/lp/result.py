"""LP solve results."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class WarmStart:
    """A basis snapshot for re-solving a perturbed LP.

    ``basis`` holds one column index per row over the structural+slack
    column space (structural columns first, then one slack per row, in row
    order); ``status`` holds the basic/at-lower/at-upper code for each of
    those columns.  Valid to reuse after bound tightening and after
    *appending* rows (the new rows' slacks join the basis); the dual simplex
    then repairs primal feasibility in a handful of pivots.
    """

    basis: np.ndarray
    status: np.ndarray


@dataclass
class LPResult:
    """Outcome of a simplex solve.

    ``x`` and ``objective`` are meaningful only when ``status`` is OPTIMAL.
    ``duals`` holds one multiplier per row (simplex ``y = c_B B^{-1}``),
    ``iterations`` the pivot count — the ablation benchmarks report it.
    """

    status: LPStatus
    x: np.ndarray | None = None
    objective: float = float("nan")
    duals: np.ndarray | None = None
    iterations: int = 0
    phase1_iterations: int = 0
    dual_iterations: int = 0
    message: str = ""
    warm: "WarmStart | None" = None

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    def value_map(self, names: list) -> dict:
        """Solution as ``{name: value}`` (requires optimal status)."""
        if self.x is None:
            raise ValueError(f"no solution available (status={self.status.value})")
        return dict(zip(names, (float(v) for v in self.x)))
