"""Two-phase bounded-variable revised simplex.

The implementation keeps an explicit basis index set and re-solves the m×m
basis system with dense LAPACK each iteration — with the tens-of-rows LPs
this library produces, factorization reuse would be noise, and recomputing
keeps the state small and the algorithm easy to verify (tests cross-check
every solve against ``scipy.optimize.linprog``).

Phase 1 appends one artificial column per row and minimizes their sum from
the all-nonbasic starting point; phase 2 then minimizes the true objective
with the artificials pinned to zero.  Dantzig pricing is used until a run of
degenerate pivots suggests cycling, at which point the solver switches to
Bland's rule (which terminates finitely).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SolverError
from repro.lp.problem import LinearProgram, RowSense
from repro.lp.result import LPResult, LPStatus, WarmStart

__all__ = ["SimplexOptions", "solve_lp"]

_BASIC, _AT_LOWER, _AT_UPPER = 0, 1, 2


@dataclass
class SimplexOptions:
    """Tuning knobs for :func:`solve_lp`."""

    tol: float = 1e-9              # reduced-cost / feasibility tolerance
    max_iterations: int = 20000    # per phase
    bland_after: int = 60          # consecutive degenerate pivots before Bland


def solve_lp(
    lp: LinearProgram,
    options: SimplexOptions | None = None,
    warm: WarmStart | None = None,
) -> LPResult:
    """Solve ``lp``; always returns an :class:`LPResult` (never raises for
    infeasible/unbounded instances — those are statuses).

    ``warm`` re-starts from a previous solve's basis (see
    :class:`~repro.lp.result.WarmStart`): bounds may have changed and rows
    may have been *appended* since; primal feasibility is repaired by the
    dual simplex, typically in a few pivots, skipping phase 1 entirely.
    """
    options = options or SimplexOptions()
    A, b = lp.matrices()
    m, n = A.shape

    if m == 0:
        # Pure bound minimization: each variable sits at the bound its cost
        # prefers; unbounded if a nonzero cost points at an infinite bound.
        x = np.where(lp.c >= 0, lp.lb, lp.ub)
        x = np.where(lp.c == 0, np.clip(0.0, lp.lb, lp.ub), x)
        if not np.all(np.isfinite(x)):
            return LPResult(LPStatus.UNBOUNDED, message="cost on an unbounded variable")
        return LPResult(
            LPStatus.OPTIMAL, x=x, objective=float(lp.c @ x), duals=np.zeros(0)
        )

    if warm is not None and warm.basis.shape[0] <= m and warm.status.shape[0] <= n + m:
        try:
            state = _Tableau(lp, A, b, options, warm=warm)
            return state.solve_warm()
        except (np.linalg.LinAlgError, SolverError):
            pass  # stale/singular warm basis: fall back to a cold solve
    state = _Tableau(lp, A, b, options)
    return state.solve()


class _Tableau:
    """Mutable solver state for one LP solve."""

    def __init__(
        self,
        lp: LinearProgram,
        A: np.ndarray,
        b: np.ndarray,
        options: SimplexOptions,
        warm: WarmStart | None = None,
    ):
        self.lp = lp
        self.opt = options
        self.b = b
        m, n = A.shape
        self.m, self.n_struct = m, n

        # Slack columns: LE -> s in [0, inf); GE -> s in (-inf, 0]; EQ fixed 0.
        slack_lb = np.empty(m)
        slack_ub = np.empty(m)
        for i, sense in enumerate(lp.senses):
            if sense is RowSense.LE:
                slack_lb[i], slack_ub[i] = 0.0, np.inf
            elif sense is RowSense.GE:
                slack_lb[i], slack_ub[i] = -np.inf, 0.0
            else:
                slack_lb[i], slack_ub[i] = 0.0, 0.0

        # Artificial columns get their sign chosen after the initial point.
        self.A = np.hstack([A, np.eye(m), np.zeros((m, m))])
        self.lb = np.concatenate([lp.lb, slack_lb, np.zeros(m)])
        self.ub = np.concatenate([lp.ub, slack_ub, np.full(m, np.inf)])
        self.ncols = n + 2 * m
        self.art_start = n + m

        self.iterations = 0
        self.phase1_iterations = 0
        self.dual_iterations = 0
        self.duals = np.zeros(m)

        if warm is not None:
            self._init_from_warm(warm, n, m)
            return

        # Start with every structural/slack column nonbasic at a finite bound
        # (0 when the box contains it), artificials basic covering residuals.
        self.status = np.full(self.ncols, _AT_LOWER, dtype=np.int8)
        self.values = np.zeros(self.ncols)
        for j in range(n + m):
            lo, hi = self.lb[j], self.ub[j]
            # Nonbasic variables must rest exactly on a finite bound (the
            # bounded-simplex invariant); pick the one nearest zero.  A
            # genuinely free variable sits at 0 and is special-cased in
            # pricing.
            if np.isfinite(lo) and np.isfinite(hi):
                v, stat = (lo, _AT_LOWER) if abs(lo) <= abs(hi) else (hi, _AT_UPPER)
            elif np.isfinite(lo):
                v, stat = lo, _AT_LOWER
            elif np.isfinite(hi):
                v, stat = hi, _AT_UPPER
            else:
                v, stat = 0.0, _AT_LOWER
            self.values[j] = v
            self.status[j] = stat

        residual = b - self.A[:, : n + m] @ self.values[: n + m]
        self.basis = np.empty(m, dtype=int)
        for i in range(m):
            col = self.art_start + i
            sign = 1.0 if residual[i] >= 0 else -1.0
            self.A[i, col] = sign
            self.basis[i] = col
            self.status[col] = _BASIC
            self.values[col] = abs(residual[i])

    def _init_from_warm(self, warm: WarmStart, n: int, m: int) -> None:
        """Adopt a previous basis: old columns keep their status, new rows'
        slacks enter the basis, every nonbasic snaps to its (possibly moved)
        bound, and the basic values are recomputed."""
        # Artificials never participate in a warm start: pin them.
        self.ub[self.art_start:] = 0.0

        self.status = np.full(self.ncols, _AT_LOWER, dtype=np.int8)
        k = warm.status.shape[0]
        self.status[:k] = warm.status
        m_old = warm.basis.shape[0]
        self.basis = np.concatenate(
            [warm.basis.astype(int), np.arange(n + m_old, n + m)]
        )
        self.status[self.basis] = _BASIC

        self.values = np.zeros(self.ncols)
        for j in range(n + m):
            if self.status[j] == _BASIC:
                continue
            lo, hi = self.lb[j], self.ub[j]
            if self.status[j] == _AT_UPPER and np.isfinite(hi):
                self.values[j] = hi
            elif np.isfinite(lo):
                self.values[j] = lo
                self.status[j] = _AT_LOWER
            elif np.isfinite(hi):
                self.values[j] = hi
                self.status[j] = _AT_UPPER
            else:
                self.values[j] = 0.0
        self._recompute_basics(self.b)

    # -- helpers ----------------------------------------------------------------

    def _basic_values(self) -> np.ndarray:
        return self.values[self.basis]

    def _recompute_basics(self, b: np.ndarray) -> None:
        nonbasic_mask = np.ones(self.ncols, dtype=bool)
        nonbasic_mask[self.basis] = False
        rhs = b - self.A[:, nonbasic_mask] @ self.values[nonbasic_mask]
        B = self.A[:, self.basis]
        self.values[self.basis] = np.linalg.solve(B, rhs)

    # -- the core iteration -------------------------------------------------------

    def _iterate(self, cost: np.ndarray, b: np.ndarray, phase: int) -> LPStatus:
        tol = self.opt.tol
        degenerate_run = 0
        for _ in range(self.opt.max_iterations):
            B = self.A[:, self.basis]
            try:
                y = np.linalg.solve(B.T, cost[self.basis])
            except np.linalg.LinAlgError as exc:  # pragma: no cover - safeguarded
                raise SolverError(f"singular basis in simplex: {exc}") from exc
            self.duals = y

            use_bland = degenerate_run >= self.opt.bland_after
            entering, direction = self._price(cost, y, tol, use_bland, phase)
            if entering is None:
                return LPStatus.OPTIMAL

            w = np.linalg.solve(B, self.A[:, entering])
            step, leaving_pos, flip = self._ratio_test(entering, direction, w, tol)
            if step is None:
                return LPStatus.UNBOUNDED

            if step <= tol:
                degenerate_run += 1
            else:
                degenerate_run = 0

            # Apply the move.
            self.values[self.basis] -= direction * step * w
            self.values[entering] += direction * step
            if flip:
                # Land exactly on the opposite bound (no numerical drift).
                if self.status[entering] == _AT_LOWER:
                    self.status[entering] = _AT_UPPER
                    self.values[entering] = self.ub[entering]
                else:
                    self.status[entering] = _AT_LOWER
                    self.values[entering] = self.lb[entering]
            else:
                leaving = self.basis[leaving_pos]
                # Leaving variable exits exactly at the bound it hit.
                lo, hi = self.lb[leaving], self.ub[leaving]
                val = self.values[leaving]
                if np.isfinite(lo) and abs(val - lo) <= abs(val - hi):
                    self.status[leaving] = _AT_LOWER
                    self.values[leaving] = lo
                else:
                    self.status[leaving] = _AT_UPPER
                    self.values[leaving] = hi
                self.basis[leaving_pos] = entering
                self.status[entering] = _BASIC
            self.iterations += 1
            if phase == 1:
                self.phase1_iterations += 1
            # Periodically re-solve the basic system to shed drift from the
            # incremental updates.
            if self.iterations % 100 == 0:
                self._recompute_basics(b)
        return LPStatus.ITERATION_LIMIT

    def _price(self, cost, y, tol, use_bland, phase):
        """Choose an entering column and its movement direction (+1/-1).

        Fully vectorized (Dantzig: most negative effective reduced cost);
        Bland's rule picks the smallest eligible index instead.
        """
        d = cost - y @ self.A  # reduced costs for every column

        nonbasic = self.status != _BASIC
        movable = nonbasic & (self.lb != self.ub)
        if phase == 2:
            movable[self.art_start :] = False
        free = ~np.isfinite(self.lb) & ~np.isfinite(self.ub)

        up = movable & (d < -tol) & ((self.status == _AT_LOWER) | free)
        down = movable & (d > tol) & ((self.status == _AT_UPPER) | free)

        score = np.where(up, -d, np.where(down, d, -np.inf))
        if use_bland:
            eligible = np.flatnonzero(up | down)
            if eligible.size == 0:
                return None, 0.0
            j = int(eligible[0])
        else:
            j = int(np.argmax(score))
            if score[j] == -np.inf:
                return None, 0.0
        return j, (1.0 if up[j] else -1.0)

    def _ratio_test(self, entering, direction, w, tol):
        """Max step ``t >= 0``; returns (t, leaving_basis_pos, is_bound_flip)."""
        best_t = np.inf
        leaving_pos = None
        xB = self.values[self.basis]
        lbB = self.lb[self.basis]
        ubB = self.ub[self.basis]
        delta = direction * w  # basic values change by -delta * t
        for i in range(self.m):
            if delta[i] > tol:
                if np.isfinite(lbB[i]):
                    t = (xB[i] - lbB[i]) / delta[i]
                    if t < best_t - 1e-15:
                        best_t, leaving_pos = max(t, 0.0), i
            elif delta[i] < -tol:
                if np.isfinite(ubB[i]):
                    t = (ubB[i] - xB[i]) / (-delta[i])
                    if t < best_t - 1e-15:
                        best_t, leaving_pos = max(t, 0.0), i
        # Bound flip of the entering variable itself.
        span = self.ub[entering] - self.lb[entering]
        flip = False
        if np.isfinite(span) and span < best_t:
            best_t, leaving_pos, flip = span, None, True
        if not np.isfinite(best_t):
            return None, None, False
        return best_t, leaving_pos, flip

    # -- driver ---------------------------------------------------------------------

    def solve(self) -> LPResult:
        _, b = self.lp.matrices()
        tol = self.opt.tol

        # Phase 1: minimize the artificial sum.
        cost1 = np.zeros(self.ncols)
        cost1[self.art_start :] = 1.0
        status = self._iterate(cost1, b, phase=1)
        if status is LPStatus.ITERATION_LIMIT:
            return LPResult(status, iterations=self.iterations,
                            phase1_iterations=self.phase1_iterations,
                            message="phase 1 iteration limit")
        art_sum = float(self.values[self.art_start :].sum())
        scale = max(1.0, float(np.abs(b).max()) if b.size else 1.0)
        if art_sum > 1e-7 * scale:
            return LPResult(LPStatus.INFEASIBLE, iterations=self.iterations,
                            phase1_iterations=self.phase1_iterations,
                            message=f"phase 1 optimum {art_sum:.3e} > 0")
        # Pin artificials so they cannot re-enter or move off zero.
        self.ub[self.art_start :] = 0.0
        self.values[self.art_start :] = np.minimum(self.values[self.art_start :], 0.0)

        # Phase 2: the real objective.
        cost2 = np.zeros(self.ncols)
        cost2[: self.n_struct] = self.lp.c
        status = self._iterate(cost2, b, phase=2)
        if status is LPStatus.ITERATION_LIMIT:
            return LPResult(status, iterations=self.iterations,
                            phase1_iterations=self.phase1_iterations,
                            message="phase 2 iteration limit")
        if status is LPStatus.UNBOUNDED:
            return LPResult(LPStatus.UNBOUNDED, iterations=self.iterations,
                            phase1_iterations=self.phase1_iterations)

        return self._optimal_result()

    def _optimal_result(self) -> LPResult:
        x = self.values[: self.n_struct].copy()
        # Clean tiny bound violations introduced by floating point.
        x = np.clip(x, self.lp.lb, self.lp.ub)
        return LPResult(
            LPStatus.OPTIMAL,
            x=x,
            objective=float(self.lp.c @ x),
            duals=self.duals.copy(),
            iterations=self.iterations,
            phase1_iterations=self.phase1_iterations,
            dual_iterations=self.dual_iterations,
            warm=self._export_warm(),
        )

    def _export_warm(self) -> WarmStart | None:
        """Snapshot the final basis for reuse (None if an artificial is
        still basic — rare degenerate leftovers from phase 1)."""
        if np.any(self.basis >= self.art_start):
            return None
        return WarmStart(
            basis=self.basis.copy(),
            status=self.status[: self.art_start].copy(),
        )

    # -- warm start: dual simplex then primal cleanup --------------------------------

    def solve_warm(self) -> LPResult:
        cost2 = np.zeros(self.ncols)
        cost2[: self.n_struct] = self.lp.c

        status = self._dual_iterate(cost2)
        if status is LPStatus.INFEASIBLE:
            return LPResult(LPStatus.INFEASIBLE, iterations=self.iterations,
                            dual_iterations=self.dual_iterations,
                            message="dual simplex proved primal infeasibility")
        if status is LPStatus.ITERATION_LIMIT:
            raise SolverError("dual simplex iteration limit on a warm start")

        # Primal phase 2 from the now primal-feasible basis (usually 0
        # pivots; also mops up any dual infeasibility the warm basis had).
        status = self._iterate(cost2, self.b, phase=2)
        if status is LPStatus.ITERATION_LIMIT:
            return LPResult(status, iterations=self.iterations,
                            dual_iterations=self.dual_iterations,
                            message="phase 2 iteration limit after warm start")
        if status is LPStatus.UNBOUNDED:
            return LPResult(LPStatus.UNBOUNDED, iterations=self.iterations,
                            dual_iterations=self.dual_iterations)
        return self._optimal_result()

    def _dual_iterate(self, cost: np.ndarray) -> LPStatus:
        """Repair primal feasibility while preserving dual feasibility.

        Classic bounded-variable dual simplex: pick the most-violated basic
        variable, push it to the bound it violates, and let the dual ratio
        test pick the entering column that keeps reduced costs consistent.
        """
        tol = self.opt.tol
        for _ in range(self.opt.max_iterations):
            xB = self.values[self.basis]
            lbB = self.lb[self.basis]
            ubB = self.ub[self.basis]
            below = np.where(np.isfinite(lbB), lbB - xB, -np.inf)
            above = np.where(np.isfinite(ubB), xB - ubB, -np.inf)
            viol = np.maximum(below, above)
            i = int(np.argmax(viol))
            if viol[i] <= tol * (1.0 + float(np.abs(self.b).max(initial=0.0))):
                return LPStatus.OPTIMAL  # primal feasible
            needs_increase = below[i] >= above[i]
            leaving = self.basis[i]

            B = self.A[:, self.basis]
            try:
                y = np.linalg.solve(B.T, cost[self.basis])
                e = np.zeros(self.m)
                e[i] = 1.0
                rho = np.linalg.solve(B.T, e)
            except np.linalg.LinAlgError as exc:
                raise SolverError(f"singular basis in dual simplex: {exc}") from exc
            self.duals = y
            d = cost - y @ self.A
            alpha = rho @ self.A  # pivot row over all columns

            nonbasic = self.status != _BASIC
            movable = nonbasic & (self.lb != self.ub)
            movable[self.art_start:] = False
            free = ~np.isfinite(self.lb) & ~np.isfinite(self.ub)
            at_lower = movable & ((self.status == _AT_LOWER) | free)
            at_upper = movable & (self.status == _AT_UPPER) & ~free
            if needs_increase:
                eligible = (at_lower & (alpha < -tol)) | (at_upper & (alpha > tol))
            else:
                eligible = (at_lower & (alpha > tol)) | (at_upper & (alpha < -tol))
            idx = np.flatnonzero(eligible)
            if idx.size == 0:
                return LPStatus.INFEASIBLE  # row proves primal infeasibility

            ratios = np.abs(d[idx] / alpha[idx])
            entering = int(idx[np.argmin(ratios)])

            # Pivot: entering becomes basic, leaving exits at the violated
            # bound; recompute the basic values exactly.
            self.basis[i] = entering
            self.status[entering] = _BASIC
            if needs_increase:
                self.status[leaving] = _AT_LOWER
                self.values[leaving] = self.lb[leaving]
            else:
                self.status[leaving] = _AT_UPPER
                self.values[leaving] = self.ub[leaving]
            self._recompute_basics(self.b)
            self.iterations += 1
            self.dual_iterations += 1
        return LPStatus.ITERATION_LIMIT
