"""Machine abstraction (the paper's Intrepid Blue Gene/P)."""

from repro.machine.machine import INTREPID, Machine

__all__ = ["Machine", "INTREPID"]
