"""Machine descriptions.

The paper allocates *nodes* (not cores): on Intrepid CESM runs 1 MPI task
with 4 OpenMP threads per node, so the node is the natural scheduling unit
(Sec. III-C).  :class:`Machine` records that mapping so reports can convert
between nodes and cores, and so cases can validate allocation totals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_integer, check_positive


@dataclass(frozen=True)
class Machine:
    """A homogeneous cluster/supercomputer partition.

    ``relative_speed`` scales per-node throughput against the calibration
    baseline (Intrepid = 1.0): the simulator divides component times by it.
    This enables the paper's Sec. IV-C "prediction of CESM scaling on new
    hardware" workflow — with all the reliability caveats the paper attaches
    to it (a uniform speed factor ignores network/memory balance shifts).
    """

    name: str
    nodes: int
    cores_per_node: int = 4
    mpi_tasks_per_node: int = 1
    threads_per_task: int = 4
    relative_speed: float = 1.0

    def __post_init__(self):
        check_integer(self.nodes, "nodes")
        check_positive(self.nodes, "nodes")
        check_integer(self.cores_per_node, "cores_per_node")
        check_positive(self.cores_per_node, "cores_per_node")
        check_positive(self.mpi_tasks_per_node, "mpi_tasks_per_node")
        check_positive(self.threads_per_task, "threads_per_task")
        check_positive(self.relative_speed, "relative_speed")

    @property
    def cores(self) -> int:
        """Total core count."""
        return self.nodes * self.cores_per_node

    def cores_for(self, nodes: int) -> int:
        """Cores used by an allocation of ``nodes`` nodes."""
        if not 0 < nodes <= self.nodes:
            raise ValueError(
                f"allocation of {nodes} nodes outside machine capacity "
                f"1..{self.nodes}"
            )
        return nodes * self.cores_per_node

    def partition(self, nodes: int) -> "Machine":
        """A sub-partition of this machine (used to target job sizes)."""
        if not 0 < nodes <= self.nodes:
            raise ValueError(f"partition of {nodes} nodes exceeds {self.nodes}")
        return Machine(
            name=f"{self.name}[{nodes}]",
            nodes=nodes,
            cores_per_node=self.cores_per_node,
            mpi_tasks_per_node=self.mpi_tasks_per_node,
            threads_per_task=self.threads_per_task,
            relative_speed=self.relative_speed,
        )

    def scaled(self, speed: float, name: str | None = None) -> "Machine":
        """A hypothetical machine ``speed`` times faster per node."""
        check_positive(speed, "speed")
        return Machine(
            name=name or f"{self.name}x{speed:g}",
            nodes=self.nodes,
            cores_per_node=self.cores_per_node,
            mpi_tasks_per_node=self.mpi_tasks_per_node,
            threads_per_task=self.threads_per_task,
            relative_speed=self.relative_speed * speed,
        )


#: Intrepid, the IBM Blue Gene/P at the Argonne Leadership Computing
#: Facility: 40,960 quad-core nodes (163,840 cores).  CESM is run with one
#: MPI task and four threads per node (paper Sec. I and III-C).
INTREPID = Machine(name="intrepid", nodes=40_960, cores_per_node=4)
