"""Mixed-integer nonlinear programming solvers (the MINOTAUR stand-in).

Two branch-and-bound algorithms over :class:`repro.model.Model` instances:

- :func:`solve_lpnlp` — the paper's LP/NLP-based branch-and-bound
  (Quesada–Grossmann).  A single tree search over mixed-integer *linear*
  relaxations: nonlinear constraints enter only through lazily-added
  outer-approximation cuts (paper eq. (4)), and every integer-feasible LP
  point triggers a fixed-integer NLP solve that supplies incumbents and new
  linearization points.  Globally optimal when every nonlinear row passes
  the convexity calculus (which the performance-model family does).
- :func:`solve_nlp_bnb` — classic NLP-based branch-and-bound that solves a
  continuous barrier relaxation at every node.  Slower, used as a
  cross-check and in the branching ablation.

Both support branching on individual integer variables and on SOS1 sets;
the latter is what makes the paper's atmosphere allowed-node-count sets
tractable (Sec. III-E reports two orders of magnitude).
"""

from repro.minlp.options import (
    BranchRule,
    MINLPOptions,
    NodeSelection,
    VarBranchRule,
    minlp_options_from_dict,
    minlp_options_to_dict,
)
from repro.minlp.result import MINLPResult, MINLPStatus
from repro.minlp.lpnlp import solve_lpnlp
from repro.minlp.bnb import solve_nlp_bnb

__all__ = [
    "BranchRule",
    "MINLPOptions",
    "minlp_options_from_dict",
    "minlp_options_to_dict",
    "NodeSelection",
    "VarBranchRule",
    "MINLPResult",
    "MINLPStatus",
    "solve_lpnlp",
    "solve_nlp_bnb",
]
