"""Classic NLP-based branch-and-bound.

Solves the continuous (barrier) relaxation at *every* node, in contrast to
:mod:`repro.minlp.lpnlp` which solves cheap LPs and only calls the barrier
solver at integer-feasible points.  The paper uses MINOTAUR's LP/NLP solver
for exactly this reason; this solver exists as an independent cross-check
(both must agree on small instances) and to make the branching/algorithm
ablations meaningful.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.exceptions import ModelError, SolverError
from repro.kernels import KernelCache
from repro.model.model import Model
from repro.minlp.branching import (
    branch_integer,
    most_fractional_integer,
    split_sos,
    violated_sos_sets,
)
from repro.minlp.lpnlp import _solve_fixed_nlp
from repro.minlp.node import Node, NodeQueue
from repro.minlp.nlpbuild import build_nlp
from repro.minlp.options import BranchRule, MINLPOptions
from repro.minlp.result import MINLPResult, MINLPStatus
from repro.nlp.barrier import solve_nlp
from repro.parallel.executor import ThreadExecutor
from repro import telemetry
from repro.telemetry import names as metric
from repro.util.timing import Stopwatch

__all__ = ["solve_nlp_bnb"]

_NL_FEAS_TOL = 1e-6


def _warm_x0(node: Node, prob):
    """Project the parent's solution into this node's (tighter) box,
    nudged strictly inside; solve_nlp falls back to phase 1 if the
    projection is not strictly feasible for the nonlinear rows."""
    if node.warm is None:
        return None
    vals = np.array([node.warm.get(name, 0.0) for name in prob.names])
    margin = 1e-6 * (1.0 + np.abs(prob.ub - prob.lb))
    lo_s = np.where(np.isfinite(prob.lb), prob.lb + margin, vals)
    hi_s = np.where(np.isfinite(prob.ub), prob.ub - margin, vals)
    if np.all(lo_s <= hi_s):
        return np.clip(vals, lo_s, hi_s)
    return None


class _NLPSpec:
    """A child node's NLP, built at push time and (maybe) solved off-thread.

    The build — the only part touching the shared :class:`KernelCache` —
    runs on the main thread; the worker thread runs the pure barrier solve.
    ``handle.result()`` at pop yields the same :class:`NLPResult` (and
    re-raises the same error) the inline solve would, so consuming a
    speculation is observationally identical to not speculating; discarding
    one only wastes worker time.
    """

    __slots__ = ("built", "x0", "handle")

    def __init__(self, built, x0, handle):
        self.built = built
        self.x0 = x0
        self.handle = handle


def _solve_spec_nlp(problem, x0, options):
    return solve_nlp(problem, x0=x0, options=options)


def _speculate_nlp(model, obj_expr, node: Node, cache, opt, ex) -> _NLPSpec:
    built = build_nlp(
        model, obj_expr, fixings={}, bounds=node.bounds,
        kernel_cache=cache, evaluator=opt.evaluator,
    )
    x0 = None
    handle = None
    if built.infeasible_reason is None and not built.fully_fixed:
        x0 = _warm_x0(node, built.problem)
        handle = ex.submit(_solve_spec_nlp, built.problem, x0, opt.nlp_options)
    return _NLPSpec(built, x0, handle)


def solve_nlp_bnb(model: Model, options: MINLPOptions | None = None) -> MINLPResult:
    """Solve ``model`` by NLP-based branch-and-bound."""
    opt = options or MINLPOptions()
    sw = Stopwatch()
    t0 = time.monotonic()
    telemetry.count(metric.MINLP_SOLVES, solver="bnb")
    if model.objective is None:
        raise ModelError("model has no objective")
    if opt.require_convex and not model.is_certified_convex():
        raise SolverError(
            "model fails the convexity certificate; NLP-based branch-and-bound "
            "bounds would not be valid (set require_convex=False to proceed)"
        )
    obj_expr = model.objective.minimization_expr()

    # One cache for the whole tree: children share their parent's
    # expressions (only bounds differ), so every node after the root
    # re-uses the root's compiled kernels.
    cache = KernelCache()

    incumbent: dict | None = None
    upper = math.inf
    nlp_solves = 0

    # Cross-solve reuse: only the FBBT root box and incumbent seeding apply
    # here — cut and basis carry-over are LP-master concepts, and the root
    # barrier start point is deliberately NOT seeded (a different interior
    # start would perturb relaxation bits; see docs/reuse.md).
    reuse = opt.reuse
    plan = None
    rz: dict = {}
    if reuse is not None:
        with sw.phase("reuse_plan"):
            plan = reuse.plan(model)
        rz = dict(plan.counters)
        if plan.fixings is not None:
            with sw.phase("nlp_seed"):
                cand_env, cand_obj, solved = _solve_fixed_nlp(
                    model, obj_expr, plan.fixings, opt, cache
                )
                nlp_solves += solved
                telemetry.count(metric.MINLP_NLP_SOLVES, solved, solver="bnb")
            if cand_env is not None and math.isfinite(cand_obj):
                upper, incumbent = cand_obj, cand_env
                rz["incumbent_seeded"] = 1
            else:
                rz["incumbent_rejected"] = rz.get("incumbent_rejected", 0) + 1

    queue = NodeQueue(opt.node_selection)
    root = Node()
    if plan is not None:
        root.bounds = dict(plan.root_bounds)
    queue.push(root)
    nodes = 0
    status = MINLPStatus.OPTIMAL
    message = ""

    # workers > 1: children's NLPs are solved speculatively on a thread
    # pool while the main thread works the tree.  Results are consumed at
    # pop time with identical checks and counters, so the search — node
    # count, incumbent, bounds — is bit-identical to the serial one.
    ex = ThreadExecutor(opt.workers) if opt.workers > 1 else None

    def push_child(child: Node) -> None:
        if ex is not None:
            child.spec = _speculate_nlp(model, obj_expr, child, cache, opt, ex)
        queue.push(child)

    def cutoff() -> float:
        if not math.isfinite(upper):
            return math.inf
        return upper - max(opt.abs_gap, opt.rel_gap * max(1.0, abs(upper)))

    try:
        while len(queue):
            if nodes >= opt.max_nodes:
                status, message = MINLPStatus.NODE_LIMIT, f"{nodes} nodes explored"
                break
            if time.monotonic() - t0 > opt.time_limit:
                status, message = MINLPStatus.TIME_LIMIT, "time limit reached"
                break
            if opt.check_hook is not None and opt.check_hook():
                status, message = MINLPStatus.TIME_LIMIT, "stopped by check hook"
                break

            node = queue.pop()
            spec = node.spec
            node.spec = None
            if node.bound >= cutoff():
                continue
            nodes += 1
            telemetry.count(metric.MINLP_NODES, solver="bnb")

            with telemetry.span("bnb.node"):
                if spec is not None:
                    built = spec.built
                else:
                    built = build_nlp(
                        model, obj_expr, fixings={}, bounds=node.bounds,
                        kernel_cache=cache, evaluator=opt.evaluator,
                    )
                if built.infeasible_reason is not None:
                    continue
                if built.fully_fixed:
                    env = dict(built.fixed)
                    if not model.check_point(env, tol=_NL_FEAS_TOL):
                        if built.objective_value < upper:
                            upper, incumbent = built.objective_value, env
                    continue

                with sw.phase("nlp"), telemetry.span("bnb.nlp"):
                    if spec is not None:
                        res = spec.handle.result()
                    else:
                        x0 = _warm_x0(node, built.problem)
                        res = solve_nlp(built.problem, x0=x0, options=opt.nlp_options)
                nlp_solves += 1
                telemetry.count(metric.MINLP_NLP_SOLVES, solver="bnb")
                if res.x is None:
                    continue  # infeasible node
                env = dict(built.fixed)
                env.update(res.value_map(built.problem.names))
                if res.is_optimal:
                    # The barrier returns an interior point slightly above the true
                    # relaxation optimum; pad by the duality-gap proxy to keep the
                    # bound valid for pruning.
                    gap_pad = res.mu_final if math.isfinite(res.mu_final) else 0.0
                    bound = res.objective - gap_pad
                    node.bound = bound
                    if bound >= cutoff():
                        continue
                else:
                    # Unconverged relaxation: its value is NOT a valid bound — keep
                    # the inherited one and never prune on this solve.
                    bound = node.bound

                frac_name = most_fractional_integer(model, env, opt.int_tol)
                sos_viol = violated_sos_sets(model, env, opt.int_tol)
                if frac_name is None and not sos_viol:
                    # Certify the point through the fixed-integer NLP: the node's
                    # own continuous values are a barrier interior point (slightly
                    # off the true optimum, and dependent on the node box), while
                    # NLP(y-hat) is a function of the integer fixings alone — so
                    # incumbents agree to the bit with the LP/NLP solver and with
                    # any reuse-seeded starting incumbent.
                    fixings = {
                        v.name: float(round(env[v.name]))
                        for v in model.integer_variables()
                    }
                    with sw.phase("nlp_fixed"):
                        cand_env, cand_obj, solved = _solve_fixed_nlp(
                            model, obj_expr, fixings, opt, cache
                        )
                        nlp_solves += solved
                        telemetry.count(metric.MINLP_NLP_SOLVES, solved, solver="bnb")
                    if cand_env is None:
                        # Certification failed at the shared tolerance (rare
                        # numerical corner): keep the node's own point.
                        candidate = {
                            k: (float(round(v)) if k in model.variables and model.variables[k].is_integral else v)
                            for k, v in env.items()
                        }
                        if not model.check_point(candidate, tol=1e-5):
                            cand_env = candidate
                            cand_obj = float(obj_expr.evaluate(candidate))
                    if cand_env is not None and cand_obj < upper:
                        upper, incumbent = cand_obj, cand_env
                    continue

                if opt.branch_rule is BranchRule.SOS_FIRST and sos_viol:
                    target = max(sos_viol, key=lambda s: len(s.active_members(env, opt.int_tol)))
                    left, right = split_sos(target, env, node.bounds)
                else:
                    if frac_name is None:
                        raise SolverError("no branching candidate on a fractional node")
                    left, right = branch_integer(frac_name, env[frac_name], node.bounds)
                for child_bounds in (left, right):
                    push_child(Node(bounds=child_bounds, bound=bound, depth=node.depth + 1, warm=dict(env)))
    finally:
        if ex is not None:
            ex.shutdown()

    if reuse is not None:
        reuse.absorb(
            channel=plan.channel,
            incumbent_env=incumbent,
            objective=upper,
            counters=rz,
        )

    best_bound = min(queue.best_open_bound(), upper)
    if status is MINLPStatus.OPTIMAL and incumbent is None:
        status = MINLPStatus.INFEASIBLE

    solution = None
    objective = math.inf
    if incumbent is not None:
        solution = {k: float(v) for k, v in incumbent.items()}
        objective = model.objective.user_value(upper)
        if model.objective.sense.value == "maximize":
            best_bound = -best_bound

    return MINLPResult(
        status=status,
        solution=solution,
        objective=objective,
        best_bound=best_bound,
        nodes=nodes,
        nlp_solves=nlp_solves,
        wall_time=time.monotonic() - t0,
        message=message,
        phase_seconds={k: v[0] for k, v in sw.summary().items()},
        kernel_counters=cache.summary(),
        reuse_counters=rz,
    )
