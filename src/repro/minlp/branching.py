"""Branching rules: most-fractional integers and SOS1 set splitting.

The paper (Sec. III-E): "we implemented these discrete choices as a
special-ordered set, and forced the MINLP solver to branch on the
special-ordered set, rather than on individual binary variables, which
improved the runtime of the MINLP solver by two orders of magnitude".
:func:`split_sos` is that rule: a violated SOS1 set splits into a left child
(upper half of the ordered members pinned to 0) and a right child (lower
half pinned), so each branch halves the *set* instead of toggling one
binary.
"""

from __future__ import annotations

import math

from repro.model.model import Model
from repro.model.sos import SOS1Set
from repro.minlp.relax import bounds_with

__all__ = [
    "most_fractional_integer",
    "violated_sos_sets",
    "split_sos",
    "branch_integer",
    "PseudoCostTracker",
]


class PseudoCostTracker:
    """Pseudo-cost variable selection (reliability-initialized).

    For each integer variable the tracker averages the *objective
    degradation per unit of fractional distance* observed on down- and
    up-branches.  Selection scores a fractional variable by the product of
    its expected down/up degradations (the standard product rule); variables
    without history fall back to most-fractional until both directions have
    been observed at least once.
    """

    _EPS = 1e-6

    def __init__(self):
        self._sum = {}    # (name, dir) -> summed degradation per unit
        self._count = {}  # (name, dir) -> observations
        self._base_sum = {}    # carried-in history (excluded from exports)
        self._base_count = {}

    def load_state(self, sums: dict, counts: dict) -> None:
        """Seed the tracker with history carried over from earlier solves.

        The loaded values also become the export baseline, so
        :meth:`export_state` returns only what *this* solve observed —
        absorbing the export back into a shared pool never double-counts.
        """
        self._sum = dict(sums)
        self._count = dict(counts)
        self._base_sum = dict(sums)
        self._base_count = dict(counts)

    def export_state(self) -> tuple:
        """``(sums, counts)`` of observations made since :meth:`load_state`."""
        sums = {}
        counts = {}
        for key, n in self._count.items():
            new_n = n - self._base_count.get(key, 0)
            if new_n > 0:
                counts[key] = new_n
                sums[key] = self._sum[key] - self._base_sum.get(key, 0.0)
        return sums, counts

    def update(self, name: str, direction: str, frac: float, degradation: float) -> None:
        """Record that branching ``direction`` ("down"/"up") on ``name`` with
        fractional distance ``frac`` raised the child bound by
        ``degradation`` (clipped at 0)."""
        if frac <= self._EPS:
            return
        key = (name, direction)
        per_unit = max(0.0, degradation) / frac
        self._sum[key] = self._sum.get(key, 0.0) + per_unit
        self._count[key] = self._count.get(key, 0) + 1

    def _mean(self, name: str, direction: str) -> float | None:
        key = (name, direction)
        if key not in self._count:
            return None
        return self._sum[key] / self._count[key]

    def is_reliable(self, name: str) -> bool:
        return (
            self._count.get((name, "down"), 0) >= 1
            and self._count.get((name, "up"), 0) >= 1
        )

    def select(self, model: Model, env: dict, int_tol: float) -> str | None:
        """Best fractional integer under the product rule; None if every
        integer is integral.  Falls back to most-fractional while the
        candidates lack history."""
        candidates = []
        for v in model.integer_variables():
            frac = env[v.name] - math.floor(env[v.name])
            dist = min(frac, 1.0 - frac)
            if dist > int_tol:
                candidates.append((v.name, frac, dist))
        if not candidates:
            return None
        reliable = [c for c in candidates if self.is_reliable(c[0])]
        if not reliable:
            return max(candidates, key=lambda c: c[2])[0]
        best_name, best_score = None, -1.0
        for name, frac, _ in reliable:
            down = self._mean(name, "down")
            up = self._mean(name, "up")
            score = max(frac * down, self._EPS) * max((1.0 - frac) * up, self._EPS)
            if score > best_score:
                best_name, best_score = name, score
        return best_name


def most_fractional_integer(model: Model, env: dict, int_tol: float) -> str | None:
    """Name of the integer variable farthest from integrality, or None."""
    best_name, best_frac = None, int_tol
    for v in model.integer_variables():
        frac = abs(env[v.name] - round(env[v.name]))
        if frac > best_frac:
            best_name, best_frac = v.name, frac
    return best_name


def violated_sos_sets(model: Model, env: dict, int_tol: float) -> list:
    """SOS1 sets whose LP values are not a clean one-hot choice."""
    return [
        sos for sos in model.sos1_sets.values() if not sos.is_integral(env, int_tol)
    ]


def split_sos(sos: SOS1Set, env: dict, bounds: dict) -> tuple:
    """Two children's bound dicts: split the ordered set at its LP centroid.

    Members pinned to zero get the override ``(0, 0)``; the linked target
    variable's hull bounds are tightened to the surviving weights on each
    side, which is what actually propagates into the node LP.
    """
    wbar = sos.fractional_weight(env)
    # Split after the last weight <= centroid, keeping both sides non-empty.
    k = 0
    for i, w in enumerate(sos.weights):
        if w <= wbar:
            k = i
    k = min(max(k, 0), len(sos.weights) - 2)

    left = dict(bounds)
    for m in sos.members[k + 1 :]:
        left = bounds_with(left, m, 0.0, 0.0)
    right = dict(bounds)
    for m in sos.members[: k + 1]:
        right = bounds_with(right, m, 0.0, 0.0)

    if sos.target is not None:
        left = bounds_with(left, sos.target, sos.weights[0], sos.weights[k])
        right = bounds_with(right, sos.target, sos.weights[k + 1], sos.weights[-1])
    return left, right


def branch_integer(name: str, value: float, bounds: dict) -> tuple:
    """Standard dichotomy branches ``x <= floor(v)`` and ``x >= ceil(v)``."""
    left = bounds_with(bounds, name, hi=math.floor(value))
    right = bounds_with(bounds, name, lo=math.ceil(value))
    return left, right
