"""LP/NLP-based branch-and-bound (Quesada–Grossmann), paper Sec. III-E.

Algorithm sketch, following the paper's own description:

1.  Solve a (restricted) continuous NLP relaxation to obtain an initial
    linearization point, and relax every nonlinear constraint ``f(x) <= 0``
    by the tangent cut ``f(xk) + ∇f(xk)ᵀ(x − xk) <= 0`` (paper eq. (4)).
2.  Run a single branch-and-bound tree over the resulting mixed-integer
    *linear* relaxation, solving one LP per node with the revised simplex.
3.  Prune nodes whose LP value exceeds the incumbent; branch on fractional
    integers — or, preferentially, on violated special-ordered sets.
4.  When an LP solution satisfies integrality, check the true nonlinear
    constraints.  If violated, solve the fixed-integer NLP(ŷ) with the
    barrier solver, harvest an incumbent, linearize the violated
    constraints at both points, and re-solve the node with the tightened
    relaxation.

Under the convexity certificate (positive a, b, d make the performance
functions convex) every cut is an outer approximation, so the search is
exact: it terminates with a globally optimal solution or a proof of
infeasibility.
"""

from __future__ import annotations

import math
import time

from repro.exceptions import (
    ExpressionError,
    IterationLimitError,
    ModelError,
    SolverError,
)
from repro.expr.linear import linear_coefficients
from repro.kernels import KernelCache
from repro.expr.linearize import linearize_at
from repro.expr.node import VarRef
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.model.constraint import Constraint, Sense
from repro.model.model import Model
from repro.model.variable import Variable, VarType
from repro.minlp.branching import (
    PseudoCostTracker,
    branch_integer,
    most_fractional_integer,
    split_sos,
    violated_sos_sets,
)
from repro.minlp.node import Node, NodeQueue
from repro.minlp.nlpbuild import build_nlp
from repro.minlp.options import BranchRule, MINLPOptions, VarBranchRule
from repro.minlp.relax import MasterLP, _EmptyBox, integer_env
from repro.minlp.result import MINLPResult, MINLPStatus
from repro.nlp.barrier import solve_nlp
from repro.nlp.problem import NLPProblem
from repro.parallel.executor import ThreadExecutor
from repro import telemetry
from repro.telemetry import names as metric
from repro.util.timing import Stopwatch

import numpy as np

__all__ = ["solve_lpnlp"]

_NL_FEAS_TOL = 1e-6
_ETA = "_obj_eta"


class _LPSpec:
    """A node LP snapshotted at push time and (maybe) solved off-thread.

    ``num_cuts`` tags the snapshot with the cut-pool size at submission.
    The pool only grows, so at pop time an unchanged count proves the
    snapshot equals what ``lp_for_node`` would build right now; a changed
    count discards the speculation and re-solves inline — the result is
    bit-identical to serial either way, speculation only trades wasted
    worker time for latency.  ``empty_box`` records that the node's bound
    overrides crossed (a property of bounds alone, so it never goes stale).
    """

    __slots__ = ("num_cuts", "empty_box", "handle")

    def __init__(self, num_cuts, empty_box, handle):
        self.num_cuts = num_cuts
        self.empty_box = empty_box
        self.handle = handle


def _solve_spec_lp(lp, options, warm):
    return solve_lp(lp, options, warm=warm)


def _speculate_lp(master: MasterLP, node: Node, opt: MINLPOptions, ex) -> _LPSpec:
    num_cuts = master.num_cuts
    try:
        lp = master.lp_for_node(node.bounds)
    except _EmptyBox:
        return _LPSpec(num_cuts, True, None)
    handle = ex.submit(
        _solve_spec_lp, lp, opt.lp_options,
        node.warm if opt.use_warm_start else None,
    )
    return _LPSpec(num_cuts, False, handle)


def solve_lpnlp(model: Model, options: MINLPOptions | None = None) -> MINLPResult:
    """Solve ``model`` with LP/NLP-based branch-and-bound."""
    opt = options or MINLPOptions()
    sw = Stopwatch()
    t0 = time.monotonic()
    telemetry.count(metric.MINLP_SOLVES, solver="lpnlp")

    work, obj_expr = _prepare(model)
    if opt.require_convex and not work.is_certified_convex():
        raise SolverError(
            "model has nonlinear rows that fail the convexity certificate; "
            "the LP/NLP algorithm would not be globally optimal "
            "(set MINLPOptions.require_convex=False to proceed anyway)"
        )

    obj_linear = linear_coefficients(obj_expr)
    master = MasterLP(work, obj_linear)
    base_rows = master.base.num_rows  # row count before any cut rows land
    nl_bodies = [
        (c.name, body)
        for c in work.nonlinear_constraints()
        for body in c.as_le_bodies()
    ]

    cuts_added = 0
    nlp_solves = 0
    lp_iterations = 0

    # One kernel cache for every NLP this solve builds: the seed relaxation
    # and all fixed-integer NLP(ŷ) subproblems share the same nonlinear
    # bodies, so compilation happens once.
    cache = KernelCache()

    # Cross-solve reuse (a repro.reuse.SolveFamily, duck-typed through
    # opt.reuse): plan first so carried cuts land before the seed decision.
    reuse = opt.reuse
    plan = None
    harvest: list = []      # (tag, cut) discovered by this solve
    tag_of: dict = {}       # id(body) -> cut-validity tag
    rz: dict = {}
    root_warm = None
    root_cuts: list | None = None
    if reuse is not None:
        with sw.phase("reuse_plan"):
            plan = reuse.plan(
                work, columns=master.names, base_rows=base_rows,
                bodies=nl_bodies,
            )
        rz = dict(plan.counters)
        tag_of = {
            id(body): tag for (_, body), tag in zip(nl_bodies, plan.body_tags)
        }
        carried = 0
        for cut in plan.cuts:
            if master.add_cut(cut):
                carried += 1
        rz["cuts_carried"] = carried

    # Step 1: seed the cut pool from a continuous relaxation point — unless
    # carried cuts already support every nonlinear body, in which case the
    # master starts at least as tight as a cold seed would leave it and the
    # seed NLP can be skipped outright (the big reuse win).
    if plan is not None and plan.covered:
        rz["seed_nlp_skipped"] = 1
    else:
        with sw.phase("initial_nlp"):
            seed_env, seeded_nlp = _initial_point(work, obj_expr, nl_bodies, opt, cache)
            nlp_solves += seeded_nlp
        for _, body in nl_bodies:
            try:
                cut = linearize_at(body, seed_env)
            except (ValueError, ExpressionError):
                continue  # seed point outside this body's domain: cut later
            if master.add_cut(cut):
                cuts_added += 1
                if reuse is not None:
                    harvest.append((tag_of[id(body)], cut))

    incumbent: dict | None = None
    upper = math.inf
    queue = NodeQueue(opt.node_selection)
    nodes = 0
    status = MINLPStatus.OPTIMAL
    message = ""
    tracker = (
        PseudoCostTracker()
        if opt.var_branch_rule is VarBranchRule.PSEUDO_COST
        else None
    )
    if plan is not None and tracker is not None and plan.pseudo is not None:
        tracker.load_state(*plan.pseudo)

    # Incumbent seeding: re-certify the projected previous optimum through
    # the fixed-integer NLP before trusting it as a starting upper bound —
    # an infeasible or unprojectable point simply leaves the solve cold.
    if plan is not None and plan.fixings is not None:
        with sw.phase("nlp_seed"):
            cand_env, cand_obj, solved = _solve_fixed_nlp(
                work, obj_expr, plan.fixings, opt, cache
            )
            nlp_solves += solved
        if cand_env is not None and math.isfinite(cand_obj):
            upper, incumbent = cand_obj, cand_env
            rz["incumbent_seeded"] = 1
            # Refresh the pool with tangents at the certified point: carried
            # cuts were linearized at a *different* member's points, so
            # without this the root LP can sit on stale supports and branch
            # where a cold solve would not.
            for _, body in nl_bodies:
                try:
                    cut = linearize_at(body, cand_env)
                except (ValueError, ExpressionError):
                    continue
                if master.add_cut(cut):
                    cuts_added += 1
                    harvest.append((tag_of[id(body)], cut))
        else:
            rz["incumbent_rejected"] = rz.get("incumbent_rejected", 0) + 1

    # workers > 1: node LPs are solved speculatively on a thread pool at
    # push time, guarded by the cut-pool version so stale snapshots are
    # discarded — every consumed result is bit-identical to workers=1.
    ex = ThreadExecutor(opt.workers) if opt.workers > 1 else None

    def push_node(n: Node) -> None:
        if ex is not None:
            n.spec = _speculate_lp(master, n, opt, ex)
        queue.push(n)

    root = Node()
    if plan is not None:
        root.bounds = dict(plan.root_bounds)
        if plan.warm is not None and opt.use_warm_start:
            root.warm = plan.warm
            rz["basis_reused"] = 1
    push_node(root)

    def cutoff() -> float:
        if not math.isfinite(upper):
            return math.inf
        return upper - max(opt.abs_gap, opt.rel_gap * max(1.0, abs(upper)))

    try:
        while len(queue):
            if nodes >= opt.max_nodes:
                status, message = MINLPStatus.NODE_LIMIT, f"{nodes} nodes explored"
                break
            if time.monotonic() - t0 > opt.time_limit:
                status, message = MINLPStatus.TIME_LIMIT, "time limit reached"
                break
            if opt.check_hook is not None and opt.check_hook():
                status, message = MINLPStatus.TIME_LIMIT, "stopped by check hook"
                break

            node = queue.pop()
            spec = node.spec
            node.spec = None
            if spec is not None and spec.num_cuts != master.num_cuts:
                spec = None  # cuts landed after submission: snapshot is stale
            if node.bound >= cutoff():
                continue
            if spec is not None:
                if spec.empty_box:
                    continue
                with sw.phase("lp"), telemetry.span("lpnlp.lp"):
                    res = spec.handle.result()
            else:
                try:
                    lp = master.lp_for_node(node.bounds)
                except _EmptyBox:
                    continue
                with sw.phase("lp"), telemetry.span("lpnlp.lp"):
                    res = solve_lp(
                        lp,
                        opt.lp_options,
                        warm=node.warm if opt.use_warm_start else None,
                    )
            nodes += 1
            lp_iterations += res.iterations
            telemetry.count(metric.MINLP_NODES, solver="lpnlp")
            telemetry.count(metric.MINLP_LP_ITERATIONS, res.iterations)
            if reuse is not None and root_warm is None and res.warm is not None:
                # First solved LP: capture the root basis together with the
                # cut rows it indexes, for replay by same-structure members.
                root_warm = res.warm
                root_cuts = list(master.cuts)

            if res.status is LPStatus.INFEASIBLE:
                continue
            if res.status is LPStatus.UNBOUNDED:
                status, message = MINLPStatus.UNBOUNDED, "master LP relaxation unbounded"
                break
            if res.status is LPStatus.ITERATION_LIMIT:
                raise IterationLimitError("node LP hit the simplex iteration limit")

            obj_lp = res.objective + master.obj_constant
            if tracker is not None and node.pc_info is not None:
                br_name, br_dir, br_frac, parent_obj = node.pc_info
                tracker.update(br_name, br_dir, br_frac, obj_lp - parent_obj)
                node.pc_info = None  # cut-round re-solves must not double-count
            node.bound = obj_lp
            if obj_lp >= cutoff():
                continue
            env = res.value_map(master.names)
            int_env = integer_env(work, env, opt.int_tol)
            sos_viol = violated_sos_sets(work, env, opt.int_tol)

            if int_env is not None and not sos_viol:
                violated = [
                    (name, body)
                    for name, body in nl_bodies
                    if float(body.evaluate(int_env)) > _NL_FEAS_TOL
                ]
                fixings = {
                    v.name: int_env[v.name] for v in work.integer_variables()
                }
                if not violated:
                    # The LP vertex value depends on which cuts happen to be
                    # in the pool (t-variables sit on their tangents, slightly
                    # below the true curves).  Certify the point through the
                    # fixed-integer NLP instead: its value is a function of
                    # the integer fixings alone, so incumbents stay
                    # bit-identical no matter what the pool carried in.
                    with sw.phase("nlp_fixed"):
                        cand_env, cand_obj, solved = _solve_fixed_nlp(
                            work, obj_expr, fixings, opt, cache
                        )
                        nlp_solves += solved
                    if cand_env is None:
                        # Certification failed at the shared tolerance (rare
                        # numerical corner): keep the LP-vertex incumbent.
                        cand_env, cand_obj = int_env, obj_lp
                    if cand_obj < upper:
                        upper, incumbent = cand_obj, cand_env
                    continue  # node fathomed by an improved (or equal) incumbent

                # Integer point violating the nonlinearities: NLP(y-hat) + cuts.
                with sw.phase("nlp_fixed"):
                    cand_env, cand_obj, solved = _solve_fixed_nlp(
                        work, obj_expr, fixings, opt, cache
                    )
                    nlp_solves += solved
                if cand_env is not None and cand_obj < upper:
                    upper, incumbent = cand_obj, cand_env
                new_cuts = 0
                for name, body in violated:
                    try:
                        cut = linearize_at(body, int_env)
                    except (ValueError, ExpressionError):
                        continue
                    if master.add_cut(cut):
                        new_cuts += 1
                        if reuse is not None:
                            harvest.append((tag_of[id(body)], cut))
                if cand_env is not None:
                    for name, body in nl_bodies:
                        try:
                            cut = linearize_at(body, cand_env)
                        except (ValueError, ExpressionError):
                            continue
                        if master.add_cut(cut):
                            new_cuts += 1
                            if reuse is not None:
                                harvest.append((tag_of[id(body)], cut))
                cuts_added += new_cuts
                if new_cuts and node.cut_rounds < opt.max_cut_rounds:
                    node.cut_rounds += 1
                    node.warm = res.warm  # dual simplex repairs the new cut rows
                    push_node(node)
                # else: convexity guarantees the cuts at int_env cut it off; if
                # no new cut could be formed the node is numerically exhausted.
                continue

            # Fractional: branch.
            if opt.branch_rule is BranchRule.SOS_FIRST and sos_viol:
                target = max(sos_viol, key=lambda s: len(s.active_members(env, opt.int_tol)))
                left, right = split_sos(target, env, node.bounds)
            else:
                if tracker is not None:
                    name = tracker.select(work, env, opt.int_tol)
                else:
                    name = most_fractional_integer(work, env, opt.int_tol)
                if name is None:
                    # All integers integral but an SOS set is violated without a
                    # fractional member -- cannot happen (see branching module),
                    # guard anyway.
                    raise SolverError("no branching candidate on a fractional node")
                left, right = branch_integer(name, env[name], node.bounds)
                frac = env[name] - math.floor(env[name])
                pc_children = ((name, "down", frac), (name, "up", 1.0 - frac))
                for child_bounds, pc in zip((left, right), pc_children):
                    push_node(
                        Node(bounds=child_bounds, bound=obj_lp, depth=node.depth + 1,
                             warm=res.warm,
                             pc_info=(pc[0], pc[1], pc[2], obj_lp))
                    )
                continue
            for child_bounds in (left, right):
                push_node(
                    Node(bounds=child_bounds, bound=obj_lp, depth=node.depth + 1,
                         warm=res.warm)
                )
    finally:
        if ex is not None:
            ex.shutdown()

    if reuse is not None:
        reuse.absorb(
            channel=plan.channel,
            columns=master.names,
            base_rows=base_rows,
            tags=list(dict.fromkeys(plan.body_tags)),
            new_cuts=harvest,
            incumbent_env=incumbent,
            objective=upper,
            pseudo=tracker.export_state() if tracker is not None else None,
            root_warm=root_warm,
            root_cuts=root_cuts,
            counters=rz,
        )

    # Aggregate counts (identical to summing per-site increments) recorded
    # once so the disabled fast path costs nothing inside the hot loop.
    telemetry.count(metric.MINLP_NLP_SOLVES, nlp_solves, solver="lpnlp")
    telemetry.count(metric.MINLP_CUTS_ADDED, cuts_added)

    best_bound = min(queue.best_open_bound(), upper)
    if status is MINLPStatus.OPTIMAL and incumbent is None:
        status = MINLPStatus.INFEASIBLE

    solution = None
    objective = math.inf
    if incumbent is not None:
        solution = {
            k: (float(round(v)) if work.variables[k].is_integral else float(v))
            for k, v in incumbent.items()
            if k != _ETA
        }
        objective = model.objective.user_value(upper)
        if model.objective.sense.value == "maximize":
            best_bound = -best_bound

    return MINLPResult(
        status=status,
        solution=solution,
        objective=objective,
        best_bound=best_bound,
        nodes=nodes,
        cuts_added=cuts_added,
        nlp_solves=nlp_solves,
        lp_iterations=lp_iterations,
        wall_time=time.monotonic() - t0,
        message=message,
        phase_seconds={k: v[0] for k, v in sw.summary().items()},
        kernel_counters=cache.summary(),
        reuse_counters=rz,
    )


# ---------------------------------------------------------------------------


def _prepare(model: Model):
    """Return (working model, linear minimization objective expression).

    A nonlinear objective is moved into the constraints through the standard
    epigraph transform ``min eta s.t. f(x) - eta <= 0``.
    """
    if model.objective is None:
        raise ModelError("model has no objective")
    obj_expr = model.objective.minimization_expr()
    try:
        linear_coefficients(obj_expr)
        return model, obj_expr
    except ExpressionError:
        pass

    work = Model(name=f"{model.name}+epigraph")
    work.variables = dict(model.variables)
    work.constraints = dict(model.constraints)
    work.sos1_sets = dict(model.sos1_sets)
    if _ETA in work.variables:
        raise ModelError(f"variable name {_ETA!r} is reserved")
    work.variables[_ETA] = Variable(_ETA, VarType.CONTINUOUS)
    work.constraints["_obj_epigraph"] = Constraint(
        "_obj_epigraph", obj_expr - VarRef(_ETA), Sense.LE, 0.0
    )
    return work, VarRef(_ETA)


def _initial_point(work: Model, obj_expr, nl_bodies, opt: MINLPOptions,
                   cache: KernelCache | None = None):
    """A linearization seed: solve the NLP relaxation *restricted to the
    variables that appear nonlinearly* (plus linear rows fully supported by
    them).  Falls back to box midpoints when the barrier fails.

    Restricting keeps the seed solve small even when the model carries
    thousands of set-choice binaries — those appear only in linear rows and
    never in a cut's support, so they are irrelevant to seeding.
    """
    support = set(obj_expr.variables())
    for _, body in nl_bodies:
        support |= body.variables()
    support = sorted(support)
    if not support:
        return {}, 0

    sup_set = set(support)
    inequalities = [(name, body) for name, body in nl_bodies]
    eq_rows = []
    for con in work.linear_constraints():
        if not con.body.variables() <= sup_set:
            continue
        form = con.linear_form()
        if con.sense is Sense.EQ:
            eq_rows.append((dict(form.coeffs), -form.constant))
        else:
            inequalities.append((con.name, con.body if con.sense is Sense.LE
                                 else _negate(con.body)))

    lb = np.array([work.variables[n].lb for n in support])
    ub = np.array([work.variables[n].ub for n in support])
    fallback = _box_midpoint(lb, ub)
    try:
        problem = NLPProblem(
            names=support,
            objective=obj_expr,
            inequalities=inequalities,
            lb=lb,
            ub=ub,
            eq_rows=eq_rows,
            kernel_cache=cache,
            evaluator=opt.evaluator,
        )
        res = solve_nlp(problem, options=opt.nlp_options)
    except (ModelError, SolverError):
        return dict(zip(support, fallback)), 0
    if res.x is None:
        return dict(zip(support, fallback)), 1
    return res.value_map(support), 1


def _negate(body):
    from repro.expr.simplify import simplify

    return simplify(-body)


def _box_midpoint(lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
    mid = np.empty_like(lb)
    for j in range(lb.size):
        lo, hi = lb[j], ub[j]
        if math.isfinite(lo) and math.isfinite(hi):
            mid[j] = 0.5 * (lo + hi)
        elif math.isfinite(lo):
            mid[j] = lo + 1.0
        elif math.isfinite(hi):
            mid[j] = hi - 1.0
        else:
            mid[j] = 0.0
    return mid


def _solve_fixed_nlp(work: Model, obj_expr, fixings: dict, opt: MINLPOptions,
                     cache: KernelCache | None = None):
    """Solve NLP(y-hat); returns (full env or None, objective, solver calls)."""
    built = build_nlp(work, obj_expr, fixings,
                      kernel_cache=cache, evaluator=opt.evaluator)
    if built.infeasible_reason is not None:
        return None, math.inf, 0
    if built.fully_fixed:
        env = dict(built.fixed)
        bad = work.check_point(env, tol=_NL_FEAS_TOL)
        if bad:
            return None, math.inf, 0
        return env, built.objective_value, 0
    res = solve_nlp(built.problem, options=opt.nlp_options)
    if res.x is None or res.max_violation > _NL_FEAS_TOL:
        return None, math.inf, 1
    env = dict(built.fixed)
    env.update(res.value_map(built.problem.names))
    return env, float(obj_expr.evaluate(env)), 1
