"""Build NLP subproblems from a model plus variable fixings.

Used for (a) the initial continuous relaxation that seeds the
outer-approximation cut pool, and (b) the fixed-integer subproblems NLP(ŷ)
of the LP/NLP algorithm.  A light presolve repeatedly substitutes fixed
variables and eliminates singleton equalities, because the barrier solver
requires every remaining variable to have a strict interior (fixing the
binaries of an allowed-values set pins the linked node-count variable
through its linear link row, which would otherwise leave an interior-less
equality behind).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError
from repro.expr.linear import linear_coefficients
from repro.expr.node import Expr
from repro.expr.substitute import substitute
from repro.exceptions import ExpressionError
from repro.model.constraint import Sense
from repro.model.model import Model
from repro.nlp.problem import NLPProblem

_FEAS_TOL = 1e-6


@dataclass
class BuiltNLP:
    """Result of :func:`build_nlp`.

    Exactly one of three shapes:

    - ``infeasible_reason`` set: the fixings contradict the constraints.
    - ``problem`` set: a genuine NLP remains over ``problem.names``.
    - neither set: everything got fixed; ``fixed`` is the complete point and
      ``objective_value`` its objective.
    """

    fixed: dict = field(default_factory=dict)
    problem: NLPProblem | None = None
    objective: Expr | None = None
    objective_value: float = float("nan")
    infeasible_reason: str | None = None

    @property
    def fully_fixed(self) -> bool:
        return self.problem is None and self.infeasible_reason is None


def build_nlp(
    model: Model,
    objective: Expr,
    fixings: dict,
    bounds: dict | None = None,
    kernel_cache=None,
    evaluator: str = "kernel",
) -> BuiltNLP:
    """Construct the NLP left after fixing ``fixings`` and applying node
    ``bounds`` overrides.  Integer variables that are not fixed are relaxed
    to their (possibly overridden) boxes.

    ``kernel_cache``/``evaluator`` are forwarded to :class:`NLPProblem`;
    passing one cache for a whole branch-and-bound solve lets sibling nodes
    (identical expressions, different bounds) reuse compiled kernels.
    """
    bounds = bounds or {}
    lo: dict = {}
    hi: dict = {}
    for name, v in model.variables.items():
        b_lo, b_hi = bounds.get(name, (-math.inf, math.inf))
        lo[name] = max(v.lb, b_lo)
        hi[name] = min(v.ub, b_hi)

    fixed = dict(fixings)
    for name, value in fixed.items():
        if name not in model.variables:
            raise ModelError(f"fixing references unknown variable {name!r}")
        if value < lo[name] - _FEAS_TOL or value > hi[name] + _FEAS_TOL:
            return BuiltNLP(fixed=fixed, infeasible_reason=f"fixing {name}={value} outside bounds")

    integral = {name for name, v in model.variables.items() if v.is_integral}

    # Presolve loop: substitute fixings, eliminate singleton equalities,
    # and propagate interval bounds through the linear rows.  The bound
    # propagation matters beyond speed: a node whose box and capacity rows
    # pinch a variable to a single value has no strict interior, which the
    # barrier method cannot handle — pinching must become *fixing*.
    bodies = {c.name: (c.body, c.sense) for c in model.constraints.values()}
    for _presolve_round in range(50):
        # (a) collapse degenerate boxes into fixings
        changed = False
        for name in model.variables:
            if name not in fixed and hi[name] - lo[name] <= 1e-9:
                if hi[name] < lo[name] - 1e-7:
                    return BuiltNLP(
                        fixed=fixed,
                        infeasible_reason=f"{name}: empty box after propagation",
                    )
                fixed[name] = 0.5 * (lo[name] + hi[name])
                changed = True
        if fixed:
            bodies = {
                name: (substitute(body, fixed), sense)
                for name, (body, sense) in bodies.items()
            }
        # (b) singleton equalities pin their variable
        new_fix = _find_singleton_equality(bodies, lo, hi)
        if new_fix is not None:
            name, value, reason = new_fix
            if reason is not None:
                return BuiltNLP(fixed=fixed, infeasible_reason=reason)
            fixed[name] = value
            continue
        # (c) interval propagation over linear rows
        outcome, tightened = _propagate_linear_bounds(bodies, lo, hi, fixed, integral)
        if outcome is not None:
            return BuiltNLP(fixed=fixed, infeasible_reason=outcome)
        if not changed and not tightened and not _any_degenerate(model, fixed, lo, hi):
            break

    # Classify what's left.
    obj = substitute(objective, fixed) if fixed else objective
    free_names = [n for n in model.variables if n not in fixed]

    inequalities = []
    eq_rows = []
    for name, (body, sense) in bodies.items():
        if not body.variables():
            value = float(body.evaluate({}))
            bad = (
                (sense is Sense.LE and value > _FEAS_TOL)
                or (sense is Sense.GE and value < -_FEAS_TOL)
                or (sense is Sense.EQ and abs(value) > _FEAS_TOL)
            )
            if bad:
                return BuiltNLP(
                    fixed=fixed,
                    infeasible_reason=f"constraint {name} violated by {value:.3e} after fixing",
                )
            continue
        if sense is Sense.EQ:
            try:
                form = linear_coefficients(body)
            except ExpressionError:
                raise ModelError(
                    f"nonlinear equality constraint {name!r} is not supported"
                ) from None
            eq_rows.append((dict(form.coeffs), -form.constant))
        elif sense is Sense.LE:
            inequalities.append((name, body))
        else:  # GE -> negate into <= 0
            inequalities.append((name, substitute(-body, {})))

    if not free_names:
        env = dict(fixed)
        return BuiltNLP(fixed=fixed, objective_value=float(obj.evaluate(env)))

    problem = NLPProblem(
        names=free_names,
        objective=obj,
        inequalities=inequalities,
        lb=np.array([lo[n] for n in free_names]),
        ub=np.array([hi[n] for n in free_names]),
        eq_rows=eq_rows,
        kernel_cache=kernel_cache,
        evaluator=evaluator,
    )
    return BuiltNLP(fixed=fixed, problem=problem, objective=obj)


def _any_degenerate(model: Model, fixed: dict, lo: dict, hi: dict) -> bool:
    """True if some unfixed variable's box has collapsed (another presolve
    round will turn it into a fixing)."""
    return any(
        name not in fixed and hi[name] - lo[name] <= 1e-9
        for name in model.variables
    )


def _propagate_linear_bounds(
    bodies: dict, lo: dict, hi: dict, fixed: dict, integral: set
) -> str | None:
    """One pass of interval propagation over the linear rows.

    Tightens ``lo``/``hi`` in place; returns ``(infeasibility_message,
    tightened_anything)``.  For a row ``sum a_i x_i + c <= 0`` the implied
    bound on x_j is ``(-c - min over the others) / a_j``.
    """
    tightened = False
    for cname, (body, sense) in bodies.items():
        if sense is Sense.EQ:
            senses = (Sense.LE, Sense.GE)
        else:
            senses = (sense,)
        try:
            form = linear_coefficients(body)
        except ExpressionError:
            continue
        if not form.coeffs:
            continue
        for eff_sense in senses:
            # normalize to sum a_i x_i <= rhs
            if eff_sense is Sense.LE:
                coeffs = form.coeffs
                rhs = -form.constant
            else:  # GE: negate
                coeffs = {k: -v for k, v in form.coeffs.items()}
                rhs = form.constant
            unknown = [k for k in coeffs if k not in fixed]
            if not unknown:
                continue
            # minimal contribution of every term
            mins = {}
            for name, a in coeffs.items():
                if name in fixed:
                    mins[name] = a * fixed[name]
                else:
                    mins[name] = a * (lo[name] if a > 0 else hi[name])
                if not math.isfinite(mins[name]):
                    mins = None
                    break
            if mins is None:
                continue
            total_min = sum(mins.values())
            if total_min > rhs + 1e-7 * (1.0 + abs(rhs)):
                return (
                    f"row {cname} proven infeasible by interval propagation",
                    tightened,
                )
            for name in unknown:
                a = coeffs[name]
                slack = rhs - (total_min - mins[name])
                implied = slack / a
                if a > 0 and implied < hi[name] - 1e-12 * (1.0 + abs(hi[name])):
                    hi[name] = (
                        math.floor(implied + 1e-9) if name in integral else implied
                    )
                    tightened = True
                elif a < 0 and implied > lo[name] + 1e-12 * (1.0 + abs(lo[name])):
                    lo[name] = (
                        math.ceil(implied - 1e-9) if name in integral else implied
                    )
                    tightened = True
    return None, tightened


def _find_singleton_equality(bodies: dict, lo: dict, hi: dict):
    """First equality row with exactly one variable -> (name, value, error).

    Returns None when no singleton exists; the error slot is set when the
    implied value falls outside the variable's box.
    """
    for cname, (body, sense) in bodies.items():
        if sense is not Sense.EQ:
            continue
        names = body.variables()
        if len(names) != 1:
            continue
        try:
            form = linear_coefficients(body)
        except ExpressionError:
            continue  # nonlinear single-var equality: leave for the caller
        (var_name, coef), = form.coeffs.items()
        if coef == 0.0:
            continue
        value = -form.constant / coef
        if value < lo[var_name] - _FEAS_TOL or value > hi[var_name] + _FEAS_TOL:
            return var_name, value, (
                f"equality {cname} pins {var_name}={value:.6g} outside "
                f"[{lo[var_name]:.6g}, {hi[var_name]:.6g}]"
            )
        return var_name, value, None
    return None
