"""Branch-and-bound nodes and the open-node container."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.minlp.options import NodeSelection


@dataclass
class Node:
    """One subproblem: the base model plus bound overrides.

    ``bounds`` maps variable names to ``(lb, ub)`` overrides accumulated
    along the path from the root.  ``bound`` is the best known lower bound
    for the subtree (parent relaxation value), used for pruning and
    best-bound node selection.  ``cut_rounds`` counts how many times this
    node was re-solved after adding outer-approximation cuts.
    """

    bounds: dict = field(default_factory=dict)
    bound: float = float("-inf")
    depth: int = 0
    cut_rounds: int = 0
    # Parent relaxation artifact used to warm-start node solves: the
    # NLP-based B&B stores the parent env dict, the LP/NLP solver stores
    # the parent LP basis (a WarmStart).
    warm: object | None = None
    # Pseudo-cost bookkeeping: (var_name, "down"|"up", fractional_distance,
    # parent_objective), consumed at this node's first LP solve.
    pc_info: tuple | None = None
    # Speculative relaxation solve submitted at push time when
    # ``MINLPOptions.workers > 1``; consumed (or discarded) at pop.
    spec: object | None = None


class NodeQueue:
    """Open-node pool with best-bound or depth-first ordering."""

    def __init__(self, selection: NodeSelection):
        self.selection = selection
        self._heap: list = []
        self._tick = itertools.count()

    def push(self, node: Node) -> None:
        if self.selection is NodeSelection.BEST_BOUND:
            key = (node.bound, next(self._tick))
        else:  # depth-first: deepest first, then most recent
            key = (-node.depth, -next(self._tick))
        heapq.heappush(self._heap, (key, node))

    def pop(self) -> Node:
        return heapq.heappop(self._heap)[1]

    def __len__(self) -> int:
        return len(self._heap)

    def best_open_bound(self) -> float:
        """Smallest subtree bound among open nodes (inf when empty)."""
        if not self._heap:
            return float("inf")
        return min(node.bound for _, node in self._heap)
