"""Shared MINLP solver options."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lp.simplex import SimplexOptions
from repro.nlp.barrier import BarrierOptions


class BranchRule(enum.Enum):
    """How to branch when the relaxation is fractional.

    ``SOS_FIRST`` prefers splitting a violated SOS1 set (the paper's
    special-ordered-set branching); ``INTEGER_ONLY`` ignores SOS structure
    and branches on the most fractional binary/integer variable — the
    configuration the paper reports as two orders of magnitude slower.
    """

    SOS_FIRST = "sos_first"
    INTEGER_ONLY = "integer_only"


class NodeSelection(enum.Enum):
    BEST_BOUND = "best_bound"
    DEPTH_FIRST = "depth_first"


class VarBranchRule(enum.Enum):
    """How to pick *which* fractional integer variable to branch on."""

    MOST_FRACTIONAL = "most_fractional"
    PSEUDO_COST = "pseudo_cost"


@dataclass
class MINLPOptions:
    """Tuning knobs shared by both branch-and-bound solvers."""

    rel_gap: float = 1e-6          # stop when (incumbent - bound) / |incumbent| below
    abs_gap: float = 1e-7
    int_tol: float = 1e-6          # integrality tolerance on relaxation values
    max_nodes: int = 200_000
    time_limit: float = 120.0      # seconds, wall clock
    branch_rule: BranchRule = BranchRule.SOS_FIRST
    var_branch_rule: VarBranchRule = VarBranchRule.PSEUDO_COST
    node_selection: NodeSelection = NodeSelection.BEST_BOUND
    require_convex: bool = True    # refuse non-certified models (global optimality)
    check_hook: object = None      # callable() -> bool polled each node; truthy stops
                                   # the search with a TIME_LIMIT status (the
                                   # resilience layer passes Deadline.as_hook())
    max_cut_rounds: int = 40       # OA cut passes per node before forced branch
    use_warm_start: bool = True    # dual-simplex warm starts for node LPs
    workers: int = 1               # >1 enables speculative sibling-node solves
                                   # on a thread pool; results stay bit-identical
                                   # to workers=1 (see docs/parallel.md)
    evaluator: str = "kernel"      # NLP evaluation back-end: kernel | scalar | tree
    reuse: object = None           # optional repro.reuse.SolveFamily (duck-typed:
                                   # the solvers only call .plan()/.absorb(), so
                                   # repro.minlp never imports repro.reuse)
    lp_options: SimplexOptions = field(default_factory=SimplexOptions)
    nlp_options: BarrierOptions = field(default_factory=BarrierOptions)
