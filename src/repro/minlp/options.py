"""Shared MINLP solver options."""

from __future__ import annotations

import dataclasses
import enum
import warnings
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.lp.simplex import SimplexOptions
from repro.nlp.barrier import BarrierOptions


class BranchRule(enum.Enum):
    """How to branch when the relaxation is fractional.

    ``SOS_FIRST`` prefers splitting a violated SOS1 set (the paper's
    special-ordered-set branching); ``INTEGER_ONLY`` ignores SOS structure
    and branches on the most fractional binary/integer variable — the
    configuration the paper reports as two orders of magnitude slower.
    """

    SOS_FIRST = "sos_first"
    INTEGER_ONLY = "integer_only"


class NodeSelection(enum.Enum):
    BEST_BOUND = "best_bound"
    DEPTH_FIRST = "depth_first"


class VarBranchRule(enum.Enum):
    """How to pick *which* fractional integer variable to branch on."""

    MOST_FRACTIONAL = "most_fractional"
    PSEUDO_COST = "pseudo_cost"


@dataclass
class MINLPOptions:
    """Tuning knobs shared by both branch-and-bound solvers."""

    rel_gap: float = 1e-6          # stop when (incumbent - bound) / |incumbent| below
    abs_gap: float = 1e-7
    int_tol: float = 1e-6          # integrality tolerance on relaxation values
    max_nodes: int = 200_000
    time_limit: float = 120.0      # seconds, wall clock
    branch_rule: BranchRule = BranchRule.SOS_FIRST
    var_branch_rule: VarBranchRule = VarBranchRule.PSEUDO_COST
    node_selection: NodeSelection = NodeSelection.BEST_BOUND
    require_convex: bool = True    # refuse non-certified models (global optimality)
    check_hook: object = None      # callable() -> bool polled each node; truthy stops
                                   # the search with a TIME_LIMIT status (the
                                   # resilience layer passes Deadline.as_hook())
    max_cut_rounds: int = 40       # OA cut passes per node before forced branch
    use_warm_start: bool = True    # dual-simplex warm starts for node LPs
    workers: int = 1               # >1 enables speculative sibling-node solves
                                   # on a thread pool; results stay bit-identical
                                   # to workers=1 (see docs/parallel.md)
    evaluator: str = "kernel"      # NLP evaluation back-end: kernel | scalar | tree
    reuse: object = None           # optional repro.reuse.SolveFamily (duck-typed:
                                   # the solvers only call .plan()/.absorb(), so
                                   # repro.minlp never imports repro.reuse)
    lp_options: SimplexOptions = field(default_factory=SimplexOptions)
    nlp_options: BarrierOptions = field(default_factory=BarrierOptions)

    def to_dict(self) -> dict:
        """Canonical serializable form (see :func:`minlp_options_to_dict`)."""
        return minlp_options_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "MINLPOptions":
        """Rebuild options written by :meth:`to_dict`; rejects unknown keys."""
        return minlp_options_from_dict(payload)


# -- canonical (de)serialization ---------------------------------------------------
#
# Options cross process boundaries (repro.parallel workers) and land in
# TuneSpec payloads (repro.spec), so they need a canonical dict form:
# stable field ordering (dataclass declaration order), enums by value,
# nested solver options as nested dicts, and unknown keys rejected on load.
# Two fields are live Python objects, not configuration, and are therefore
# documented as non-serializable: ``check_hook`` (a callable installed by
# the resilience layer) and ``reuse`` (a SolveFamily).  Serializing options
# that carry either drops the field with a warning; a round-trip is
# field-equal iff both were None.

#: Fields excluded from the canonical dict form, with the reason.
NON_SERIALIZABLE_FIELDS = {
    "check_hook": "a live callable (rebuild it from the deadline instead)",
    "reuse": "a live SolveFamily (re-attach it after deserialization)",
}

_ENUM_FIELDS = {
    "branch_rule": BranchRule,
    "var_branch_rule": VarBranchRule,
    "node_selection": NodeSelection,
}
_NESTED_FIELDS = {"lp_options": SimplexOptions, "nlp_options": BarrierOptions}


def _plain_options_to_dict(options) -> dict:
    """A flat float/int dataclass (SimplexOptions/BarrierOptions) as a dict."""
    return {f.name: getattr(options, f.name) for f in dataclasses.fields(options)}


def _plain_options_from_dict(cls, payload: dict):
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ConfigurationError(
            f"{cls.__name__}: unknown option keys {sorted(unknown)}"
        )
    return cls(**payload)


def minlp_options_to_dict(options: MINLPOptions) -> dict:
    """Canonical dict form of ``options``.

    Keys follow the dataclass's declared field order; enums serialize by
    value; the nested LP/NLP option blocks become nested dicts.  The two
    live-object fields (:data:`NON_SERIALIZABLE_FIELDS`) are excluded —
    with a warning when they are actually set, silently when None.
    """
    out: dict = {}
    for f in dataclasses.fields(options):
        value = getattr(options, f.name)
        if f.name in NON_SERIALIZABLE_FIELDS:
            if value is not None:
                warnings.warn(
                    f"MINLPOptions.{f.name} is {NON_SERIALIZABLE_FIELDS[f.name]}; "
                    "it is not serialized and will be None after a round-trip",
                    stacklevel=2,
                )
            continue
        if f.name in _ENUM_FIELDS:
            out[f.name] = value.value
        elif f.name in _NESTED_FIELDS:
            out[f.name] = _plain_options_to_dict(value)
        else:
            out[f.name] = value
    return out


def minlp_options_from_dict(payload: dict) -> MINLPOptions:
    """Rebuild :class:`MINLPOptions` from :func:`minlp_options_to_dict` output.

    Unknown keys are rejected (a typo'd option silently falling back to its
    default is the worst failure mode a tuning service can have), as are
    attempts to smuggle the non-serializable fields back in.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError("MINLPOptions payload must be a dict")
    known = {
        f.name
        for f in dataclasses.fields(MINLPOptions)
        if f.name not in NON_SERIALIZABLE_FIELDS
    }
    unknown = set(payload) - known
    if unknown:
        raise ConfigurationError(
            f"MINLPOptions: unknown option keys {sorted(unknown)}"
        )
    kwargs: dict = {}
    for name, value in payload.items():
        if name in _ENUM_FIELDS:
            try:
                kwargs[name] = _ENUM_FIELDS[name](value)
            except ValueError:
                raise ConfigurationError(
                    f"MINLPOptions.{name}: unknown value {value!r}"
                ) from None
        elif name in _NESTED_FIELDS:
            kwargs[name] = _plain_options_from_dict(_NESTED_FIELDS[name], value)
        else:
            kwargs[name] = value
    return MINLPOptions(**kwargs)
