"""The master mixed-integer linear relaxation.

:class:`MasterLP` owns one column per model variable plus a growing pool of
outer-approximation cuts (valid globally under convexity).  Branch-and-bound
nodes materialize their LP by copying the base problem and tightening
variable bounds — with tens of rows this is cheaper than bookkeeping a
mutable shared tableau, and it keeps node solves independent.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ModelError
from repro.expr.linear import LinearForm
from repro.expr.linearize import TangentCut
from repro.lp.problem import LinearProgram, RowSense
from repro.model.constraint import Sense
from repro.model.model import Model

_SENSE_MAP = {Sense.LE: RowSense.LE, Sense.GE: RowSense.GE, Sense.EQ: RowSense.EQ}


class MasterLP:
    """LP relaxation of a model's linear part plus an OA cut pool."""

    def __init__(self, model: Model, objective: LinearForm):
        self.model = model
        self.names = model.variable_names()
        self.index = {n: i for i, n in enumerate(self.names)}
        n = len(self.names)

        c = np.zeros(n)
        for name, coef in objective.coeffs.items():
            c[self.index[name]] = coef
        self.obj_constant = objective.constant

        lb = np.array([model.variables[v].lb for v in self.names])
        ub = np.array([model.variables[v].ub for v in self.names])
        self.base = LinearProgram(c, lb, ub, list(self.names))

        for con in model.linear_constraints():
            form = con.linear_form()
            row = np.zeros(n)
            for name, coef in form.coeffs.items():
                row[self.index[name]] = coef
            # body = coeffs.x + constant SENSE 0  ->  coeffs.x SENSE -constant
            self.base.add_row(row, _SENSE_MAP[con.sense], -form.constant)

        self.cuts: list[TangentCut] = []
        self._cut_keys: set = set()

    @property
    def num_cuts(self) -> int:
        return len(self.cuts)

    def add_cut(self, cut: TangentCut) -> bool:
        """Add an OA cut to the pool; returns False for (near-)duplicates."""
        key = (
            tuple(sorted((k, round(v, 9)) for k, v in cut.coeffs.items())),
            round(cut.rhs, 9),
        )
        if key in self._cut_keys:
            return False
        self._cut_keys.add(key)
        self.cuts.append(cut)
        row = np.zeros(len(self.names))
        for name, coef in cut.coeffs.items():
            if name not in self.index:
                raise ModelError(f"cut references unknown variable {name!r}")
            row[self.index[name]] = coef
        self.base.add_row(row, RowSense.LE, cut.rhs)
        return True

    def lp_for_node(self, bounds: dict) -> LinearProgram:
        """Copy the base LP and apply a node's ``{name: (lb, ub)}`` overrides."""
        lp = self.base.copy()
        for name, (lo, hi) in bounds.items():
            j = self.index[name]
            lp.lb[j] = max(lp.lb[j], lo)
            lp.ub[j] = min(lp.ub[j], hi)
            if lp.lb[j] > lp.ub[j]:
                # Signal trivially-empty box with a crossed, harmless marker;
                # solve_lp will report infeasible via phase 1 anyway if we
                # clamp, so instead raise to let the caller prune directly.
                raise _EmptyBox(name)
        return lp


class _EmptyBox(Exception):
    """A node's bound overrides crossed (empty box) — prune without an LP."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name


def integer_env(model: Model, env: dict, int_tol: float) -> dict | None:
    """Round integer variables in ``env``; None if any is too fractional."""
    out = dict(env)
    for v in model.integer_variables():
        val = env[v.name]
        if abs(val - round(val)) > int_tol:
            return None
        out[v.name] = float(round(val))
    return out


def bounds_with(
    bounds: dict, name: str, lo: float = -math.inf, hi: float = math.inf
) -> dict:
    """A child's bound dict: parent bounds narrowed by one override."""
    child = dict(bounds)
    old_lo, old_hi = child.get(name, (-math.inf, math.inf))
    child[name] = (max(old_lo, lo), min(old_hi, hi))
    return child
