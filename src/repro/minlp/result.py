"""MINLP solve results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MINLPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class MINLPResult:
    """Outcome of a branch-and-bound solve.

    ``solution`` maps variable names to values (integers exactly rounded)
    for OPTIMAL, and for limit statuses when an incumbent exists.
    ``nodes`` / ``cuts_added`` / ``nlp_solves`` / ``lp_iterations`` feed the
    solver-performance benchmarks (paper Sec. III-E: < 60 s at 40,960 nodes,
    SOS vs binary branching).  ``kernel_counters`` snapshots the solve's
    :class:`repro.kernels.KernelCache` counters (compiles, hits/misses,
    gradient/Hessian evaluations).
    """

    status: MINLPStatus
    solution: dict | None = None
    objective: float = float("inf")
    best_bound: float = float("-inf")
    nodes: int = 0
    cuts_added: int = 0
    nlp_solves: int = 0
    lp_iterations: int = 0
    wall_time: float = 0.0
    message: str = ""
    phase_seconds: dict = field(default_factory=dict)
    kernel_counters: dict = field(default_factory=dict)
    reuse_counters: dict = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status is MINLPStatus.OPTIMAL

    @property
    def gap(self) -> float:
        """Relative optimality gap (0 for a proven optimum)."""
        if self.solution is None:
            return float("inf")
        denom = max(1.0, abs(self.objective))
        return max(0.0, (self.objective - self.best_bound) / denom)
