"""Machine-learning-based sea-ice decomposition selection.

The paper's future-work pointer (Sec. V and ref. [10], Balaprakash et al.,
"Machine learning based load-balancing for the CESM climate modeling
package"): the noisy ice scaling curves of Sec. IV-A come from CICE's
default decomposition choice, so "a separate effort was begun to determine
the optimal sea ice decompositions using machine learning".

This subpackage reproduces that effort end to end on our substrate:

- :mod:`repro.mlice.features` — featurize a (grid, task count) query
  (divisor structure, tiling remainders, block counts per strategy),
- :mod:`repro.mlice.knn` — a from-scratch k-nearest-neighbour regressor
  over standardized features (the reference paper evaluated k-NN among
  its model families),
- :mod:`repro.mlice.training` — generate labelled data by timing every
  strategy at sampled task counts on the decomposition simulator,
- :mod:`repro.mlice.selector` — the trained per-strategy cost predictor and
  the resulting decomposition selector, pluggable into the coupled-run
  simulator via ``IceDecompPolicy``.

The headline result to reproduce: selecting decompositions with the learned
model removes most of the default policy's imbalance bumps, making the ice
scaling curve smoother (higher fit R²) and the component faster at awkward
task counts.
"""

from repro.mlice.features import decomposition_features, FEATURE_NAMES
from repro.mlice.knn import KNNRegressor
from repro.mlice.training import TrainingSet, generate_training_set
from repro.mlice.selector import (
    IceDecompPolicy,
    LearnedDecompSelector,
    train_selector,
)

__all__ = [
    "decomposition_features",
    "FEATURE_NAMES",
    "KNNRegressor",
    "TrainingSet",
    "generate_training_set",
    "IceDecompPolicy",
    "LearnedDecompSelector",
    "train_selector",
]
