"""Feature engineering for decomposition-cost prediction.

The learned model predicts the imbalance factor of a (grid, tasks,
strategy) triple.  Features capture exactly what drives the analytic
imbalance: how evenly the task count factors (its divisor structure) and
how the grid dimensions round against candidate tilings — without leaking
the answer itself.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cesm.decomp import IceGrid
from repro.util.validation import check_integer, check_positive

FEATURE_NAMES = (
    "log_tasks",
    "log_cells_per_task",
    "divisor_count_norm",
    "best_sqrt_divisor_ratio",
    "odd",
    "mod16",
    "mod96",
    "nx_over_ny",
    "strip_rows_frac",
)


def _divisor_count(n: int) -> int:
    count = 0
    d = 1
    while d * d <= n:
        if n % d == 0:
            count += 2 if d * d != n else 1
        d += 1
    return count


def _best_divisor_near_sqrt(n: int) -> int:
    target = math.sqrt(n)
    best, dist = 1, abs(1 - target)
    d = 1
    while d * d <= n:
        if n % d == 0:
            for cand in (d, n // d):
                if abs(cand - target) < dist:
                    best, dist = cand, abs(cand - target)
        d += 1
    return best


def decomposition_features(grid: IceGrid, tasks: int) -> np.ndarray:
    """Feature vector for a (grid, tasks) query; shape ``(len(FEATURE_NAMES),)``."""
    check_integer(tasks, "tasks")
    check_positive(tasks, "tasks")
    cells = grid.cells
    divisors = _divisor_count(tasks)
    best_div = _best_divisor_near_sqrt(tasks)
    sqrt_t = math.sqrt(tasks)
    strip_rows = grid.ny / tasks
    return np.array(
        [
            math.log(tasks),
            math.log(cells / tasks),
            divisors / (math.log2(tasks) + 1.0),
            best_div / sqrt_t,                      # 1.0 = perfectly square-able
            float(tasks % 2 == 1),
            float(tasks % 16 == 0),
            float(tasks % 96 == 0),
            grid.nx / grid.ny,
            min(strip_rows, 8.0) / 8.0,             # slender viability
        ]
    )


def feature_matrix(grid: IceGrid, task_counts) -> np.ndarray:
    """Stacked features for many task counts; shape ``(n, n_features)``."""
    return np.vstack([decomposition_features(grid, int(t)) for t in task_counts])
