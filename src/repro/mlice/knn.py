"""A from-scratch k-nearest-neighbour regressor.

Distance-weighted k-NN over z-scored features — small, dependency-free and
adequate for the few-thousand-sample training sets the decomposition
problem produces (the reference paper evaluated k-NN among its model
families for exactly this task).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.util.validation import check_integer, check_positive


class KNNRegressor:
    """Distance-weighted k-nearest-neighbour regression.

    >>> model = KNNRegressor(k=3).fit(X_train, y_train)   # doctest: +SKIP
    >>> y_hat = model.predict(X_query)                    # doctest: +SKIP
    """

    def __init__(self, k: int = 5, eps: float = 1e-9):
        check_integer(k, "k")
        check_positive(k, "k")
        self.k = k
        self.eps = eps
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    # -- training -----------------------------------------------------------

    def fit(self, X, y) -> "KNNRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ConfigurationError("X must be (n, d) and y (n,) with matching n")
        if X.shape[0] < self.k:
            raise ConfigurationError(
                f"need at least k={self.k} training samples, got {X.shape[0]}"
            )
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        self._X = (X - self._mean) / self._std
        self._y = y.copy()
        return self

    @property
    def is_fitted(self) -> bool:
        return self._X is not None

    # -- inference -----------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        """Predict targets for query rows ``X``; shape ``(m,)``."""
        if not self.is_fitted:
            raise ConfigurationError("predict() before fit()")
        Q = (np.atleast_2d(np.asarray(X, dtype=float)) - self._mean) / self._std
        # Pairwise squared distances, vectorized: |q|^2 - 2 q.x + |x|^2.
        d2 = (
            (Q**2).sum(axis=1)[:, None]
            - 2.0 * Q @ self._X.T
            + (self._X**2).sum(axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        idx = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
        rows = np.arange(Q.shape[0])[:, None]
        w = 1.0 / (np.sqrt(d2[rows, idx]) + self.eps)
        return (w * self._y[idx]).sum(axis=1) / w.sum(axis=1)

    def loo_rmse(self) -> float:
        """Leave-one-out RMSE on the training set (model-selection metric)."""
        if not self.is_fitted:
            raise ConfigurationError("loo_rmse() before fit()")
        n = self._X.shape[0]
        if n < self.k + 1:
            raise ConfigurationError("not enough samples for leave-one-out")
        d2 = (
            (self._X**2).sum(axis=1)[:, None]
            - 2.0 * self._X @ self._X.T
            + (self._X**2).sum(axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        np.fill_diagonal(d2, np.inf)  # exclude self
        idx = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
        rows = np.arange(n)[:, None]
        w = 1.0 / (np.sqrt(d2[rows, idx]) + self.eps)
        pred = (w * self._y[idx]).sum(axis=1) / w.sum(axis=1)
        return float(np.sqrt(np.mean((pred - self._y) ** 2)))
