"""The learned decomposition selector and its simulator integration.

One k-NN cost model per strategy; at query time the selector predicts every
strategy's imbalance factor from the task-count features and picks the
cheapest.  :class:`IceDecompPolicy` wraps the three policies a user can run
the simulator under: CICE's default heuristic, the learned selector, and
the exhaustive per-count oracle the learned model approximates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cesm.decomp import (
    DecompStrategy,
    IceGrid,
    best_strategy,
    default_strategy,
    imbalance_factor,
)
from repro.exceptions import ConfigurationError
from repro.mlice.features import decomposition_features
from repro.mlice.knn import KNNRegressor
from repro.mlice.training import TrainingSet, generate_training_set


class IceDecompPolicy(enum.Enum):
    """How the simulator picks the sea-ice decomposition."""

    DEFAULT = "default"      # CICE's out-of-the-box heuristic (the paper's setup)
    LEARNED = "learned"      # k-NN cost models (the ref. [10] approach)
    ORACLE = "oracle"        # exhaustive best per task count (upper bound)


@dataclass
class LearnedDecompSelector:
    """Per-strategy cost predictors over one grid."""

    grid: IceGrid
    models: dict              # DecompStrategy -> fitted KNNRegressor

    def predict_costs(self, tasks: int) -> dict:
        """Predicted imbalance factor per strategy at ``tasks``."""
        x = decomposition_features(self.grid, tasks)[None, :]
        return {
            strat: float(model.predict(x)[0]) for strat, model in self.models.items()
        }

    def select(self, tasks: int) -> DecompStrategy:
        """The predicted-cheapest strategy."""
        costs = self.predict_costs(tasks)
        return min(costs, key=costs.get)

    # -- evaluation -----------------------------------------------------------

    def regret(self, tasks: int) -> float:
        """Actual cost of the selected strategy minus the oracle's (>= 0)."""
        chosen = imbalance_factor(self.grid, tasks, self.select(tasks))
        oracle = imbalance_factor(self.grid, tasks, best_strategy(self.grid, tasks))
        return max(0.0, chosen - oracle)

    def improvement_over_default(self, task_counts) -> float:
        """Mean actual-cost reduction vs CICE's default policy (can be ~0
        where the default already picks well)."""
        gains = []
        for t in task_counts:
            t = int(t)
            d = imbalance_factor(self.grid, t, default_strategy(t))
            s = imbalance_factor(self.grid, t, self.select(t))
            gains.append(d - s)
        return float(np.mean(gains))


def train_selector(
    grid: IceGrid,
    training: TrainingSet | None = None,
    k: int = 5,
    lo: int = 8,
    hi: int = 4096,
    n: int = 600,
    seed: int = 0,
) -> LearnedDecompSelector:
    """Fit one k-NN model per strategy (training set generated on demand)."""
    data = training or generate_training_set(grid, lo=lo, hi=hi, n=n, seed=seed)
    if data.grid.nx != grid.nx or data.grid.ny != grid.ny:
        raise ConfigurationError("training set was generated for a different grid")
    models = {
        strat: KNNRegressor(k=k).fit(data.features, y)
        for strat, y in data.labels.items()
    }
    return LearnedDecompSelector(grid=grid, models=models)


def strategy_for(
    grid: IceGrid,
    tasks: int,
    policy: IceDecompPolicy,
    selector: LearnedDecompSelector | None = None,
) -> DecompStrategy:
    """Resolve a policy to a concrete strategy choice."""
    if policy is IceDecompPolicy.DEFAULT:
        return default_strategy(tasks)
    if policy is IceDecompPolicy.ORACLE:
        return best_strategy(grid, tasks)
    if selector is None:
        raise ConfigurationError("LEARNED policy needs a trained selector")
    return selector.select(tasks)
