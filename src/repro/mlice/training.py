"""Training-data generation for the decomposition-cost models.

Labels come from *noisy measurements* of the imbalance factor (as they
would on a real machine: you time the ice model under each strategy and
divide by a smooth baseline), not from the analytic formula — the learned
model has to generalize through measurement noise exactly as in the
reference paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm.decomp import DecompStrategy, IceGrid, imbalance_factor
from repro.exceptions import ConfigurationError
from repro.mlice.features import feature_matrix
from repro.util.rng import keyed_rng
from repro.util.validation import check_integer, check_positive


@dataclass
class TrainingSet:
    """Labelled decomposition measurements for one grid."""

    grid: IceGrid
    task_counts: np.ndarray          # shape (n,)
    features: np.ndarray             # shape (n, d)
    labels: dict                     # DecompStrategy -> measured factors (n,)

    def __post_init__(self):
        n = self.task_counts.shape[0]
        if self.features.shape[0] != n:
            raise ConfigurationError("features/task_counts length mismatch")
        for strat, y in self.labels.items():
            if y.shape != (n,):
                raise ConfigurationError(f"labels for {strat} have wrong shape")

    @property
    def n_samples(self) -> int:
        return int(self.task_counts.shape[0])

    def split(self, train_fraction: float = 0.8, seed: int = 0):
        """Deterministic shuffled train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ConfigurationError("train_fraction must be in (0, 1)")
        rng = keyed_rng(seed, "mlice-split")
        order = rng.permutation(self.n_samples)
        cut = max(1, int(self.n_samples * train_fraction))
        tr, te = order[:cut], order[cut:]

        def take(idx):
            return TrainingSet(
                grid=self.grid,
                task_counts=self.task_counts[idx],
                features=self.features[idx],
                labels={s: y[idx] for s, y in self.labels.items()},
            )

        return take(tr), take(te)


def sample_task_counts(lo: int, hi: int, n: int, seed: int = 0) -> np.ndarray:
    """Log-uniform task counts in [lo, hi], deduplicated, sorted."""
    check_integer(lo, "lo")
    check_integer(hi, "hi")
    check_positive(lo, "lo")
    if hi <= lo:
        raise ConfigurationError("hi must exceed lo")
    rng = keyed_rng(seed, "mlice-tasks")
    raw = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n))
    return np.unique(np.round(raw).astype(int))


def generate_training_set(
    grid: IceGrid,
    lo: int = 8,
    hi: int = 4096,
    n: int = 600,
    noise_sigma: float = 0.01,
    seed: int = 0,
) -> TrainingSet:
    """Measure every strategy at log-uniform task counts.

    One timing per (tasks, strategy): the true imbalance factor perturbed
    by log-normal measurement noise keyed on the pair.
    """
    tasks = sample_task_counts(lo, hi, n, seed=seed)
    feats = feature_matrix(grid, tasks)
    labels = {}
    for strat in DecompStrategy:
        y = np.array([imbalance_factor(grid, int(t), strat) for t in tasks])
        if noise_sigma > 0:
            noise = np.array(
                [
                    keyed_rng(seed, "mlice-noise", f"{strat.value}:{int(t)}").lognormal(
                        0.0, noise_sigma
                    )
                    for t in tasks
                ]
            )
            y = y * noise
        labels[strat] = y
    return TrainingSet(grid=grid, task_counts=tasks, features=feats, labels=labels)
