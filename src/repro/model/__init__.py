"""Algebraic modeling layer (the library's AMPL stand-in).

A :class:`Model` collects :class:`Variable` declarations, :class:`Constraint`
rows built from :mod:`repro.expr` trees, at most one :class:`Objective`, and
:class:`SOS1Set` special-ordered sets.  The MINLP solvers in
:mod:`repro.minlp` consume models; :mod:`repro.model.ampl` can export them as
AMPL text for fidelity with the paper's tooling.
"""

from repro.model.variable import Variable, VarType
from repro.model.constraint import Constraint, Sense
from repro.model.objective import Objective, ObjSense
from repro.model.sos import SOS1Set
from repro.model.model import Model
from repro.model.ampl import to_ampl
from repro.model.ampl_parse import from_ampl

__all__ = [
    "Variable",
    "VarType",
    "Constraint",
    "Sense",
    "Objective",
    "ObjSense",
    "SOS1Set",
    "Model",
    "to_ampl",
    "from_ampl",
]
