"""Parse the AMPL subset that :func:`repro.model.to_ampl` emits.

The paper authors its MINLPs in AMPL; this module closes the loop so a
model exported by this library (or hand-written in the same subset) can be
read back into a :class:`~repro.model.Model`.  Supported grammar:

    model      := statement* ;
    statement  := vardecl | objective | constraint
    vardecl    := "var" NAME attrs? ";"
    attrs      := attr ("," attr)*
    attr       := "binary" | "integer" | ">=" NUMBER | "<=" NUMBER
    objective  := ("minimize"|"maximize") NAME ":" expr ";"
    constraint := "subject" "to" NAME ":" expr ("<="|">="|"=") expr ";"
    expr       := term (("+"|"-") term)*
    term       := factor (("*"|"/") factor)*
    factor     := ("-"|"+") factor | primary ("^" factor)?
    primary    := NUMBER | NAME | "(" expr ")"

Comments (``# ...``) are ignored.  SOS1 structure is emitted by the
exporter as comments only and is deliberately *not* round-tripped — the
binary set-choice rows carry the same feasible set.
"""

from __future__ import annotations

import re

from repro.exceptions import ModelError
from repro.expr.node import Const, Expr, Pow, VarRef
from repro.model.constraint import Sense
from repro.model.model import Model
from repro.model.objective import Objective, ObjSense
from repro.model.variable import VarType

__all__ = ["from_ampl"]

_TOKEN = re.compile(
    r"\s*(?:(?P<comment>#[^\n]*)"
    r"|(?P<number>\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op><=|>=|[=+\-*/^():;,]))"
)


def _tokenize(text: str) -> list:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ModelError(f"AMPL parse error near: {remainder[:40]!r}")
        pos = m.end()
        if m.lastgroup == "comment":
            continue
        if m.lastgroup is not None:
            tokens.append((m.lastgroup, m.group(m.lastgroup)))
    return tokens


class _Parser:
    def __init__(self, tokens: list):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else (None, None)

    def next(self):
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, kind: str, value: str | None = None):
        k, v = self.next()
        if k != kind or (value is not None and v != value):
            raise ModelError(
                f"AMPL parse error: expected {value or kind!r}, got {v!r}"
            )
        return v

    def accept(self, kind: str, value: str | None = None) -> bool:
        k, v = self.peek()
        if k == kind and (value is None or v == value):
            self.pos += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> Model:
        model = Model("from_ampl")
        while self.peek()[0] is not None:
            kind, value = self.peek()
            if kind != "name":
                raise ModelError(f"AMPL parse error: unexpected token {value!r}")
            if value == "var":
                self._vardecl(model)
            elif value in ("minimize", "maximize"):
                self._objective(model, value)
            elif value == "subject":
                self._constraint(model)
            else:
                raise ModelError(f"AMPL parse error: unexpected keyword {value!r}")
        return model

    def _vardecl(self, model: Model) -> None:
        self.expect("name", "var")
        name = self.expect("name")
        vtype = VarType.CONTINUOUS
        lb, ub = float("-inf"), float("inf")
        if not self.accept("op", ";"):
            while True:
                kind, value = self.next()
                if kind == "name" and value == "binary":
                    vtype = VarType.BINARY
                elif kind == "name" and value == "integer":
                    vtype = VarType.INTEGER
                elif kind == "op" and value == ">=":
                    lb = self._signed_number()
                elif kind == "op" and value == "<=":
                    ub = self._signed_number()
                else:
                    raise ModelError(
                        f"AMPL parse error in var {name!r}: unexpected {value!r}"
                    )
                if self.accept("op", ";"):
                    break
                self.expect("op", ",")
        model.add_variable(name, vtype, lb, ub)

    def _signed_number(self) -> float:
        sign = 1.0
        while True:
            if self.accept("op", "-"):
                sign = -sign
            elif self.accept("op", "+"):
                pass
            else:
                break
        kind, value = self.next()
        if kind != "number":
            raise ModelError(f"AMPL parse error: expected a number, got {value!r}")
        return sign * float(value)

    def _objective(self, model: Model, keyword: str) -> None:
        self.expect("name", keyword)
        name = self.expect("name")
        self.expect("op", ":")
        expr = self._expr()
        self.expect("op", ";")
        sense = ObjSense.MINIMIZE if keyword == "minimize" else ObjSense.MAXIMIZE
        model.set_objective(Objective(name, expr, sense))

    def _constraint(self, model: Model) -> None:
        self.expect("name", "subject")
        self.expect("name", "to")
        name = self.expect("name")
        self.expect("op", ":")
        lhs = self._expr()
        kind, op = self.next()
        senses = {"<=": Sense.LE, ">=": Sense.GE, "=": Sense.EQ}
        if kind != "op" or op not in senses:
            raise ModelError(f"AMPL parse error: expected a relation, got {op!r}")
        rhs = self._expr()
        self.expect("op", ";")
        model.add_constraint(name, lhs, senses[op], rhs)

    # -- expressions --------------------------------------------------------------

    def _expr(self) -> Expr:
        out = self._term()
        while True:
            if self.accept("op", "+"):
                out = out + self._term()
            elif self.accept("op", "-"):
                out = out - self._term()
            else:
                return out

    def _term(self) -> Expr:
        out = self._factor()
        while True:
            if self.accept("op", "*"):
                out = out * self._factor()
            elif self.accept("op", "/"):
                out = out / self._factor()
            else:
                return out

    def _factor(self) -> Expr:
        if self.accept("op", "-"):
            return -self._factor()
        if self.accept("op", "+"):
            return self._factor()
        base = self._primary()
        if self.accept("op", "^"):
            return Pow(base, self._factor())  # right-associative
        return base

    def _primary(self) -> Expr:
        kind, value = self.next()
        if kind == "number":
            return Const(float(value))
        if kind == "name":
            return VarRef(value)
        if kind == "op" and value == "(":
            inner = self._expr()
            self.expect("op", ")")
            return inner
        raise ModelError(f"AMPL parse error: unexpected token {value!r}")


def from_ampl(text: str) -> Model:
    """Parse AMPL text (the :func:`to_ampl` subset) into a Model."""
    return _Parser(_tokenize(text)).parse()
