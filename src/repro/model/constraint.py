"""Constraints.

A constraint is ``expr SENSE 0`` after moving everything to the left-hand
side; the constructor accepts the natural two-sided form and normalizes.
Constraints classify themselves as linear or nonlinear (via
:mod:`repro.expr.linear`), which drives how the MINLP solvers treat them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import ExpressionError, ModelError
from repro.expr.convexity import Curvature, curvature
from repro.expr.linear import LinearForm, linear_coefficients
from repro.expr.node import Expr, as_expr
from repro.expr.simplify import simplify


class Sense(enum.Enum):
    """Constraint sense, applied as ``body SENSE 0``."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass
class Constraint:
    """``lhs sense rhs``, stored normalized as ``body = lhs - rhs`` vs 0."""

    name: str
    lhs: Expr
    sense: Sense
    rhs: Expr
    body: Expr = field(init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ModelError("constraint name must be a non-empty string")
        self.lhs = as_expr(self.lhs)
        self.rhs = as_expr(self.rhs)
        if not isinstance(self.sense, Sense):
            raise ModelError(f"constraint {self.name}: bad sense {self.sense!r}")
        self.body = simplify(self.lhs - self.rhs)

    # -- classification -------------------------------------------------------

    def linear_form(self) -> LinearForm | None:
        """The affine form of ``body`` if linear, else None."""
        try:
            return linear_coefficients(self.body)
        except ExpressionError:
            return None

    @property
    def is_linear(self) -> bool:
        return self.linear_form() is not None

    def convexity_ok(self) -> bool:
        """True if the feasible region of this single row is certifiably convex.

        ``body <= 0`` needs convex body; ``body >= 0`` needs concave body;
        equalities need affine body.
        """
        c = curvature(self.body)
        if self.sense is Sense.LE:
            return c.is_convex()
        if self.sense is Sense.GE:
            return c.is_concave()
        return c in (Curvature.CONSTANT, Curvature.AFFINE)

    # -- evaluation ------------------------------------------------------------

    def violation(self, env: dict) -> float:
        """Nonnegative violation of this constraint at the point ``env``."""
        value = float(self.body.evaluate(env))
        if self.sense is Sense.LE:
            return max(0.0, value)
        if self.sense is Sense.GE:
            return max(0.0, -value)
        return abs(value)

    def satisfied(self, env: dict, tol: float = 1e-7) -> bool:
        return self.violation(env) <= tol

    def as_le_bodies(self) -> list:
        """Equivalent list of ``g(x) <= 0`` bodies (EQ splits into two rows)."""
        if self.sense is Sense.LE:
            return [self.body]
        if self.sense is Sense.GE:
            return [simplify(-self.body)]
        return [self.body, simplify(-self.body)]

    def __repr__(self) -> str:
        return f"Constraint({self.name}: {self.body!r} {self.sense.value} 0)"
