"""The :class:`Model` container.

A model owns variables, constraints, one objective and SOS1 sets, and offers
the queries the solvers need: classification of rows into linear/nonlinear,
convexity certification, feasibility checking of candidate points, and
helpers for building the standard substructures (a set-choice block of
binaries for an allowed-values set).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ModelError
from repro.expr.node import Add, Const, Mul, VarRef
from repro.model.constraint import Constraint, Sense
from repro.model.objective import Objective
from repro.model.sos import SOS1Set
from repro.model.variable import Variable, VarType


@dataclass
class Model:
    """A mixed-integer nonlinear program."""

    name: str = "model"
    variables: dict = field(default_factory=dict)
    constraints: dict = field(default_factory=dict)
    objective: Objective | None = None
    sos1_sets: dict = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    def add_variable(
        self,
        name: str,
        vtype: VarType = VarType.CONTINUOUS,
        lb: float = float("-inf"),
        ub: float = float("inf"),
        start: float | None = None,
    ) -> Variable:
        """Declare a variable and return it."""
        if name in self.variables:
            raise ModelError(f"duplicate variable {name!r}")
        v = Variable(name, vtype, lb, ub, start)
        self.variables[name] = v
        return v

    def add_constraint(self, name: str, lhs, sense: Sense, rhs) -> Constraint:
        """Add ``lhs sense rhs`` and return the constraint."""
        if name in self.constraints:
            raise ModelError(f"duplicate constraint {name!r}")
        con = Constraint(name, lhs, sense, rhs)
        unknown = con.body.variables() - self.variables.keys()
        if unknown:
            raise ModelError(
                f"constraint {name!r} references undeclared variables: {sorted(unknown)}"
            )
        self.constraints[name] = con
        return con

    def set_objective(self, objective: Objective) -> None:
        unknown = objective.expr.variables() - self.variables.keys()
        if unknown:
            raise ModelError(
                f"objective references undeclared variables: {sorted(unknown)}"
            )
        self.objective = objective

    def add_sos1(self, sos: SOS1Set) -> None:
        if sos.name in self.sos1_sets:
            raise ModelError(f"duplicate SOS1 set {sos.name!r}")
        for m in sos.members:
            if m not in self.variables:
                raise ModelError(f"SOS1 set {sos.name!r}: undeclared member {m!r}")
        if sos.target is not None and sos.target not in self.variables:
            raise ModelError(f"SOS1 set {sos.name!r}: undeclared target {sos.target!r}")
        self.sos1_sets[sos.name] = sos

    def add_allowed_values(
        self,
        variable: Variable,
        values,
        prefix: str | None = None,
        encode: str = "auto",
    ) -> SOS1Set | None:
        """Restrict ``variable`` to the explicit set ``values`` (Table I lines 29-31).

        Encoding (``encode="auto"`` picks the first that applies):

        - a contiguous integer range just tightens the variable's bounds,
        - an arithmetic progression (constant stride) introduces one integer
          index variable ``<prefix>_idx`` with ``variable = first + stride*idx``
          — no binaries at all,
        - otherwise (``encode="sos"`` forces this) a binary set-choice block:
          binaries ``<prefix>_<k>``, the convexity row ``sum z = 1`` and the
          linking row ``sum z*value = variable``, plus an SOS1 set so the
          branch-and-bound can branch on the set as a whole.

        Returns the :class:`SOS1Set` for the binary encoding, None otherwise.
        """
        if encode not in ("auto", "sos"):
            raise ModelError(f"unknown allowed-values encoding {encode!r}")
        values = sorted({int(v) for v in values})
        if not values:
            raise ModelError("allowed-values set must be non-empty")
        prefix = prefix or f"z_{variable.name}"

        if encode == "auto" and len(values) >= 2:
            strides = {b - a for a, b in zip(values, values[1:])}
            if len(strides) == 1:
                stride = strides.pop()
                variable.lb = max(variable.lb, float(values[0]))
                variable.ub = min(variable.ub, float(values[-1]))
                if stride == 1:
                    return None  # plain integer bounds say it all
                idx = self.add_variable(
                    f"{prefix}_idx", VarType.INTEGER, 0, len(values) - 1
                )
                self.add_constraint(
                    f"{prefix}_progression",
                    Const(float(values[0])) + Mul(Const(float(stride)), idx.ref()),
                    Sense.EQ,
                    variable.ref(),
                )
                return None
        members = []
        for k, val in enumerate(values):
            z = self.add_variable(f"{prefix}_{k}", VarType.BINARY, 0.0, 1.0)
            members.append(z.name)
        one_terms = Add(tuple(VarRef(m) for m in members))
        self.add_constraint(f"{prefix}_choose_one", one_terms, Sense.EQ, Const(1.0))
        link_terms = Add(
            tuple(Mul(Const(float(v)), VarRef(m)) for v, m in zip(values, members))
        )
        self.add_constraint(f"{prefix}_link", link_terms, Sense.EQ, variable.ref())
        # Tighten the target's own bounds to the set's hull.
        variable.lb = max(variable.lb, float(values[0]))
        variable.ub = min(variable.ub, float(values[-1]))
        sos = SOS1Set(name=prefix, members=tuple(members), weights=tuple(values), target=variable.name)
        self.add_sos1(sos)
        return sos

    # -- queries ---------------------------------------------------------------

    def variable_names(self) -> list:
        """Variable names in declaration order."""
        return list(self.variables)

    def integer_variables(self) -> list:
        return [v for v in self.variables.values() if v.is_integral]

    def linear_constraints(self) -> list:
        return [c for c in self.constraints.values() if c.is_linear]

    def nonlinear_constraints(self) -> list:
        return [c for c in self.constraints.values() if not c.is_linear]

    def is_certified_convex(self) -> bool:
        """True if every nonlinear row passes the convexity calculus.

        This is the precondition for the LP/NLP branch-and-bound solver to be
        a *global* method (paper Sec. III-E).
        """
        return all(c.convexity_ok() for c in self.nonlinear_constraints())

    def check_point(self, env: dict, tol: float = 1e-6) -> list:
        """Names of constraints (and bound/integrality conditions) violated
        at ``env``.  Empty list means feasible."""
        bad = []
        for v in self.variables.values():
            x = env[v.name]
            if x < v.lb - tol or x > v.ub + tol:
                bad.append(f"bounds:{v.name}")
            if v.integrality_violation(x) > tol:
                bad.append(f"integrality:{v.name}")
        for c in self.constraints.values():
            if not c.satisfied(env, tol):
                bad.append(c.name)
        return bad

    def objective_value(self, env: dict) -> float:
        if self.objective is None:
            raise ModelError("model has no objective")
        return float(self.objective.expr.evaluate(env))

    def stats(self) -> dict:
        """Size summary used in solver logs."""
        nvars = len(self.variables)
        nint = len(self.integer_variables())
        return {
            "variables": nvars,
            "integer_variables": nint,
            "constraints": len(self.constraints),
            "nonlinear_constraints": len(self.nonlinear_constraints()),
            "sos1_sets": len(self.sos1_sets),
        }
