"""Objectives."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ModelError
from repro.expr.node import Expr, as_expr
from repro.expr.simplify import simplify


class ObjSense(enum.Enum):
    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass
class Objective:
    """An objective ``sense expr``.

    Solvers internally minimize; :meth:`minimization_expr` returns the
    expression whose minimum matches this objective (negated for MAXIMIZE),
    and :meth:`user_value` maps a solver value back to the user's sense.
    """

    name: str
    expr: Expr
    sense: ObjSense = ObjSense.MINIMIZE

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ModelError("objective name must be a non-empty string")
        self.expr = simplify(as_expr(self.expr))
        if not isinstance(self.sense, ObjSense):
            raise ModelError(f"objective {self.name}: bad sense {self.sense!r}")

    def minimization_expr(self) -> Expr:
        if self.sense is ObjSense.MINIMIZE:
            return self.expr
        return simplify(-self.expr)

    def user_value(self, minimized_value: float) -> float:
        if self.sense is ObjSense.MINIMIZE:
            return minimized_value
        return -minimized_value
