"""Special-ordered sets of type 1 (SOS1).

The paper restricts the ocean and atmosphere node counts to explicit allowed
sets (Table I lines 5-7) modeled with binary selectors ``z_k``:

    sum_k z_k = 1,     sum_k z_k * O_k = n_ocn.

Branching on the *set* (splitting the ordered values in half) instead of on
individual ``z_k`` variables is what gave the paper its two-orders-of-
magnitude solver speedup (Sec. III-E); :class:`SOS1Set` carries the ordered
(weight, variable) pairs so :mod:`repro.minlp.branching` can do exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ModelError


@dataclass
class SOS1Set:
    """An ordered set of binary variable names, at most one nonzero.

    ``weights`` are the allowed values (e.g. node counts) in strictly
    increasing order; ``members`` are the corresponding binary variable
    names; ``target`` is the name of the integer variable linked by
    ``sum z_k * w_k = target`` (or None when the set only enforces a
    one-of-many choice).
    """

    name: str
    members: tuple
    weights: tuple
    target: str | None = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ModelError(f"SOS1 set {self.name} is empty")
        if len(self.members) != len(self.weights):
            raise ModelError(
                f"SOS1 set {self.name}: {len(self.members)} members but "
                f"{len(self.weights)} weights"
            )
        self.members = tuple(self.members)
        self.weights = tuple(float(w) for w in self.weights)
        if any(b >= a for a, b in zip(self.weights[1:], self.weights)):
            raise ModelError(f"SOS1 set {self.name}: weights must be strictly increasing")

    def __len__(self) -> int:
        return len(self.members)

    def fractional_weight(self, env: dict) -> float:
        """The weighted average ``sum z_k w_k`` at an LP relaxation point."""
        return sum(env[m] * w for m, w in zip(self.members, self.weights))

    def active_members(self, env: dict, tol: float = 1e-7) -> list:
        """Member names with value above ``tol`` at the point ``env``."""
        return [m for m in self.members if env[m] > tol]

    def is_integral(self, env: dict, tol: float = 1e-7) -> bool:
        """True if exactly one member is (near) 1 and the rest (near) 0."""
        active = [env[m] for m in self.members if env[m] > tol]
        return len(active) == 1 and abs(active[0] - 1.0) <= tol
