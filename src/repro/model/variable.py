"""Decision variables."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.exceptions import ModelError
from repro.expr.node import VarRef


class VarType(enum.Enum):
    """Variable domain."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


@dataclass
class Variable:
    """A named decision variable with bounds and a domain type.

    ``ref()`` returns the :class:`~repro.expr.node.VarRef` leaf used to build
    expressions, so models read::

        n_atm = Variable("n_atm", VarType.INTEGER, lb=1, ub=1664)
        t_atm = a / n_atm.ref() + d
    """

    name: str
    vtype: VarType = VarType.CONTINUOUS
    lb: float = -math.inf
    ub: float = math.inf
    # Optional warm-start value used by NLP solvers when provided.
    start: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ModelError("variable name must be a non-empty string")
        if self.vtype is VarType.BINARY:
            lo = 0.0 if math.isinf(self.lb) else self.lb
            hi = 1.0 if math.isinf(self.ub) else self.ub
            if lo < 0 or hi > 1:
                raise ModelError(f"binary variable {self.name} bounds must be within [0, 1]")
            self.lb, self.ub = float(lo), float(hi)
        else:
            self.lb = float(self.lb)
            self.ub = float(self.ub)
        if self.lb > self.ub:
            raise ModelError(
                f"variable {self.name}: lower bound {self.lb} exceeds upper bound {self.ub}"
            )

    def ref(self) -> VarRef:
        """The expression leaf referring to this variable."""
        return VarRef(self.name)

    @property
    def is_integral(self) -> bool:
        return self.vtype in (VarType.INTEGER, VarType.BINARY)

    def clipped(self, value: float) -> float:
        """``value`` clipped into this variable's bounds."""
        return min(max(value, self.lb), self.ub)

    def rounded_feasible(self, value: float) -> float:
        """Round ``value`` to the nearest in-bounds point of the domain."""
        v = self.clipped(value)
        if self.is_integral:
            v = round(v)
            v = min(max(v, math.ceil(self.lb)), math.floor(self.ub))
        return float(v)

    def integrality_violation(self, value: float) -> float:
        """Distance from ``value`` to the nearest integer (0 for continuous)."""
        if not self.is_integral:
            return 0.0
        return abs(value - round(value))
