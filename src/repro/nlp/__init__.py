"""Nonlinear programming substrate (the paper's filterSQP stand-in).

Solves smooth convex problems of the form

    minimize    f(x)
    subject to  g_i(x) <= 0            (smooth, convex)
                A_eq x  = b_eq         (linear)
                l <= x <= u

with a log-barrier interior-point method: the box and the inequality
constraints enter the barrier, linear equalities are kept exactly in the
Newton KKT system, and a built-in phase-1 (minimize the maximum violation)
produces the strictly feasible starting point the barrier needs.  The MINLP
branch-and-bound layer uses this solver for continuous relaxations and for
the fixed-integer subproblems NLP(ŷ) of the paper's LP/NLP algorithm.
"""

from repro.nlp.problem import NLPProblem
from repro.nlp.result import NLPResult, NLPStatus
from repro.nlp.barrier import BarrierOptions, solve_nlp

__all__ = [
    "NLPProblem",
    "NLPResult",
    "NLPStatus",
    "BarrierOptions",
    "solve_nlp",
]
