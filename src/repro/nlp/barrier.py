"""Log-barrier interior-point solver (Boyd & Vandenberghe, ch. 11).

Outer loop: minimize ``t*f(x) + phi(x)`` for increasing ``t``, where ``phi``
is the log barrier of the inequality constraints and the finite box bounds.
Inner loop: infeasible-start Newton on the KKT residual, which keeps linear
equality constraints exactly (their residual contracts with every full
step).  Backtracking line search maintains strict interiority.

A built-in phase 1 minimizes the max inequality violation through an
auxiliary slack variable, so callers do not need to hand in a strictly
feasible point — although the MINLP layer usually can, and then phase 1 is
skipped.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

import numpy as np

from repro.expr.node import VarRef
from repro.nlp.problem import NLPProblem
from repro.nlp.result import NLPResult, NLPStatus

__all__ = ["BarrierOptions", "solve_nlp"]


@dataclass
class BarrierOptions:
    """Tuning knobs for :func:`solve_nlp`."""

    tol: float = 1e-6            # target duality-gap proxy (m / t)
    t0: float = 1.0              # initial barrier weight
    mu: float = 12.0             # barrier weight growth factor
    max_newton: int = 3000       # total Newton iterations across stages
    max_newton_per_center: int = 250  # per centering stage
    stall_window: int = 12       # centering iterations without residual progress
    inner_tol: float = 1e-9      # Newton decrement threshold (lambda^2 / 2)
    armijo: float = 0.25
    backtrack: float = 0.5
    feas_margin: float = 1e-10   # strict-interior margin in line search
    regularization: float = 1e-10


def solve_nlp(
    problem: NLPProblem,
    x0: np.ndarray | None = None,
    options: BarrierOptions | None = None,
) -> NLPResult:
    """Solve ``problem``; returns a result object (statuses, never raises
    for infeasibility)."""
    opt = options or BarrierOptions()
    solver = _Barrier(problem, opt)

    x = None if x0 is None else np.asarray(x0, dtype=float).copy()
    if x is not None and not solver.strictly_feasible(x):
        x = None
    if x is None:
        x, phase1 = solver.phase1()
        if x is None:
            return phase1  # infeasible (or phase-1 failure) result
    # Starting points routinely sit pressed into a corner of the feasible
    # set (phase 1 minimizes the violation slack; warm starts are clipped
    # projections), where the main barrier's Newton iteration crawls along
    # curved constraint walls.  Pull the point toward the analytic center
    # first (minimize the barrier with a vanishing objective weight); this
    # is best effort — a stall here is fine, and it costs almost nothing
    # when the point is already central.
    x, _, _ = solver._center(x, t=1e-8, stop_idx=None)
    return solver.minimize(x)


class _Barrier:
    def __init__(self, problem: NLPProblem, opt: BarrierOptions):
        self.p = problem
        self.opt = opt
        self.finite_lb = np.isfinite(problem.lb)
        self.finite_ub = np.isfinite(problem.ub)
        self.m_barrier = len(problem.inequalities) + int(self.finite_lb.sum()) + int(
            self.finite_ub.sum()
        )
        self.newton_iters = 0

    # -- feasibility -----------------------------------------------------------

    def strictly_feasible(self, x: np.ndarray, margin: float = 1e-9) -> bool:
        """Strict interiority with a small margin — a point microscopically
        inside a constraint is useless to the barrier (its log term explodes),
        so such starts are routed through phase 1 instead."""
        lo, hi = self.p.lb, self.p.ub
        fl, fu = self.finite_lb, self.finite_ub
        if np.any(x[fl] <= lo[fl] + margin * (1.0 + np.abs(lo[fl]))):
            return False
        if np.any(x[fu] >= hi[fu] - margin * (1.0 + np.abs(hi[fu]))):
            return False
        if len(self.p.inequalities) and np.any(self.p.g_values(x) >= -margin):
            return False
        return True

    def box_interior_point(self) -> np.ndarray:
        """A point strictly inside the box, then projected onto A_eq x = b."""
        lo, hi = self.p.lb, self.p.ub
        x = np.zeros(self.p.n)
        both = self.finite_lb & self.finite_ub
        x[both] = 0.5 * (lo[both] + hi[both])
        only_lo = self.finite_lb & ~self.finite_ub
        x[only_lo] = lo[only_lo] + 1.0
        only_hi = ~self.finite_lb & self.finite_ub
        x[only_hi] = hi[only_hi] - 1.0
        # Project onto the equality subspace, then pull back strictly inside
        # the box if the projection grazed a face (alternate a few rounds).
        for _ in range(20):
            if len(self.p.eq_rows):
                A, b = self.p.A_eq, self.p.b_eq
                resid = A @ x - b
                if np.abs(resid).max(initial=0.0) > 1e-12:
                    correction, *_ = np.linalg.lstsq(A, resid, rcond=None)
                    x = x - correction
            inside = True
            for j in range(self.p.n):
                width = min(
                    1.0,
                    (hi[j] - lo[j]) * 0.25 if both[j] else 1.0,
                )
                if self.finite_lb[j] and x[j] < lo[j] + 1e-9:
                    x[j] = lo[j] + width
                    inside = False
                if self.finite_ub[j] and x[j] > hi[j] - 1e-9:
                    x[j] = hi[j] - width
                    inside = False
            if inside:
                break
        return x

    # -- phase 1 -----------------------------------------------------------------

    def phase1(self):
        """Find a strictly feasible x, or report infeasibility.

        Minimizes s subject to g_i(x) <= s by running the main barrier
        machinery on an augmented problem; stops early once s < 0.
        """
        x_start = self.box_interior_point()
        if self.strictly_feasible(x_start):
            return x_start, None
        if not self.p.inequalities:
            # Only box/equalities: the projected interior point is as good as
            # it gets; failure means the equalities clash with the box.
            return None, NLPResult(
                NLPStatus.INFEASIBLE,
                message="equality rows incompatible with variable bounds",
                max_violation=self.p.max_violation(x_start),
            )

        s_name = "_phase1_slack"
        while s_name in self.p.index:
            s_name += "_"
        aug = NLPProblem(
            names=self.p.names + [s_name],
            objective=VarRef(s_name),
            inequalities=[
                (label, body - VarRef(s_name)) for label, body in self.p.inequalities
            ],
            lb=np.concatenate([self.p.lb, [-np.inf]]),
            ub=np.concatenate([self.p.ub, [np.inf]]),
            eq_rows=list(self.p.eq_rows),
            kernel_cache=self.p.kernel_cache,
            evaluator=self.p.evaluator,
        )
        g0 = self.p.g_values(x_start)
        s0 = float(g0.max(initial=0.0)) + 1.0
        z0 = np.concatenate([x_start, [s0]])

        # Stop only once the point is *comfortably* interior: a slack that
        # has merely crossed zero leaves the main barrier starting on a
        # constraint boundary, where Newton crawls.
        stop_below = -(0.05 * abs(s0) + 1e-6)
        sub = _Barrier(aug, self.opt)
        result = sub.minimize(z0, stop_when_negative=s_name, stop_below=stop_below)
        self.newton_iters += sub.newton_iters
        if result.x is None:
            return None, NLPResult(
                NLPStatus.NUMERICAL_ERROR,
                message=f"phase 1 failed: {result.message}",
                newton_iterations=self.newton_iters,
            )
        x, s = result.x[:-1], float(result.x[-1])
        if s >= 0.0:
            return None, NLPResult(
                NLPStatus.INFEASIBLE,
                message=f"phase 1 optimum {s:.3e} >= 0",
                newton_iterations=self.newton_iters,
                max_violation=self.p.max_violation(x),
            )
        return x, None

    # -- main barrier loop ---------------------------------------------------------

    def minimize(
        self,
        x: np.ndarray,
        stop_when_negative: str | None = None,
        stop_below: float = -1e-6,
    ) -> NLPResult:
        opt = self.opt
        t = opt.t0
        stop_idx = (
            self.p.index[stop_when_negative] if stop_when_negative is not None else None
        )
        status = NLPStatus.OPTIMAL
        message = ""
        failed_stages = 0
        # Last cleanly-centered stage: its objective minus its duality-gap
        # proxy is a *certified* lower bound even if later stages stall.
        clean_f, clean_gap, clean_x = None, math.inf, None
        while True:
            x, ok, msg = self._center(x, t, stop_idx, stop_below)
            if stop_idx is not None and x[stop_idx] < stop_below:
                break  # phase-1 early exit: comfortably interior point found
            if not ok:
                # Conditioning at large t can stall centering even though the
                # iterate is already excellent.  If a clean stage certified a
                # small gap, finish there; otherwise escape by raising t a
                # couple of times before giving up.
                failed_stages += 1
                tight_enough = (
                    clean_f is not None
                    and clean_gap <= max(opt.tol * 100.0, 1e-5) * (1.0 + abs(clean_f))
                )
                if tight_enough:
                    # The certificate belongs to the cleanly-centered
                    # iterate; a stalled stage (singular KKT, lstsq step)
                    # may have drifted off the equality manifold.
                    if self.p.max_violation(x) > self.p.max_violation(clean_x) + 1e-9:
                        x = clean_x
                    message = f"finished on stall with certified gap {clean_gap:.2e}"
                    break
                if failed_stages >= 3 or self.newton_iters >= opt.max_newton:
                    status, message = NLPStatus.ITERATION_LIMIT, msg
                    break
            else:
                failed_stages = 0
                clean_f = self.p.f(x)
                clean_gap = self.m_barrier / t if t > 0 else 0.0
                clean_x = x.copy()
                if self.m_barrier == 0 or self.m_barrier / t < opt.tol:
                    break
            t *= opt.mu
            if self.newton_iters >= opt.max_newton:
                status, message = NLPStatus.ITERATION_LIMIT, "Newton budget exhausted"
                break

        f_final = self.p.f(x)
        if clean_f is not None and status is NLPStatus.OPTIMAL:
            # Honest gap: f* >= clean_f - clean_gap, so the distance from the
            # reported objective to that certificate bounds suboptimality.
            mu_report = max(self.m_barrier / t if t > 0 else 0.0,
                            f_final - clean_f + clean_gap)
        else:
            mu_report = self.m_barrier / t if t > 0 else float("nan")
        return NLPResult(
            status=status,
            x=x,
            objective=f_final,
            newton_iterations=self.newton_iters,
            mu_final=mu_report,
            max_violation=self.p.max_violation(x),
            message=message,
        )

    # -- Newton centering ------------------------------------------------------------

    def _barrier_value(self, x: np.ndarray, t: float) -> float:
        # Box interiority first: expressions may be undefined (complex
        # fractional powers, division by zero) outside the box.
        dlo = x[self.finite_lb] - self.p.lb[self.finite_lb]
        dhi = self.p.ub[self.finite_ub] - x[self.finite_ub]
        if np.any(dlo <= 0.0) or np.any(dhi <= 0.0):
            return np.inf
        try:
            g = self.p.g_values(x) if self.p.inequalities else np.zeros(0)
        except (TypeError, ArithmeticError):
            return np.inf
        if g.size and (not np.all(np.isreal(g)) or not np.all(np.isfinite(g))):
            return np.inf
        if g.size and g.max(initial=-np.inf) >= 0.0:
            return np.inf
        val = t * self.p.f(x)
        if g.size:
            val -= float(np.log(-g).sum())
        val -= float(np.log(dlo).sum()) + float(np.log(dhi).sum())
        return val

    def _grad_hess(self, x: np.ndarray, t: float):
        n = self.p.n
        grad = t * self.p.grad_f(x)
        H = np.zeros((n, n))
        self.p.hess_f_into(x, H, scale=t)

        for _, smooth in self.p.g_items():
            gval = smooth.value(x)
            gg = smooth.grad_vector(x, n)
            # -log(-g): gradient = gg / (-g); Hessian = gg ggT / g^2 + Hg / (-g)
            grad += gg / (-gval)
            H += np.outer(gg, gg) / (gval * gval)
            smooth.hess_into(x, H, scale=1.0 / (-gval))

        dlo = x - self.p.lb
        dhi = self.p.ub - x
        fl, fu = self.finite_lb, self.finite_ub
        grad[fl] -= 1.0 / dlo[fl]
        grad[fu] += 1.0 / dhi[fu]
        diag = np.zeros(n)
        diag[fl] += 1.0 / dlo[fl] ** 2
        diag[fu] += 1.0 / dhi[fu] ** 2
        H[np.diag_indices(n)] += diag + self.opt.regularization
        return grad, H

    def _newton_direction(self, grad: np.ndarray, H: np.ndarray):
        """A guaranteed descent direction: Cholesky with escalating ridge.

        An ill-conditioned barrier Hessian (linear objective, few active
        constraints) can make a naive ``solve`` return a non-descent or
        wildly-scaled direction, which then *masquerades as convergence*
        through a tiny Newton decrement.  Escalating the ridge until the
        factorization succeeds and the direction demonstrably descends
        interpolates between Newton and scaled gradient descent.
        """
        n = grad.shape[0]
        # abs: a negative-trace (indefinite) Hessian must not flip the
        # ridge scale negative — that would poison the last-resort
        # preconditioner below into an ascent direction.
        scale = abs(float(np.trace(H))) / n + 1.0
        ridge = self.opt.regularization * scale
        eye = np.eye(n)
        for _ in range(24):
            try:
                Lf = np.linalg.cholesky(H + ridge * eye)
            except np.linalg.LinAlgError:
                ridge = max(ridge * 100.0, 1e-12 * scale)
                continue
            dx = np.linalg.solve(Lf.T, np.linalg.solve(Lf, -grad))
            dec = float(-grad @ dx)
            if np.all(np.isfinite(dx)) and dec > 0.0:
                return dx, dec
            ridge = max(ridge * 100.0, 1e-12 * scale)
        # Last resort: diagonally preconditioned steepest descent.
        dx = -grad / (np.abs(np.diag(H)) + scale)
        return dx, float(-grad @ dx)

    def _max_box_step(self, x: np.ndarray, dx: np.ndarray) -> float:
        """Largest step keeping ``x + a*dx`` inside the (finite) box."""
        with np.errstate(divide="ignore", invalid="ignore"):
            to_hi = np.where(
                (dx > 0) & self.finite_ub, (self.p.ub - x) / dx, np.inf
            )
            to_lo = np.where(
                (dx < 0) & self.finite_lb, (self.p.lb - x) / dx, np.inf
            )
        step = min(float(np.min(to_hi)), float(np.min(to_lo)))
        return max(step, 1e-16)

    def _center(self, x: np.ndarray, t: float, stop_idx, stop_below: float = -1e-6):
        """Newton minimization of the barrier objective at weight ``t``.

        Returns ``(x, converged, message)``; ``converged=False`` means the
        stage ran out of budget or stalled — callers must not treat the
        value as a certified stage optimum.
        """
        opt = self.opt
        p = self.p
        m_eq = len(p.eq_rows)
        nu = np.zeros(m_eq)
        stage_iters = 0
        best_res = np.inf
        best_merit = np.inf
        since_progress = 0
        while self.newton_iters < opt.max_newton:
            if stage_iters >= opt.max_newton_per_center:
                return x, False, "per-stage Newton budget exhausted"
            grad, H = self._grad_hess(x, t)
            if m_eq:
                r_dual = grad + p.A_eq.T @ nu
                r_prim = p.A_eq @ x - p.b_eq
                KKT = np.block([[H, p.A_eq.T], [p.A_eq, np.zeros((m_eq, m_eq))]])
                rhs = -np.concatenate([r_dual, r_prim])
                try:
                    sol = np.linalg.solve(KKT, rhs)
                except np.linalg.LinAlgError:
                    sol, *_ = np.linalg.lstsq(KKT, rhs, rcond=None)
                dx, dnu = sol[: p.n], sol[p.n :]
                res_norm = float(np.linalg.norm(np.concatenate([r_dual, r_prim])))
                decrement = res_norm
            else:
                dx, decrement = self._newton_direction(grad, H)
                dnu = np.zeros(0)
                res_norm = float(np.linalg.norm(grad))

            # Convergence: a genuinely small decrement together with a
            # gradient that is small relative to the stage weight.
            if not m_eq and decrement / 2.0 <= opt.inner_tol and res_norm <= 1e-4 * (
                1.0 + abs(t)
            ):
                return x, True, ""
            if m_eq and res_norm <= 1e-8 * (1.0 + abs(t)):
                return x, True, ""
            # Stall guard: progress means either the residual or the barrier
            # merit moved meaningfully (a productive crawl keeps lowering the
            # merit long before the residual contracts).
            merit_now = self._barrier_value(x, t)
            improved = res_norm < best_res * (1.0 - 1e-3) or (
                merit_now < best_merit - 1e-6 * (1.0 + abs(best_merit))
            )
            best_res = min(best_res, res_norm)
            best_merit = min(best_merit, merit_now)
            if improved:
                since_progress = 0
            else:
                since_progress += 1
                if since_progress >= opt.stall_window:
                    return x, False, "centering stalled"

            # Backtracking line search keeping strict interiority and
            # decreasing the merit (barrier value, or KKT residual when
            # equality-infeasible).  Start at the fraction-to-boundary step
            # for the box: a deep-interior start with a weak Hessian yields
            # huge Newton directions, and backtracking from alpha=1 through
            # dozens of infinite-merit trials is what makes cold starts
            # crawl — jumping to 99.5% of the exact box distance first makes
            # those steps land in one or two trials.
            alpha = min(1.0, 0.995 * self._max_box_step(x, dx))
            base_merit = self._barrier_value(x, t)
            accepted = False
            for _ in range(60):
                x_new = x + alpha * dx
                nu_new = nu + alpha * dnu
                merit = self._barrier_value(x_new, t)
                if np.isfinite(merit):
                    if m_eq:
                        grad_n, _ = self._grad_hess(x_new, t)
                        rd = grad_n + p.A_eq.T @ nu_new
                        rp = p.A_eq @ x_new - p.b_eq
                        new_res = float(np.linalg.norm(np.concatenate([rd, rp])))
                        if new_res <= (1.0 - opt.armijo * alpha) * res_norm + 1e-14:
                            accepted = True
                            break
                    else:
                        if merit <= base_merit + opt.armijo * alpha * float(grad @ dx) + 1e-14:
                            accepted = True
                            break
                alpha *= opt.backtrack
            self.newton_iters += 1
            stage_iters += 1
            if not accepted:
                return x, False, "line search stalled"
            x, nu = x_new, nu_new
            if stop_idx is not None and x[stop_idx] < stop_below:
                return x, True, ""
        return x, False, "Newton iteration limit"
