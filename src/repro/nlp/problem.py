"""NLP problem container with precompiled derivatives.

Symbolic gradients and Hessians are derived once at construction and then
*compiled* (:mod:`repro.expr.compile`) into plain-Python callables over the
problem's variable vector; evaluation during the barrier iterations is then
a handful of bytecode-compiled expressions instead of tree walks, while
linear rows contribute constant Jacobian entries assembled directly into
numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ExpressionError, ModelError
from repro.expr.compile import compile_expr
from repro.expr.diff import gradient, hessian
from repro.expr.linear import LinearForm, linear_coefficients
from repro.expr.node import Expr


class _Smooth:
    """A smooth scalar function with compiled first/second derivatives.

    All callables take the problem's full variable vector ``x``; index maps
    variable names to positions in that vector.
    """

    __slots__ = ("expr", "linear", "value", "_grad_items", "_hess_items")

    def __init__(self, expr: Expr, index: dict):
        self.expr = expr
        support = sorted(expr.variables())
        try:
            self.linear = linear_coefficients(expr)
        except ExpressionError:
            self.linear = None
        self.value = compile_expr(expr, index)
        grads = gradient(expr, support)
        # (position, compiled derivative) per support variable.
        self._grad_items = [
            (index[n], compile_expr(grads[n], index)) for n in support
        ]
        hess = hessian(expr, support)
        self._hess_items = [
            (index[a], index[b], compile_expr(e, index))
            for (a, b), e in hess.items()
        ]

    def grad_into(self, x, out: np.ndarray) -> None:
        """Accumulate the gradient at ``x`` into dense vector ``out``."""
        if self.linear is not None:
            # affine: constant gradient (fast path keeps indices compiled in)
            for pos, fn in self._grad_items:
                out[pos] += fn(x)
            return
        for pos, fn in self._grad_items:
            out[pos] += fn(x)

    def grad_vector(self, x, n: int) -> np.ndarray:
        out = np.zeros(n)
        self.grad_into(x, out)
        return out

    def hess_into(self, x, out: np.ndarray, scale: float) -> None:
        """Accumulate ``scale * Hessian`` at ``x`` into dense matrix ``out``."""
        if self.linear is not None:
            return  # affine: zero Hessian
        for ia, ib, fn in self._hess_items:
            v = fn(x) * scale
            if v == 0.0:
                continue
            out[ia, ib] += v
            if ia != ib:
                out[ib, ia] += v


@dataclass
class NLPProblem:
    """``min f(x) s.t. g(x) <= 0, A_eq x = b_eq, l <= x <= u``.

    ``names`` fixes the variable ordering used by all dense arrays.
    ``eq_rows`` is a list of ``(coeffs_dict, rhs)`` linear equalities.
    """

    names: list
    objective: Expr
    inequalities: list          # list of (name, Expr body) meaning body <= 0
    lb: np.ndarray
    ub: np.ndarray
    eq_rows: list = field(default_factory=list)

    def __post_init__(self):
        self.names = list(self.names)
        self.index = {n: i for i, n in enumerate(self.names)}
        if len(self.index) != len(self.names):
            raise ModelError("duplicate variable names in NLP")
        self.lb = np.asarray(self.lb, dtype=float)
        self.ub = np.asarray(self.ub, dtype=float)
        n = len(self.names)
        if self.lb.shape != (n,) or self.ub.shape != (n,):
            raise ModelError("lb/ub shape mismatch with names")
        if np.any(self.lb >= self.ub):
            raise ModelError(
                "NLP variables need lb < ub (eliminate fixed variables first)"
            )
        known = set(self.names)
        for label, body in self.inequalities:
            missing = body.variables() - known
            if missing:
                raise ModelError(f"inequality {label!r} uses unknown {sorted(missing)}")
        missing = self.objective.variables() - known
        if missing:
            raise ModelError(f"objective uses unknown variables {sorted(missing)}")
        self._f = _Smooth(self.objective, self.index)
        self._g = [(label, _Smooth(body, self.index)) for label, body in self.inequalities]

        # Dense equality matrix.
        m = len(self.eq_rows)
        self.A_eq = np.zeros((m, n))
        self.b_eq = np.zeros(m)
        for i, (coeffs, rhs) in enumerate(self.eq_rows):
            for name, coef in coeffs.items():
                if name not in self.index:
                    raise ModelError(f"equality row {i} uses unknown variable {name!r}")
                self.A_eq[i, self.index[name]] = coef
            self.b_eq[i] = rhs

    # -- numeric interface used by the barrier solver ---------------------------

    @property
    def n(self) -> int:
        return len(self.names)

    def env_of(self, x: np.ndarray) -> dict:
        """Name -> value mapping (reporting; hot paths use vectors)."""
        return dict(zip(self.names, x.tolist()))

    def f(self, x: np.ndarray) -> float:
        return float(self._f.value(x))

    def grad_f(self, x: np.ndarray) -> np.ndarray:
        return self._f.grad_vector(x, self.n)

    def hess_f_into(self, x: np.ndarray, out: np.ndarray, scale: float = 1.0) -> None:
        self._f.hess_into(x, out, scale)

    def g_values(self, x: np.ndarray) -> np.ndarray:
        return np.array([s.value(x) for _, s in self._g])

    def g_items(self):
        """(label, _Smooth) pairs for the inequalities."""
        return self._g

    def max_violation(self, x: np.ndarray) -> float:
        """max(g(x), bound violations, |A_eq x - b|), 0 when feasible."""
        worst = 0.0
        if self._g:
            worst = max(worst, float(self.g_values(x).max(initial=0.0)))
        worst = max(worst, float(np.max(self.lb - x, initial=0.0)))
        worst = max(worst, float(np.max(x - self.ub, initial=0.0)))
        if len(self.eq_rows):
            worst = max(worst, float(np.abs(self.A_eq @ x - self.b_eq).max()))
        return worst
