"""NLP problem container evaluating through compiled kernels.

Symbolic gradients and Hessians are derived once and compiled into
CSE-grouped kernels (:mod:`repro.kernels`) over the problem's variable
vector; evaluation during the barrier iterations is then a handful of
bytecode-compiled statement blocks instead of tree walks, while linear rows
contribute constant Jacobian entries assembled directly into numpy arrays.

Construction goes through a :class:`~repro.kernels.KernelCache` — pass the
same cache to sibling subproblems (the MINLP solvers pass one per solve)
and structurally identical functions are neither re-differentiated nor
recompiled.  ``evaluator`` selects the back-end: ``"kernel"`` (default),
``"scalar"`` (one compiled lambda per expression — the historical path) or
``"tree"`` (direct ``Expr.evaluate`` walks, the bit-identical reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError
from repro.expr.node import Expr
from repro.kernels import KernelCache, SmoothKernel

#: Re-exported for the issue-facing name: the smooth-function evaluator the
#: barrier solver consumes is the kernel layer's object.
_Smooth = SmoothKernel


@dataclass
class NLPProblem:
    """``min f(x) s.t. g(x) <= 0, A_eq x = b_eq, l <= x <= u``.

    ``names`` fixes the variable ordering used by all dense arrays.
    ``eq_rows`` is a list of ``(coeffs_dict, rhs)`` linear equalities.
    ``kernel_cache`` shares compiled evaluators between related problems
    (a private cache is created when omitted); ``evaluator`` picks the
    evaluation back-end (see the module docstring).
    """

    names: list
    objective: Expr
    inequalities: list          # list of (name, Expr body) meaning body <= 0
    lb: np.ndarray
    ub: np.ndarray
    eq_rows: list = field(default_factory=list)
    kernel_cache: KernelCache | None = None
    evaluator: str = "kernel"

    def __post_init__(self):
        self.names = list(self.names)
        self.index = {n: i for i, n in enumerate(self.names)}
        if len(self.index) != len(self.names):
            raise ModelError("duplicate variable names in NLP")
        self.lb = np.asarray(self.lb, dtype=float)
        self.ub = np.asarray(self.ub, dtype=float)
        n = len(self.names)
        if self.lb.shape != (n,) or self.ub.shape != (n,):
            raise ModelError("lb/ub shape mismatch with names")
        if np.any(self.lb >= self.ub):
            raise ModelError(
                "NLP variables need lb < ub (eliminate fixed variables first)"
            )
        known = set(self.names)
        for label, body in self.inequalities:
            missing = body.variables() - known
            if missing:
                raise ModelError(f"inequality {label!r} uses unknown {sorted(missing)}")
        missing = self.objective.variables() - known
        if missing:
            raise ModelError(f"objective uses unknown variables {sorted(missing)}")
        if self.kernel_cache is None:
            self.kernel_cache = KernelCache()
        cache = self.kernel_cache
        self._f = cache.smooth(self.objective, self.index, evaluator=self.evaluator)
        self._g = [
            (label, cache.smooth(body, self.index, evaluator=self.evaluator))
            for label, body in self.inequalities
        ]

        # Dense equality matrix.
        m = len(self.eq_rows)
        self.A_eq = np.zeros((m, n))
        self.b_eq = np.zeros(m)
        for i, (coeffs, rhs) in enumerate(self.eq_rows):
            for name, coef in coeffs.items():
                if name not in self.index:
                    raise ModelError(f"equality row {i} uses unknown variable {name!r}")
                self.A_eq[i, self.index[name]] = coef
            self.b_eq[i] = rhs

    # -- numeric interface used by the barrier solver ---------------------------

    @property
    def n(self) -> int:
        return len(self.names)

    def env_of(self, x: np.ndarray) -> dict:
        """Name -> value mapping (reporting; hot paths use vectors)."""
        return dict(zip(self.names, x.tolist()))

    def f(self, x: np.ndarray) -> float:
        return float(self._f.value(x))

    def grad_f(self, x: np.ndarray) -> np.ndarray:
        return self._f.grad_vector(x, self.n)

    def hess_f_into(self, x: np.ndarray, out: np.ndarray, scale: float = 1.0) -> None:
        self._f.hess_into(x, out, scale)

    def g_values(self, x: np.ndarray) -> np.ndarray:
        return np.array([s.value(x) for _, s in self._g])

    def g_items(self):
        """(label, smooth kernel) pairs for the inequalities."""
        return self._g

    def max_violation(self, x: np.ndarray) -> float:
        """max(g(x), bound violations, |A_eq x - b|), 0 when feasible."""
        worst = 0.0
        if self._g:
            worst = max(worst, float(self.g_values(x).max(initial=0.0)))
        worst = max(worst, float(np.max(self.lb - x, initial=0.0)))
        worst = max(worst, float(np.max(x - self.ub, initial=0.0)))
        if len(self.eq_rows):
            worst = max(worst, float(np.abs(self.A_eq @ x - self.b_eq).max()))
        return worst
