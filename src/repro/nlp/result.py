"""NLP solve results."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class NLPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_ERROR = "numerical_error"


@dataclass
class NLPResult:
    """Outcome of a barrier solve.

    ``x``/``objective`` are meaningful when ``status`` is OPTIMAL (or
    ITERATION_LIMIT, in which case they hold the best interior iterate).
    ``newton_iterations`` counts inner Newton steps across all barrier
    stages; ``mu_final`` is the last barrier weight (a duality-gap proxy of
    ``mu * #constraints``).
    """

    status: NLPStatus
    x: np.ndarray | None = None
    objective: float = float("nan")
    newton_iterations: int = 0
    mu_final: float = float("nan")
    max_violation: float = float("nan")
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status is NLPStatus.OPTIMAL

    def value_map(self, names: list) -> dict:
        if self.x is None:
            raise ValueError(f"no solution available (status={self.status.value})")
        return dict(zip(names, (float(v) for v in self.x)))
