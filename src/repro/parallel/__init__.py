"""Deterministic parallel execution layer.

- :mod:`repro.parallel.executor` — pluggable ``serial``/``thread``/
  ``process`` backends with submission-order result merging,
- :mod:`repro.parallel.supervised` — the ``supervised`` backend: monitored
  workers (heartbeats, per-task deadlines), crash/hang detection with
  respawn, bounded retries, and :class:`PoisonedTask` quarantine,
- :mod:`repro.parallel.merge` — the ordered-merge rule itself,
- :mod:`repro.parallel.latency` — a job-latency wrapper so speedups are
  measurable against the instant synthetic simulator.

The contract every consumer (gather, the MINLP solvers, grid search, the
experiment registry) relies on: with any backend, outputs are bit-identical
to the serial path.  ``tests/test_parallel`` holds the differential and
property-based harness that enforces it.
"""

from repro.parallel.executor import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_scope,
    get_executor,
)
from repro.parallel.latency import LatencySimulator
from repro.parallel.merge import TaskFailure, ordered_merge
from repro.parallel.supervised import PoisonedTask, SupervisedProcessExecutor

__all__ = [
    "EXECUTOR_KINDS",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SupervisedProcessExecutor",
    "PoisonedTask",
    "get_executor",
    "executor_scope",
    "LatencySimulator",
    "TaskFailure",
    "ordered_merge",
]
