"""Pluggable execution backends: ``serial``, ``thread``, ``process``.

The HSLB loop is embarrassingly parallel in two places — the gather step
runs independent 5-day benchmarks per component, and branch-and-bound
evaluates independent sibling subproblems — but parallel schedulers are
only trustworthy when they are reproducible.  An :class:`Executor` here is
therefore a *deterministic* map: ``map_ordered(fn, payloads)`` returns
results in **submission order** regardless of completion order (via
:func:`~repro.parallel.merge.ordered_merge`), and the earliest-submitted
failure is the one that raises.

Backends:

- :class:`SerialExecutor` — runs tasks inline, in order, stopping at the
  first failure.  This is the default everywhere and is *the* reference
  semantics: the pooled backends are tested to be bit-identical to it.
- :class:`ThreadExecutor` — a thread pool.  Payloads may share objects with
  the caller; tasks must only touch thread-safe state (the library's task
  functions are pure, or touch per-task keys only).
- :class:`ProcessExecutor` — a process pool.  Task functions and payloads
  must be picklable (module-level functions, dataclass payloads); workers
  operate on *copies*, so any state a task mutates must be returned in its
  result and merged back by the caller.
- ``"supervised"`` — :class:`~repro.parallel.supervised.SupervisedProcessExecutor`,
  a process pool whose workers are monitored (heartbeats, per-task
  deadlines) and respawned after crashes/hangs, with lost tasks retried
  deterministically.  Same clean-path results, survives SIGKILL'd workers.

``submit`` offers a future-shaped escape hatch for speculative evaluation
(the MINLP solvers use it for sibling nodes); ``SerialExecutor.submit`` is
lazy so that unconsumed speculation costs nothing in serial mode.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from contextlib import contextmanager

from repro.exceptions import ConfigurationError, WorkerCrashError
from repro.parallel.merge import TaskFailure, ordered_merge

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "executor_scope",
    "EXECUTOR_KINDS",
]

EXECUTOR_KINDS = ("serial", "thread", "process", "supervised")


def _default_workers() -> int:
    return max(2, os.cpu_count() or 2)


def _guarded(fn, payload):
    """Run one task, converting its exception into a mergeable value.

    Module-level so process pools can pickle it by reference.
    """
    try:
        return fn(payload)
    except BaseException as exc:  # noqa: BLE001 - re-raised by ordered_merge
        return TaskFailure(exc)


class _LazyResult:
    """``SerialExecutor.submit`` handle: evaluates on first ``result()``.

    Laziness matters: speculative submissions that are never consumed
    (pruned branch-and-bound children) must cost nothing in serial mode.
    """

    __slots__ = ("_fn", "_args", "_done", "_value")

    def __init__(self, fn, args):
        self._fn = fn
        self._args = args
        self._done = False
        self._value = None

    def result(self):
        if not self._done:
            self._value = self._fn(*self._args)
            self._done = True
            self._fn = self._args = None
        return self._value


class SerialExecutor:
    """Inline execution — the reference semantics for every backend."""

    kind = "serial"

    def __init__(self, workers: int = 1):
        self.workers = 1

    def map_ordered(self, fn, payloads, progress=None) -> list:
        # A plain loop on purpose: the first failure raises immediately and
        # later payloads never run, exactly like the historical serial code.
        # ``progress`` (if given) sees each successful (index, result) as it
        # lands — the crash-safe journal hooks in here.
        results = []
        for index, payload in enumerate(payloads):
            result = fn(payload)
            if progress is not None:
                progress(index, result)
            results.append(result)
        return results

    def submit(self, fn, *args) -> _LazyResult:
        return _LazyResult(fn, args)

    def shutdown(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class _PoolExecutor:
    """Shared plumbing for the thread and process backends."""

    kind = "pool"

    def __init__(self, workers: int | None = None):
        workers = _default_workers() if workers is None else int(workers)
        if workers < 1:
            raise ConfigurationError("executor workers must be >= 1")
        self.workers = workers
        self._pool = None

    def _make_pool(self):  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def map_ordered(self, fn, payloads, progress=None) -> list:
        payloads = list(payloads)
        if not payloads:
            return []
        pending = {
            self.pool.submit(_guarded, fn, payload): index
            for index, payload in enumerate(payloads)
        }
        pairs = []
        broken = False
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                try:
                    outcome = future.result()
                except Exception as exc:
                    # Task exceptions never reach here (_guarded wraps them);
                    # this is pool-level damage — a worker SIGKILL'd mid-task
                    # breaks every in-flight future.  Carrying it as a
                    # TaskFailure keeps the one rule intact: the *earliest
                    # submitted* loss raises, not whichever future the wait
                    # happened to surface first.
                    broken = True
                    outcome = TaskFailure(
                        WorkerCrashError(
                            f"worker process lost task {index} "
                            f"({type(exc).__name__}: {exc})"
                        )
                    )
                if progress is not None and not isinstance(outcome, TaskFailure):
                    progress(index, outcome)
                pairs.append((index, outcome))
        if broken:
            # The pool is unusable after an abnormal worker exit; drop it so
            # the next map on this executor starts a fresh one.
            self.shutdown()
        return ordered_merge(pairs, len(payloads))

    def submit(self, fn, *args):
        return self.pool.submit(fn, *args)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend (shared-memory tasks, GIL-releasing workloads)."""

    kind = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-parallel"
        )


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend; task functions and payloads must pickle."""

    kind = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


_BACKENDS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(spec, workers: int | None = None):
    """Normalize ``spec`` (name, ``None``, or executor) to an executor.

    ``None`` and ``"serial"`` both mean the serial reference backend.  An
    object that already quacks like an executor passes through unchanged
    (the caller owns its lifecycle).
    """
    if spec is None:
        return SerialExecutor()
    if hasattr(spec, "map_ordered"):
        return spec
    if str(spec) == "supervised":
        # Imported lazily: repro.parallel.supervised pulls in the
        # resilience layer, which plain executors must not depend on.
        from repro.parallel.supervised import SupervisedProcessExecutor

        return SupervisedProcessExecutor(workers)
    try:
        backend = _BACKENDS[str(spec)]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {spec!r}; expected one of {EXECUTOR_KINDS}"
        ) from None
    return backend(workers) if backend is not SerialExecutor else SerialExecutor()


@contextmanager
def executor_scope(spec, workers: int | None = None):
    """``with executor_scope("process", 4) as ex: ...``

    Creates an executor from a name (shut down on exit) or passes an
    existing executor through untouched — library entry points accept
    either, and this keeps pool ownership in one place.
    """
    owned = not hasattr(spec, "map_ordered")
    executor = get_executor(spec, workers)
    try:
        yield executor
    finally:
        if owned:
            executor.shutdown()
