"""Latency-modeling simulator wrapper for parallel benchmarks.

The synthetic :class:`~repro.cesm.CoupledRunSimulator` replays a recorded
measurement in microseconds, which hides the property the parallel layer
exists to exploit: on a real machine every benchmark is a *job* that
occupies a partition for minutes.  :class:`LatencySimulator` restores that
cost at a configurable scale — each measurement call sleeps
``scale * simulated_seconds`` (plus ``floor``) before returning — so
wall-clock speedup measurements mean something.  Sleeping releases the GIL,
so both the thread and process backends overlap it, exactly like real jobs
waiting in a queue.

The returned *values* are untouched: a latency-wrapped sweep is
bit-identical to the bare one, only slower.
"""

from __future__ import annotations

import time

__all__ = ["LatencySimulator"]


class LatencySimulator:
    """Wrap a simulator so each measurement costs proportional wall-clock.

    Picklable as long as the inner simulator is, so it drops into the
    process backend unchanged.
    """

    def __init__(self, inner, scale: float = 1e-4, floor: float = 0.0):
        self.inner = inner
        self.scale = float(scale)
        self.floor = float(floor)

    @property
    def case(self):
        return self.inner.case

    def _pay(self, seconds: float) -> None:
        cost = self.floor + self.scale * max(float(seconds), 0.0)
        if cost > 0.0:
            time.sleep(cost)

    def benchmark(self, component, nodes: int, repeat: int = 0) -> float:
        value = self.inner.benchmark(component, nodes, repeat=repeat)
        self._pay(value)
        return value

    def benchmark_sweep(self, component, node_counts) -> list:
        return [(int(n), self.benchmark(component, int(n))) for n in node_counts]

    def run_coupled(self, allocation):
        timings = self.inner.run_coupled(allocation)
        self._pay(timings.total)
        return timings
