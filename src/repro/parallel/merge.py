"""Deterministic ordered merge of out-of-order task completions.

Every parallel path in this library follows the same discipline: tasks are
*submitted* in a deterministic order, complete in whatever order the
machine pleases, and are *merged back in submission order* before any
result is consumed.  That single rule is what makes the thread and process
backends bit-identical to the serial path — downstream code never observes
completion order.

:func:`ordered_merge` is that rule as a function.  It consumes
``(index, outcome)`` pairs (``index`` = submission position) and returns
the outcomes as a dense list.  Failures travel as :class:`TaskFailure`
values rather than raising inside the pool; the merge re-raises the one
with the *smallest submission index*, mirroring a serial loop where the
earliest failing item raises before later items matter.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = ["TaskFailure", "ordered_merge"]


class TaskFailure:
    """A task's exception, carried as a value until the ordered merge.

    Pools must not let worker exceptions escape as they complete — that
    would surface whichever failure finished *first*, a race.  Wrapping
    them lets :func:`ordered_merge` pick the failure a serial loop would
    have hit.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskFailure({self.error!r})"


_MISSING = object()


def ordered_merge(pairs, count: int) -> list:
    """Arrange ``(index, outcome)`` completion pairs into submission order.

    ``count`` is the number of submitted tasks; every index in
    ``range(count)`` must appear exactly once.  If any outcome is a
    :class:`TaskFailure`, the failure with the smallest index is re-raised
    — *after* all pairs are consumed, so the choice is deterministic no
    matter the completion permutation.
    """
    slots = [_MISSING] * count
    for index, outcome in pairs:
        if not 0 <= index < count:
            raise ConfigurationError(
                f"ordered_merge: task index {index} outside 0..{count - 1}"
            )
        if slots[index] is not _MISSING:
            raise ConfigurationError(
                f"ordered_merge: task index {index} completed twice"
            )
        slots[index] = outcome
    for index, outcome in enumerate(slots):
        if outcome is _MISSING:
            raise ConfigurationError(
                f"ordered_merge: task index {index} never completed"
            )
        if isinstance(outcome, TaskFailure):
            raise outcome.error
    return slots
