"""Supervised process execution: crash/hang detection, respawn, quarantine.

The plain :class:`~repro.parallel.executor.ProcessExecutor` trusts its
workers: a worker that is SIGKILL'd (OOM killer, preempted node) breaks the
whole pool, and a worker that wedges holds its task forever.  Fleet-scale
experiment runs cannot afford either, so this module runs workers under
*supervision*:

- each worker is a long-lived process driven over a duplex pipe, sending a
  **heartbeat** at a fixed interval while it holds a task;
- every dispatch carries a **per-task deadline**
  (:class:`~repro.resilience.retry.Deadline`);
- the supervisor detects three loss modes — process death (crash), task
  deadline expiry, heartbeat loss (both hangs) — kills the worker where
  necessary, **respawns** a replacement, and re-queues the lost task;
- re-dispatch is bounded by a deterministic
  :class:`~repro.resilience.retry.RetryPolicy`; a task that outlives its
  budget is **quarantined** as a typed :class:`PoisonedTask` instead of
  sinking the run;
- every intervention lands on an
  :class:`~repro.resilience.events.EventLog` as a typed event
  (``WORKER_CRASH``/``WORKER_HANG``/``WORKER_RESPAWN``/``TASK_POISONED``).

Results are merged in submission order like every other backend, so the
clean path is bit-identical to serial; supervision is pure overhead until
something dies.  Deterministic chaos (worker SIGKILLs and hangs drawn by
seed, see :mod:`repro.resilience.chaos`) plugs in via the ``chaos``
profile, giving CI a reproducible kill-matrix.

Two entry points:

- :meth:`SupervisedProcessExecutor.map_ordered` — the executor contract:
  poisoned tasks surface as the earliest-submitted
  :class:`~repro.exceptions.WorkerLostError` raised by the merge.
- :meth:`SupervisedProcessExecutor.map_supervised` — the fleet contract:
  never raises for a lost task; the result list carries
  :class:`PoisonedTask` values in the lost slots (graceful degradation —
  the roll-up completes and lists its casualties).
"""

from __future__ import annotations

import multiprocessing
import threading
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait

from repro.exceptions import (
    ConfigurationError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.parallel.merge import TaskFailure, ordered_merge
from repro.resilience.chaos import apply_ticket
from repro.resilience.events import EventKind, EventLog
from repro.resilience.retry import Deadline, RetryPolicy
from repro import telemetry
from repro.telemetry import names as metric
from repro.util.timing import monotonic

__all__ = ["PoisonedTask", "SupervisedProcessExecutor"]


@dataclass(frozen=True)
class PoisonedTask:
    """A task quarantined after exhausting its retry budget.

    Travels through the ordered merge as a *value* (only
    :class:`~repro.parallel.merge.TaskFailure` raises), so a fleet run
    completes with poisoned slots instead of dying.  ``reason`` is one of
    ``"crash"`` (worker died), ``"hang"`` (deadline/heartbeat expired) or
    ``"error"`` (the task itself raised — deterministic, so it is
    quarantined without retry).
    """

    index: int
    attempts: int
    reason: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "index": int(self.index),
            "attempts": int(self.attempts),
            "reason": str(self.reason),
            "detail": str(self.detail),
        }

    def describe(self) -> str:
        return (
            f"task {self.index} poisoned ({self.reason}) after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''}: "
            f"{self.detail}"
        )


def _worker_main(conn, heartbeat_interval: float) -> None:
    """Long-lived worker loop: recv task, beat while busy, send outcome."""
    send_lock = threading.Lock()
    current: dict = {"task_id": None}
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_interval):
            task_id = current["task_id"]
            if task_id is None:
                continue
            try:
                with send_lock:
                    conn.send(("hb", task_id))
            except (OSError, ValueError, BrokenPipeError):
                return

    threading.Thread(target=_beat, daemon=True).start()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, task_id, fn, payload, ticket = message
        current["task_id"] = task_id
        apply_ticket(ticket)  # chaos: may SIGKILL this process or sleep
        # Telemetry: the fork-started child inherits the parent registry's
        # counts, so attribute only what THIS task records by diffing
        # against a pre-task mark; the delta rides home with the outcome
        # and the supervisor merges it in submission order.
        baseline = telemetry.mark()
        try:
            outcome = ("ok", fn(payload))
        except BaseException as exc:  # noqa: BLE001 - shipped to the merge
            outcome = ("err", exc)
        delta = telemetry.export_delta(baseline)
        current["task_id"] = None
        try:
            with send_lock:
                conn.send(("done", task_id, outcome, delta))
        except (EOFError, OSError, BrokenPipeError):
            break
        except Exception as exc:  # unpicklable value/exception
            with send_lock:
                conn.send(
                    (
                        "done",
                        task_id,
                        (
                            "err",
                            ConfigurationError(
                                f"task outcome is not picklable: {exc}"
                            ),
                        ),
                        delta,
                    )
                )
    stop.set()
    conn.close()


class _Worker:
    """Parent-side handle for one supervised worker process."""

    __slots__ = (
        "proc", "conn", "index", "attempt", "task_id", "deadline", "last_beat",
    )

    def __init__(self, ctx, heartbeat_interval: float):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, heartbeat_interval),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.clear()

    def clear(self) -> None:
        self.index = None
        self.attempt = None
        self.task_id = None
        self.deadline = None
        self.last_beat = None

    @property
    def busy(self) -> bool:
        return self.index is not None

    def kill(self) -> None:
        """SIGKILL the process and release the pipe (crash/hang retirement)."""
        try:
            self.proc.kill()
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Ask the worker to exit cleanly (shutdown path)."""
        try:
            self.conn.send(("stop",))
        except (OSError, ValueError, BrokenPipeError):
            pass


class SupervisedProcessExecutor:
    """Process pool with heartbeats, deadlines, respawn and quarantine.

    Drop-in for the executor contract (``map_ordered``/``submit``/
    ``shutdown``); ``get_executor("supervised")`` builds one with
    defaults.  Knobs:

    - ``retry_policy`` — re-dispatch budget for *lost* (crashed/hung)
      tasks; ``max_attempts`` counts the first dispatch.  Deterministic
      backoff comes from the policy, keyed by ``(seed, task index,
      attempt)``.
    - ``task_deadline`` — seconds each dispatch may run before the worker
      is declared hung and killed (``None`` disables; hangs are then only
      caught by heartbeat loss).
    - ``heartbeat_interval``/``heartbeat_misses`` — a busy worker missing
      this many beats in a row is treated as hung even without a deadline
      (catches SIGSTOP-style wedges).
    - ``chaos`` — a :class:`~repro.resilience.chaos.ChaosProfile`; the
      supervisor draws a ticket per dispatch and ships it to the worker.
    - ``events`` — the :class:`~repro.resilience.events.EventLog` that
      receives supervision events (a fresh private log by default).
    """

    kind = "supervised"

    def __init__(
        self,
        workers: int | None = None,
        *,
        retry_policy: RetryPolicy | None = None,
        task_deadline: float | None = None,
        heartbeat_interval: float = 0.1,
        heartbeat_misses: int = 50,
        chaos=None,
        seed: int = 0,
        events: EventLog | None = None,
    ):
        from repro.parallel.executor import _default_workers

        workers = _default_workers() if workers is None else int(workers)
        if workers < 1:
            raise ConfigurationError("executor workers must be >= 1")
        if heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be > 0")
        if heartbeat_misses < 1:
            raise ConfigurationError("heartbeat_misses must be >= 1")
        if task_deadline is not None and task_deadline <= 0:
            raise ConfigurationError("task_deadline must be > 0 (or None)")
        self.workers = workers
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.task_deadline = None if task_deadline is None else float(task_deadline)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_misses = int(heartbeat_misses)
        self.chaos = chaos
        self.seed = int(seed)
        self.events = events if events is not None else EventLog()
        self.stats = {
            "crashes": 0,
            "hangs": 0,
            "respawns": 0,
            "poisoned": 0,
            "retries": 0,
            "respawn_seconds": [],
        }
        self._ctx = multiprocessing.get_context()
        self._procs: list = []
        self._task_counter = 0

    # -- pool lifecycle ----------------------------------------------------------

    def _spawn(self) -> _Worker:
        return _Worker(self._ctx, self.heartbeat_interval)

    def _ensure_pool(self) -> None:
        while len(self._procs) < self.workers:
            self._procs.append(self._spawn())

    def _respawn(self, worker: _Worker) -> _Worker:
        """Retire ``worker`` (SIGKILL + join) and start a replacement."""
        t0 = monotonic()
        worker.kill()
        replacement = self._spawn()
        self._procs[self._procs.index(worker)] = replacement
        self.stats["respawns"] += 1
        self.stats["respawn_seconds"].append(monotonic() - t0)
        telemetry.count(metric.FLEET_WORKER_RESPAWNS)
        telemetry.observe(metric.FLEET_RESPAWN_SECONDS, monotonic() - t0)
        self.events.record(
            EventKind.WORKER_RESPAWN,
            "fleet",
            f"replacement worker started (pid {replacement.proc.pid})",
        )
        return replacement

    def shutdown(self) -> None:
        for worker in self._procs:
            worker.stop()
        for worker in self._procs:
            worker.proc.join(timeout=2.0)
            if worker.proc.exitcode is None:
                worker.kill()
            else:
                try:
                    worker.conn.close()
                except OSError:
                    pass
        self._procs = []

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False

    # -- the executor contract ---------------------------------------------------

    def map_ordered(self, fn, payloads, progress=None) -> list:
        """Deterministic ordered map; lost tasks raise after the budget.

        Task exceptions and exhausted crash/hang budgets travel as
        :class:`TaskFailure` values, so the earliest-*submitted* failure
        is the one that raises — same rule as every other backend.
        """
        outcomes = self._run(fn, payloads, progress=progress, poison=False)
        return ordered_merge(list(enumerate(outcomes)), len(outcomes))

    def map_supervised(self, fn, payloads, progress=None) -> list:
        """Ordered map that degrades instead of raising.

        Every lost or failing task comes back as a :class:`PoisonedTask`
        in its submission slot; all other slots hold real results.
        ``progress`` sees each outcome — including poisonings — in
        completion order (the run journal hooks in here).
        """
        return self._run(fn, payloads, progress=progress, poison=True)

    def submit(self, fn, *args):
        """Future-shaped escape hatch (lazy, inline).

        Speculative consumers (the MINLP sibling solves) manage their own
        thread pools; under supervision, speculation degrades to the
        serial semantics rather than bypassing the supervisor.
        """
        from repro.parallel.executor import _LazyResult

        return _LazyResult(fn, args)

    # -- supervisor loop ---------------------------------------------------------

    def _dispatch(self, worker: _Worker, fn, payload, index: int, attempt: int):
        ticket = None
        if self.chaos is not None and getattr(self.chaos, "active", False):
            ticket = self.chaos.ticket(self.seed, index, attempt)
        self._task_counter += 1
        worker.index = index
        worker.attempt = attempt
        worker.task_id = self._task_counter
        worker.deadline = (
            Deadline(self.task_deadline) if self.task_deadline is not None else None
        )
        worker.last_beat = monotonic()
        worker.conn.send(("task", worker.task_id, fn, payload, ticket))

    def _run(self, fn, payloads, *, progress, poison) -> list:
        payloads = list(payloads)
        if not payloads:
            return []
        self._ensure_pool()
        policy = self.retry_policy
        queue: deque = deque((index, 1) for index in range(len(payloads)))
        slots: list = [None] * len(payloads)
        done: list = [False] * len(payloads)
        # Per-task telemetry deltas shipped back by workers, held in
        # submission slots and merged in submission order after the run —
        # the FamilyDelta discipline, so aggregated metrics are independent
        # of completion order and worker count.
        deltas: list = [None] * len(payloads)
        remaining = len(payloads)

        def finish(index: int, outcome) -> None:
            nonlocal remaining
            slots[index] = outcome
            done[index] = True
            remaining -= 1
            if progress is not None and not isinstance(outcome, TaskFailure):
                progress(index, outcome)

        def task_failed(index: int, attempt: int, exc: BaseException) -> None:
            """The task body raised: deterministic, no point retrying."""
            if poison:
                self.stats["poisoned"] += 1
                telemetry.count(metric.FLEET_TASKS_POISONED, reason="error")
                outcome = PoisonedTask(
                    index, attempt, "error", f"{type(exc).__name__}: {exc}"
                )
                self.events.record(
                    EventKind.TASK_POISONED, "fleet", outcome.describe(),
                    attempt=attempt,
                )
                finish(index, outcome)
            else:
                finish(index, TaskFailure(exc))

        def lost(worker: _Worker, reason: str, detail: str) -> None:
            """A busy worker crashed or hung: respawn, retry or quarantine."""
            index, attempt = worker.index, worker.attempt
            kind = EventKind.WORKER_CRASH if reason == "crash" else EventKind.WORKER_HANG
            self.stats["crashes" if reason == "crash" else "hangs"] += 1
            telemetry.count(
                metric.FLEET_WORKER_CRASHES if reason == "crash"
                else metric.FLEET_WORKER_HANGS
            )
            self.events.record(
                kind, "fleet",
                f"task {index} (attempt {attempt}/{policy.max_attempts}): {detail}",
                attempt=attempt,
            )
            self._respawn(worker)
            if attempt < policy.max_attempts:
                self.stats["retries"] += 1
                telemetry.count(metric.FLEET_TASK_RETRIES)
                policy.pause(policy.delay_for(attempt, self.seed, "fleet", str(index)))
                queue.append((index, attempt + 1))
                return
            message = (
                f"task {index} lost to worker {reason} "
                f"{attempt} time{'s' if attempt != 1 else ''}: {detail}"
            )
            if poison:
                self.stats["poisoned"] += 1
                telemetry.count(metric.FLEET_TASKS_POISONED, reason=reason)
                outcome = PoisonedTask(index, attempt, reason, detail)
                self.events.record(
                    EventKind.TASK_POISONED, "fleet", outcome.describe(),
                    attempt=attempt,
                )
                finish(index, outcome)
            else:
                error_cls = WorkerCrashError if reason == "crash" else WorkerHangError
                finish(index, TaskFailure(error_cls(message, attempts=attempt)))

        stale_after = self.heartbeat_interval * self.heartbeat_misses
        while remaining > 0:
            for worker in self._procs:
                if not worker.busy and queue:
                    index, attempt = queue.popleft()
                    try:
                        self._dispatch(worker, fn, payloads[index], index, attempt)
                    except (OSError, ValueError, BrokenPipeError) as exc:
                        worker.index, worker.attempt = index, attempt
                        lost(worker, "crash", f"dispatch failed: {exc}")
            busy = [worker for worker in self._procs if worker.busy]
            if not busy:
                continue
            ready = set(
                _connection_wait(
                    [worker.conn for worker in busy],
                    timeout=self.heartbeat_interval,
                )
            )
            now = monotonic()
            for worker in busy:
                if worker.conn in ready:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        lost(
                            worker, "crash",
                            f"worker pid {worker.proc.pid} died "
                            f"(exit code {worker.proc.exitcode})",
                        )
                        continue
                    if message[0] == "hb":
                        if message[1] == worker.task_id:
                            if worker.last_beat is not None:
                                telemetry.observe(
                                    metric.FLEET_HEARTBEAT_GAP_SECONDS,
                                    now - worker.last_beat,
                                )
                            worker.last_beat = now
                    elif message[0] == "done":
                        task_id, (tag, value) = message[1], message[2]
                        if task_id != worker.task_id:
                            continue  # stale echo from a superseded dispatch
                        index, attempt = worker.index, worker.attempt
                        worker.clear()
                        if len(message) > 3:
                            deltas[index] = message[3]
                        if tag == "ok":
                            finish(index, value)
                        else:
                            task_failed(index, attempt, value)
                    continue
                if worker.proc.exitcode is not None:
                    lost(
                        worker, "crash",
                        f"worker pid {worker.proc.pid} exited with code "
                        f"{worker.proc.exitcode}",
                    )
                elif worker.deadline is not None and worker.deadline.expired():
                    lost(
                        worker, "hang",
                        f"task deadline of {self.task_deadline:g}s expired",
                    )
                elif worker.last_beat is not None and now - worker.last_beat > stale_after:
                    lost(
                        worker, "hang",
                        f"no heartbeat for {now - worker.last_beat:.1f}s "
                        f"({self.heartbeat_misses} beats missed)",
                    )
        for delta in deltas:
            if delta is not None:
                telemetry.merge_delta(delta)
                telemetry.count(metric.FLEET_WORKER_DELTAS)
        return slots
