"""Command-line entry point (the paper's NEOS-pipeline stand-in)."""

from repro.pipeline.cli import main

__all__ = ["main"]
