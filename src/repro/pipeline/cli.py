"""``hslb`` / ``python -m repro`` command-line interface.

The paper wired HSLB into CESM's run scripts via a Python script that
shipped AMPL models to a NEOS server; this CLI is the local equivalent:

    hslb list                                  # experiment catalogue
    hslb exp t3-1                              # reproduce one table/figure
    hslb exp --all --journal run.jsonl         # crash-safe fleet run
    hslb exp resume --journal run.jsonl        # continue after a hard kill
    hslb exp status --journal run.jsonl        # inspect a run journal
    hslb tune --resolution 1deg --nodes 128    # run the 4-step pipeline
    hslb ampl --resolution 1deg --nodes 128    # print the layout model
    hslb serve --port 7461                     # tuning-as-a-service daemon
    hslb call solve --spec point.json          # ask a running service
    hslb stats --port 7461                     # render a service's statistics
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hslb",
        description="Heuristic static load balancing for coupled climate "
        "models (IPDPSW 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    p_exp = sub.add_parser("exp", help="run one experiment by id (or --all)")
    p_exp.add_argument(
        "id",
        nargs="?",
        help="experiment id (see 'hslb list'), or the special words "
        "'resume' / 'status' operating on --journal",
    )
    p_exp.add_argument("--all", action="store_true", dest="run_all",
                       help="run every registered experiment in order")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="save each finished cell (keyed by its spec hash) and resume "
        "an interrupted batch by replaying only the missing cells",
    )
    fleet = p_exp.add_argument_group("crash-safe fleet execution")
    fleet.add_argument(
        "--journal",
        metavar="FILE",
        help="append every cell start/finish to an fsync'd run journal; "
        "'hslb exp resume --journal FILE' recovers a killed run from it",
    )
    fleet.add_argument(
        "--supervised",
        action="store_true",
        help="run cells under the supervised process pool (crashed/hung "
        "workers respawned, lost cells retried, exhausted cells "
        "quarantined instead of failing the run)",
    )
    fleet.add_argument(
        "--task-deadline",
        type=float,
        metavar="SECONDS",
        help="per-cell wall-clock budget under --supervised; a cell past "
        "it is treated as hung and its worker killed",
    )
    fleet.add_argument(
        "--max-retries",
        type=int,
        metavar="N",
        help="dispatch attempts per lost cell under --supervised before "
        "quarantine (default: 4)",
    )
    fleet.add_argument(
        "--chaos",
        metavar="SPEC",
        help="inject deterministic worker faults under --supervised, e.g. "
        "'kill=0.3,hang=0.1,hang_s=5' (testing the fault path)",
    )
    _add_parallel_args(p_exp)

    p_tune = sub.add_parser("tune", help="run the 4-step HSLB pipeline")
    p_tune.add_argument(
        "--spec",
        metavar="FILE",
        help="run the tuning request described by a TuneSpec JSON file "
        "(see 'hslb spec dump'); replaces --resolution/--nodes",
    )
    p_tune.add_argument("--resolution", choices=("1deg", "8th"))
    p_tune.add_argument("--nodes", type=int)
    p_tune.add_argument("--layout", type=int, default=1, choices=(1, 2, 3))
    p_tune.add_argument("--unconstrained-ocean", action="store_true")
    p_tune.add_argument("--points", type=int, default=5,
                        help="benchmark node counts per component")
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument(
        "--method", choices=("lpnlp", "bnb", "oracle"), default="lpnlp"
    )
    p_tune.add_argument(
        "--reuse",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="thread a cross-solve reuse family (warm cut pool, root FBBT "
        "presolve) through the MINLP solve; results are bit-identical to "
        "a cold solve (default: off for this single-solve command)",
    )
    _add_resilience_args(p_tune)
    _add_parallel_args(p_tune)

    p_sweep = sub.add_parser(
        "sweep",
        help="what-if sweep: optimally balance a layout at several job "
        "sizes and recommend one (paper Sec. IV-C)",
    )
    p_sweep.add_argument("--resolution", choices=("1deg", "8th"), required=True)
    p_sweep.add_argument(
        "--nodes", type=int, nargs="+", required=True,
        help="candidate total node counts",
    )
    p_sweep.add_argument("--layout", type=int, default=1, choices=(1, 2, 3))
    p_sweep.add_argument("--unconstrained-ocean", action="store_true")
    p_sweep.add_argument("--points", type=int, default=5,
                         help="benchmark node counts per component")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--method", choices=("lpnlp", "bnb", "oracle"), default="lpnlp"
    )
    p_sweep.add_argument(
        "--criterion", choices=("cost_efficient", "fastest"),
        default="cost_efficient",
    )
    p_sweep.add_argument(
        "--reuse",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the candidate solves as one cross-solve reuse family "
        "(default: on for this multi-solve command; results are "
        "bit-identical either way)",
    )
    _add_parallel_args(p_sweep)

    p_ampl = sub.add_parser("ampl", help="print the Table I model as AMPL")
    p_ampl.add_argument("--resolution", choices=("1deg", "8th"), required=True)
    p_ampl.add_argument("--nodes", type=int, required=True)
    p_ampl.add_argument("--layout", type=int, default=1, choices=(1, 2, 3))
    p_ampl.add_argument("--unconstrained-ocean", action="store_true")
    p_ampl.add_argument("--seed", type=int, default=0)

    p_gather = sub.add_parser(
        "gather", help="run benchmark sweeps and save them as JSON"
    )
    p_gather.add_argument("--resolution", choices=("1deg", "8th"), required=True)
    p_gather.add_argument("--nodes", type=int, required=True)
    p_gather.add_argument("--points", type=int, default=5)
    p_gather.add_argument("--seed", type=int, default=0)
    p_gather.add_argument("--out", required=True, help="output JSON path")
    _add_resilience_args(p_gather)
    _add_parallel_args(p_gather)

    p_fit = sub.add_parser(
        "fit", help="fit performance models from saved benchmarks"
    )
    p_fit.add_argument("--benchmarks", required=True, help="input JSON path")
    p_fit.add_argument("--out", required=True, help="output JSON path")

    p_solve = sub.add_parser(
        "solve",
        help="solve the layout MINLP from saved fits (skips gathering, "
        "per paper Sec. III-F)",
    )
    p_solve.add_argument("--fits", required=True, help="fits JSON path")
    p_solve.add_argument("--resolution", choices=("1deg", "8th"), required=True)
    p_solve.add_argument("--nodes", type=int, required=True)
    p_solve.add_argument("--layout", type=int, default=1, choices=(1, 2, 3))
    p_solve.add_argument("--unconstrained-ocean", action="store_true")
    p_solve.add_argument(
        "--method", choices=("lpnlp", "bnb", "oracle"), default="lpnlp"
    )

    p_decomp = sub.add_parser(
        "decomp",
        help="recommend CICE decompositions per task count (ML extension)",
    )
    p_decomp.add_argument("--resolution", choices=("1deg", "8th"), default="1deg")
    p_decomp.add_argument("tasks", type=int, nargs="+", help="MPI task counts")
    p_decomp.add_argument("--seed", type=int, default=0)

    p_spec = sub.add_parser(
        "spec", help="dump and inspect serializable problem specs"
    )
    spec_sub = p_spec.add_subparsers(dest="spec_command", required=True)
    p_dump = spec_sub.add_parser(
        "dump",
        help="describe a tuning request as a TuneSpec JSON file "
        "(replayable anywhere via 'hslb tune --spec')",
    )
    p_dump.add_argument("--resolution", choices=("1deg", "8th"), required=True)
    p_dump.add_argument("--nodes", type=int, required=True)
    p_dump.add_argument("--layout", type=int, default=1, choices=(1, 2, 3))
    p_dump.add_argument("--unconstrained-ocean", action="store_true")
    p_dump.add_argument("--points", type=int, default=5)
    p_dump.add_argument("--seed", type=int, default=0)
    p_dump.add_argument(
        "--method", choices=("lpnlp", "bnb", "oracle"), default="lpnlp"
    )
    p_dump.add_argument(
        "--reuse", action=argparse.BooleanOptionalAction, default=False
    )
    p_dump.add_argument(
        "--with-curves",
        action="store_true",
        help="gather+fit now and pin the fitted curves into the spec, so "
        "replays skip measurement entirely (fully deterministic solves)",
    )
    p_dump.add_argument("--out", metavar="FILE", help="write here (default: stdout)")
    _add_resilience_args(p_dump)
    p_key = spec_sub.add_parser(
        "key", help="print a spec file's structural hash (spec_key)"
    )
    p_key.add_argument("file", help="spec JSON path")

    p_serve = sub.add_parser(
        "serve",
        help="run the tuning service daemon (tiered cache, batching, "
        "admission control)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7461,
                         help="TCP port (0 binds an ephemeral one)")
    p_serve.add_argument(
        "--backend", choices=("serial", "supervised"), default="serial",
        help="solve dispatch: inline on the solver thread, or a supervised "
        "process pool with crash/hang recovery",
    )
    p_serve.add_argument("--workers", type=int, default=None, metavar="N",
                         help="worker processes under --backend supervised")
    p_serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="admission bound on in-flight solve requests; arrivals past "
        "it get a typed 'rejected' response (default: 64)",
    )
    p_serve.add_argument(
        "--batch-window", type=float, default=0.02, metavar="SECONDS",
        help="how long to hold a request so compatible ones can join its "
        "batched family solve (default: 0.02)",
    )
    p_serve.add_argument("--max-batch", type=int, default=16, metavar="N",
                         help="largest batched family solve (default: 16)")
    p_serve.add_argument("--exact-capacity", type=int, default=4096,
                         metavar="N", help="exact-tier LRU entries")
    p_serve.add_argument("--warm-capacity", type=int, default=32, metavar="N",
                         help="warm-tier LRU channels (one family each)")
    p_serve.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline applied when a request names none",
    )
    p_serve.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="per-solve budget under --backend supervised; a solve past it "
        "is treated as hung and its worker killed",
    )
    p_serve.add_argument(
        "--max-retries", type=int, default=4, metavar="N",
        help="dispatch attempts per lost solve before the request is "
        "answered 'poisoned' (default: 4)",
    )
    p_serve.add_argument(
        "--chaos", metavar="SPEC",
        help="inject deterministic worker faults under --backend "
        "supervised, e.g. 'kill=0.3,hang=0.1,hang_s=5'",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--allow-shutdown", action="store_true",
        help="honor client 'shutdown' requests (off by default)",
    )

    p_call = sub.add_parser(
        "call", help="send one request to a running tuning service"
    )
    p_call.add_argument(
        "what", choices=("solve", "tune", "ping", "stats", "shutdown"),
        help="request kind; 'solve' sends a SolvePointSpec file, 'tune' a "
        "TuneSpec file (see 'hslb spec dump')",
    )
    p_call.add_argument("--spec", metavar="FILE",
                        help="spec JSON path (for 'solve' and 'tune')")
    p_call.add_argument("--host", default="127.0.0.1")
    p_call.add_argument("--port", type=int, default=7461)
    p_call.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS", help="per-request deadline")
    p_call.add_argument("--timeout", type=float, default=300.0,
                        metavar="SECONDS", help="client socket timeout")
    p_call.add_argument("--client-id", default="cli", metavar="ID")

    p_stats = sub.add_parser(
        "stats",
        help="fetch a running service's statistics and render them "
        "(tier hit rates, batch sizes, worker supervision, telemetry)",
    )
    p_stats.add_argument("--host", default="127.0.0.1")
    p_stats.add_argument("--port", type=int, default=7461)
    p_stats.add_argument("--timeout", type=float, default=30.0,
                         metavar="SECONDS", help="client socket timeout")
    p_stats.add_argument("--client-id", default="cli", metavar="ID")
    fmt = p_stats.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="print the raw stats payload as JSON")
    fmt.add_argument(
        "--prometheus", action="store_true",
        help="print the daemon's telemetry snapshot in Prometheus text "
        "exposition format (daemon must run with REPRO_TELEMETRY=1)",
    )
    return parser


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--fault-profile",
        metavar="SPEC",
        help="inject deterministic faults, e.g. "
        "'crash=0.2,outlier=0.05,mult=10,hot.atm=0.3'",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        metavar="N",
        help="benchmark retry attempts per point (enables the resilient path)",
    )
    group.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget for gather+solve; past it the pipeline "
        "degrades instead of starting new work",
    )


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    from repro.parallel import EXECUTOR_KINDS

    group = parser.add_argument_group("parallel execution")
    group.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default="serial",
        help="execution backend; results are bit-identical across backends "
        "(default: serial)",
    )
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for thread/process backends, and speculative "
        "MINLP node solves when > 1 (default: CPU count)",
    )


def _parallel_kwargs(args) -> dict:
    """``executor``/``workers`` keyword arguments from the parallel flags."""
    kwargs: dict = {}
    if args.executor != "serial":
        kwargs["executor"] = args.executor
    if args.workers is not None:
        kwargs["workers"] = args.workers
    return kwargs


def _resilience_kwargs(args) -> dict:
    """Pipeline/gather keyword arguments from the resilience CLI flags."""
    from repro.resilience import FaultProfile, RetryPolicy

    kwargs: dict = {}
    if args.fault_profile:
        kwargs["fault_profile"] = FaultProfile.parse(args.fault_profile)
    if args.max_retries is not None:
        kwargs["retry_policy"] = RetryPolicy(max_attempts=args.max_retries)
    if args.deadline is not None:
        kwargs["deadline"] = args.deadline
    return kwargs


def _print_event_summary(events) -> None:
    if events:
        print()
        print(events.summary())


def cmd_list() -> int:
    from repro.experiments import EXPERIMENTS

    width = max(len(k) for k in EXPERIMENTS)
    for key, (description, _) in EXPERIMENTS.items():
        print(f"{key.ljust(width)}  {description}")
    return 0


def _fleet_kwargs(args) -> dict:
    """``run_experiments`` keyword arguments from the fleet CLI flags."""
    kwargs: dict = {}
    if args.journal:
        kwargs["journal"] = args.journal
    if args.supervised:
        kwargs["supervised"] = True
    if args.task_deadline is not None:
        kwargs["task_deadline"] = args.task_deadline
    if args.max_retries is not None:
        from repro.resilience import RetryPolicy

        kwargs["retry_policy"] = RetryPolicy(max_attempts=args.max_retries)
    if args.chaos:
        from repro.resilience import ChaosProfile

        kwargs["chaos"] = ChaosProfile.parse(args.chaos)
    return kwargs


def _print_rollup(rendered) -> None:
    from repro.experiments import EXPERIMENTS

    for key, text in rendered:
        description = EXPERIMENTS[key][0]
        print(f"{'=' * 72}\n[{key}] {description}\n")
        print(text)
        print()


def _exp_status(args) -> int:
    from repro.io.journal import RunJournal

    if not args.journal:
        print("error: 'exp status' needs --journal FILE", file=sys.stderr)
        return 1
    print(RunJournal.read(args.journal).describe())
    return 0


def _exp_resume(args) -> int:
    from repro.experiments import run_experiments
    from repro.io.journal import RunJournal
    from repro.resilience import EventLog

    if not args.journal:
        print("error: 'exp resume' needs --journal FILE", file=sys.stderr)
        return 1
    state = RunJournal.read(args.journal)
    if state.plan is None:
        print(
            f"error: journal {args.journal} has no plan record "
            "(was the run ever started?)",
            file=sys.stderr,
        )
        return 1
    events = EventLog()
    kwargs = _fleet_kwargs(args)
    kwargs["journal"] = args.journal
    rendered = run_experiments(
        state.plan["experiment_ids"],
        seed=state.plan["seed"],
        checkpoint_dir=args.checkpoint_dir,
        events=events,
        **kwargs,
        **_parallel_kwargs(args),
    )
    _print_rollup(rendered)
    _print_event_summary(events)
    return 0


def cmd_exp(args) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment, run_experiments
    from repro.resilience import EventLog

    if args.id == "status":
        return _exp_status(args)
    if args.id == "resume":
        return _exp_resume(args)
    fleet_kwargs = _fleet_kwargs(args)
    if args.run_all:
        events = EventLog()
        rendered = run_experiments(
            list(EXPERIMENTS),
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            events=events,
            **fleet_kwargs,
            **_parallel_kwargs(args),
        )
        _print_rollup(rendered)
        _print_event_summary(events)
        return 0
    if args.id is None:
        print("error: give an experiment id or --all", file=sys.stderr)
        return 1
    if args.checkpoint_dir is not None or fleet_kwargs:
        events = EventLog()
        rendered = run_experiments(
            [args.id],
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            events=events,
            **fleet_kwargs,
            **_parallel_kwargs(args),
        )
        print(rendered[0][1])
        _print_event_summary(events)
        return 0
    result = run_experiment(args.id, seed=args.seed)
    print(result.render())
    return 0


def cmd_tune(args) -> int:
    from repro.cesm import make_case
    from repro.hslb import HSLBPipeline

    if args.spec is not None:
        from repro.io import load_spec
        from repro.spec import TuneSpec

        spec = load_spec(args.spec)
        if not isinstance(spec, TuneSpec):
            print(
                f"error: {args.spec} is a {type(spec).__name__}, not a TuneSpec",
                file=sys.stderr,
            )
            return 1
        pipeline = HSLBPipeline.from_spec(spec, **_parallel_kwargs(args))
        result = pipeline.run(
            data=spec.benchmark_data(), fits=spec.pinned_fits()
        )
    else:
        if args.resolution is None or args.nodes is None:
            print(
                "error: give --spec FILE or both --resolution and --nodes",
                file=sys.stderr,
            )
            return 1
        case = make_case(
            args.resolution,
            args.nodes,
            layout=args.layout,
            unconstrained_ocean=args.unconstrained_ocean,
            seed=args.seed,
        )
        result = HSLBPipeline(
            case, points=args.points, method=args.method, reuse=args.reuse,
            **_resilience_kwargs(args), **_parallel_kwargs(args),
        ).run()
    print(result.report())  # includes the event-log summary when non-empty
    r2 = ", ".join(
        f"{c.value}={v:.4f}" for c, v in result.fit_r_squared().items()
    )
    print(f"\nfit R^2: {r2}")
    if result.solve.solver_result is not None:
        sr = result.solve.solver_result
        print(
            f"solver: {sr.nodes} B&B nodes, {sr.cuts_added} OA cuts, "
            f"{sr.nlp_solves} NLP solves, {sr.wall_time:.2f} s"
        )
    return 0


def cmd_sweep(args) -> int:
    from repro.analysis import optimal_node_count, solve_layout_points
    from repro.cesm import ComponentId, make_case
    from repro.hslb import HSLBPipeline
    from repro.hslb.report import format_reuse_counters
    from repro.reuse import SolveFamily
    from repro.util.tables import TextTable

    comps = (ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND)
    case = make_case(
        args.resolution,
        max(args.nodes),
        layout=args.layout,
        unconstrained_ocean=args.unconstrained_ocean,
        seed=args.seed,
    )
    pipeline = HSLBPipeline(case, points=args.points)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: case.component_bounds(c) for c in comps}

    family = (
        SolveFamily.for_counts(args.nodes)
        if (args.reuse and args.method != "oracle")
        else None
    )
    points = solve_layout_points(
        perf,
        bounds,
        sorted({int(n) for n in args.nodes}),
        layout=case.layout,
        ocn_allowed=case.ocean_allowed(),
        atm_allowed=case.atm_allowed(),
        method=args.method,
        reuse=family if family is not None else False,
        **_parallel_kwargs(args),
    )
    table = TextTable(
        ["total nodes", "best total, sec"]
        + (["B&B nodes"] if args.method != "oracle" else []),
        title=f"what-if sweep ({case.resolution}, layout {case.layout.value}, "
        f"{args.method})",
    )
    for p in points:
        row = [p.total_nodes, f"{p.makespan:.3f}"]
        if args.method != "oracle":
            row.append(p.solver_result.nodes)
        table.add_row(row)
    print(table.render())

    rec = optimal_node_count(
        perf, bounds, [p.total_nodes for p in points],
        criterion=args.criterion, points=points,
    )
    print(
        f"\nrecommended ({rec.criterion}): {rec.total_nodes} nodes, "
        f"{rec.total_time:.3f} s (marginal efficiency {rec.efficiency:.3f})"
    )
    if family is not None:
        reuse_line = format_reuse_counters(family.counters)
        if reuse_line:
            print(reuse_line)
    return 0


def cmd_ampl(args) -> int:
    from repro.cesm import make_case
    from repro.hslb import HSLBPipeline
    from repro.hslb.layout_models import layout_model_for_case
    from repro.model import to_ampl

    case = make_case(
        args.resolution,
        args.nodes,
        layout=args.layout,
        unconstrained_ocean=args.unconstrained_ocean,
        seed=args.seed,
    )
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    print(to_ampl(layout_model_for_case(case, fits)))
    return 0


def cmd_gather(args) -> int:
    from repro.cesm import CoupledRunSimulator, make_case
    from repro.hslb import gather_benchmarks
    from repro.io import save_benchmarks
    from repro.resilience import EventLog, FaultySimulator

    case = make_case(args.resolution, args.nodes, seed=args.seed)
    simulator = CoupledRunSimulator(case)
    resilience = _resilience_kwargs(args)
    profile = resilience.pop("fault_profile", None)
    if profile is not None and profile.active:
        simulator = FaultySimulator(simulator, profile)
    events = EventLog()
    parallel = _parallel_kwargs(args)
    if profile is not None or resilience:
        data = gather_benchmarks(
            simulator,
            points=args.points,
            policy=resilience.get("retry_policy"),
            events=events,
            deadline=resilience.get("deadline"),
            **parallel,
        )
    else:
        data = gather_benchmarks(simulator, points=args.points, **parallel)
    save_benchmarks(
        args.out,
        data,
        meta={
            "resolution": args.resolution,
            "total_nodes": args.nodes,
            "seed": args.seed,
        },
    )
    counts = ", ".join(
        f"{c.value}:{data.point_count(c)}" for c in data.components()
    )
    print(f"wrote {args.out} ({counts} points)")
    _print_event_summary(events)
    return 0


def cmd_fit(args) -> int:
    from repro.hslb import fit_components
    from repro.io import load_benchmarks, save_fits

    data = load_benchmarks(args.benchmarks)
    fits = fit_components(data)
    save_fits(args.out, fits)
    for comp, fit in fits.items():
        a, b, c, d = fit.model.as_tuple()
        print(
            f"{comp.value}: T(n) = {a:.6g}/n + {b:.3g} n^{c:.3g} + {d:.6g}  "
            f"(R^2 = {fit.r_squared:.4f})"
        )
    print(f"wrote {args.out}")
    return 0


def cmd_solve(args) -> int:
    from repro.cesm import make_case
    from repro.hslb import solve_allocation
    from repro.io import load_fits

    case = make_case(
        args.resolution,
        args.nodes,
        layout=args.layout,
        unconstrained_ocean=args.unconstrained_ocean,
    )
    fits = load_fits(args.fits)
    out = solve_allocation(case, fits, method=args.method)
    for comp, n in out.allocation.items():
        print(f"n_{comp.value} = {n}  (predicted {out.predicted_times[comp]:.3f} s)")
    print(f"predicted total: {out.predicted_total:.3f} s")
    return 0




def cmd_decomp(args) -> int:
    from repro.cesm.decomp import GX1, TX0_1, default_strategy, imbalance_factor
    from repro.mlice import train_selector
    from repro.util.tables import TextTable

    grid = GX1 if args.resolution == "1deg" else TX0_1
    selector = train_selector(grid, n=400, seed=args.seed)
    table = TextTable(
        ["tasks", "default", "recommended", "default factor", "recommended factor"],
        title=f"CICE decomposition advice ({args.resolution} ice grid)",
    )
    for tasks in args.tasks:
        d = default_strategy(tasks)
        s = selector.select(tasks)
        table.add_row([
            tasks, d.value, s.value,
            f"{imbalance_factor(grid, tasks, d):.3f}",
            f"{imbalance_factor(grid, tasks, s):.3f}",
        ])
    print(table.render())
    return 0


def cmd_spec(args) -> int:
    if args.spec_command == "key":
        from repro.io import load_spec

        print(load_spec(args.file).spec_key())
        return 0

    # dump
    from repro.cesm import make_case
    from repro.hslb import HSLBPipeline

    case = make_case(
        args.resolution,
        args.nodes,
        layout=args.layout,
        unconstrained_ocean=args.unconstrained_ocean,
        seed=args.seed,
    )
    pipeline = HSLBPipeline(
        case, points=args.points, method=args.method, reuse=args.reuse,
        **_resilience_kwargs(args),
    )
    curves = None
    if args.with_curves:
        curves = pipeline.fit(pipeline.gather())
    spec = pipeline.to_spec(curves=curves)
    if args.out:
        from repro.io import save_spec

        save_spec(args.out, spec)
        print(f"wrote {args.out} ({spec.spec_key()})")
    else:
        print(spec.to_json())
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.resilience import ChaosProfile
    from repro.service import ServiceConfig, TuningDaemon

    config = ServiceConfig(
        backend=args.backend,
        workers=args.workers,
        max_queue=args.max_queue,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        exact_capacity=args.exact_capacity,
        warm_capacity=args.warm_capacity,
        default_deadline=args.default_deadline,
        task_deadline=args.task_deadline,
        max_retries=args.max_retries,
        seed=args.seed,
        chaos=ChaosProfile.parse(args.chaos) if args.chaos else None,
    )
    daemon = TuningDaemon(
        config, host=args.host, port=args.port,
        allow_shutdown=args.allow_shutdown,
    )

    async def run():
        serving = asyncio.create_task(daemon.serve())
        while daemon.address is None and not serving.done():
            await asyncio.sleep(0.01)
        if daemon.address is not None:
            host, port = daemon.address
            print(
                f"hslb service listening on {host}:{port} "
                f"(backend: {config.backend}, max in flight: "
                f"{config.max_queue})",
                flush=True,
            )
        await serving

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\ninterrupted; service stopped")
    return 0


def cmd_call(args) -> int:
    import json

    from repro.service import ServiceClient

    kind_for = {"solve": "solve_point", "tune": "tune"}
    with ServiceClient(
        args.host, args.port, timeout=args.timeout, client_id=args.client_id
    ) as client:
        if args.what in kind_for:
            if not args.spec:
                print(f"error: 'call {args.what}' needs --spec FILE",
                      file=sys.stderr)
                return 1
            from repro.io import load_spec
            from repro.spec import SolvePointSpec, TuneSpec

            spec = load_spec(args.spec)
            expected = SolvePointSpec if args.what == "solve" else TuneSpec
            if not isinstance(spec, expected):
                print(
                    f"error: {args.spec} is a {type(spec).__name__}, not a "
                    f"{expected.__name__}",
                    file=sys.stderr,
                )
                return 1
            sender = (client.solve_point if args.what == "solve"
                      else client.tune)
            response = sender(spec, deadline=args.deadline)
        elif args.what == "ping":
            response = client.ping()
        elif args.what == "stats":
            response = client.call(
                {"kind": "stats", "id": f"{args.client_id}-stats"}
            )
        else:
            response = client.shutdown()
    print(json.dumps(response.to_dict(), indent=2, sort_keys=True))
    return 0 if response.ok else 1


def _render_stats(stats: dict) -> str:
    """Human-readable report for a ``stats`` verb payload."""
    from repro.util.tables import TextTable

    lines = []
    service = stats.get("service") or {}
    lines.append(
        f"backend: {stats.get('backend', '?')}   "
        f"in flight: {service.get('in_flight', '?')}/"
        f"{service.get('max_queue', '?')}   "
        f"events: {stats.get('events', 0)}"
    )

    counters = stats.get("counters") or {}
    requests = counters.get("requests", 0)
    answered = TextTable(["tier", "answered", "rate"], title="request tiers")
    for label, key in (
        ("exact", "exact_hits"),
        ("warm", "warm_hits"),
        ("cold", "cold_solves"),
        ("dedup", "dedup_hits"),
    ):
        count = counters.get(key, 0)
        rate = f"{count / requests:.1%}" if requests else "-"
        answered.add_row([label, count, rate])
    lines.append("")
    lines.append(answered.render())
    shed = ", ".join(
        f"{key}: {counters.get(key, 0)}"
        for key in ("rejected", "expired", "errors", "poisoned")
    )
    lines.append(f"requests: {requests}   {shed}")

    batch_sizes = stats.get("batch_sizes") or {}
    if batch_sizes:
        table = TextTable(["batch size", "dispatches"],
                          title="dispatch-group sizes")
        for size in sorted(batch_sizes, key=int):
            table.add_row([size, batch_sizes[size]])
        lines.append("")
        lines.append(table.render())

    exact = stats.get("exact") or {}
    warm = stats.get("warm") or {}
    lines.append("")
    lines.append(
        f"exact cache: {exact.get('entries', 0)}/{exact.get('capacity', 0)} "
        f"entries, {exact.get('evictions', 0)} evictions"
    )
    lines.append(
        f"warm pools: {warm.get('channels', 0)}/{warm.get('capacity', 0)} "
        f"channels, {warm.get('evictions', 0)} evictions, "
        f"{warm.get('downgrades', 0)} downgrades, "
        f"{warm.get('solves', 0)} solves absorbed"
    )

    supervision = stats.get("supervision")
    if supervision:
        lines.append(
            "workers: "
            + ", ".join(f"{k}: {v}" for k, v in sorted(supervision.items()))
        )

    if stats.get("telemetry") is not None:
        from repro.telemetry import render_report

        lines.append("")
        lines.append(render_report(stats["telemetry"]).rstrip("\n"))
    else:
        lines.append("telemetry: disabled (serve with REPRO_TELEMETRY=1)")
    return "\n".join(lines)


def cmd_stats(args) -> int:
    import json

    from repro.service import ServiceClient

    with ServiceClient(
        args.host, args.port, timeout=args.timeout, client_id=args.client_id
    ) as client:
        stats = client.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    if args.prometheus:
        snapshot = stats.get("telemetry")
        if snapshot is None:
            print(
                "error: daemon is running without telemetry; restart it "
                "with REPRO_TELEMETRY=1 to scrape metrics",
                file=sys.stderr,
            )
            return 1
        from repro.telemetry import to_prometheus

        sys.stdout.write(to_prometheus(snapshot))
        return 0
    print(_render_stats(stats))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": lambda: cmd_list(),
        "exp": lambda: cmd_exp(args),
        "tune": lambda: cmd_tune(args),
        "sweep": lambda: cmd_sweep(args),
        "ampl": lambda: cmd_ampl(args),
        "gather": lambda: cmd_gather(args),
        "fit": lambda: cmd_fit(args),
        "solve": lambda: cmd_solve(args),
        "decomp": lambda: cmd_decomp(args),
        "spec": lambda: cmd_spec(args),
        "serve": lambda: cmd_serve(args),
        "call": lambda: cmd_call(args),
        "stats": lambda: cmd_stats(args),
    }
    try:
        return handlers[args.command]()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
