"""Fault tolerance for the HSLB pipeline.

The paper's step 1 is real 5-day CESM benchmark jobs — jobs that crash, hit
queue timeouts, and return noisy or corrupted timings.  This package makes
the four HSLB stages survive that:

- :mod:`repro.resilience.faults` — :class:`FaultProfile` +
  :class:`FaultySimulator`, deterministic chaos injection over the
  simulator (reproducible via :func:`~repro.util.rng.keyed_rng`).
- :mod:`repro.resilience.retry` — :class:`RetryPolicy` (capped exponential
  backoff with deterministic jitter, per-point and per-sweep budgets) and
  :class:`Deadline` (wall-clock budget polled by the MINLP solvers).
- :mod:`repro.resilience.outliers` — MAD-based rejection of corrupted
  measurements against a robust Theil-Sen trend.
- :mod:`repro.resilience.events` — the typed :class:`EventLog` every
  retry, rejection, fallback and degradation is appended to.
- :mod:`repro.resilience.chaos` — process-level chaos: deterministic
  worker SIGKILLs, hangs, and checkpoint/journal corruption driving the
  kill-matrix CI (see :mod:`repro.parallel.supervised`).

See ``docs/robustness.md`` for the full fault model and semantics.
"""

from repro.resilience.chaos import ChaosProfile, corrupt_file, kill_instant
from repro.resilience.events import Event, EventKind, EventLog
from repro.resilience.faults import FaultProfile, FaultySimulator
from repro.resilience.outliers import mad_scores, worst_outlier
from repro.resilience.retry import Deadline, RetryPolicy

__all__ = [
    "ChaosProfile",
    "corrupt_file",
    "kill_instant",
    "Event",
    "EventKind",
    "EventLog",
    "FaultProfile",
    "FaultySimulator",
    "mad_scores",
    "worst_outlier",
    "Deadline",
    "RetryPolicy",
]
