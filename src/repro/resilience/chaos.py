"""Process-level chaos: deterministic worker kills, hangs, file corruption.

:class:`~repro.resilience.faults.FaultySimulator` injects *measurement*
faults inside a live process; this module injects the failures that kill
the process itself — the kind a fleet-scale experiment run meets on a real
cluster.  Three failure modes, all deterministic by seed:

- **Worker SIGKILL**: the worker kills itself (``SIGKILL``, no cleanup,
  no Python exception) immediately before running a task — exactly what an
  OOM killer or a preempted node looks like from the parent.
- **Worker hang**: the worker sleeps far past its task deadline, like a
  solve stuck in a pathological basin or a job wedged on dead storage.
- **File corruption**: a checkpoint or journal file is truncated, left
  with a torn tail record, or overwritten with garbage — the three shapes
  a hard kill mid-write leaves behind.

Draws come from :func:`~repro.util.rng.keyed_rng` keyed by
``(seed, task index, dispatch attempt)``: a retried task sees a fresh draw
(a respawned worker usually survives), while the whole kill-matrix is a
pure function of ``(seed, ChaosProfile)`` — CI replays the exact same
crashes every run.  The parent draws the ticket and ships it with the
task, so the plan is inspectable (and testable) without any worker.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.util.rng import keyed_rng

__all__ = [
    "ChaosProfile",
    "apply_ticket",
    "kill_instant",
    "corrupt_file",
    "CORRUPTION_MODES",
]


def _as_probability(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"ChaosProfile.{name} must be in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class ChaosProfile:
    """Per-task-dispatch rates for worker-level faults.

    ``kill_probability`` wins over ``hang_probability`` when both fire on
    one draw.  ``hang_seconds`` should comfortably exceed the supervised
    executor's task deadline, or the "hang" is just a slow task.
    """

    kill_probability: float = 0.0
    hang_probability: float = 0.0
    hang_seconds: float = 30.0

    def __post_init__(self):
        for name in ("kill_probability", "hang_probability"):
            object.__setattr__(self, name, _as_probability(name, getattr(self, name)))
        if self.hang_seconds <= 0.0:
            raise ConfigurationError("ChaosProfile.hang_seconds must be > 0")

    @property
    def active(self) -> bool:
        return self.kill_probability > 0.0 or self.hang_probability > 0.0

    def ticket(self, seed: int, index: int, attempt: int):
        """The fault (if any) for dispatch ``attempt`` of task ``index``.

        Returns ``("kill",)``, ``("hang", seconds)`` or ``None``.  A fixed
        draw count per dispatch keeps the stream aligned no matter which
        faults are enabled.
        """
        if not self.active:
            return None
        rng = keyed_rng(int(seed), "chaos", "task", f"{int(index)}:{int(attempt)}")
        u_kill, u_hang = rng.uniform(size=2)
        if u_kill < self.kill_probability:
            return ("kill",)
        if u_hang < self.hang_probability:
            return ("hang", self.hang_seconds)
        return None

    # -- CLI spec parsing --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "ChaosProfile":
        """Build a profile from a ``key=value`` comma list.

        Keys: ``kill``, ``hang`` (probabilities) and ``hang_s`` (seconds),
        e.g. ``kill=0.3,hang=0.1,hang_s=5``.
        """
        aliases = {
            "kill": "kill_probability",
            "hang": "hang_probability",
            "hang_s": "hang_seconds",
        }
        kwargs: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or key not in aliases:
                raise ConfigurationError(
                    f"bad chaos-profile entry {item!r} "
                    f"(expected one of {sorted(aliases)} as key=value)"
                )
            try:
                kwargs[aliases[key]] = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad chaos-profile value {value!r} for {key!r}"
                ) from None
        return cls(**kwargs)

    def describe(self) -> str:
        parts = []
        if self.kill_probability > 0:
            parts.append(f"kill={self.kill_probability:g}")
        if self.hang_probability > 0:
            parts.append(f"hang={self.hang_probability:g}")
            parts.append(f"hang_s={self.hang_seconds:g}")
        return ",".join(parts) if parts else "none"


def apply_ticket(ticket) -> None:
    """Execute a chaos ticket *in the worker process*.

    ``("kill",)`` raises ``SIGKILL`` against the worker itself — no
    cleanup, no exception, the parent sees only a dead process.
    ``("hang", s)`` sleeps, simulating a wedged task.
    """
    if not ticket:
        return
    if ticket[0] == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif ticket[0] == "hang":
        time.sleep(float(ticket[1]))
    else:  # pragma: no cover - future-proofing
        raise ConfigurationError(f"unknown chaos ticket {ticket!r}")


def kill_instant(seed: int, n_cells: int) -> int:
    """The chaos-chosen instant to SIGKILL a fleet run, as a cell count.

    The kill-matrix harness waits until this many cells have *finished*
    (per the journal) and then kills the whole run; ``0`` means "kill as
    soon as the first cell has started".
    """
    if n_cells < 1:
        raise ConfigurationError("kill_instant needs at least one cell")
    rng = keyed_rng(int(seed), "chaos", "kill-instant")
    return int(rng.integers(0, n_cells))


#: Corruption shapes a hard kill mid-write leaves behind.
CORRUPTION_MODES = ("truncate", "torn-tail", "garbage")


def corrupt_file(path, seed: int, mode: str | None = None) -> str:
    """Deterministically damage a JSON/JSONL file in place.

    - ``truncate``: cut the file at a seed-chosen byte offset (a write
      that never finished).
    - ``torn-tail``: append half a JSON record with no trailing newline
      (a kill between ``write`` and ``fsync``).
    - ``garbage``: overwrite a seed-chosen span with non-JSON bytes (a
      torn page / bad sector).

    Returns the mode applied (drawn by seed when ``mode`` is ``None``).
    """
    path = Path(path)
    raw = path.read_bytes()
    rng = keyed_rng(int(seed), "chaos", "corrupt", path.name)
    if mode is None:
        mode = CORRUPTION_MODES[int(rng.integers(0, len(CORRUPTION_MODES)))]
    if mode not in CORRUPTION_MODES:
        raise ConfigurationError(
            f"unknown corruption mode {mode!r}; expected one of {CORRUPTION_MODES}"
        )
    if mode == "truncate":
        cut = int(rng.integers(1, max(2, len(raw)))) if raw else 0
        path.write_bytes(raw[:cut])
    elif mode == "torn-tail":
        torn = json.dumps({"op": "finish", "spec_key": "spec:deadbeef"})
        cut = max(1, len(torn) // 2)
        with path.open("ab") as handle:
            handle.write(torn[:cut].encode("utf-8"))
    else:  # garbage
        if not raw:
            path.write_bytes(b"\x00\xff\x00\xff")
        else:
            start = int(rng.integers(0, len(raw)))
            span = int(rng.integers(1, 16))
            path.write_bytes(raw[:start] + b"\x00\xff" * span + raw[start + span:])
    return mode
