"""Structured event log for the fault-tolerant pipeline.

Every retry, rejection, fallback and degradation the resilient pipeline
performs appends a typed :class:`Event` to an :class:`EventLog`.  The log is
carried on :class:`~repro.hslb.solve.SolveOutcome` and
:class:`~repro.hslb.pipeline.HSLBRunResult`, rendered by ``report()`` and
serialized by :mod:`repro.io`.

Events are ordered by a monotonic per-log sequence number rather than wall
timestamps: with a fixed ``(seed, FaultProfile)`` two pipeline runs must
produce *identical* logs, and wall clocks would break that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class EventKind(enum.Enum):
    """What happened.  One member per distinct resilience action."""

    RETRY = "retry"                      # a benchmark attempt failed; retrying
    OUTLIER_REJECTED = "outlier_rejected"  # MAD test rejected a measurement
    REMEASURED = "remeasured"            # a rejected point was measured again
    POINT_REPLACED = "point_replaced"    # neighbor node count substituted
    POINT_DROPPED = "point_dropped"      # point abandoned after all recovery
    GATHER_DEGRADED = "gather_degraded"  # sweep finished with fewer points
    FIT_RETRY = "fit_retry"              # least-squares refit with more starts
    SOLVER_FALLBACK = "solver_fallback"  # MINLP backend failed; next in chain
    BASELINE_FALLBACK = "baseline_fallback"  # proportional last-resort used
    DEADLINE_EXPIRED = "deadline_expired"    # wall-clock budget ran out
    EXECUTE_RETRY = "execute_retry"      # coupled verification run retried
    WORKER_CRASH = "worker_crash"        # supervised worker died holding a task
    WORKER_HANG = "worker_hang"          # task deadline/heartbeat expired; killed
    WORKER_RESPAWN = "worker_respawn"    # replacement worker process started
    TASK_POISONED = "task_poisoned"      # task quarantined after its retry budget
    JOURNAL_RECOVERED = "journal_recovered"  # cell result replayed from the journal
    CHECKPOINT_QUARANTINED = "checkpoint_quarantined"  # bad file moved to *.corrupt
    REQUEST_REJECTED = "request_rejected"    # admission queue full; typed refusal sent
    REQUEST_EXPIRED = "request_expired"      # per-request Deadline ran out in queue
    BATCH_DISPATCHED = "batch_dispatched"    # compatible requests sent as one family solve
    WARM_POOL_EVICTED = "warm_pool_evicted"  # LRU dropped a channel's SolveFamily
    WARM_POOL_DOWNGRADED = "warm_pool_downgraded"  # wide budget spread; unsafe reuse off


@dataclass(frozen=True)
class Event:
    """One resilience action, with enough context to audit it later."""

    seq: int                    # position in the log (0-based, dense)
    kind: EventKind
    stage: str                  # "gather" | "fit" | "solve" | "execute"
    detail: str                 # human-readable one-liner
    component: str | None = None
    attempt: int | None = None
    data: dict = field(default_factory=dict)  # small JSON-safe extras

    def to_dict(self) -> dict:
        out = {
            "seq": self.seq,
            "kind": self.kind.value,
            "stage": self.stage,
            "detail": self.detail,
        }
        if self.component is not None:
            out["component"] = self.component
        if self.attempt is not None:
            out["attempt"] = self.attempt
        if self.data:
            out["data"] = dict(self.data)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        return cls(
            seq=int(payload["seq"]),
            kind=EventKind(payload["kind"]),
            stage=str(payload["stage"]),
            detail=str(payload["detail"]),
            component=payload.get("component"),
            attempt=payload.get("attempt"),
            data=dict(payload.get("data", {})),
        )


class EventLog:
    """Append-only list of :class:`Event` with rendering helpers."""

    def __init__(self, events=()):
        self._events: list = list(events)

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        kind: EventKind,
        stage: str,
        detail: str,
        component: str | None = None,
        attempt: int | None = None,
        **data,
    ) -> Event:
        event = Event(
            seq=len(self._events),
            kind=kind,
            stage=stage,
            detail=detail,
            component=component,
            attempt=attempt,
            data=data,
        )
        self._events.append(event)
        return event

    def extend(self, events) -> None:
        """Append another log's events, renumbering their sequence numbers.

        The parallel gather path records each component's events into a
        worker-local log and merges them back in submission order; after the
        renumber, the merged log is identical to one the serial path would
        have recorded directly.
        """
        for event in events:
            self._events.append(replace(event, seq=len(self._events)))

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, EventLog):
            return NotImplemented
        return self.to_list() == other.to_list()

    def of_kind(self, kind: EventKind) -> list:
        return [e for e in self._events if e.kind is kind]

    def counts(self) -> dict:
        """``{EventKind: count}`` over the log, insertion-ordered."""
        out: dict = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # -- rendering / serialization ---------------------------------------------

    def summary(self, max_lines: int = 12) -> str:
        """Short text block: per-kind counts plus the most recent events."""
        if not self._events:
            return "resilience events: none"
        counts = ", ".join(
            f"{kind.value}={n}" for kind, n in self.counts().items()
        )
        lines = [f"resilience events ({len(self._events)}): {counts}"]
        tail = self._events[-max_lines:]
        if len(self._events) > max_lines:
            lines.append(f"  ... {len(self._events) - max_lines} earlier events")
        for event in tail:
            where = event.stage
            if event.component:
                where += f"/{event.component}"
            lines.append(f"  [{event.seq}] {event.kind.value} ({where}): {event.detail}")
        return "\n".join(lines)

    def to_list(self) -> list:
        return [event.to_dict() for event in self._events]

    @classmethod
    def from_list(cls, payload) -> "EventLog":
        return cls(Event.from_dict(entry) for entry in payload)
