"""Deterministic fault injection over the coupled-run simulator.

:class:`FaultySimulator` wraps a :class:`~repro.cesm.CoupledRunSimulator`
and, per benchmark attempt, draws from ``keyed_rng(seed, "fault", ...)``
whether to crash, time out, corrupt, or inflate the measurement.  The key
includes a per-configuration *attempt counter*, so a retried point sees a
fresh fault draw (jobs resubmitted after a crash usually succeed) while the
whole chaos run remains a pure function of ``(seed, FaultProfile)`` — two
identical pipeline runs replay the exact same faults.

Crashes and timeouts are *raised* (:class:`InjectedCrashError`,
:class:`InjectedTimeoutError`); corruption and outliers come back as bad
values, exactly the two ways a real 5-day CESM benchmark job on Intrepid
failed: aborted in the queue, or finished with garbage in the timing file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cesm.components import ComponentId
from repro.exceptions import (
    ConfigurationError,
    InjectedCrashError,
    InjectedTimeoutError,
)
from repro.util.rng import keyed_rng


def _as_probability(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"FaultProfile.{name} must be in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class FaultProfile:
    """Per-benchmark fault rates driving a :class:`FaultySimulator`.

    ``hot_components`` adds extra crash probability for named components
    (``{"atm": 0.3}``), modeling a component whose executable or node pool
    is particularly flaky.  ``run_crash_probability`` extends the chaos to
    full coupled runs (step 4), off by default so the verification run that
    the acceptance comparison relies on stays clean.
    """

    crash_probability: float = 0.0
    timeout_probability: float = 0.0
    corrupt_probability: float = 0.0
    outlier_probability: float = 0.0
    outlier_multiplier: float = 10.0
    timeout_seconds: float = 300.0
    run_crash_probability: float = 0.0
    hot_components: tuple = field(default_factory=tuple)  # ((comp_value, extra_p),...)

    def __post_init__(self):
        for name in (
            "crash_probability",
            "timeout_probability",
            "corrupt_probability",
            "outlier_probability",
            "run_crash_probability",
        ):
            object.__setattr__(self, name, _as_probability(name, getattr(self, name)))
        if self.outlier_multiplier <= 1.0:
            raise ConfigurationError("FaultProfile.outlier_multiplier must be > 1")
        if self.timeout_seconds <= 0.0:
            raise ConfigurationError("FaultProfile.timeout_seconds must be > 0")
        hot = []
        for key, extra in dict(self.hot_components).items():
            comp = key.value if isinstance(key, ComponentId) else str(key)
            try:
                ComponentId(comp)
            except ValueError:
                raise ConfigurationError(
                    f"FaultProfile.hot_components: unknown component {comp!r}"
                ) from None
            hot.append((comp, _as_probability(f"hot_components[{comp}]", extra)))
        object.__setattr__(self, "hot_components", tuple(sorted(hot)))

    @property
    def active(self) -> bool:
        """Whether this profile can perturb anything at all."""
        return any(
            p > 0.0
            for p in (
                self.crash_probability,
                self.timeout_probability,
                self.corrupt_probability,
                self.outlier_probability,
                self.run_crash_probability,
            )
        ) or bool(self.hot_components)

    def crash_probability_for(self, component: ComponentId) -> float:
        extra = dict(self.hot_components).get(component.value, 0.0)
        return min(1.0, self.crash_probability + extra)

    # -- CLI spec parsing --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultProfile":
        """Build a profile from a ``key=value`` comma list.

        Keys: ``crash``, ``timeout``, ``corrupt``, ``outlier`` (probabilities),
        ``mult`` (outlier multiplier), ``timeout_s``, ``run_crash``, and
        ``hot.<component>`` for per-component extra crash probability, e.g.::

            crash=0.2,outlier=0.05,mult=10,hot.atm=0.3
        """
        kwargs: dict = {}
        hot: dict = {}
        aliases = {
            "crash": "crash_probability",
            "timeout": "timeout_probability",
            "corrupt": "corrupt_probability",
            "outlier": "outlier_probability",
            "mult": "outlier_multiplier",
            "outlier_multiplier": "outlier_multiplier",
            "timeout_s": "timeout_seconds",
            "run_crash": "run_crash_probability",
        }
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ConfigurationError(
                    f"bad fault-profile entry {item!r} (expected key=value)"
                )
            key, _, value = item.partition("=")
            key = key.strip()
            try:
                number = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad fault-profile value {value!r} for {key!r}"
                ) from None
            if key.startswith("hot."):
                hot[key[len("hot."):]] = number
            elif key in aliases:
                kwargs[aliases[key]] = number
            else:
                raise ConfigurationError(
                    f"unknown fault-profile key {key!r} "
                    f"(expected one of {sorted(aliases)} or hot.<component>)"
                )
        if hot:
            kwargs["hot_components"] = tuple(sorted(hot.items()))
        return cls(**kwargs)

    def describe(self) -> str:
        parts = []
        for label, value in (
            ("crash", self.crash_probability),
            ("timeout", self.timeout_probability),
            ("corrupt", self.corrupt_probability),
            ("outlier", self.outlier_probability),
            ("run_crash", self.run_crash_probability),
        ):
            if value > 0:
                parts.append(f"{label}={value:g}")
        if self.outlier_probability > 0:
            parts.append(f"mult={self.outlier_multiplier:g}")
        for comp, extra in self.hot_components:
            parts.append(f"hot.{comp}={extra:g}")
        return ",".join(parts) if parts else "none"


class FaultySimulator:
    """Chaos wrapper around :class:`~repro.cesm.CoupledRunSimulator`.

    Exposes the same measurement API (``benchmark``, ``benchmark_sweep``,
    ``run_coupled``, ``case``) so it drops into every consumer of the plain
    simulator.  Fault draws are keyed by ``(seed, component, nodes,
    attempt)`` where ``attempt`` counts how many times *this wrapper
    instance* has been asked for that configuration — call :meth:`reset`
    (the pipeline does, per run) to replay a run exactly.
    """

    def __init__(self, inner, profile: FaultProfile, seed: int | None = None):
        self.inner = inner
        self.profile = profile
        self.seed = inner.case.seed if seed is None else int(seed)
        self._attempts: dict = {}

    @property
    def case(self):
        return self.inner.case

    def reset(self) -> None:
        """Forget attempt history so the next run replays the same faults."""
        self._attempts.clear()

    def attempt_counts(self) -> dict:
        """Snapshot of the per-configuration attempt counters.

        Process-backend gather workers operate on a pickled *copy* of this
        wrapper; their attempt spend happens in the copy.  The worker
        returns the delta against this snapshot and the parent applies it
        via :meth:`merge_attempts`, so post-gather state matches a serial
        run.  (Thread workers share the instance directly — attempt keys
        include the component, so concurrent sweeps touch disjoint keys.)
        """
        return dict(self._attempts)

    def merge_attempts(self, delta: dict) -> None:
        """Fold a worker copy's attempt spend back into this instance."""
        for key, count in delta.items():
            self._attempts[key] = self._attempts.get(key, 0) + int(count)

    def _next_attempt(self, key: tuple) -> int:
        count = self._attempts.get(key, 0)
        self._attempts[key] = count + 1
        return count

    # -- measurement API ---------------------------------------------------------

    def benchmark(self, component: ComponentId, nodes: int, repeat: int = 0) -> float:
        attempt = self._next_attempt(("bench", component.value, int(nodes)))
        rng = keyed_rng(
            self.seed, "fault", "bench",
            f"{component.value}:{int(nodes)}:{attempt}",
        )
        # Fixed draw count per attempt keeps the stream aligned no matter
        # which faults are enabled.
        u_crash, u_timeout, u_corrupt, u_outlier, u_mode = rng.uniform(size=5)
        p = self.profile
        if u_crash < p.crash_probability_for(component):
            raise InjectedCrashError(
                f"injected crash: {component.value} benchmark at {nodes} nodes "
                f"(attempt {attempt})"
            )
        if u_timeout < p.timeout_probability:
            raise InjectedTimeoutError(
                f"injected timeout: {component.value} benchmark at {nodes} nodes "
                f"exceeded {p.timeout_seconds:g}s (attempt {attempt})",
                timeout_seconds=p.timeout_seconds,
            )
        value = self.inner.benchmark(component, nodes, repeat=repeat)
        if u_corrupt < p.corrupt_probability:
            # Garbage in the timing file: NaN or a negative wall-clock.
            return float("nan") if u_mode < 0.5 else -value
        if u_outlier < p.outlier_probability:
            return value * p.outlier_multiplier
        return value

    def benchmark_sweep(self, component: ComponentId, node_counts) -> list:
        """Like the inner sweep, but each point can fault (and raise)."""
        return [(int(n), self.benchmark(component, int(n))) for n in node_counts]

    def run_coupled(self, allocation):
        if self.profile.run_crash_probability > 0.0:
            key = ",".join(
                f"{k.value if isinstance(k, ComponentId) else k}={v}"
                for k, v in sorted(
                    allocation.items(),
                    key=lambda kv: kv[0].value if isinstance(kv[0], ComponentId) else str(kv[0]),
                )
            )
            attempt = self._next_attempt(("run", key))
            rng = keyed_rng(self.seed, "fault", "run", f"{key}:{attempt}")
            if float(rng.uniform()) < self.profile.run_crash_probability:
                raise InjectedCrashError(
                    f"injected crash: coupled run at {{{key}}} (attempt {attempt})"
                )
        return self.inner.run_coupled(allocation)
