"""Robust outlier detection for benchmark sweeps.

A corrupted benchmark (a node with a sick NIC, a timer glitch) shows up as
one wildly-off point in an otherwise smooth scaling sweep.  The detector
fits a Theil-Sen line — median of pairwise slopes, immune to a minority of
outliers, unlike a least-squares fit of the 4-parameter performance model
which will happily *absorb* a 10x point into its ``a/n`` term — through the
sweep in log-log space, and scores each point by its MAD-normalized
residual.  A floor on the MAD scale keeps near-noiseless sweeps (where the
model's genuine curvature dominates the residual spread) from rejecting
good measurements.

Only the single worst point above threshold is flagged per call; the gather
stage re-measures it and re-runs the test, so multiple outliers are peeled
greedily, each adjudicated against a cleaner sweep than the last.
"""

from __future__ import annotations

import numpy as np

#: Minimum residual scale (in log-seconds): below this, points within ~5%
#: of the trend are never flagged no matter how tiny the measurement noise.
SCALE_FLOOR = 0.05


def theil_sen_line(x: np.ndarray, y: np.ndarray) -> tuple:
    """Robust ``(slope, intercept)``: median pairwise slope, median offset."""
    n = x.size
    slopes = [
        (y[j] - y[i]) / (x[j] - x[i])
        for i in range(n)
        for j in range(i + 1, n)
        if x[j] != x[i]
    ]
    if not slopes:
        return 0.0, float(np.median(y))
    slope = float(np.median(slopes))
    return slope, float(np.median(y - slope * x))


def mad_scores(nodes, times, scale_floor: float = SCALE_FLOOR) -> np.ndarray:
    """MAD-normalized |log-residual| of each point against the robust trend."""
    x = np.log(np.asarray(nodes, dtype=float))
    y = np.log(np.asarray(times, dtype=float))
    slope, intercept = theil_sen_line(x, y)
    resid = y - (slope * x + intercept)
    med = float(np.median(resid))
    mad = float(np.median(np.abs(resid - med)))
    scale = max(1.4826 * mad, scale_floor)
    return np.abs(resid - med) / scale


def worst_outlier(nodes, times, threshold: float) -> int | None:
    """Index of the most suspicious measurement, or ``None`` if all pass.

    Needs at least 4 points — with 3 a single bad point cannot be told
    apart from genuine curvature.
    """
    times = np.asarray(times, dtype=float)
    if times.size < 4:
        return None
    scores = mad_scores(nodes, times)
    worst = int(np.argmax(scores))
    if scores[worst] > threshold:
        return worst
    return None
