"""Retry budgets, deterministic backoff, and wall-clock deadlines.

:class:`RetryPolicy` bounds how hard the gather/fit stages fight a failing
measurement: per-point attempt caps, a per-sweep failure budget, and capped
exponential backoff whose jitter comes from :func:`~repro.util.rng.keyed_rng`
so the delays (and therefore the event log) are a pure function of
``(seed, key, attempt)``.

:class:`Deadline` is a monotonic wall-clock budget shared across stages.
The MINLP solvers poll it through ``MINLPOptions.check_hook`` and stop with
a ``TIME_LIMIT`` status; pipeline stages call :meth:`Deadline.check` to
raise :class:`~repro.exceptions.DeadlineExceededError` instead.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, DeadlineExceededError
from repro.util.rng import keyed_rng
from repro.util.timing import monotonic


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently to retry failed measurements and fits.

    ``max_attempts`` counts the first try: ``max_attempts=4`` means one
    measurement plus up to three retries.  ``sweep_budget`` caps the *total*
    failed attempts tolerated across one component's sweep — once spent,
    remaining points get a single attempt each (graceful degradation rather
    than an unbounded fight against a sick machine).
    """

    max_attempts: int = 4
    sweep_budget: int = 16
    base_delay: float = 0.0        # seconds; 0 disables sleeping entirely
    max_delay: float = 60.0
    backoff: float = 2.0
    jitter: float = 0.25           # +/- fraction of the deterministic delay
    outlier_threshold: float = 3.5  # MAD z-score to reject a measurement
    max_outlier_rounds: int = 5    # rejection/re-measure passes per sweep
    replacement_candidates: int = 2  # neighbor node counts to try per side
    # Injectable per-instance sleeper (was a class attribute: patching it for
    # one test leaked to every policy in the process — exactly the kind of
    # shared mutable state the parallel layer cannot tolerate).
    sleep: object = field(default=time.sleep, repr=False, compare=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("RetryPolicy.max_attempts must be >= 1")
        if self.sweep_budget < 0:
            raise ConfigurationError("RetryPolicy.sweep_budget must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("RetryPolicy delays must be >= 0")
        if self.backoff < 1.0:
            raise ConfigurationError("RetryPolicy.backoff must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("RetryPolicy.jitter must be in [0, 1]")
        if self.outlier_threshold <= 0:
            raise ConfigurationError("RetryPolicy.outlier_threshold must be > 0")

    def delay_for(self, attempt: int, seed: int, *key: str) -> float:
        """Backoff before retry number ``attempt`` (1-based), in seconds.

        Capped exponential with deterministic jitter: the same
        ``(seed, key, attempt)`` always yields the same delay, so chaos runs
        replay exactly.
        """
        if self.base_delay <= 0.0:
            return 0.0
        raw = min(self.max_delay, self.base_delay * self.backoff ** (attempt - 1))
        if self.jitter <= 0.0:
            return raw
        rng = keyed_rng(seed, "retry", *key, str(attempt))
        return raw * (1.0 + self.jitter * float(rng.uniform(-1.0, 1.0)))

    def pause(self, delay: float) -> None:
        """Sleep for ``delay`` seconds (no-op when the delay is zero)."""
        if delay > 0.0:
            self.sleep(delay)


class Deadline:
    """Wall-clock budget measured from construction.

    ``seconds=None`` means unlimited.  ``clock`` is injectable for tests;
    the default is the shared :func:`repro.util.timing.monotonic` helper,
    the same clock telemetry spans and stopwatches read, so a span around
    a deadline-checked stage can never disagree with the deadline.
    """

    def __init__(self, seconds: float | None = None, clock=monotonic):
        if seconds is not None and seconds <= 0:
            raise ConfigurationError("Deadline seconds must be positive")
        self.seconds = None if seconds is None else float(seconds)
        self._clock = clock
        self._t0 = clock()

    @classmethod
    def coerce(cls, value) -> "Deadline":
        """Normalize ``None | float | Deadline`` to a :class:`Deadline`."""
        if isinstance(value, cls):
            return value
        return cls(value)

    @property
    def is_limited(self) -> bool:
        return self.seconds is not None

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        if self.seconds is None:
            return math.inf
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.expired():
            suffix = f" during {where}" if where else ""
            raise DeadlineExceededError(
                f"wall-clock deadline of {self.seconds:.3f}s exceeded{suffix}"
            )

    def as_hook(self):
        """A zero-argument callable for ``MINLPOptions.check_hook``."""
        return self.expired
