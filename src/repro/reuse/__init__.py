"""Cross-solve reuse: warm pools and root presolve for MINLP solve families.

See :mod:`repro.reuse.family` for the :class:`SolveFamily` engine and
``docs/reuse.md`` for the pool lifecycle and validity rules.
"""

from repro.reuse.family import FamilyDelta, ReusePlan, SolveFamily, family_map
from repro.reuse.fbbt import FBBTResult, fbbt_root_bounds

__all__ = [
    "FamilyDelta",
    "FBBTResult",
    "ReusePlan",
    "SolveFamily",
    "family_map",
    "fbbt_root_bounds",
]
