"""Cross-solve reuse: the :class:`SolveFamily` engine.

A *solve family* is a sequence of related MINLP solves — a what-if sweep
over total node counts, the constrained/unconstrained pair of a
constraint-cost study, an ablation re-solving one layout many times.  The
family threads five kinds of state across its members:

1. **Cut pool** — outer-approximation :class:`~repro.expr.linearize.TangentCut`
   rows, tagged with the ``struct_key`` of the nonlinear ``<= 0`` body they
   support.  A tangent to a convex body is valid in *every* model containing
   a structurally identical body (same expression, same variable names), so
   carried cuts seed the next solve's root LP.  The pool is one global
   append-only list: a member that carries cuts installs them in pool
   order, which makes one member's installed rows a *prefix* of the next
   same-structure member's rows — the property basis reuse needs.
2. **Incumbent seeding** — the previous optimum's integer assignment is
   projected into the new model's boxes and SOS1 sets and re-certified by a
   fixed-integer NLP; only a verified-feasible point becomes the starting
   upper bound, so seeding can never corrupt the optimum.
3. **Simplex basis reuse** — the root-LP basis of a previous member is
   replayed through the existing ``solve_warm`` path when the new member
   has the same columns, base rows and cut-validity tags (then its root LP
   differs only in bounds/right-hand sides plus appended rows — exactly
   the perturbations a dual-simplex warm start repairs).
4. **Pseudocost carry-over** — branching history (summed degradations and
   observation counts per variable/direction) accumulates across members.
5. **Root FBBT** — :func:`repro.reuse.fbbt.fbbt_root_bounds` tightens the
   root box before the tree starts.

Parallel composition: :func:`family_map` solves the first item against the
live family, snapshots, fans the remaining items out over a
:mod:`repro.parallel` executor — each against an identical clone of the
snapshot — and merges the resulting deltas in submission order.  Worker
count and backend are therefore unobservable in the results.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field

from repro.parallel.executor import executor_scope
from repro.reuse.fbbt import fbbt_root_bounds
from repro.spec.schema import spec_key
from repro import telemetry
from repro.telemetry import names as metric

__all__ = ["SolveFamily", "ReusePlan", "FamilyDelta", "family_map"]

#: Solver-reported reuse counters that surface as telemetry series when a
#: registry is active (recorded at absorb time, once per finished solve —
#: merge_delta does NOT re-record them, because a worker's registry already
#: counted its own absorbs and ships them through the telemetry delta).
_TELEMETRY_COUNTERS = {
    "cuts_carried": metric.REUSE_CUTS_CARRIED,
    "incumbent_seeded": metric.REUSE_INCUMBENT_SEEDED,
    "incumbent_rejected": metric.REUSE_INCUMBENT_REJECTED,
    "basis_reused": metric.REUSE_BASIS_REUSED,
    "seed_nlp_skipped": metric.REUSE_SEED_NLP_SKIPPED,
}


def _cut_key(cut) -> tuple:
    """Same near-duplicate key the MasterLP pool uses."""
    return (
        tuple(sorted((k, round(v, 9)) for k, v in cut.coeffs.items())),
        round(cut.rhs, 9),
    )


@dataclass
class ReusePlan:
    """Everything a solver consumes from the family at the start of a solve.

    ``body_tags`` aligns one validity tag with each ``(name, body)`` pair
    the caller passed to :meth:`SolveFamily.plan`, so cuts discovered during
    the solve can be tagged without recomputing structural hashes.
    """

    root_bounds: dict = field(default_factory=dict)
    cuts: list = field(default_factory=list)
    covered: bool = False
    body_tags: list = field(default_factory=list)
    channel: str = ""
    fixings: dict | None = None
    warm: object | None = None
    warm_env: dict | None = None
    pseudo: tuple | None = None
    counters: dict = field(default_factory=dict)


@dataclass
class FamilyDelta:
    """State a family member produced, exported for deterministic merging."""

    cuts: list = field(default_factory=list)
    incumbents: dict = field(default_factory=dict)   # channel -> (env, objective)
    pc_sum: dict = field(default_factory=dict)       # channel -> {key: sum}
    pc_count: dict = field(default_factory=dict)     # channel -> {key: count}
    basis: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)


@dataclass
class _Mark:
    """Baseline against which :meth:`SolveFamily.export_delta` diffs."""

    num_cuts: int
    inc_versions: dict
    pc_sum: dict
    pc_count: dict
    counters: dict


class SolveFamily:
    """Persistent warm state threaded across a sequence of related solves.

    Feature toggles exist so ablations (and debugging) can isolate each
    reuse channel; everything defaults on.  ``max_cuts_per_tag`` caps pool
    growth per validity tag — the cap drops the *newest* overflow cuts,
    which preserves the append-only prefix ordering basis reuse depends on.
    """

    def __init__(
        self,
        cuts: bool = True,
        incumbent: bool = True,
        basis: bool = True,
        pseudocosts: bool = True,
        fbbt: bool = True,
        max_cuts_per_tag: int = 24,
        fbbt_rounds: int = 8,
    ):
        self.enable_cuts = cuts
        self.enable_incumbent = incumbent
        self.enable_basis = basis
        self.enable_pseudocosts = pseudocosts
        self.enable_fbbt = fbbt
        self.max_cuts_per_tag = int(max_cuts_per_tag)
        self.fbbt_rounds = int(fbbt_rounds)

        self._cuts: list = []          # (tag, key, TangentCut), append-only
        self._cut_keys: set = set()
        self._tag_counts: dict = {}
        # Incumbents and pseudocosts are keyed by *channel* — a spec_key
        # hash of the model's nonlinear-body tags plus its objective.  Cuts
        # carry per-body validity tags, so they cross between models that
        # share individual curves; a seeded incumbent or a branching history,
        # by contrast, is only replayed into a model with the *same* curves
        # and objective.  Cross-channel seeding would still be sound (the
        # seed is re-certified), but it can preempt the within-gap winner
        # the cold solve settles on and so break bit-identity.
        self._incumbents: dict = {}    # channel -> (env dict, internal objective)
        self._inc_versions: dict = {}  # channel -> int
        self._basis: dict = {}         # (columns, base_rows, tags) -> WarmStart
        self._pc_sum: dict = {}        # channel -> {(name, dir): sum}
        self._pc_count: dict = {}      # channel -> {(name, dir): count}
        self.counters: dict = {}

    #: :meth:`for_counts` carries the full feature set only while the member
    #: size spread stays under this ratio.  Cuts, pseudocosts and FBBT all
    #: transfer well between nearly identical budgets, but across a wide
    #: budget ladder the stale state can badly mislead the search: carried
    #: pseudocosts grow the 1-degree HYBRID ladder's bottom rung 12 -> 27
    #: nodes, and on curves fitted at the ladder's top, carried cuts explode
    #: trees outright (4 -> 1641 nodes, a 100x slowdown, on the layout-2
    #: ladder).  Incumbent seeding (always re-certified) and basis reuse
    #: (repaired by dual simplex) are safe at any spread in every measured
    #: configuration, so wide families keep only those.
    PSEUDOCOST_SPREAD = 1.2

    @classmethod
    def for_counts(cls, node_counts, **kwargs) -> "SolveFamily":
        """A family configured for a sweep over ``node_counts``.

        Tightly spaced sweeps (spread under :data:`PSEUDOCOST_SPREAD`) get
        every reuse feature; wider ladders fall back to the unconditionally
        safe subset — incumbent seeding and basis reuse.  Explicit keyword
        arguments override either default.
        """
        counts = [int(n) for n in node_counts]
        wide = bool(counts) and max(counts) > cls.PSEUDOCOST_SPREAD * min(counts)
        if wide:
            kwargs.setdefault("cuts", False)
            kwargs.setdefault("pseudocosts", False)
            kwargs.setdefault("fbbt", False)
        return cls(**kwargs)

    # -- solver-facing API -------------------------------------------------------

    def plan(
        self,
        model,
        columns: list | None = None,
        base_rows: int | None = None,
        bodies: list | None = None,
    ) -> ReusePlan:
        """Assemble the reuse state applicable to ``model``.

        ``columns``/``base_rows`` describe the master LP (LP/NLP solver
        only); ``bodies`` is the solver's list of nonlinear ``(name, body)``
        pairs, used both to filter the cut pool and to hand back per-body
        validity tags.
        """
        plan = ReusePlan()
        telemetry.count(metric.REUSE_PLANS)
        if bodies is None:
            bodies = [
                (c.name, body)
                for c in model.nonlinear_constraints()
                for body in c.as_le_bodies()
            ]
        plan.body_tags = [body.struct_key() for _, body in bodies]
        plan.channel = self._channel(model, plan.body_tags)

        if self.enable_fbbt:
            res = fbbt_root_bounds(model, max_rounds=self.fbbt_rounds)
            plan.counters["fbbt_rounds"] = res.rounds
            plan.counters["fbbt_tightenings"] = res.tightenings
            if res.infeasible_row is None:
                plan.root_bounds = res.bounds

        model_tags = set(plan.body_tags)
        planned_keys: list = []
        if self.enable_cuts and columns is not None and model_tags:
            cols = set(columns)
            seen_tags = set()
            for tag, key, cut in self._cuts:
                if tag in model_tags and set(cut.coeffs) <= cols:
                    plan.cuts.append(cut)
                    planned_keys.append(key)
                    seen_tags.add(tag)
            plan.covered = bool(plan.cuts) and model_tags <= seen_tags

        inc = self._incumbents.get(plan.channel) if self.enable_incumbent else None
        if inc is not None:
            plan.fixings = self._project_incumbent(model, inc[0])
            plan.warm_env = dict(inc[0])
            if plan.fixings is None:
                plan.counters["incumbent_rejected"] = 1

        if self.enable_basis and columns is not None and base_rows is not None:
            entry = self._basis.get(
                (tuple(columns), int(base_rows), frozenset(model_tags))
            )
            if entry is not None:
                warm, row_keys = entry
                # The stored basis indexes rows of base + its capture-time
                # cut list; it is only replayed when those cuts are exactly
                # the prefix of what this member will install.
                if tuple(planned_keys[: len(row_keys)]) == row_keys:
                    plan.warm = warm

        if self.enable_pseudocosts and self._pc_count.get(plan.channel):
            plan.pseudo = (
                dict(self._pc_sum[plan.channel]),
                dict(self._pc_count[plan.channel]),
            )
            plan.counters["pseudocost_entries"] = len(plan.pseudo[1])
        return plan

    @staticmethod
    def _channel(model, body_tags: list) -> str:
        """Identity of a member's *curves*: nonlinear-body tags + objective.

        Members of a sweep over total node counts differ only in linear
        rows and bounds, so they share a channel; a model with a swapped
        performance curve or a different objective sense does not.

        The channel is a :func:`repro.spec.schema.spec_key` hash over that
        structural content — a plain string, identical in every process for
        structurally identical models, so warm pools keyed by it survive
        serialization boundaries (a family snapshot shipped to a worker, a
        checkpoint reloaded tomorrow, a spec rebuilt on another machine).
        """
        payload: dict = {"bodies": sorted(set(body_tags))}
        if model.objective is not None:
            payload["objective"] = [
                model.objective.sense.value,
                model.objective.expr.struct_key(),
            ]
        return spec_key(payload)

    def absorb(
        self,
        *,
        channel: str = "",
        columns: list | None = None,
        base_rows: int | None = None,
        tags: list | None = None,
        new_cuts: list | None = None,
        incumbent_env: dict | None = None,
        objective: float = math.inf,
        pseudo: tuple | None = None,
        root_warm=None,
        root_cuts: list | None = None,
        counters: dict | None = None,
    ) -> None:
        """Harvest one finished solve's state back into the family.

        ``channel`` is the :class:`ReusePlan`'s ``channel`` — incumbents and
        pseudocosts are stored under it so they only flow between members
        with identical curves and objective.
        """
        if self.enable_cuts and new_cuts:
            for tag, cut in new_cuts:
                self._append_cut(tag, cut)
        if self.enable_incumbent and incumbent_env is not None:
            self._incumbents[channel] = (dict(incumbent_env), float(objective))
            self._inc_versions[channel] = self._inc_versions.get(channel, 0) + 1
        if self.enable_pseudocosts and pseudo is not None:
            sums, counts = pseudo
            pc_sum = self._pc_sum.setdefault(channel, {})
            pc_count = self._pc_count.setdefault(channel, {})
            for key, val in sums.items():
                pc_sum[key] = pc_sum.get(key, 0.0) + val
            for key, cnt in counts.items():
                pc_count[key] = pc_count.get(key, 0) + cnt
        if (
            self.enable_basis
            and root_warm is not None
            and columns is not None
            and base_rows is not None
        ):
            key = (tuple(columns), int(base_rows), frozenset(tags or ()))
            row_keys = tuple(_cut_key(c) for c in (root_cuts or ()))
            self._basis[key] = (root_warm, row_keys)
        for name, val in (counters or {}).items():
            self.counters[name] = self.counters.get(name, 0) + val
            mapped = _TELEMETRY_COUNTERS.get(name)
            if mapped is not None and val:
                telemetry.count(mapped, val)

    def _append_cut(self, tag: str, cut) -> None:
        key = _cut_key(cut)
        if key in self._cut_keys:
            self.counters["cuts_deduped"] = self.counters.get("cuts_deduped", 0) + 1
            return
        if self._tag_counts.get(tag, 0) >= self.max_cuts_per_tag:
            self.counters["cuts_capped"] = self.counters.get("cuts_capped", 0) + 1
            return
        self._cut_keys.add(key)
        self._tag_counts[tag] = self._tag_counts.get(tag, 0) + 1
        self._cuts.append((tag, key, cut))

    def _project_incumbent(self, model, prev: dict) -> dict | None:
        """Previous optimum -> integer fixings valid for ``model``'s boxes.

        SOS1 targets snap to the nearest allowed weight (members one-hot to
        match); plain integers round and clamp.  Returns None when a value
        cannot be projected — the solver then simply starts cold.
        """
        fixings: dict = {}
        handled: set = set()
        for sos in model.sos1_sets.values():
            if sos.target is None or sos.target not in prev:
                return None
            w = min(sos.weights, key=lambda x: abs(x - float(prev[sos.target])))
            fixings[sos.target] = float(w)
            for member, weight in zip(sos.members, sos.weights):
                fixings[member] = 1.0 if weight == w else 0.0
            handled.add(sos.target)
            handled.update(sos.members)
        for v in model.integer_variables():
            if v.name in handled:
                continue
            if v.name not in prev:
                if v.lb == v.ub:
                    fixings[v.name] = float(v.lb)
                    continue
                return None
            val = float(round(float(prev[v.name])))
            lo = math.ceil(v.lb - 1e-9)
            hi = math.floor(v.ub + 1e-9)
            if lo > hi:
                return None
            fixings[v.name] = float(min(max(val, lo), hi))
        return fixings

    # -- snapshot / delta plumbing (parallel composition) ------------------------

    def snapshot(self) -> "SolveFamily":
        """An independent deep copy; mutations on either side stay local."""
        return copy.deepcopy(self)

    clone = snapshot

    def mark(self) -> _Mark:
        return _Mark(
            num_cuts=len(self._cuts),
            inc_versions=dict(self._inc_versions),
            pc_sum={ch: dict(d) for ch, d in self._pc_sum.items()},
            pc_count={ch: dict(d) for ch, d in self._pc_count.items()},
            counters=dict(self.counters),
        )

    def export_delta(self, mark: _Mark) -> FamilyDelta:
        """State accumulated since ``mark``, for submission-order merging."""
        delta = FamilyDelta()
        delta.cuts = list(self._cuts[mark.num_cuts:])
        for channel, version in self._inc_versions.items():
            if version > mark.inc_versions.get(channel, 0):
                env, obj = self._incumbents[channel]
                delta.incumbents[channel] = (dict(env), obj)
        for channel, counts in self._pc_count.items():
            base_count = mark.pc_count.get(channel, {})
            count_diffs = {k: c - base_count.get(k, 0) for k, c in counts.items()
                           if c - base_count.get(k, 0)}
            if not count_diffs:
                continue
            # Sums and counts are only ever updated together (absorb), so the
            # count diff decides which keys were observed.  The paired sum
            # diff is exported even when it is exactly 0.0 — dropping it
            # would merge a count without its sum and break the mean.
            sums = self._pc_sum.get(channel, {})
            base_sum = mark.pc_sum.get(channel, {})
            delta.pc_count[channel] = count_diffs
            delta.pc_sum[channel] = {
                k: sums.get(k, 0.0) - base_sum.get(k, 0.0) for k in count_diffs
            }
        delta.basis = dict(self._basis)
        for name, val in self.counters.items():
            diff = val - mark.counters.get(name, 0)
            if diff:
                delta.counters[name] = diff
        return delta

    def merge_delta(self, delta: FamilyDelta) -> None:
        """Fold a worker's delta in; call in submission order for determinism."""
        for tag, _key, cut in delta.cuts:
            self._append_cut(tag, cut)
        for channel, inc in delta.incumbents.items():
            self._incumbents[channel] = inc
            self._inc_versions[channel] = self._inc_versions.get(channel, 0) + 1
        for channel, diffs in delta.pc_sum.items():
            pc_sum = self._pc_sum.setdefault(channel, {})
            for key, val in diffs.items():
                pc_sum[key] = pc_sum.get(key, 0.0) + val
        for channel, diffs in delta.pc_count.items():
            pc_count = self._pc_count.setdefault(channel, {})
            for key, cnt in diffs.items():
                pc_count[key] = pc_count.get(key, 0) + cnt
        self._basis.update(delta.basis)
        for name, val in delta.counters.items():
            self.counters[name] = self.counters.get(name, 0) + val

    # -- introspection -----------------------------------------------------------

    @property
    def num_cuts(self) -> int:
        return len(self._cuts)

    def stats(self) -> dict:
        return {
            "cuts": len(self._cuts),
            "tags": len(self._tag_counts),
            "bases": len(self._basis),
            "channels": len(
                set(self._incumbents) | set(self._pc_count) | set(self._pc_sum)
            ),
            "pseudocost_entries": sum(len(d) for d in self._pc_count.values()),
            "incumbents": len(self._incumbents),
            **self.counters,
        }


# -- parallel family mapping ------------------------------------------------------


@dataclass
class _FamilyTask:
    """Picklable payload: one item plus the shared family snapshot."""

    fn: object
    item: object
    snapshot: SolveFamily
    mark: _Mark


def _run_family_task(task: _FamilyTask) -> tuple:
    family = task.snapshot.clone()
    value = task.fn(task.item, family)
    return value, family.export_delta(task.mark)


@dataclass
class _PlainTask:
    fn: object
    item: object


def _run_plain_task(task: _PlainTask):
    return task.fn(task.item, None)


def family_map(fn, items, family: SolveFamily | None = None,
               executor=None, workers: int | None = None) -> list:
    """Map ``fn(item, family)`` over ``items`` with deterministic reuse.

    The first item runs against the live ``family`` (seeding the pool with
    a full solve's worth of cuts and an incumbent); every remaining item
    runs against an identical clone of the post-seed snapshot, on the given
    executor; deltas merge back in submission order.  Results — including
    every solver decision — are therefore independent of backend and worker
    count: ``serial``, ``thread`` and ``process`` all see the same family
    state for item *k*.

    With ``family=None`` this degrades to a plain deterministic map.  For
    the ``process`` backend ``fn`` must be a module-level function and
    ``items`` picklable.
    """
    items = list(items)
    if not items:
        return []
    if family is None:
        with executor_scope(executor, workers) as ex:
            return ex.map_ordered(_run_plain_task, [_PlainTask(fn, it) for it in items])
    first = fn(items[0], family)
    if len(items) == 1:
        return [first]
    snap = family.snapshot()
    mark = snap.mark()
    tasks = [_FamilyTask(fn, item, snap, mark) for item in items[1:]]
    with executor_scope(executor, workers) as ex:
        pairs = ex.map_ordered(_run_family_task, tasks)
    results = [first]
    for value, delta in pairs:
        family.merge_delta(delta)
        results.append(value)
    return results
