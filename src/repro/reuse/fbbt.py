"""Root-node feasibility-based bound tightening (FBBT) at the MINLP level.

Generalizes the light presolve in :mod:`repro.minlp.nlpbuild` — which only
propagates *linear* rows while constructing NLP subproblems — to the whole
model: every constraint (linear and nonlinear, via its ``<= 0`` bodies) is
pushed through the HC4 revise of :mod:`repro.reuse.interval`, rounds of
propagation run to a fixpoint, and integral boxes are rounded inward.

The output is a set of *root bound overrides* in exactly the shape the
branch-and-bound :class:`~repro.minlp.node.Node` already carries, so the
tightening composes with both solvers without touching the model.  Two
properties keep it safe:

- Narrowings are inflated by a relative safety margin (see
  ``interval.SAFETY``) before they land, so no feasible point — in
  particular no optimal one — is ever cut off.
- A proven-infeasible row does **not** shortcut the solve.  The pass
  returns empty overrides and lets the solver derive infeasibility through
  its normal machinery, keeping reuse-on behavior a strict subset of
  reuse-off behavior.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.model.model import Model
from repro.reuse.interval import FULL, EmptyIntervalError, hc4_revise

__all__ = ["FBBTResult", "fbbt_root_bounds"]

#: A box must shrink by more than this (relative to its span) to count as
#: progress; prevents fixpoint loops on rounding noise.
_PROGRESS_TOL = 1e-7

#: Integral rounding slack, mirroring nlpbuild's ``1e-9`` convention.
_INT_SLACK = 1e-9


@dataclass
class FBBTResult:
    """Outcome of :func:`fbbt_root_bounds`.

    ``bounds`` holds ``{name: (lo, hi)}`` overrides only for variables whose
    box actually tightened; ``infeasible_row`` names a row proven empty over
    the boxes (informational — callers still run the solver).
    """

    bounds: dict = field(default_factory=dict)
    rounds: int = 0
    tightenings: int = 0
    infeasible_row: str | None = None


def fbbt_root_bounds(model: Model, max_rounds: int = 8) -> FBBTResult:
    """Tighten every variable box of ``model`` through its constraints."""
    boxes = {
        name: (float(v.lb), float(v.ub)) for name, v in model.variables.items()
    }
    original = dict(boxes)
    integral = {name for name, v in model.variables.items() if v.is_integral}

    rows = []
    for con in model.constraints.values():
        for body in con.as_le_bodies():
            rows.append((con.name, body))

    rounds = 0
    tightenings = 0
    try:
        for _ in range(max_rounds):
            rounds += 1
            before = dict(boxes)
            for name, body in rows:
                try:
                    hc4_revise(body, boxes, (-math.inf, 0.0))
                except EmptyIntervalError:
                    return FBBTResult(rounds=rounds, infeasible_row=name)
            _round_integral(boxes, integral)
            progress = 0
            for name, (lo, hi) in boxes.items():
                b_lo, b_hi = before[name]
                span = 1.0 + (b_hi - b_lo if math.isfinite(b_hi - b_lo) else abs(lo) + abs(hi))
                if lo > b_lo + _PROGRESS_TOL * span or hi < b_hi - _PROGRESS_TOL * span:
                    progress += 1
            tightenings += progress
            if not progress:
                break
    except EmptyIntervalError:
        # Crossed box from integral rounding: same conservative stance.
        return FBBTResult(rounds=rounds, infeasible_row="<integral rounding>")

    out = {}
    for name, (lo, hi) in boxes.items():
        o_lo, o_hi = original[name]
        if lo > o_lo or hi < o_hi:
            out[name] = (lo, hi)
    return FBBTResult(bounds=out, rounds=rounds, tightenings=tightenings)


def _round_integral(boxes: dict, integral: set) -> None:
    for name in integral:
        lo, hi = boxes.get(name, FULL)
        new_lo = math.ceil(lo - _INT_SLACK) if math.isfinite(lo) else lo
        new_hi = math.floor(hi + _INT_SLACK) if math.isfinite(hi) else hi
        if new_lo > new_hi:
            raise EmptyIntervalError(name)
        boxes[name] = (float(new_lo), float(new_hi))
