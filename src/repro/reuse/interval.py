"""Interval arithmetic and HC4 revise over the expression tree.

The reuse engine's root presolve (:mod:`repro.reuse.fbbt`) needs two
primitives over :mod:`repro.expr` trees:

- a *forward* pass evaluating an expression over variable boxes into an
  enclosure ``[lo, hi]`` of its range, and
- a *backward* (HC4 revise) pass that, given a target interval for the
  expression's value (``body <= 0`` means ``(-inf, 0]``), narrows the
  variable boxes to values that could possibly attain it.

Everything here is deliberately conservative: whenever a tight rule would
need a case split (division by an interval containing zero, fractional
powers of sign-changing bases, ...) the result widens to the whole line
rather than risking an unsound narrowing.  Computed narrowings are inflated
by a small relative margin before they touch a box, so floating-point
rounding can never cut off a feasible point — exactly the property the
bit-identical-optimum guarantee of :class:`repro.reuse.SolveFamily` rests
on.

Intervals are plain ``(lo, hi)`` float tuples with ``lo <= hi``; ``math.inf``
ends are allowed.
"""

from __future__ import annotations

import math

from repro.expr.node import Add, Const, Div, Expr, Mul, Neg, Pow, VarRef

__all__ = [
    "EmptyIntervalError",
    "FULL",
    "forward_eval",
    "hc4_revise",
    "iadd",
    "idiv",
    "imul",
    "ineg",
    "ipow_const",
    "isub",
    "intersect",
]

INF = math.inf
FULL = (-INF, INF)

#: Relative inflation applied to every backward narrowing before it touches
#: a variable box.  Floating-point noise in the interval ops is ~1e-16 per
#: operation; 1e-9 leaves three orders of magnitude of headroom.
SAFETY = 1e-9


class EmptyIntervalError(Exception):
    """An intersection came up empty: the row is infeasible over the boxes."""


def _mul_bound(x: float, y: float) -> float:
    """One corner product with the ``0 * inf = 0`` convention.

    The convention is the standard one for interval bounds: a zero
    coefficient annihilates its term no matter how wide the other factor.
    """
    if x == 0.0 or y == 0.0:
        return 0.0
    return x * y


def iadd(a: tuple, b: tuple) -> tuple:
    return (a[0] + b[0], a[1] + b[1])


def isub(a: tuple, b: tuple) -> tuple:
    return (a[0] - b[1], a[1] - b[0])


def ineg(a: tuple) -> tuple:
    return (-a[1], -a[0])


def imul(a: tuple, b: tuple) -> tuple:
    corners = (
        _mul_bound(a[0], b[0]),
        _mul_bound(a[0], b[1]),
        _mul_bound(a[1], b[0]),
        _mul_bound(a[1], b[1]),
    )
    return (min(corners), max(corners))


def idiv(a: tuple, b: tuple) -> tuple:
    """``a / b``; widens to FULL when the divisor straddles (or touches) 0."""
    if b[0] <= 0.0 <= b[1]:
        return FULL
    if math.isinf(b[0]) and math.isinf(b[1]):
        return FULL
    inv_lo = 0.0 if math.isinf(b[1]) else 1.0 / b[1]
    inv_hi = 0.0 if math.isinf(b[0]) else 1.0 / b[0]
    return imul(a, (inv_lo, inv_hi))


def _pow_point(x: float, p: float) -> float:
    """``x ** p`` for x >= 0 with explicit inf/zero handling."""
    if x == 0.0:
        if p > 0.0:
            return 0.0
        return INF  # 0 ** negative: the one-sided limit
    if math.isinf(x):
        return INF if p > 0.0 else 0.0
    try:
        return x ** p
    except OverflowError:
        return INF


def ipow_const(a: tuple, p: float) -> tuple:
    """``a ** p`` for a *constant* exponent ``p``.

    Exact for nonnegative bases and for integer exponents of sign-changing
    bases; conservative (FULL) whenever a fractional power would leave the
    real line or a negative power spans a pole.
    """
    lo, hi = a
    if p == 0.0:
        return (1.0, 1.0)
    is_int = float(p).is_integer()
    if lo >= 0.0:
        if p > 0.0:
            return (_pow_point(lo, p), _pow_point(hi, p))
        # negative exponent: decreasing on (0, inf); pole at 0
        return (_pow_point(hi, p), _pow_point(lo, p))
    if not is_int:
        # Fractional power of a possibly-negative base: undefined region.
        return FULL
    n = int(p)
    if n > 0:
        if n % 2 == 1:
            return (_signed_pow(lo, n), _signed_pow(hi, n))
        # even: minimum at the closest-to-zero point
        if hi <= 0.0:
            return (_signed_pow(hi, n), _signed_pow(lo, n))
        return (0.0, max(_signed_pow(lo, n), _signed_pow(hi, n)))
    # negative integer exponent with lo < 0: pole inside or at the boundary
    if hi < 0.0:
        inner = ipow_const((-hi, -lo), float(-n))
        rec = idiv((1.0, 1.0), inner)
        return rec if n % 2 == 0 else ineg((rec[0], rec[1]))
    return FULL


def _signed_pow(x: float, n: int) -> float:
    if math.isinf(x):
        return x if (x > 0 or n % 2 == 1) else INF
    try:
        return float(x) ** n
    except OverflowError:
        return INF if (x > 0 or n % 2 == 0) else -INF


def intersect(a: tuple, b: tuple, tol: float = 0.0) -> tuple:
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    if lo > hi + tol:
        raise EmptyIntervalError(f"[{lo:g}, {hi:g}]")
    if lo > hi:  # within tolerance: keep the (tiny) crossing band
        return (hi, lo)
    return (lo, hi)


def _inflate(a: tuple) -> tuple:
    lo, hi = a
    if math.isfinite(lo):
        lo -= SAFETY * (1.0 + abs(lo))
    if math.isfinite(hi):
        hi += SAFETY * (1.0 + abs(hi))
    return (lo, hi)


# -- forward pass ----------------------------------------------------------------


def forward_eval(expr: Expr, boxes: dict, memo: dict | None = None) -> tuple:
    """Range enclosure of ``expr`` over the variable ``boxes``.

    ``memo`` (``id(node) -> interval``) is filled for every subexpression;
    the backward pass reads it.  Missing variables count as unbounded.
    """
    if memo is None:
        memo = {}
    key = id(expr)
    if key in memo:
        return memo[key]
    if isinstance(expr, Const):
        out = (float(expr.value), float(expr.value))
    elif isinstance(expr, VarRef):
        out = boxes.get(expr.name, FULL)
    elif isinstance(expr, Neg):
        out = ineg(forward_eval(expr.operand, boxes, memo))
    elif isinstance(expr, Add):
        out = (0.0, 0.0)
        for term in expr.terms:
            out = iadd(out, forward_eval(term, boxes, memo))
    elif isinstance(expr, Mul):
        out = imul(
            forward_eval(expr.left, boxes, memo),
            forward_eval(expr.right, boxes, memo),
        )
    elif isinstance(expr, Div):
        out = idiv(
            forward_eval(expr.numerator, boxes, memo),
            forward_eval(expr.denominator, boxes, memo),
        )
    elif isinstance(expr, Pow):
        base = forward_eval(expr.base, boxes, memo)
        expo = forward_eval(expr.exponent, boxes, memo)
        if expo[0] == expo[1]:
            out = ipow_const(base, expo[0])
        elif base[0] > 0.0:
            # b ** e = exp(e * ln b) for b > 0: corners of e x ln(b).
            out = _pow_corners(base, expo)
        else:
            out = FULL
    else:  # pragma: no cover - future node types degrade safely
        out = FULL
    memo[key] = out
    return out


def _pow_corners(base: tuple, expo: tuple) -> tuple:
    logs = (math.log(base[0]), math.log(base[1]) if math.isfinite(base[1]) else INF)
    prods = [_mul_bound(e, g) for e in expo for g in logs]
    lo, hi = min(prods), max(prods)
    return (
        0.0 if lo == -INF else math.exp(lo) if lo < 700 else INF,
        INF if hi == INF or hi >= 700 else math.exp(hi),
    )


# -- backward pass (HC4 revise) ---------------------------------------------------


def hc4_revise(expr: Expr, boxes: dict, target: tuple) -> bool:
    """Narrow ``boxes`` in place so ``expr``'s value can lie in ``target``.

    Returns True if any box changed.  Raises :class:`EmptyIntervalError`
    when the row is proven infeasible over the boxes (callers treat that as
    a *signal*, never as license to skip the real solve).
    """
    memo: dict = {}
    forward_eval(expr, boxes, memo)
    changed: list = []
    _backward(expr, target, memo, boxes, changed)
    return bool(changed)


def _backward(expr: Expr, target: tuple, memo: dict, boxes: dict, changed: list) -> None:
    fwd = memo[id(expr)]
    try:
        t = intersect(_inflate(target), fwd)
    except EmptyIntervalError:
        raise
    if t[0] <= fwd[0] and t[1] >= fwd[1] and not isinstance(expr, VarRef):
        return  # no information to push down

    if isinstance(expr, Const):
        return
    if isinstance(expr, VarRef):
        box = boxes.get(expr.name, FULL)
        lo = max(box[0], t[0])
        hi = min(box[1], t[1])
        if lo > hi:
            raise EmptyIntervalError(expr.name)
        if lo > box[0] or hi < box[1]:
            boxes[expr.name] = (lo, hi)
            changed.append(expr.name)
        return
    if isinstance(expr, Neg):
        _backward(expr.operand, ineg(t), memo, boxes, changed)
        return
    if isinstance(expr, Add):
        fwds = [memo[id(term)] for term in expr.terms]
        for i, term in enumerate(expr.terms):
            others = (0.0, 0.0)
            for j, f in enumerate(fwds):
                if j != i:
                    others = iadd(others, f)
            _backward(term, isub(t, others), memo, boxes, changed)
        return
    if isinstance(expr, Mul):
        fl, fr = memo[id(expr.left)], memo[id(expr.right)]
        _backward(expr.left, idiv(t, fr), memo, boxes, changed)
        _backward(expr.right, idiv(t, fl), memo, boxes, changed)
        return
    if isinstance(expr, Div):
        fn, fd = memo[id(expr.numerator)], memo[id(expr.denominator)]
        _backward(expr.numerator, imul(t, fd), memo, boxes, changed)
        # d = n / v; conservative when the target spans zero.
        _backward(expr.denominator, idiv(fn, t), memo, boxes, changed)
        return
    if isinstance(expr, Pow):
        fe = memo[id(expr.exponent)]
        fb = memo[id(expr.base)]
        if fe[0] == fe[1]:
            inv = _invert_pow(t, fb, fe[0])
            if inv is not None:
                _backward(expr.base, inv, memo, boxes, changed)
        return
    # Unknown node: nothing sound to push down.


def _invert_pow(t: tuple, base_fwd: tuple, p: float) -> tuple | None:
    """Interval of bases b with ``b ** p`` in ``t``, for positive bases.

    Returns None when no sound narrowing applies (sign-changing base,
    pathological target); the caller simply skips the descent.
    """
    if p == 0.0 or base_fwd[0] < 0.0:
        return None
    if p > 0.0:
        lo_t = max(t[0], 0.0)
        hi_t = t[1]
        if hi_t < 0.0:
            raise EmptyIntervalError("power target below zero for nonneg base")
        return (_pow_point(lo_t, 1.0 / p), _pow_point(hi_t, 1.0 / p))
    # p < 0: v = b ** p is positive and decreasing on (0, inf).
    if t[1] <= 0.0:
        raise EmptyIntervalError("negative target for a negative power")
    lo_t = max(t[0], 0.0)
    hi_b = _pow_point(lo_t, 1.0 / p) if lo_t > 0.0 else INF
    lo_b = _pow_point(t[1], 1.0 / p)
    return (lo_b, hi_b)
