"""Tuning-as-a-service: an async daemon over the HSLB pipeline.

The north-star deployment ("serve HSLB tuning to millions of users")
needs more than a library call per request: this package wraps the
pipeline, the :mod:`repro.reuse` warm-start engine and the supervised
process fleet behind a small daemon with the properties a service needs —

- a **tiered cache** (exact memoization -> warm
  :class:`~repro.reuse.SolveFamily` pools -> cold solves) so repeated and
  related requests cost a dictionary lookup or a warm-started solve
  instead of a full branch-and-bound tree;
- **batching** of compatible in-flight requests into one family solve,
  in the same descending-budget order :mod:`repro.analysis.whatif` uses;
- **admission control** and per-request deadlines, so overload produces
  typed ``rejected``/``expired`` responses instead of hangs;
- **fault isolation**: one client's crashing or hanging solve comes back
  to *that* client as a typed ``poisoned`` response while everyone
  else's requests are answered normally.

Entry points: :func:`serve_in_thread` / :class:`TuningDaemon` to run the
service, :class:`ServiceClient` to talk to it, :class:`ServiceEngine`
for the same tiered answering without a socket, and ``hslb serve`` /
``hslb call`` on the command line.  The serving contract — responses
bit-identical to direct library solves on every tier and backend — is
pinned by ``tests/test_service``.
"""

from repro.service.cache import ExactCache, WarmPools
from repro.service.client import ServiceClient
from repro.service.engine import (
    ParsedRequest,
    ServiceConfig,
    ServiceEngine,
    group_compatible,
    point_result_payload,
    reuse_channel,
    tune_result_payload,
)
from repro.service.protocol import (
    REQUEST_KINDS,
    SOLVE_KINDS,
    STATUSES,
    TIERS,
    ServiceRequest,
    ServiceResponse,
    decode_line,
    encode_line,
)
from repro.service.server import ServiceHandle, TuningDaemon, serve_in_thread

__all__ = [
    "REQUEST_KINDS",
    "SOLVE_KINDS",
    "STATUSES",
    "TIERS",
    "ExactCache",
    "ParsedRequest",
    "ServiceClient",
    "ServiceConfig",
    "ServiceEngine",
    "ServiceHandle",
    "ServiceRequest",
    "ServiceResponse",
    "TuningDaemon",
    "WarmPools",
    "decode_line",
    "encode_line",
    "group_compatible",
    "point_result_payload",
    "reuse_channel",
    "serve_in_thread",
    "tune_result_payload",
]
