"""The service's tiered cache: exact memoization and warm family pools.

Tier 1 — :class:`ExactCache`: finished result payloads keyed by the
request spec's :func:`~repro.spec.spec_key` structural hash.  A repeat of
a byte-identical request (same curves, bounds, options — everything) is
answered from memory without touching a solver; the stored payload *is*
the payload a fresh solve would produce, so exact hits are bit-identical
by construction.  Bounded LRU.

Tier 2 — :class:`WarmPools`: one :class:`~repro.reuse.SolveFamily` per
*reuse channel* (the structural hash of a request's curves, objective,
layout and solver configuration — see
:func:`repro.service.engine.reuse_channel`).  Requests that are not exact
repeats but share a channel — a what-if ladder arriving as separate
requests, many users tuning the same machine at different job sizes —
solve against the channel's accumulated warm state: carried OA cuts,
re-certified incumbents, root bases, pseudocosts, FBBT.  The reuse
engine's contract keeps warm answers bit-identical to cold ones; only the
work to find them shrinks.  Bounded LRU over channels.

Tier 3 is not in this module: a request that misses both tiers is a cold
solve dispatched by the engine, and its result then populates both tiers.

The wide-ladder guard: a long-lived channel family that has only seen
tightly clustered budgets carries every reuse feature, but once the
channel's observed node-count spread exceeds
:data:`~repro.reuse.SolveFamily.PSEUDOCOST_SPREAD`, the pool flips the
family to the unconditionally safe subset (incumbent seeding + basis
reuse) — the same fallback :meth:`SolveFamily.for_counts` applies to wide
what-if ladders, applied dynamically as the spread reveals itself.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.exceptions import ConfigurationError
from repro.resilience.events import EventKind
from repro.reuse import SolveFamily
from repro import telemetry
from repro.telemetry import names as metric

__all__ = ["ExactCache", "WarmPools"]


class ExactCache:
    """Thread-safe LRU of result payloads keyed by request spec_key."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError("ExactCache capacity must be >= 1")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()

    def get(self, key: str) -> dict | None:
        """The cached result payload, or None.  Counts the hit/miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                telemetry.count(metric.EXACT_MISSES)
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            telemetry.count(metric.EXACT_HITS)
            return entry

    def put(self, key: str, payload: dict) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = payload
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                telemetry.count(metric.EXACT_EVICTIONS)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class _Pool:
    """One channel's warm state plus its observed budget range."""

    __slots__ = ("family", "solves", "lo", "hi")

    def __init__(self, family: SolveFamily):
        self.family = family
        self.solves = 0          # successful solves absorbed so far
        self.lo: int | None = None
        self.hi: int | None = None

    def widen(self, total_nodes: int) -> bool:
        """Fold a budget into the observed range; True if now over-spread."""
        n = int(total_nodes)
        self.lo = n if self.lo is None else min(self.lo, n)
        self.hi = n if self.hi is None else max(self.hi, n)
        return self.hi > SolveFamily.PSEUDOCOST_SPREAD * self.lo


class WarmPools:
    """LRU map of reuse channel -> live :class:`SolveFamily` warm pool.

    Not thread-safe by design: the engine touches warm pools only from
    its single solver thread (the exact tier, which *is* accessed from
    the event loop, has its own lock).
    """

    def __init__(self, capacity: int = 32, events=None):
        if capacity < 1:
            raise ConfigurationError("WarmPools capacity must be >= 1")
        self.capacity = int(capacity)
        self.events = events
        self.evictions = 0
        self.downgrades = 0
        self._pools: OrderedDict = OrderedDict()

    def lease(self, channel: str, total_nodes: int) -> tuple:
        """``(family, warm)`` for one solve on ``channel`` at ``total_nodes``.

        ``warm`` is True when the channel already absorbed at least one
        solve — the tier label for requests answered through this family.
        Creates (and possibly evicts) pools as needed, and applies the
        wide-spread downgrade before handing the family out.
        """
        pool = self._pools.get(channel)
        if pool is None:
            pool = _Pool(SolveFamily())
            self._pools[channel] = pool
            while len(self._pools) > self.capacity:
                evicted_channel, _ = self._pools.popitem(last=False)
                self.evictions += 1
                telemetry.count(metric.WARM_POOL_EVICTED)
                if self.events is not None:
                    self.events.record(
                        EventKind.WARM_POOL_EVICTED,
                        "service",
                        f"channel {evicted_channel[:24]}... dropped (LRU, "
                        f"capacity {self.capacity})",
                    )
        else:
            self._pools.move_to_end(channel)
        warm = pool.solves > 0
        telemetry.count(metric.WARM_POOL_LEASES, tier="warm" if warm else "cold")
        if pool.widen(total_nodes) and pool.family.enable_cuts:
            # Same rationale as SolveFamily.for_counts: cuts, pseudocosts
            # and FBBT transfer well between near-identical budgets but can
            # explode trees across a wide ladder; incumbent + basis reuse
            # are unconditionally safe.  Flip the unsafe channels off for
            # the rest of this family's life.
            pool.family.enable_cuts = False
            pool.family.enable_pseudocosts = False
            pool.family.enable_fbbt = False
            self.downgrades += 1
            telemetry.count(metric.WARM_POOL_DOWNGRADED)
            if self.events is not None:
                self.events.record(
                    EventKind.WARM_POOL_DOWNGRADED,
                    "service",
                    f"budget spread {pool.lo}-{pool.hi} exceeds "
                    f"{SolveFamily.PSEUDOCOST_SPREAD}x; family kept to the "
                    "incumbent+basis safe subset",
                )
        return pool.family, warm

    def note_solved(self, channel: str, count: int = 1) -> None:
        """Record that ``count`` solves were absorbed into ``channel``."""
        pool = self._pools.get(channel)
        if pool is not None:
            pool.solves += int(count)

    def __len__(self) -> int:
        return len(self._pools)

    def __contains__(self, channel: str) -> bool:
        return channel in self._pools

    def stats(self) -> dict:
        return {
            "channels": len(self._pools),
            "capacity": self.capacity,
            "evictions": self.evictions,
            "downgrades": self.downgrades,
            "solves": sum(p.solves for p in self._pools.values()),
        }
