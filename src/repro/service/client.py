"""Synchronous client for the tuning daemon.

One TCP connection, newline-delimited JSON, blocking calls: the shape a
batch script or CLI wants.  Responses are typed
(:class:`~repro.service.protocol.ServiceResponse`); a non-``ok`` status
is returned, not raised — callers branch on ``response.status`` exactly
like the daemon produced it.  :meth:`ServiceClient.result` is the
raise-on-failure convenience for callers that only want answers.

Admission retries are **opt-in**: pass ``retry_rejected`` (a
:class:`~repro.resilience.RetryPolicy`) and solve calls answered
``rejected`` by admission control are re-sent after the policy's capped
deterministic backoff, up to ``max_attempts`` total sends.  Only
``rejected`` retries — an ``expired``/``error``/``poisoned`` answer is a
property of the request, not of daemon load, and re-sending it would
just repeat the failure.  The default (``None``) preserves the original
one-shot behavior exactly.
"""

from __future__ import annotations

import socket

from repro.exceptions import (
    AdmissionError,
    DeadlineExceededError,
    ProtocolError,
    ServiceError,
)
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import (
    ServiceRequest,
    ServiceResponse,
    decode_line,
    encode_line,
)
from repro import telemetry
from repro.telemetry import names as metric

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking request/response client over one daemon connection.

    Not thread-safe: one client per thread (connections are cheap; the
    daemon handles each on its own task).  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 300.0,
        client_id: str = "",
        retry_rejected: RetryPolicy | None = None,
        retry_seed: int = 0,
    ):
        self.client_id = client_id
        self.retry_rejected = retry_rejected
        self.retry_seed = int(retry_seed)
        self._counter = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- transport ---------------------------------------------------------------

    def call(self, request: ServiceRequest | dict) -> ServiceResponse:
        """Send one request and block for its response."""
        if isinstance(request, ServiceRequest):
            payload = request.to_dict()
        else:
            payload = dict(request)
        self._file.write(encode_line(payload))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed before a response arrived")
        return ServiceResponse.from_dict(decode_line(line))

    def _next_id(self) -> str:
        self._counter += 1
        prefix = self.client_id or "req"
        return f"{prefix}-{self._counter}"

    def _solve(self, kind: str, spec, deadline=None, id: str = "") -> ServiceResponse:
        body = spec if isinstance(spec, dict) else spec.to_dict()
        request = ServiceRequest(
            kind=kind,
            spec=body,
            id=id or self._next_id(),
            client=self.client_id,
            deadline=deadline,
        )
        policy = self.retry_rejected
        if policy is None:
            return self.call(request)
        # Admission backoff: re-send the SAME request (same id) while the
        # daemon sheds load.  Delays come from the policy's deterministic
        # capped-exponential schedule keyed by (seed, request id, attempt),
        # so a retry trace replays exactly.
        attempt = 1
        while True:
            response = self.call(request)
            if response.status != "rejected" or attempt >= policy.max_attempts:
                return response
            telemetry.count(metric.CLIENT_REJECTED_RETRIES)
            policy.pause(
                policy.delay_for(attempt, self.retry_seed, "client", request.id)
            )
            attempt += 1

    # -- request helpers ---------------------------------------------------------

    def solve_point(self, spec, deadline=None, id: str = "") -> ServiceResponse:
        """Solve one layout point (:class:`~repro.spec.SolvePointSpec` or dict)."""
        return self._solve("solve_point", spec, deadline=deadline, id=id)

    def tune(self, spec, deadline=None, id: str = "") -> ServiceResponse:
        """Run one full tuning pipeline (:class:`~repro.spec.TuneSpec` or dict)."""
        return self._solve("tune", spec, deadline=deadline, id=id)

    def ping(self) -> ServiceResponse:
        return self.call(ServiceRequest(kind="ping", id=self._next_id()))

    def stats(self) -> dict:
        response = self.call(ServiceRequest(kind="stats", id=self._next_id()))
        return response.result or {}

    def shutdown(self) -> ServiceResponse:
        return self.call(ServiceRequest(kind="shutdown", id=self._next_id()))

    @staticmethod
    def result(response: ServiceResponse) -> dict:
        """The result payload, or a typed exception for non-``ok`` statuses."""
        if response.ok:
            return response.result
        detail = (response.error or {}).get("detail", "no detail")
        if response.status == "rejected":
            raise AdmissionError(detail)
        if response.status == "expired":
            raise DeadlineExceededError(detail)
        if response.status == "poisoned":
            raise ServiceError(f"request poisoned: {detail}")
        if (response.error or {}).get("type") == "ProtocolError":
            raise ProtocolError(detail)
        raise ServiceError(detail)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
