"""The tuning service's solve core: tiered cache plus batched dispatch.

:class:`ServiceEngine` is the synchronous heart of the daemon — the
asyncio layer (:mod:`repro.service.server`) only does admission,
batching windows and I/O; every decision about *how a request is
answered* lives here, so the whole serving path is testable without a
socket.  One request flows through three tiers:

1. **exact** — the request spec's :func:`~repro.spec.spec_key` hits
   :class:`~repro.service.cache.ExactCache`; the stored payload is
   returned untouched (bit-identical by construction).
2. **warm** — the request's *reuse channel* (curves + objective + layout
   + solver configuration, hashed) has a live
   :class:`~repro.reuse.SolveFamily` in
   :class:`~repro.service.cache.WarmPools`; the solve runs against a
   clone of that warm state (carried cuts, re-certified incumbents, root
   bases).  The reuse engine's contract keeps the *answer* bit-identical
   to a cold solve; only the tree shrinks.
3. **cold** — a fresh family is created for the channel and the solve
   seeds it for every later request.

Batching: the server hands :meth:`solve_group` a set of *compatible*
in-flight requests (same channel — see :func:`group_compatible`).  The
group is deduplicated by spec_key, ordered by **descending budget**
(total node count — the same ordering :mod:`repro.analysis.whatif` uses:
state transfers safely downward), and every member solves against a
clone of the pre-batch family snapshot with deltas merged back in that
order.  Clone-plus-delta-merge is exactly the
:func:`~repro.reuse.family_map` discipline, which makes the backend
unobservable: the ``serial`` loop and the ``supervised`` process pool
produce bit-identical responses.

Fault isolation: each member's outcome is its own — a member that
crashes its worker repeatedly comes back as a typed ``poisoned``
response, a member whose model is defective comes back as ``error``, and
neither touches the other members' results or the shared family (only
successful deltas merge).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from repro.analysis.whatif import _solve_layout_point
from repro.exceptions import ProtocolError, ReproError
from repro.parallel.supervised import PoisonedTask, SupervisedProcessExecutor
from repro.resilience.events import EventLog
from repro.resilience.retry import RetryPolicy
from repro.service.cache import ExactCache, WarmPools
from repro.service.protocol import (
    SOLVE_KINDS,
    ServiceRequest,
    ServiceResponse,
    error_response,
)
from repro.spec import SolvePointSpec, TuneSpec
from repro.spec.schema import spec_key
from repro import telemetry
from repro.telemetry import names as metric

__all__ = [
    "ServiceConfig",
    "ServiceEngine",
    "ParsedRequest",
    "group_compatible",
    "reuse_channel",
    "point_result_payload",
    "tune_result_payload",
]

_BACKENDS = ("serial", "supervised")


@dataclass(frozen=True)
class ServiceConfig:
    """Service knobs: dispatch backend, admission bounds, cache sizes.

    ``backend`` selects how cold/warm solves execute: ``"serial"`` runs
    them inline on the daemon's solver thread; ``"supervised"`` fans each
    batch out over a :class:`~repro.parallel.supervised.SupervisedProcessExecutor`
    (crash/hang detection, respawn, retries, quarantine) with
    ``task_deadline``/``max_retries``/``chaos`` as its knobs.  Admission
    control: at most ``max_queue`` requests may wait for a solver;
    arrivals past that are rejected with a typed response, never queued
    invisibly.  ``batch_window`` is how long (seconds) the server holds
    the first queued request to let compatible ones join its batch.
    """

    backend: str = "serial"
    workers: int | None = None
    max_queue: int = 64
    batch_window: float = 0.02
    max_batch: int = 16
    exact_capacity: int = 4096
    warm_capacity: int = 32
    default_deadline: float | None = None
    task_deadline: float | None = None
    max_retries: int = 4
    seed: int = 0
    chaos: object = None

    def __post_init__(self):
        from repro.exceptions import ConfigurationError

        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown service backend {self.backend!r}; known: {_BACKENDS}"
            )
        for name, lo in (
            ("max_queue", 1), ("max_batch", 1), ("max_retries", 1),
            ("exact_capacity", 1), ("warm_capacity", 1),
        ):
            if getattr(self, name) < lo:
                raise ConfigurationError(f"ServiceConfig.{name} must be >= {lo}")
        if self.batch_window < 0:
            raise ConfigurationError("ServiceConfig.batch_window must be >= 0")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConfigurationError(
                "ServiceConfig.default_deadline must be > 0 (or None)"
            )


@dataclass(frozen=True)
class ParsedRequest:
    """A validated solve request with its cache/batching identities."""

    request: ServiceRequest
    spec: object                 # SolvePointSpec | TuneSpec
    key: str                     # exact-tier identity (spec_key of the spec)
    compat: str | None           # batching identity; None -> never co-batched
    channel: str | None          # warm-pool identity; None -> no family
    budget: int                  # descending-order sort key (total nodes)

    @property
    def id(self) -> str:
        return self.request.id


def reuse_channel(point_payload: dict) -> str:
    """The warm-pool / batching channel of a ``solve_point`` payload.

    Hashes exactly the content two requests must share for one
    :class:`~repro.reuse.SolveFamily` to serve both: the performance
    curves, objective, layout topology, fine-tuning/T_sync flags, and the
    solver method + options.  Budgets (total nodes) and component bounds
    are deliberately *excluded* — family members differ in those by
    design (cuts stay valid, incumbents are re-certified).
    """
    problem = point_payload["problem"]
    return spec_key({
        "kind": "service_channel",
        "curves": problem["curves"],
        "objective": problem["objective"],
        "layout": problem["layout"],
        "fine_tuning": problem["fine_tuning"],
        "tsync": problem["tsync"],
        "method": point_payload["method"],
        "options": point_payload["options"],
    })


def group_compatible(items, compat=lambda item: item.compat) -> list:
    """Partition ``items`` into co-batchable groups, preserving order.

    Two items land in one group iff their ``compat`` keys are equal and
    not None; a None key means "never co-batched" and yields a singleton
    group.  Group order follows each group's earliest member.
    """
    groups: list = []
    index: dict = {}
    for item in items:
        key = compat(item)
        if key is None:
            groups.append([item])
            continue
        slot = index.get(key)
        if slot is None:
            slot = []
            index[key] = slot
            groups.append(slot)
        slot.append(item)
    return groups


# -- result payloads ---------------------------------------------------------------


def _finite(value: float) -> float | None:
    value = float(value)
    return value if math.isfinite(value) else None


def _solver_block(result) -> dict:
    return {
        "status": result.status.value,
        "nodes": int(result.nodes),
        "cuts_added": int(result.cuts_added),
        "nlp_solves": int(result.nlp_solves),
        "lp_iterations": int(result.lp_iterations),
        "best_bound": _finite(result.best_bound),
    }


def point_result_payload(spec: SolvePointSpec, point) -> dict:
    """JSON-safe answer for one solved layout point.

    Floats survive JSON exactly (repr round-trip), so comparing two of
    these payloads field-by-field *is* a bit-identity check.
    """
    payload = {
        "kind": "layout_point",
        "method": spec.method,
        "total_nodes": int(point.total_nodes),
        "objective": float(point.makespan),
        "allocation": {
            comp.value: int(n) for comp, n in sorted(
                point.allocation.items(), key=lambda kv: kv[0].value
            )
        },
    }
    if point.solver_result is not None:
        payload["solver"] = _solver_block(point.solver_result)
    return payload


def tune_result_payload(run) -> dict:
    """JSON-safe answer for one full pipeline run (``HSLBRunResult``)."""
    solve = run.solve
    payload = {
        "kind": "tune_result",
        "method": solve.method,
        "allocation": {
            comp.value: int(n) for comp, n in sorted(
                solve.allocation.items(), key=lambda kv: kv[0].value
            )
        },
        "predicted_times": {
            comp.value: float(t) for comp, t in sorted(
                solve.predicted_times.items(), key=lambda kv: kv[0].value
            )
        },
        "predicted_total": float(solve.predicted_total),
        "objective_value": float(solve.objective_value),
        "actual_total": float(run.actual.total),
        "prediction_error": float(run.prediction_error()),
        "fit_r_squared": {
            comp.value: _finite(fit.r_squared) for comp, fit in sorted(
                run.fits.items(), key=lambda kv: kv[0].value
            )
        },
        "events": len(run.events),
    }
    if solve.solver_result is not None:
        payload["solver"] = _solver_block(solve.solver_result)
    return payload


# -- worker tasks (module-level: the supervised pool pickles them by reference) ----


@dataclass
class _PointTask:
    payload: dict                # canonical SolvePointSpec dict
    snapshot: object = None      # SolveFamily snapshot (shared by the batch)
    mark: object = None


def _run_point_task(task: _PointTask) -> tuple:
    """Solve one layout point against a clone of the batch snapshot.

    Returns ``(result_payload, family_delta)``; runs in a worker process
    under the supervised backend and inline under the serial one — the
    clone discipline makes the two produce identical bits.
    """
    spec = SolvePointSpec.from_dict(task.payload)
    family = task.snapshot.clone() if task.snapshot is not None else None
    point = _solve_layout_point(spec, family)
    delta = family.export_delta(task.mark) if family is not None else None
    return point_result_payload(spec, point), delta


@dataclass
class _TuneTask:
    payload: dict                # canonical TuneSpec dict


def _run_tune_task(task: _TuneTask) -> tuple:
    """Run one full tuning pipeline from its spec; returns ``(payload, None)``."""
    spec = TuneSpec.from_dict(task.payload)
    return tune_result_payload(spec.run()), None


@dataclass
class _TaskError:
    """A deterministic task failure caught on the serial path."""

    type: str
    detail: str


def _run_guarded(fn, task):
    try:
        return fn(task)
    except Exception as exc:  # noqa: BLE001 - converted to a typed response
        return _TaskError(type(exc).__name__, str(exc))


# -- the engine --------------------------------------------------------------------


_COUNTER_NAMES = (
    "requests", "exact_hits", "warm_hits", "cold_solves", "dedup_hits",
    "tune_runs", "batches", "batched_requests", "rejected", "expired",
    "errors", "poisoned",
)


@dataclass
class _GroupOutcome:
    """Internal: one unique spec's dispatch outcome."""

    status: str                  # "ok" | "error" | "poisoned"
    payload: dict | None = None
    error: dict | None = None
    meta: dict = field(default_factory=dict)
    delta: object = None         # family delta to merge (ok outcomes only)


class ServiceEngine:
    """Tiered request answering: exact memo -> warm family -> cold solve.

    Thread model: :meth:`parse` and :meth:`try_exact` may run on the
    event-loop thread (they touch only locked state); :meth:`solve_group`
    must run on a single solver thread (warm pools are not shared-state
    safe, and solver determinism wants one writer anyway).
    """

    def __init__(self, config: ServiceConfig | None = None, events: EventLog | None = None):
        self.config = config if config is not None else ServiceConfig()
        self.events = events if events is not None else EventLog()
        self.exact = ExactCache(self.config.exact_capacity)
        self.warm = WarmPools(self.config.warm_capacity, events=self.events)
        self.counters = dict.fromkeys(_COUNTER_NAMES, 0)
        # Always-on dispatch-group size distribution ({size: count}), kept
        # outside telemetry so `hslb stats` can report batching behavior
        # against a daemon that runs with telemetry disabled.
        self.batch_sizes: dict = {}
        self._lock = threading.Lock()
        self._executor: SupervisedProcessExecutor | None = None

    # -- counters ----------------------------------------------------------------

    def note(self, name: str, count: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + count

    # -- request classification --------------------------------------------------

    def parse(self, payload) -> ParsedRequest:
        """Validate one solve request and compute its cache identities.

        ``payload`` is a raw request dict or a :class:`ServiceRequest`.
        Raises :class:`~repro.exceptions.ProtocolError` (bad envelope) or
        :class:`~repro.exceptions.ConfigurationError` (bad spec).
        """
        request = (
            payload if isinstance(payload, ServiceRequest)
            else ServiceRequest.from_dict(payload)
        )
        if request.kind not in SOLVE_KINDS:
            raise ProtocolError(
                f"{request.kind!r} is not a solvable request kind"
            )
        if request.kind == "solve_point":
            spec = SolvePointSpec.from_dict(request.spec)
            body = spec.to_dict()
            compat = reuse_channel(body)
            channel = compat if spec.method != "oracle" else None
            budget = int(body["problem"]["total_nodes"])
        else:
            spec = TuneSpec.from_dict(request.spec)
            compat = None
            channel = None
            budget = 0
        return ParsedRequest(
            request=request,
            spec=spec,
            key=spec.spec_key(),
            compat=compat,
            channel=channel,
            budget=budget,
        )

    # -- tier 1: exact -----------------------------------------------------------

    def try_exact(self, parsed: ParsedRequest) -> ServiceResponse | None:
        """The memoized response for an exact repeat, or None."""
        cached = self.exact.get(parsed.key)
        if cached is None:
            return None
        self.note("requests")
        self.note("exact_hits")
        telemetry.count(metric.SERVICE_REQUESTS, status="ok", tier="exact")
        return ServiceResponse(
            id=parsed.id, status="ok", tier="exact", result=dict(cached)
        )

    # -- tiers 2/3: one compatible group -----------------------------------------

    def solve_group(self, group: list) -> list:
        """Answer one *compatible* group of parsed requests.

        Returns one :class:`ServiceResponse` per input, in input order.
        Dedupes exact repeats within the group, orders unique specs by
        descending budget, solves them against clones of the channel
        family's pre-batch snapshot (serial or supervised), merges deltas
        back in that order, and memoizes every successful answer.
        """
        if not group:
            return []
        self.note("requests", len(group))
        with self._lock:
            self.batch_sizes[len(group)] = self.batch_sizes.get(len(group), 0) + 1
        telemetry.observe(metric.SERVICE_BATCH_SIZE, len(group))
        if len(group) > 1:
            self.note("batches")
            self.note("batched_requests", len(group))
        responses: list = [None] * len(group)

        # Exact tier re-check: an earlier batch may have answered this key
        # between admission and dispatch.
        todo: list = []
        for i, parsed in enumerate(group):
            cached = self.exact.get(parsed.key)
            if cached is not None:
                self.note("exact_hits")
                responses[i] = ServiceResponse(
                    id=parsed.id, status="ok", tier="exact", result=dict(cached)
                )
            else:
                todo.append(i)
        if not todo:
            return self._note_responses(responses)

        # Dedupe by spec_key; solve order is descending budget (ties by
        # arrival), the whatif ladder discipline.
        by_key: dict = {}
        for i in todo:
            by_key.setdefault(group[i].key, []).append(i)
        unique_keys = sorted(by_key, key=lambda k: (-group[by_key[k][0]].budget,
                                                    by_key[k][0]))
        self.note("dedup_hits", len(todo) - len(unique_keys))

        leaders = [group[by_key[k][0]] for k in unique_keys]
        if leaders[0].request.kind == "tune":
            assert len(leaders) == 1, "tune requests are never co-batched"
            self.note("tune_runs")
            tier = "cold"
            outcomes = self._dispatch(_run_tune_task,
                                      [_TuneTask(leaders[0].spec.to_dict())])
        else:
            tier, outcomes = self._dispatch_points(leaders)

        for key, parsed, outcome in zip(unique_keys, leaders, outcomes):
            if outcome.status == "ok":
                self.note("warm_hits" if tier == "warm" else "cold_solves")
                self.exact.put(key, outcome.payload)
            else:
                self.note("errors" if outcome.status == "error" else "poisoned")
            for i in by_key[key]:
                if outcome.status == "ok":
                    responses[i] = ServiceResponse(
                        id=group[i].id, status="ok", tier=tier,
                        result=dict(outcome.payload),
                    )
                else:
                    responses[i] = ServiceResponse(
                        id=group[i].id, status=outcome.status,
                        error=dict(outcome.error), meta=dict(outcome.meta),
                    )
        return self._note_responses(responses)

    def _note_responses(self, responses: list) -> list:
        """Record the per-request status/tier telemetry series; passthrough."""
        if telemetry.enabled():
            for resp in responses:
                telemetry.count(
                    metric.SERVICE_REQUESTS,
                    status=resp.status, tier=resp.tier or "none",
                )
        return responses

    def _dispatch_points(self, leaders: list) -> tuple:
        """Solve unique layout points against the channel's warm family."""
        channel = leaders[0].channel
        family = None
        warm = False
        if channel is not None:
            family, warm = self.warm.lease(
                channel, max(p.budget for p in leaders)
            )
        snapshot = family.snapshot() if family is not None else None
        mark = snapshot.mark() if snapshot is not None else None
        tasks = [
            _PointTask(parsed.spec.to_dict(), snapshot, mark)
            for parsed in leaders
        ]
        outcomes = self._dispatch(_run_point_task, tasks)
        solved = 0
        for outcome in outcomes:
            if outcome.status == "ok" and outcome.delta is not None:
                family.merge_delta(outcome.delta)
                solved += 1
        if channel is not None and solved:
            self.warm.note_solved(channel, solved)
        return ("warm" if warm else "cold"), outcomes

    def _dispatch(self, fn, tasks: list) -> list:
        """Run tasks on the configured backend; outcomes in task order."""
        if self.config.backend == "supervised":
            raw = self._supervised().map_supervised(fn, tasks)
        else:
            raw = [_run_guarded(fn, task) for task in tasks]
        outcomes = []
        for item in raw:
            if isinstance(item, PoisonedTask):
                status = "error" if item.reason == "error" else "poisoned"
                error_type = {
                    "crash": "WorkerCrashError", "hang": "WorkerHangError",
                }.get(item.reason, "TaskError")
                outcomes.append(_GroupOutcome(
                    status=status,
                    error={"type": error_type, "detail": item.detail},
                    meta={"attempts": item.attempts, "reason": item.reason},
                ))
            elif isinstance(item, _TaskError):
                outcomes.append(_GroupOutcome(
                    status="error",
                    error={"type": item.type, "detail": item.detail},
                ))
            else:
                payload, delta = item
                outcomes.append(
                    _GroupOutcome(status="ok", payload=payload, delta=delta)
                )
        return outcomes

    def _supervised(self) -> SupervisedProcessExecutor:
        if self._executor is None:
            self._executor = SupervisedProcessExecutor(
                self.config.workers,
                retry_policy=RetryPolicy(max_attempts=self.config.max_retries),
                task_deadline=self.config.task_deadline,
                chaos=self.config.chaos,
                seed=self.config.seed,
                events=self.events,
            )
        return self._executor

    # -- convenience: one request end to end (no server) -------------------------

    def handle(self, payload) -> ServiceResponse:
        """Answer one raw request dict synchronously (in-process service).

        Control kinds (``ping``/``stats``) are answered inline; solve
        kinds run the full exact -> warm -> cold path.  Never raises for
        request-level problems — they come back as typed responses.
        """
        try:
            request = (
                payload if isinstance(payload, ServiceRequest)
                else ServiceRequest.from_dict(payload)
            )
        except ReproError as exc:
            return error_response("", "error", type(exc).__name__, str(exc))
        if request.kind == "ping":
            return ServiceResponse(id=request.id, status="ok",
                                   result={"pong": True})
        if request.kind == "stats":
            return ServiceResponse(id=request.id, status="ok",
                                   result=self.stats())
        if request.kind == "shutdown":
            return error_response(
                request.id, "error", "ProtocolError",
                "shutdown is only honored by a daemon started with "
                "allow_shutdown=True",
            )
        try:
            parsed = self.parse(request)
        except ReproError as exc:
            self.note("requests")
            self.note("errors")
            return error_response(request.id, "error",
                                  type(exc).__name__, str(exc))
        hit = self.try_exact(parsed)
        if hit is not None:
            return hit
        return self.solve_group([parsed])[0]

    # -- introspection / lifecycle -----------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self.counters)
            batch_sizes = {
                str(size): self.batch_sizes[size]
                for size in sorted(self.batch_sizes)
            }
        supervision = None
        if self._executor is not None:
            supervision = {
                k: v for k, v in self._executor.stats.items()
                if k != "respawn_seconds"
            }
        registry = telemetry.get_registry()
        return {
            "backend": self.config.backend,
            "counters": counters,
            "batch_sizes": batch_sizes,
            "exact": self.exact.stats(),
            "warm": self.warm.stats(),
            "supervision": supervision,
            "events": len(self.events),
            # Full metric snapshot when the daemon runs with telemetry on;
            # None otherwise.  JSON-safe, so it rides the stats verb as-is.
            "telemetry": None if registry is None else registry.snapshot(),
        }

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
