"""Wire protocol for the tuning service: typed requests and responses.

The daemon speaks newline-delimited JSON over a stream socket — one
request object per line in, one response object per line out, matched by
the client-chosen ``id``.  Both sides of the conversation are *typed*
dataclasses here, so every failure mode the service can produce — queue
rejection, deadline expiry, a poisoned worker, a malformed spec — arrives
as a distinct ``status`` the client can branch on, never as a hang or a
bare connection reset.

Request kinds:

- ``solve_point`` — one :class:`~repro.spec.SolvePointSpec` payload: a
  Table I layout MINLP plus solver method/options.  Cacheable at every
  tier and batchable with compatible in-flight requests.
- ``tune`` — one :class:`~repro.spec.TuneSpec` payload: a full
  gather/fit/solve/execute pipeline run.  Cacheable at the exact tier.
- ``ping`` / ``stats`` — liveness and counter introspection.
- ``shutdown`` — stop the daemon (only honored when the server was
  started with ``allow_shutdown=True``; the CLI daemon refuses it).

Response statuses:

- ``ok`` — ``result`` holds the answer; ``tier`` says which cache tier
  produced it (``exact`` | ``warm`` | ``cold``).
- ``rejected`` — admission control refused the request (bounded queue
  full, or the service is shutting down).  Retry later.
- ``expired`` — the request's :class:`~repro.resilience.Deadline` ran out
  before its solve started.
- ``poisoned`` — the request's worker crashed/hung repeatedly and the
  retry budget is spent; ``error`` carries the last failure.  Other
  clients' requests are unaffected (per-client fault isolation).
- ``error`` — the request itself is defective (malformed spec, infeasible
  model, unknown kind); deterministic, so it is not retried.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.exceptions import ProtocolError

__all__ = [
    "REQUEST_KINDS",
    "SOLVE_KINDS",
    "STATUSES",
    "TIERS",
    "ServiceRequest",
    "ServiceResponse",
    "decode_line",
    "encode_line",
]

SOLVE_KINDS = ("solve_point", "tune")
CONTROL_KINDS = ("ping", "stats", "shutdown")
REQUEST_KINDS = SOLVE_KINDS + CONTROL_KINDS

STATUSES = ("ok", "rejected", "expired", "poisoned", "error")
TIERS = ("exact", "warm", "cold")


def encode_line(payload: dict) -> bytes:
    """One protocol message as a single JSON line (newline-terminated)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes | str) -> dict:
    """Parse one protocol line; raises :class:`ProtocolError` on bad input."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not valid UTF-8: {exc}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(payload).__name__}"
        )
    return payload


@dataclass(frozen=True)
class ServiceRequest:
    """One client request, as validated data.

    ``spec`` is the stamped canonical payload of a
    :class:`~repro.spec.SolvePointSpec` (``kind="solve_point"``) or
    :class:`~repro.spec.TuneSpec` (``kind="tune"``); control kinds carry
    no spec.  ``deadline`` is a per-request wall-clock budget in seconds,
    measured from admission (:class:`~repro.resilience.Deadline`).
    """

    kind: str
    spec: dict | None = None
    id: str = ""
    client: str = ""
    deadline: float | None = None

    def __post_init__(self):
        if self.kind not in REQUEST_KINDS:
            raise ProtocolError(
                f"unknown request kind {self.kind!r}; known: {REQUEST_KINDS}"
            )
        if self.kind in SOLVE_KINDS:
            if not isinstance(self.spec, dict):
                raise ProtocolError(f"a {self.kind!r} request needs a 'spec' object")
        elif self.spec is not None:
            raise ProtocolError(f"a {self.kind!r} request carries no 'spec'")
        if self.deadline is not None and not self.deadline > 0:
            raise ProtocolError("request 'deadline' must be a positive number")

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceRequest":
        unknown = set(payload) - {"kind", "spec", "id", "client", "deadline"}
        if unknown:
            raise ProtocolError(f"unknown request fields {sorted(unknown)}")
        deadline = payload.get("deadline")
        try:
            deadline = None if deadline is None else float(deadline)
        except (TypeError, ValueError):
            raise ProtocolError("request 'deadline' must be a number") from None
        return cls(
            kind=str(payload.get("kind", "")),
            spec=payload.get("spec"),
            id=str(payload.get("id", "")),
            client=str(payload.get("client", "")),
            deadline=deadline,
        )

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "id": self.id}
        if self.client:
            out["client"] = self.client
        if self.spec is not None:
            out["spec"] = self.spec
        if self.deadline is not None:
            out["deadline"] = self.deadline
        return out


@dataclass(frozen=True)
class ServiceResponse:
    """One daemon answer: a status, and (when ``ok``) a tier plus result.

    ``error`` is ``{"type": <exception class name>, "detail": <message>}``
    for every non-``ok`` status, so clients always get a machine-readable
    reason.  ``meta`` carries small extras (batch size, attempts, queue
    depth) that never affect the result bits.
    """

    id: str
    status: str
    tier: str | None = None
    result: dict | None = None
    error: dict | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.status not in STATUSES:
            raise ProtocolError(
                f"unknown response status {self.status!r}; known: {STATUSES}"
            )
        if self.tier is not None and self.tier not in TIERS:
            raise ProtocolError(
                f"unknown response tier {self.tier!r}; known: {TIERS}"
            )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceResponse":
        if not isinstance(payload, dict):
            raise ProtocolError("response must be a JSON object")
        return cls(
            id=str(payload.get("id", "")),
            status=str(payload.get("status", "")),
            tier=payload.get("tier"),
            result=payload.get("result"),
            error=payload.get("error"),
            meta=dict(payload.get("meta", {})),
        )

    def to_dict(self) -> dict:
        out: dict = {"id": self.id, "status": self.status}
        if self.tier is not None:
            out["tier"] = self.tier
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.meta:
            out["meta"] = self.meta
        return out


def error_response(
    request_id: str,
    status: str,
    error_type: str,
    detail: str,
    **meta,
) -> ServiceResponse:
    """A typed non-``ok`` response (module-internal convenience)."""
    return ServiceResponse(
        id=request_id,
        status=status,
        error={"type": error_type, "detail": detail},
        meta=dict(meta),
    )
