"""The tuning daemon: an asyncio TCP front end over :class:`ServiceEngine`.

Wire format: newline-delimited JSON — one request object per line in, one
response object per line out, matched by the client-chosen ``id``
(:mod:`repro.service.protocol`).  Requests on one connection are handled
concurrently, so a client may pipeline many requests and read responses
as they complete.

Division of labor: this module owns everything *asynchronous* — socket
I/O, admission control, the batching window, per-request deadlines —
while every solve decision (cache tiers, dedup, family reuse, backend
dispatch) lives in the synchronous :class:`~repro.service.engine.ServiceEngine`.
Solves run on one dedicated solver thread via ``run_in_executor``, so the
event loop keeps admitting, rejecting and answering exact-tier hits even
while a cold MINLP solve is in flight.

Admission control is a bound on *in-flight solve requests* (queued,
batching, or solving).  An arrival past ``config.max_queue`` is refused
immediately with a typed ``rejected`` response — never silently queued,
never hung.  A request whose :class:`~repro.resilience.Deadline` expires
while it waits is answered ``expired`` at dispatch time; deadlines are
never checked *inside* a solve, which keeps answers bit-identical to
direct library calls.

Batching: the dispatcher holds the first queued request for
``config.batch_window`` seconds, collects up to ``config.max_batch``
requests, partitions them into compatible groups
(:func:`~repro.service.engine.group_compatible`), and hands each group to
the engine as one family solve.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.exceptions import ReproError, ServiceError
from repro.resilience.events import EventKind, EventLog
from repro.resilience.retry import Deadline
from repro.service.engine import ServiceConfig, ServiceEngine, group_compatible
from repro.service.protocol import (
    SOLVE_KINDS,
    ServiceRequest,
    ServiceResponse,
    decode_line,
    encode_line,
    error_response,
)
from repro import telemetry
from repro.telemetry import names as metric
from repro.util.timing import monotonic

__all__ = ["TuningDaemon", "ServiceHandle", "serve_in_thread"]


@dataclass
class _Queued:
    """One admitted solve request waiting for the dispatcher."""

    parsed: object               # ParsedRequest
    deadline: Deadline | None
    future: asyncio.Future


class TuningDaemon:
    """Asyncio TCP daemon serving tuning requests through the tiered engine.

    ``port=0`` binds an ephemeral port; the bound ``(host, port)`` is
    available as :attr:`address` once :meth:`serve` is running.
    ``allow_shutdown`` gates the ``shutdown`` request kind — off by
    default so a shared daemon cannot be stopped by any client.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        events: EventLog | None = None,
        allow_shutdown: bool = False,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.host = host
        self.port = int(port)
        self.events = events if events is not None else EventLog()
        self.allow_shutdown = bool(allow_shutdown)
        self.engine = ServiceEngine(self.config, events=self.events)
        self.address: tuple | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._stopped: asyncio.Future | None = None
        self._solver: ThreadPoolExecutor | None = None
        self._inflight = 0
        self._stopping = False
        self._dispatches: set = set()
        self._writers: set = set()
        self._conn_tasks: set = set()

    # -- lifecycle ---------------------------------------------------------------

    async def serve(self, ready: threading.Event | None = None) -> None:
        """Run the daemon until :meth:`stop` (or an approved ``shutdown``)."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stopping = False
        self._stopped = loop.create_future()
        self._queue = asyncio.Queue()
        self._solver = ThreadPoolExecutor(1, thread_name_prefix="hslb-solver")
        server = await asyncio.start_server(self._serve_conn, self.host, self.port)
        self.address = server.sockets[0].getsockname()[:2]
        batch_task = asyncio.create_task(self._batch_loop())
        if ready is not None:
            ready.set()
        try:
            await self._stopped
        finally:
            self._stopping = True
            server.close()
            await server.wait_closed()
            batch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await batch_task
            while self._queue is not None and not self._queue.empty():
                queued = self._queue.get_nowait()
                self._finish(queued, error_response(
                    queued.parsed.id, "rejected", "AdmissionError",
                    "service is shutting down",
                ))
            if self._dispatches:
                await asyncio.gather(*self._dispatches, return_exceptions=True)
            for writer in list(self._writers):
                writer.close()
            if self._conn_tasks:
                await asyncio.wait(self._conn_tasks, timeout=2.0)
            self._solver.shutdown(wait=True)
            self.engine.shutdown()

    def stop(self) -> None:
        """Request a stop; safe to call from any thread."""
        loop = self._loop
        if loop is None:
            return
        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(self._begin_stop)

    def _begin_stop(self) -> None:
        self._stopping = True
        if self._stopped is not None and not self._stopped.done():
            self._stopped.set_result(None)

    # -- connection handling -----------------------------------------------------

    async def _serve_conn(self, reader, writer) -> None:
        self._conn_tasks.add(asyncio.current_task())
        self._writers.add(writer)
        lock = asyncio.Lock()
        pending: set = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(self._serve_line(line, writer, lock))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for task in list(pending):
                task.cancel()
            self._writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(self, writer, lock, response: ServiceResponse) -> None:
        data = encode_line(response.to_dict())
        async with lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # client went away; nothing to tell it

    async def _serve_line(self, line: bytes, writer, lock) -> None:
        request_id = ""
        try:
            payload = decode_line(line)
            request_id = str(payload.get("id", ""))
            request = ServiceRequest.from_dict(payload)
        except ReproError as exc:
            await self._send(writer, lock, error_response(
                request_id, "error", type(exc).__name__, str(exc),
            ))
            return
        response = await self._answer(request)
        if response is not None:
            await self._send(writer, lock, response)

    async def _answer(self, request: ServiceRequest) -> ServiceResponse | None:
        if telemetry.enabled() and request.kind in SOLVE_KINDS:
            # End-to-end service latency: admission + queueing + batching
            # window + solve, everything a client actually waits for.
            t0 = monotonic()
            response = await self._answer_inner(request)
            telemetry.observe(
                metric.SERVICE_REQUEST_SECONDS, monotonic() - t0,
                kind=request.kind,
            )
            return response
        return await self._answer_inner(request)

    async def _answer_inner(self, request: ServiceRequest) -> ServiceResponse | None:
        engine = self.engine
        if request.kind == "ping":
            return ServiceResponse(id=request.id, status="ok",
                                   result={"pong": True})
        if request.kind == "stats":
            return ServiceResponse(id=request.id, status="ok",
                                   result=self.stats())
        if request.kind == "shutdown":
            if not self.allow_shutdown:
                return error_response(
                    request.id, "error", "ProtocolError",
                    "this daemon does not honor shutdown requests",
                )
            self._loop.call_soon(self._begin_stop)
            return ServiceResponse(id=request.id, status="ok",
                                   result={"stopping": True})

        # Solve kinds: validate, then exact tier, then admission + queue.
        try:
            parsed = engine.parse(request)
        except ReproError as exc:
            engine.note("requests")
            engine.note("errors")
            return error_response(request.id, "error",
                                  type(exc).__name__, str(exc))
        hit = engine.try_exact(parsed)
        if hit is not None:
            return hit
        if self._stopping or self._inflight >= self.config.max_queue:
            engine.note("requests")
            engine.note("rejected")
            self.events.record(
                EventKind.REQUEST_REJECTED, "service",
                f"request {request.id or '<anonymous>'} refused: "
                f"{self._inflight} in flight (max {self.config.max_queue})"
                if not self._stopping else
                f"request {request.id or '<anonymous>'} refused: shutting down",
            )
            telemetry.count(metric.SERVICE_REQUESTS, status="rejected",
                            tier="none")
            return error_response(
                request.id, "rejected", "AdmissionError",
                "service is shutting down" if self._stopping
                else f"admission queue full ({self.config.max_queue} in flight)",
                in_flight=self._inflight,
            )
        seconds = (request.deadline if request.deadline is not None
                   else self.config.default_deadline)
        queued = _Queued(
            parsed=parsed,
            deadline=None if seconds is None else Deadline(seconds),
            future=self._loop.create_future(),
        )
        self._inflight += 1
        telemetry.gauge(metric.SERVICE_QUEUE_DEPTH, self._inflight)
        try:
            self._queue.put_nowait(queued)
            return await queued.future
        finally:
            self._inflight -= 1
            telemetry.gauge(metric.SERVICE_QUEUE_DEPTH, self._inflight)

    # -- dispatch ----------------------------------------------------------------

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            if self.config.batch_window > 0:
                horizon = loop.time() + self.config.batch_window
                while len(batch) < self.config.max_batch:
                    timeout = horizon - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        batch.append(await asyncio.wait_for(
                            self._queue.get(), timeout))
                    except asyncio.TimeoutError:
                        break
            for group in group_compatible(batch, compat=lambda q: q.parsed.compat):
                live = []
                for queued in group:
                    if queued.future.done():
                        continue  # client vanished; nobody is listening
                    if queued.deadline is not None and queued.deadline.expired():
                        self.engine.note("requests")
                        self.engine.note("expired")
                        self.events.record(
                            EventKind.REQUEST_EXPIRED, "service",
                            f"request {queued.parsed.id or '<anonymous>'} "
                            f"expired after {queued.deadline.seconds:.3f}s "
                            "in the queue",
                        )
                        telemetry.count(metric.SERVICE_REQUESTS,
                                        status="expired", tier="none")
                        self._finish(queued, error_response(
                            queued.parsed.id, "expired", "DeadlineExceededError",
                            f"request deadline ({queued.deadline.seconds:.3f}s) "
                            "expired before its solve started",
                        ))
                        continue
                    live.append(queued)
                if not live:
                    continue
                task = asyncio.create_task(self._dispatch(live))
                self._dispatches.add(task)
                task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, live: list) -> None:
        if len(live) > 1:
            self.events.record(
                EventKind.BATCH_DISPATCHED, "service",
                f"{len(live)} compatible requests dispatched as one "
                "family solve",
            )
        parsed = [queued.parsed for queued in live]
        try:
            responses = await asyncio.get_running_loop().run_in_executor(
                self._solver, self.engine.solve_group, parsed)
        except Exception as exc:  # noqa: BLE001 - answered, never propagated
            for queued in live:
                self._finish(queued, error_response(
                    queued.parsed.id, "error", type(exc).__name__, str(exc)))
            return
        for queued, response in zip(live, responses):
            self._finish(queued, response)

    def _finish(self, queued: _Queued, response: ServiceResponse) -> None:
        if not queued.future.done():
            queued.future.set_result(response)

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        out = self.engine.stats()
        out["service"] = {
            "in_flight": self._inflight,
            "max_queue": self.config.max_queue,
            "batch_window": self.config.batch_window,
            "max_batch": self.config.max_batch,
            "stopping": self._stopping,
        }
        return out


class ServiceHandle:
    """A daemon running on a background thread, plus its lifecycle."""

    def __init__(self, daemon: TuningDaemon, thread: threading.Thread):
        self.daemon = daemon
        self.thread = thread

    @property
    def address(self) -> tuple:
        return self.daemon.address

    def client(self, **kwargs):
        from repro.service.client import ServiceClient

        host, port = self.daemon.address
        return ServiceClient(host, port, **kwargs)

    def stop(self, timeout: float = 10.0) -> None:
        self.daemon.stop()
        self.thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    events: EventLog | None = None,
    allow_shutdown: bool = False,
    timeout: float = 10.0,
) -> ServiceHandle:
    """Start a daemon on a background thread; returns once it is bound.

    The embedding used by tests and the in-process benchmark harness:
    ``with serve_in_thread(cfg) as handle: handle.client().solve_point(...)``.
    """
    daemon = TuningDaemon(config, host=host, port=port, events=events,
                          allow_shutdown=allow_shutdown)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.serve(ready)),
        name="hslb-serve",
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout):
        raise ServiceError("tuning daemon failed to start in time")
    return ServiceHandle(daemon, thread)
