"""Serializable problem specs: describe a tuning problem as data.

The spec layer sits between the front ends (CLI, experiments, analysis
sweeps) and the pipeline: every problem the library can build — a Table I
layout MINLP, a what-if solve point, a full tuning request — has a
canonical JSON form with a structural hash (:func:`spec_key`), and a
builder registry (:func:`build_from_spec`) that reconstructs the exact
live object in any process.  See ``docs/specs.md``.
"""

from repro.spec.schema import (
    SCHEMA_VERSION,
    canonical_json,
    check_schema,
    spec_key,
    stamp,
)
from repro.spec.specs import (
    BudgetSpec,
    CaseSpec,
    CurveSpec,
    LayoutProblemSpec,
    MachineSpec,
    PinnedFit,
    SolvePointSpec,
    TuneSpec,
    curves_from_dict,
    curves_to_dict,
    fault_profile_from_dict,
    fault_profile_to_dict,
    fit_options_from_dict,
    fit_options_to_dict,
    spec_from_dict,
    spec_from_json,
)
from repro.spec.registry import (
    build_from_spec,
    builder_for,
    register_builder,
    registered_kinds,
)

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "check_schema",
    "spec_key",
    "stamp",
    "BudgetSpec",
    "CaseSpec",
    "CurveSpec",
    "LayoutProblemSpec",
    "MachineSpec",
    "PinnedFit",
    "SolvePointSpec",
    "TuneSpec",
    "curves_from_dict",
    "curves_to_dict",
    "fault_profile_from_dict",
    "fault_profile_to_dict",
    "fit_options_from_dict",
    "fit_options_to_dict",
    "spec_from_dict",
    "spec_from_json",
    "build_from_spec",
    "builder_for",
    "register_builder",
    "registered_kinds",
]
