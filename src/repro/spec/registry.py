"""Builder registry: from spec payloads back to live objects, anywhere.

A spec is only half the story — something must turn ``kind="layout_model"``
back into a :class:`repro.model.Model` in whatever process the payload
lands in.  This registry maps spec kinds to *builder* callables, resolved
lazily from dotted paths (``"package.module:function"``) so that

- importing :mod:`repro.spec` never drags in the heavy model/solver
  modules (no import cycles: specs are leaves, builders live upstream),
- a fresh worker process can rebuild a model knowing nothing but the spec
  payload — the registry resolves the builder on first use.

Builders accept either the spec dataclass or its stamped dict payload and
return the live object (``Model`` for layout problems, ``HSLBPipeline``
for tune requests, ``CESMCase`` for cases).  Registering a custom builder
for a new kind is how downstream code plugs new problem families into the
same shipping/caching machinery.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.exceptions import ConfigurationError

#: Default builders, as lazy dotted paths: nothing imports until first use.
_DEFAULT_BUILDERS = {
    "layout_model": "repro.hslb.layout_models:build_layout_model_from_spec",
    "solve_point": "repro.hslb.layout_models:build_layout_model_from_point",
    "tune": "repro.hslb.pipeline:pipeline_from_spec",
    "case": "repro.spec.specs:case_from_spec",
}

_builders: dict = dict(_DEFAULT_BUILDERS)
_resolved: dict = {}


def _resolve(target) -> Callable:
    if callable(target):
        return target
    module_name, _, attr = str(target).partition(":")
    if not module_name or not attr:
        raise ConfigurationError(
            f"builder path {target!r} must look like 'package.module:function'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import builder module {module_name!r}: {exc}"
        ) from exc
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ConfigurationError(
            f"builder module {module_name!r} has no attribute {attr!r}"
        ) from None


def register_builder(kind: str, target, *, replace: bool = False) -> None:
    """Map spec ``kind`` to a builder: a callable or a dotted path string."""
    if kind in _builders and not replace:
        raise ConfigurationError(
            f"a builder for kind {kind!r} is already registered "
            "(pass replace=True to override)"
        )
    _builders[kind] = target
    _resolved.pop(kind, None)


def builder_for(kind: str) -> Callable:
    """The (resolved) builder callable for ``kind``."""
    try:
        cached = _resolved[kind]
    except KeyError:
        pass
    else:
        return cached
    try:
        target = _builders[kind]
    except KeyError:
        raise ConfigurationError(
            f"no builder registered for spec kind {kind!r}; "
            f"known: {sorted(_builders)}"
        ) from None
    resolved = _resolve(target)
    _resolved[kind] = resolved
    return resolved


def registered_kinds() -> tuple:
    return tuple(sorted(_builders))


def build_from_spec(spec, **kwargs):
    """Rebuild the live object a spec (or its dict payload) describes.

    Dispatches on the spec's ``kind`` — dataclass attribute or payload
    field — and calls the registered builder.  This is the single entry
    point process workers use: a worker receives the JSON payload, calls
    ``build_from_spec(payload)``, and gets the same object the submitting
    process would have built.
    """
    kind = getattr(spec, "kind", None)
    if kind is None and isinstance(spec, dict):
        kind = spec.get("kind")
    if kind is None:
        raise ConfigurationError(
            f"cannot infer spec kind from {type(spec).__name__}"
        )
    return builder_for(kind)(spec, **kwargs)
