"""Canonical JSON encoding and structural hashing for problem specs.

Every spec in :mod:`repro.spec` serializes to *canonical JSON* — sorted
keys, compact separators, no NaN/Infinity — so that two structurally equal
specs produce byte-identical text in any process on any machine.  That
text is what :func:`spec_key` hashes, in the spirit of
``Expr.struct_key``: the key is a pure function of the spec's *content*,
never of object identity, construction order, or interpreter session.

This module is deliberately dependency-free (stdlib only): the reuse
engine keys its warm pools with :func:`spec_key`, and pulling model or
solver modules in here would create import cycles.
"""

from __future__ import annotations

import hashlib
import json

from repro.exceptions import ConfigurationError

#: Version stamped into every JSON payload this library writes.  Bump it
#: when a payload's meaning changes; loaders reject files from the future
#: (see :func:`check_schema`) instead of misreading them.
SCHEMA_VERSION = 1


def canonical_json(payload) -> str:
    """Deterministic JSON text for ``payload``.

    Keys are sorted, separators are compact, and non-finite floats are
    rejected (``allow_nan=False``): Python's ``repr``-based float emission
    round-trips every finite double exactly, so equal payloads — including
    their float bits — produce equal text.
    """
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:
        raise ConfigurationError(
            f"spec payloads must be finite and JSON-serializable: {exc}"
        ) from exc
    except TypeError as exc:
        raise ConfigurationError(
            f"spec payloads must contain only JSON types: {exc}"
        ) from exc


def spec_key(payload) -> str:
    """Structural hash of ``payload``: sha256 over its canonical JSON.

    Two payloads share a key iff their canonical JSON is byte-identical —
    the dict/list/str/number structure is equal, with floats compared by
    bits.  Keys are plain hex strings, stable across processes and
    machines, which is what lets warm pools, caches and checkpoint files
    survive serialization boundaries.
    """
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return f"spec:{digest}"


def stamp(payload: dict, kind: str) -> dict:
    """Add the ``format``/``schema_version`` header to ``payload``."""
    out = dict(payload)
    out["format"] = f"repro/{kind}"
    out["schema_version"] = SCHEMA_VERSION
    return out


def check_schema(payload: dict, kind: str) -> dict:
    """Validate a loaded payload's header; returns the payload.

    Accepts the historical ``repro/<kind>@1`` format strings (written
    before ``schema_version`` existed) as version 1.  A payload whose
    ``schema_version`` is *newer* than this library's is rejected with a
    clear error instead of surfacing as a ``KeyError`` three layers down.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(f"not a repro/{kind} payload: expected a JSON object")
    fmt = payload.get("format")
    expected = f"repro/{kind}"
    if fmt != expected and fmt != f"{expected}@1":
        raise ConfigurationError(
            f"not a {expected} file (format={fmt!r})"
        )
    version = payload.get("schema_version", 1)
    if not isinstance(version, int) or version < 1:
        raise ConfigurationError(
            f"{expected}: invalid schema_version {version!r}"
        )
    if version > SCHEMA_VERSION:
        raise ConfigurationError(
            f"{expected}: file has schema_version {version}, but this "
            f"library reads up to {SCHEMA_VERSION} — it was written by a "
            "newer version of repro; upgrade to load it"
        )
    return payload
