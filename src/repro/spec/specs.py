"""Serializable problem descriptions: the :class:`TuneSpec` family.

Every layer of the library used to pass *live* Python objects by
reference — fitted :class:`~repro.fitting.PerfModel` curves, built
:class:`~repro.model.Model` instances, :class:`~repro.minlp.MINLPOptions`
with nested solver options.  That blocks a tuning service: a request that
is an object graph cannot be hashed, cached, checkpointed, or shipped to a
worker on another machine.  The specs here are the data-only equivalents:

- :class:`MachineSpec` / :class:`CaseSpec` — the machine partition and the
  CESM tuning case (resolution, job size, layout, noise seed),
- :class:`CurveSpec` — one fitted performance curve ``a/n + b n^c + d``,
- :class:`LayoutProblemSpec` — everything
  :func:`repro.hslb.layout_models.build_layout_model` needs to rebuild one
  Table I MINLP, bit for bit,
- :class:`SolvePointSpec` — a layout problem plus solver method and
  canonical options: one member of a what-if sweep, ready to cross a
  process boundary,
- :class:`TuneSpec` — a full tuning request (case + curves-or-benchmark
  data + objective + options + budget), the unit a service layer would
  accept, with :class:`BudgetSpec` carrying deadline/retry limits.

All specs round-trip through canonical JSON (:mod:`repro.spec.schema`)
with exact float fidelity, expose a :meth:`spec_key` structural hash, and
rebuild their live counterpart through the builder registry
(:mod:`repro.spec.registry`) in any process.  The contract, enforced by
``tests/test_spec``: a solve rebuilt from a round-tripped spec is
bit-identical to the in-memory build — same optimum, same branch-and-bound
node counts.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.cesm.components import ComponentId
from repro.cesm.layouts import Layout
from repro.exceptions import ConfigurationError
from repro.fitting.perfmodel import PerfModel
from repro.machine import Machine
from repro.minlp.options import (
    MINLPOptions,
    minlp_options_from_dict,
    minlp_options_to_dict,
)
from repro.spec.schema import check_schema, spec_key, stamp

_OBJECTIVES = ("min_max", "max_min", "min_sum")
_METHODS = ("lpnlp", "bnb", "oracle")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _component(key: str) -> ComponentId:
    try:
        return ComponentId(key)
    except ValueError:
        raise ConfigurationError(f"unknown component {key!r}") from None


def _spec_payload(payload: dict, kind: str) -> dict:
    """Validate the header and ``kind`` of a spec payload."""
    check_schema(payload, "spec")
    if payload.get("kind") != kind:
        raise ConfigurationError(
            f"expected a {kind!r} spec, got kind={payload.get('kind')!r}"
        )
    return payload


class _SpecBase:
    """JSON/text/hash plumbing shared by every spec dataclass."""

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str):
        return cls.from_dict(json.loads(text))

    def spec_key(self) -> str:
        """Structural hash: equal keys iff byte-equal canonical payloads."""
        return spec_key(self.to_dict())


# -- machine / case ----------------------------------------------------------------


@dataclass(frozen=True)
class MachineSpec(_SpecBase):
    """Serializable form of :class:`repro.machine.Machine`."""

    name: str
    nodes: int
    cores_per_node: int = 4
    mpi_tasks_per_node: int = 1
    threads_per_task: int = 4
    relative_speed: float = 1.0

    @classmethod
    def from_machine(cls, machine: Machine) -> "MachineSpec":
        return cls(
            name=machine.name,
            nodes=machine.nodes,
            cores_per_node=machine.cores_per_node,
            mpi_tasks_per_node=machine.mpi_tasks_per_node,
            threads_per_task=machine.threads_per_task,
            relative_speed=float(machine.relative_speed),
        )

    def to_machine(self) -> Machine:
        return Machine(
            name=self.name,
            nodes=int(self.nodes),
            cores_per_node=int(self.cores_per_node),
            mpi_tasks_per_node=int(self.mpi_tasks_per_node),
            threads_per_task=int(self.threads_per_task),
            relative_speed=float(self.relative_speed),
        )

    def to_dict(self) -> dict:
        return stamp({"kind": "machine", **dataclasses.asdict(self)}, "spec")

    @classmethod
    def from_dict(cls, payload: dict) -> "MachineSpec":
        body = dict(_spec_payload(payload, "machine"))
        for key in ("format", "schema_version", "kind"):
            body.pop(key, None)
        return cls(**body)


@dataclass(frozen=True)
class CaseSpec(_SpecBase):
    """Serializable form of :class:`repro.cesm.CESMCase`."""

    resolution: str
    total_nodes: int
    layout: int = 1
    unconstrained_ocean: bool = False
    seed: int = 0
    machine: MachineSpec | None = None  # None -> the Intrepid default

    @classmethod
    def from_case(cls, case) -> "CaseSpec":
        from repro.machine import INTREPID

        machine = None
        if case.machine != INTREPID:
            machine = MachineSpec.from_machine(case.machine)
        return cls(
            resolution=case.resolution,
            total_nodes=int(case.total_nodes),
            layout=int(case.layout.value),
            unconstrained_ocean=bool(case.unconstrained_ocean),
            seed=int(case.seed),
            machine=machine,
        )

    def to_case(self):
        from repro.cesm.case import make_case
        from repro.machine import INTREPID

        machine = self.machine.to_machine() if self.machine is not None else INTREPID
        return make_case(
            self.resolution,
            int(self.total_nodes),
            layout=Layout(int(self.layout)),
            unconstrained_ocean=bool(self.unconstrained_ocean),
            seed=int(self.seed),
            machine=machine,
        )

    def to_dict(self) -> dict:
        return stamp(
            {
                "kind": "case",
                "resolution": self.resolution,
                "total_nodes": int(self.total_nodes),
                "layout": int(self.layout),
                "unconstrained_ocean": bool(self.unconstrained_ocean),
                "seed": int(self.seed),
                "machine": None if self.machine is None else self.machine.to_dict(),
            },
            "spec",
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "CaseSpec":
        body = _spec_payload(payload, "case")
        machine = body.get("machine")
        return cls(
            resolution=body["resolution"],
            total_nodes=int(body["total_nodes"]),
            layout=int(body.get("layout", 1)),
            unconstrained_ocean=bool(body.get("unconstrained_ocean", False)),
            seed=int(body.get("seed", 0)),
            machine=None if machine is None else MachineSpec.from_dict(machine),
        )


# -- curves ------------------------------------------------------------------------


@dataclass(frozen=True)
class CurveSpec(_SpecBase):
    """One fitted performance curve ``T(n) = a/n + b n^c + d`` as data."""

    a: float
    b: float = 0.0
    c: float = 1.0
    d: float = 0.0

    @classmethod
    def from_perf(cls, perf) -> "CurveSpec":
        """From a :class:`PerfModel` or a ``FitResult`` carrying one."""
        model = perf.model if hasattr(perf, "model") else perf
        return cls(a=float(model.a), b=float(model.b), c=float(model.c), d=float(model.d))

    def to_perf(self) -> PerfModel:
        return PerfModel(a=self.a, b=self.b, c=self.c, d=self.d)

    def to_dict(self) -> dict:
        return {"a": self.a, "b": self.b, "c": self.c, "d": self.d}

    @classmethod
    def from_dict(cls, payload: dict) -> "CurveSpec":
        unknown = set(payload) - {"a", "b", "c", "d"}
        _require(not unknown, f"curve spec: unknown keys {sorted(unknown)}")
        return cls(**{k: float(v) for k, v in payload.items()})


def curves_to_dict(perf: dict) -> dict:
    """``{ComponentId: PerfModel | FitResult} -> {str: curve dict}``."""
    return {
        comp.value: CurveSpec.from_perf(model).to_dict()
        for comp, model in perf.items()
    }


def curves_from_dict(payload: dict) -> dict:
    """Inverse of :func:`curves_to_dict`: ``{ComponentId: PerfModel}``."""
    return {
        _component(key): CurveSpec.from_dict(entry).to_perf()
        for key, entry in payload.items()
    }


@dataclass(frozen=True)
class PinnedFit:
    """A curve supplied *by a spec* rather than fitted from data.

    Quacks like a ``FitResult`` where the pipeline needs it (``.model``,
    ``.r_squared``); the fit quality is unknown by construction, so
    ``r_squared`` is NaN.
    """

    model: PerfModel
    r_squared: float = float("nan")


# -- the Table I layout problem ----------------------------------------------------


@dataclass(frozen=True)
class LayoutProblemSpec(_SpecBase):
    """Everything needed to rebuild one Table I layout MINLP, as data.

    Mirrors the signature of
    :func:`repro.hslb.layout_models.build_layout_model`; curves and bounds
    are keyed by component value strings so the payload is pure JSON.  The
    builder registry maps ``kind="layout_model"`` back to that function,
    and the rebuild is bit-identical: the model is constructed through the
    exact same code path as a direct call.
    """

    layout: int
    total_nodes: int
    curves: dict                      # comp value -> {"a","b","c","d"}
    bounds: dict                      # comp value -> (lo, hi)
    ocn_allowed: tuple | None = None
    atm_allowed: dict | None = None   # {"values": tuple|None, "lo", "hi"}
    objective: str = "min_max"
    tsync: float | None = None
    fine_tuning: bool = False
    name: str = "hslb"

    kind = "layout_model"

    def __post_init__(self):
        _require(
            self.objective in _OBJECTIVES,
            f"unknown objective {self.objective!r}; known: {_OBJECTIVES}",
        )

    @classmethod
    def from_args(
        cls,
        layout,
        total_nodes: int,
        perf: dict,
        bounds: dict,
        ocn_allowed=None,
        atm_allowed: dict | None = None,
        objective="min_max",
        tsync: float | None = None,
        fine_tuning: bool = False,
        name: str = "hslb",
    ) -> "LayoutProblemSpec":
        """From :func:`build_layout_model`-style live arguments."""
        layout = layout.value if isinstance(layout, Layout) else int(layout)
        objective = getattr(objective, "value", objective)
        atm = None
        if atm_allowed is not None:
            values = atm_allowed.get("values")
            atm = {
                "values": None if values is None else tuple(int(v) for v in values),
                "lo": int(atm_allowed["lo"]),
                "hi": int(atm_allowed["hi"]),
            }
        return cls(
            layout=layout,
            total_nodes=int(total_nodes),
            curves={
                comp.value: CurveSpec.from_perf(model).to_dict()
                for comp, model in perf.items()
            },
            bounds={
                comp.value: (int(lo), int(hi)) for comp, (lo, hi) in bounds.items()
            },
            ocn_allowed=(
                tuple(int(v) for v in ocn_allowed) if ocn_allowed is not None else None
            ),
            atm_allowed=atm,
            objective=objective,
            tsync=None if tsync is None else float(tsync),
            fine_tuning=bool(fine_tuning),
            name=str(name),
        )

    # -- live-object views (used by the registered builder) ----------------------

    def perf(self) -> dict:
        """``{ComponentId: PerfModel}`` reconstructed from the curves."""
        return curves_from_dict(self.curves)

    def component_bounds(self) -> dict:
        return {
            _component(key): (int(lo), int(hi))
            for key, (lo, hi) in self.bounds.items()
        }

    def ocn_allowed_list(self) -> list | None:
        return None if self.ocn_allowed is None else [int(v) for v in self.ocn_allowed]

    def atm_allowed_dict(self) -> dict | None:
        if self.atm_allowed is None:
            return None
        values = self.atm_allowed.get("values")
        return {
            "values": None if values is None else [int(v) for v in values],
            "lo": int(self.atm_allowed["lo"]),
            "hi": int(self.atm_allowed["hi"]),
        }

    def build(self):
        """The live :class:`~repro.model.Model`, via the builder registry."""
        from repro.spec.registry import build_from_spec

        return build_from_spec(self)

    def to_dict(self) -> dict:
        atm = None
        if self.atm_allowed is not None:
            values = self.atm_allowed.get("values")
            atm = {
                "values": None if values is None else [int(v) for v in values],
                "lo": int(self.atm_allowed["lo"]),
                "hi": int(self.atm_allowed["hi"]),
            }
        return stamp(
            {
                "kind": self.kind,
                "layout": int(self.layout),
                "total_nodes": int(self.total_nodes),
                "curves": {k: dict(v) for k, v in sorted(self.curves.items())},
                "bounds": {
                    k: [int(lo), int(hi)] for k, (lo, hi) in sorted(self.bounds.items())
                },
                "ocn_allowed": (
                    None if self.ocn_allowed is None
                    else [int(v) for v in self.ocn_allowed]
                ),
                "atm_allowed": atm,
                "objective": self.objective,
                "tsync": self.tsync,
                "fine_tuning": bool(self.fine_tuning),
                "name": self.name,
            },
            "spec",
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "LayoutProblemSpec":
        body = _spec_payload(payload, "layout_model")
        atm = body.get("atm_allowed")
        if atm is not None:
            values = atm.get("values")
            atm = {
                "values": None if values is None else tuple(int(v) for v in values),
                "lo": int(atm["lo"]),
                "hi": int(atm["hi"]),
            }
        ocn = body.get("ocn_allowed")
        return cls(
            layout=int(body["layout"]),
            total_nodes=int(body["total_nodes"]),
            curves={k: dict(v) for k, v in body["curves"].items()},
            bounds={k: (int(lo), int(hi)) for k, (lo, hi) in body["bounds"].items()},
            ocn_allowed=None if ocn is None else tuple(int(v) for v in ocn),
            atm_allowed=atm,
            objective=body.get("objective", "min_max"),
            tsync=body.get("tsync"),
            fine_tuning=bool(body.get("fine_tuning", False)),
            name=body.get("name", "hslb"),
        )


# -- one sweep member --------------------------------------------------------------


@dataclass(frozen=True)
class SolvePointSpec(_SpecBase):
    """A layout problem plus solver selection: one shippable solve request.

    This is the payload :mod:`repro.analysis.whatif` fans out to
    :mod:`repro.parallel` process workers — pure data; the worker rebuilds
    the :class:`~repro.model.Model` through the registry and the
    :class:`~repro.minlp.MINLPOptions` from their canonical dict.
    """

    problem: LayoutProblemSpec
    method: str = "lpnlp"
    options: dict | None = None       # canonical MINLPOptions dict

    kind = "solve_point"

    def __post_init__(self):
        _require(
            self.method in _METHODS,
            f"unknown method {self.method!r}; known: {_METHODS}",
        )

    @classmethod
    def for_problem(cls, problem: LayoutProblemSpec, method: str = "lpnlp",
                    options=None) -> "SolvePointSpec":
        """Normalize ``options`` (live object or dict) into canonical form."""
        if isinstance(options, MINLPOptions):
            options = minlp_options_to_dict(options)
        return cls(problem=problem, method=method, options=options)

    def minlp_options(self) -> MINLPOptions | None:
        return None if self.options is None else minlp_options_from_dict(self.options)

    def build(self):
        """The live model for this point's problem."""
        return self.problem.build()

    def to_dict(self) -> dict:
        return stamp(
            {
                "kind": self.kind,
                "problem": self.problem.to_dict(),
                "method": self.method,
                "options": None if self.options is None else dict(self.options),
            },
            "spec",
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "SolvePointSpec":
        body = _spec_payload(payload, "solve_point")
        options = body.get("options")
        return cls(
            problem=LayoutProblemSpec.from_dict(body["problem"]),
            method=body.get("method", "lpnlp"),
            options=None if options is None else dict(options),
        )


# -- the full tuning request -------------------------------------------------------


@dataclass(frozen=True)
class BudgetSpec(_SpecBase):
    """Wall-clock and retry budget for one tuning request."""

    deadline: float | None = None     # seconds for gather+solve
    max_retries: int | None = None    # benchmark retry attempts per point

    def to_dict(self) -> dict:
        return {"deadline": self.deadline, "max_retries": self.max_retries}

    @classmethod
    def from_dict(cls, payload: dict) -> "BudgetSpec":
        unknown = set(payload) - {"deadline", "max_retries"}
        _require(not unknown, f"budget spec: unknown keys {sorted(unknown)}")
        deadline = payload.get("deadline")
        retries = payload.get("max_retries")
        return cls(
            deadline=None if deadline is None else float(deadline),
            max_retries=None if retries is None else int(retries),
        )

    @property
    def empty(self) -> bool:
        return self.deadline is None and self.max_retries is None


@dataclass(frozen=True)
class TuneSpec(_SpecBase):
    """One complete tuning request as data (the service-layer unit).

    ``curves`` and ``benchmarks`` are the "curves-or-benchmark-data" slot:
    with ``curves`` set the request skips gather *and* fit (the paper's
    Sec. III-F shortcut, fully pinned); with ``benchmarks`` set it skips
    gather and refits; with neither the four-step pipeline runs end to end
    against the case's calibrated simulator.
    """

    case: CaseSpec
    points: int = 5
    objective: str = "min_max"
    method: str = "lpnlp"
    fine_tuning: bool = False
    reuse: bool = False
    curves: dict | None = None        # comp value -> {"a","b","c","d"}
    benchmarks: dict | None = None    # comp value -> {"nodes": [...], "seconds": [...]}
    options: dict | None = None       # canonical MINLPOptions dict
    fit_options: dict | None = None
    budget: BudgetSpec | None = None
    fault_profile: dict | None = None

    kind = "tune"

    def __post_init__(self):
        _require(
            self.objective in _OBJECTIVES,
            f"unknown objective {self.objective!r}; known: {_OBJECTIVES}",
        )
        _require(
            self.method in _METHODS,
            f"unknown method {self.method!r}; known: {_METHODS}",
        )
        _require(
            self.curves is None or self.benchmarks is None,
            "a TuneSpec carries curves or benchmark data, not both",
        )

    # -- live-object views -------------------------------------------------------

    def to_pipeline(self):
        """A configured :class:`~repro.hslb.HSLBPipeline` for this request."""
        from repro.spec.registry import build_from_spec

        return build_from_spec(self)

    def pinned_fits(self) -> dict | None:
        """``{ComponentId: PinnedFit}`` when the spec carries curves."""
        if self.curves is None:
            return None
        return {
            comp: PinnedFit(model=model)
            for comp, model in curves_from_dict(self.curves).items()
        }

    def benchmark_data(self):
        """A :class:`~repro.hslb.BenchmarkData` when the spec carries samples."""
        if self.benchmarks is None:
            return None
        from repro.hslb.gather import BenchmarkData

        data = BenchmarkData()
        for key, block in self.benchmarks.items():
            data.add(_component(key), block["nodes"], block["seconds"])
        return data

    def run(self):
        """Execute the request; returns an ``HSLBRunResult``."""
        return self.to_pipeline().run(
            data=self.benchmark_data(), fits=self.pinned_fits()
        )

    def to_dict(self) -> dict:
        budget = self.budget
        if budget is not None and budget.empty:
            budget = None
        return stamp(
            {
                "kind": self.kind,
                "case": self.case.to_dict(),
                "points": int(self.points),
                "objective": self.objective,
                "method": self.method,
                "fine_tuning": bool(self.fine_tuning),
                "reuse": bool(self.reuse),
                "curves": (
                    None if self.curves is None
                    else {k: dict(v) for k, v in sorted(self.curves.items())}
                ),
                "benchmarks": (
                    None if self.benchmarks is None
                    else {
                        k: {
                            "nodes": [int(n) for n in block["nodes"]],
                            "seconds": [float(t) for t in block["seconds"]],
                        }
                        for k, block in sorted(self.benchmarks.items())
                    }
                ),
                "options": None if self.options is None else dict(self.options),
                "fit_options": (
                    None if self.fit_options is None else dict(self.fit_options)
                ),
                "budget": None if budget is None else budget.to_dict(),
                "fault_profile": (
                    None if self.fault_profile is None else dict(self.fault_profile)
                ),
            },
            "spec",
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "TuneSpec":
        body = _spec_payload(payload, "tune")
        budget = body.get("budget")
        return cls(
            case=CaseSpec.from_dict(body["case"]),
            points=int(body.get("points", 5)),
            objective=body.get("objective", "min_max"),
            method=body.get("method", "lpnlp"),
            fine_tuning=bool(body.get("fine_tuning", False)),
            reuse=bool(body.get("reuse", False)),
            curves=body.get("curves"),
            benchmarks=body.get("benchmarks"),
            options=body.get("options"),
            fit_options=body.get("fit_options"),
            budget=None if budget is None else BudgetSpec.from_dict(budget),
            fault_profile=body.get("fault_profile"),
        )


# -- fit options / fault profiles (plain dataclass payloads) -----------------------


def fit_options_to_dict(options) -> dict:
    """Canonical dict of a :class:`repro.fitting.FitOptions`."""
    out = {}
    for f in dataclasses.fields(options):
        value = getattr(options, f.name)
        out[f.name] = list(value) if isinstance(value, tuple) else value
    return out


def fit_options_from_dict(payload: dict):
    from repro.fitting import FitOptions

    known = {f.name for f in dataclasses.fields(FitOptions)}
    unknown = set(payload) - known
    _require(not unknown, f"FitOptions: unknown keys {sorted(unknown)}")
    kwargs = dict(payload)
    if "c_bounds" in kwargs:
        kwargs["c_bounds"] = tuple(kwargs["c_bounds"])
    return FitOptions(**kwargs)


def fault_profile_to_dict(profile) -> dict:
    """Canonical dict of a :class:`repro.resilience.FaultProfile`."""
    out = {}
    for f in dataclasses.fields(profile):
        value = getattr(profile, f.name)
        if f.name == "hot_components":
            value = [[str(k), float(v)] for k, v in dict(value).items()]
        out[f.name] = value
    return out


def fault_profile_from_dict(payload: dict):
    from repro.resilience import FaultProfile

    known = {f.name for f in dataclasses.fields(FaultProfile)}
    unknown = set(payload) - known
    _require(not unknown, f"FaultProfile: unknown keys {sorted(unknown)}")
    kwargs = dict(payload)
    if "hot_components" in kwargs:
        kwargs["hot_components"] = tuple(
            (str(k), float(v)) for k, v in kwargs["hot_components"]
        )
    return FaultProfile(**kwargs)


def case_from_spec(spec):
    """Registry builder for ``kind="case"``: spec or payload -> CESMCase."""
    if isinstance(spec, dict):
        spec = CaseSpec.from_dict(spec)
    return spec.to_case()


# -- generic dispatch --------------------------------------------------------------

_SPEC_CLASSES = {
    "machine": MachineSpec,
    "case": CaseSpec,
    "layout_model": LayoutProblemSpec,
    "solve_point": SolvePointSpec,
    "tune": TuneSpec,
}


def spec_from_dict(payload: dict):
    """Rebuild any spec from its stamped payload, dispatching on ``kind``."""
    check_schema(payload, "spec")
    kind = payload.get("kind")
    try:
        cls = _SPEC_CLASSES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown spec kind {kind!r}; known: {sorted(_SPEC_CLASSES)}"
        ) from None
    return cls.from_dict(payload)


def spec_from_json(text: str):
    return spec_from_dict(json.loads(text))
