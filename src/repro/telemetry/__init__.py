"""repro.telemetry — metrics, tracing spans, and exporters.

The observability layer for the whole library: solvers, the kernel
cache, the reuse machinery, the supervised fleet, and the tuning
service all record into one process-local
:class:`~repro.telemetry.registry.MetricsRegistry` through the
module-level helpers here.

**Off by default, and free when off.**  The helpers read one module
global; when no registry is active (:data:`_ACTIVE` is ``None``),
:func:`count`/:func:`observe`/:func:`gauge` return immediately and
:func:`span` returns a shared no-op singleton — a global load and a
``None`` check per call site.  Telemetry only ever *records*; no solver
or service decision reads it, so enabled and disabled runs are
bit-identical by construction (the differential tests assert it).

Enable explicitly::

    import repro.telemetry as telemetry
    telemetry.enable()
    ...
    print(telemetry.render_report(telemetry.get_registry().snapshot()))

or set ``REPRO_TELEMETRY=1`` in the environment before the first import
to auto-enable (how the CI telemetry job and the daemon under
observation turn it on without code changes).

:func:`monotonic` is re-exported from :mod:`repro.util.timing`: spans,
stopwatches, deadlines and heartbeats all read the same clock.
"""

from __future__ import annotations

import os

from repro.telemetry import names
from repro.telemetry.export import render_report, to_prometheus
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import NOOP_SPAN, SpanRecord, SpanRecorder
from repro.util.timing import monotonic

__all__ = [
    "MetricsRegistry",
    "SpanRecord",
    "SpanRecorder",
    "names",
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "count",
    "gauge",
    "observe",
    "span",
    "to_prometheus",
    "render_report",
    "monotonic",
]

#: The active registry, or ``None`` when telemetry is off.  Module-level
#: so the disabled fast path is a single global load per call.
_ACTIVE: MetricsRegistry | None = None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn telemetry on, optionally installing a caller-owned registry.

    Idempotent: enabling while already enabled keeps the current
    registry unless a new one is passed.  Returns the active registry.
    """
    global _ACTIVE
    if registry is not None:
        _ACTIVE = registry
    elif _ACTIVE is None:
        _ACTIVE = MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    """Turn telemetry off; recorded data is dropped with the registry."""
    global _ACTIVE
    _ACTIVE = None


def enabled() -> bool:
    return _ACTIVE is not None


def get_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` when disabled."""
    return _ACTIVE


# -- fast-path recording helpers (safe to call unconditionally) ---------------------


def count(name: str, amount: float = 1, **labels) -> None:
    """Increment a counter on the active registry (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.count(name, amount, **labels)


def gauge(name: str, value: float, **labels) -> None:
    """Set a gauge on the active registry (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value, **labels)


def span(name: str):
    """A context manager timing one unit of work.

    Disabled: returns the shared :data:`~repro.telemetry.spans.NOOP_SPAN`
    singleton (zero allocation).  Enabled: a live span that nests on the
    calling thread's stack and lands in the registry's ring buffer and
    ``(name, parent)`` aggregates.
    """
    if _ACTIVE is None:
        return NOOP_SPAN
    return _ACTIVE.spans.open(name)


# -- delta shipping (supervised workers) --------------------------------------------


def mark() -> dict | None:
    """A delta baseline, or ``None`` when disabled."""
    return None if _ACTIVE is None else _ACTIVE.mark()


def export_delta(baseline: dict | None) -> dict | None:
    """Everything recorded since :func:`mark` (``None`` when disabled).

    A ``None`` baseline (telemetry enabled after the mark, or disabled
    at mark time) exports the full current state — with fork-started
    workers the child inherits the parent's counts, which is why callers
    always mark before the work they want attributed.
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.export_delta(baseline if baseline is not None else {})


def merge_delta(delta: dict | None) -> None:
    """Fold a worker-shipped delta into the active registry.

    Tolerates ``None`` (worker had telemetry off) and being disabled
    locally (delta dropped) so call sites need no conditionals.
    """
    if delta is not None and _ACTIVE is not None:
        _ACTIVE.merge_delta(delta)


if os.environ.get("REPRO_TELEMETRY", "").strip().lower() in (
    "1", "true", "on", "yes",
):
    enable()
