"""Exporters for registry snapshots: Prometheus text format and a report table.

Both exporters consume the JSON-safe dict from
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`, never the
registry itself, so a snapshot loaded from disk (or shipped over the
service protocol by the ``stats`` verb) exports identically to a live
one.

The Prometheus exposition rules applied here:

- metric names rewrite ``.`` to ``_`` (dots are invalid in the format);
- histogram bucket counts are *cumulated* at export time — internally
  the registry keeps per-bucket counts — and emitted as
  ``name_bucket{le="..."}`` series ending in ``le="+Inf"``, plus
  ``name_sum`` and ``name_count``;
- label values escape backslash, double-quote and newline;
- every family gets one ``# TYPE`` line, and span aggregates export as a
  pair of synthetic families ``repro_span_seconds_total`` /
  ``repro_span_count_total`` labeled by name and parent.
"""

from __future__ import annotations

from repro.util.tables import TextTable, format_seconds

__all__ = ["to_prometheus", "render_report"]


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _escape(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape(merged[key])}"' for key in sorted(merged)
    )
    return "{" + body + "}"


def _format_value(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines = []
    for name, series in snapshot.get("counters", {}).items():
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        for entry in series:
            lines.append(
                f"{prom}{_labels(entry['labels'])} "
                f"{_format_value(entry['value'])}"
            )
    for name, series in snapshot.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        for entry in series:
            lines.append(
                f"{prom}{_labels(entry['labels'])} "
                f"{_format_value(entry['value'])}"
            )
    for name, series in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        for entry in series:
            cumulative = 0
            for bound, count in zip(entry["bounds"], entry["counts"]):
                cumulative += count
                lines.append(
                    f"{prom}_bucket{_labels(entry['labels'], {'le': _format_value(float(bound))})} "
                    f"{cumulative}"
                )
            cumulative += entry["counts"][-1]
            lines.append(
                f"{prom}_bucket{_labels(entry['labels'], {'le': '+Inf'})} "
                f"{cumulative}"
            )
            lines.append(
                f"{prom}_sum{_labels(entry['labels'])} "
                f"{_format_value(float(entry['sum']))}"
            )
            lines.append(
                f"{prom}_count{_labels(entry['labels'])} {entry['count']}"
            )
    spans = snapshot.get("spans", {})
    if spans:
        lines.append("# TYPE repro_span_seconds_total counter")
        for agg in spans.values():
            labels = {"name": agg["name"], "parent": agg["parent"] or ""}
            lines.append(
                f"repro_span_seconds_total{_labels(labels)} "
                f"{_format_value(float(agg['seconds']))}"
            )
        lines.append("# TYPE repro_span_count_total counter")
        for agg in spans.values():
            labels = {"name": agg["name"], "parent": agg["parent"] or ""}
            lines.append(
                f"repro_span_count_total{_labels(labels)} "
                f"{_format_value(agg['count'])}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={labels[k]}" for k in sorted(labels)) + "}"


def render_report(snapshot: dict) -> str:
    """A human-readable table of every series in the snapshot."""
    sections = []

    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        table = TextTable(["metric", "labels", "value"])
        for name, series in counters.items():
            for entry in series:
                table.add_row([name, _labels_text(entry["labels"]) or "-",
                               _format_value(entry["value"])])
        for name, series in gauges.items():
            for entry in series:
                table.add_row([name, _labels_text(entry["labels"]) or "-",
                               _format_value(entry["value"])])
        sections.append("counters and gauges\n" + table.render())

    hists = snapshot.get("histograms", {})
    if hists:
        table = TextTable(["histogram", "labels", "count", "sum", "mean"])
        for name, series in hists.items():
            for entry in series:
                count = entry["count"]
                mean = entry["sum"] / count if count else 0.0
                table.add_row([
                    name, _labels_text(entry["labels"]) or "-", str(count),
                    format_seconds(entry["sum"]), format_seconds(mean),
                ])
        sections.append("histograms\n" + table.render())

    spans = snapshot.get("spans", {})
    if spans:
        table = TextTable(["span", "parent", "count", "seconds", "mean"])
        for agg in spans.values():
            count = agg["count"]
            mean = agg["seconds"] / count if count else 0.0
            table.add_row([
                agg["name"], agg["parent"] or "-", str(count),
                format_seconds(agg["seconds"]), format_seconds(mean),
            ])
        sections.append("spans\n" + table.render())

    if not sections:
        return "(no telemetry recorded)\n"
    return "\n\n".join(sections) + "\n"
