"""The metric name catalog: every series the library emits, in one place.

Names are dotted paths, ``<subsystem>.<what>`` (Prometheus export
rewrites the dots to underscores).  Keeping the catalog central does two
jobs: instrumented call sites share constants instead of scattering
string literals, and histogram *bucket bounds* are fixed here — bounds
are part of a metric's identity, so two processes (a daemon and its
supervised workers, say) always bucket the same metric the same way and
their deltas merge exactly.

Counter and gauge names carry no bounds; histogram names must appear in
:data:`BUCKETS` (or fall back to :data:`DEFAULT_BUCKETS`).
"""

from __future__ import annotations

# -- MINLP solvers (repro.minlp) ---------------------------------------------------

MINLP_SOLVES = "minlp.solves"              # counter{solver=} trees started
MINLP_NODES = "minlp.nodes"                # counter{solver=} B&B nodes popped
MINLP_NLP_SOLVES = "minlp.nlp_solves"      # counter{solver=} barrier calls
MINLP_CUTS_ADDED = "minlp.cuts_added"      # counter: OA cuts entering the master
MINLP_LP_ITERATIONS = "minlp.lp_iterations"  # counter: simplex iterations

# -- kernel cache (repro.kernels) --------------------------------------------------

KERNEL_HITS = "kernels.hits"               # counter: cache lookups answered
KERNEL_MISSES = "kernels.misses"           # counter: lookups that compiled
KERNEL_COMPILES = "kernels.compiles"       # counter: kernel builds

# -- cross-solve reuse (repro.reuse) -----------------------------------------------

REUSE_PLANS = "reuse.plans"                # counter: SolveFamily.plan calls
REUSE_CUTS_CARRIED = "reuse.cuts_carried"  # counter: carried cuts installed
REUSE_INCUMBENT_SEEDED = "reuse.incumbent_seeded"    # counter
REUSE_INCUMBENT_REJECTED = "reuse.incumbent_rejected"  # counter
REUSE_BASIS_REUSED = "reuse.basis_reused"  # counter: root bases replayed
REUSE_SEED_NLP_SKIPPED = "reuse.seed_nlp_skipped"  # counter: covered pools

# -- service tiers (repro.service) -------------------------------------------------

EXACT_HITS = "service.exact.hits"          # counter: tier-1 memo hits
EXACT_MISSES = "service.exact.misses"      # counter: tier-1 misses
EXACT_EVICTIONS = "service.exact.evictions"  # counter: LRU drops
WARM_POOL_LEASES = "service.warm_pool.leases"  # counter{tier=warm|cold}
WARM_POOL_EVICTED = "service.warm_pool.evicted"      # counter: LRU drops
WARM_POOL_DOWNGRADED = "service.warm_pool.downgraded"  # counter: spread guard

SERVICE_REQUESTS = "service.requests"      # counter{status=,tier=}
SERVICE_BATCH_SIZE = "service.batch_size"  # histogram: compatible group sizes
SERVICE_REQUEST_SECONDS = "service.request_seconds"  # histogram{kind=}
SERVICE_QUEUE_DEPTH = "service.queue_depth"  # gauge: in-flight solve requests

# -- supervised fleet (repro.parallel.supervised) ----------------------------------

FLEET_WORKER_CRASHES = "fleet.worker_crashes"    # counter
FLEET_WORKER_HANGS = "fleet.worker_hangs"        # counter
FLEET_WORKER_RESPAWNS = "fleet.worker_respawns"  # counter
FLEET_TASKS_POISONED = "fleet.tasks_poisoned"    # counter
FLEET_TASK_RETRIES = "fleet.task_retries"        # counter
FLEET_RESPAWN_SECONDS = "fleet.respawn_seconds"  # histogram: kill+spawn time
FLEET_HEARTBEAT_GAP_SECONDS = "fleet.heartbeat_gap_seconds"  # histogram
FLEET_WORKER_DELTAS = "fleet.worker_deltas"      # counter: deltas merged back

# -- service client (repro.service.client) -----------------------------------------

CLIENT_REJECTED_RETRIES = "client.rejected_retries"  # counter: backoff retries

# -- histogram bucket bounds -------------------------------------------------------

#: Upper bucket bounds (seconds) for latency-shaped histograms.  A
#: ``+Inf`` bucket is implicit; counts are per-bucket (non-cumulative)
#: internally and cumulated only at Prometheus export time.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Upper bounds for small-integer size histograms (batch sizes).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: The fallback for histogram names not listed in :data:`BUCKETS`.
DEFAULT_BUCKETS = LATENCY_BUCKETS

#: Fixed, deterministic bucket bounds per histogram metric name.
BUCKETS = {
    SERVICE_BATCH_SIZE: SIZE_BUCKETS,
    SERVICE_REQUEST_SECONDS: LATENCY_BUCKETS,
    FLEET_RESPAWN_SECONDS: LATENCY_BUCKETS,
    FLEET_HEARTBEAT_GAP_SECONDS: LATENCY_BUCKETS,
}


def buckets_for(name: str) -> tuple:
    """The catalog bounds for histogram ``name`` (never empty)."""
    return BUCKETS.get(name, DEFAULT_BUCKETS)
