"""The process-local metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every series a process records.  The
design constraints come from the rest of the library:

- **Deterministic structure.**  Metric *values* are timing-dependent,
  but the series that exist, their label sets and their histogram bucket
  bounds are pure functions of the code path taken — bounds come from
  the :mod:`~repro.telemetry.names` catalog, never from observed data —
  so two processes running the same work produce mergeable, comparable
  snapshots.
- **Cross-process aggregation.**  Supervised workers record into their
  own registry and ship the *delta* accumulated during each task back
  with the task's result (:meth:`mark` / :meth:`export_delta`); the
  parent folds deltas in submission order with :meth:`merge_delta` —
  the same discipline :class:`~repro.reuse.FamilyDelta` uses.  Counter
  and histogram merges are additive, gauges are last-write-wins, so the
  merged registry equals what one process doing all the work would hold.
- **Thread safety.**  The service daemon touches one registry from the
  event loop, the solver thread and the supervisor; every mutation takes
  the registry lock.  (The fast *disabled* path never reaches here — see
  :func:`repro.telemetry.count`.)

Snapshots are plain JSON-safe dicts (sorted, canonical label encoding),
ready for the exporters in :mod:`repro.telemetry.export` and for
:mod:`repro.io` persistence.
"""

from __future__ import annotations

import bisect
import threading

from repro.exceptions import ConfigurationError
from repro.telemetry.names import buckets_for
from repro.telemetry.spans import SpanRecorder

__all__ = ["MetricsRegistry", "labels_key"]


def labels_key(labels: dict) -> tuple:
    """Canonical hashable identity of one label set (sorted pairs)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Hist:
    """One histogram series: per-bucket counts plus sum/count."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Counters, gauges and histograms with labeled series.

    ``span_capacity`` bounds the tracing ring buffer (see
    :class:`~repro.telemetry.spans.SpanRecorder`).
    """

    def __init__(self, span_capacity: int = 4096):
        self._lock = threading.Lock()
        self._counters: dict = {}   # name -> {labels_key: value}
        self._gauges: dict = {}     # name -> {labels_key: value}
        self._hists: dict = {}      # name -> {labels_key: _Hist}
        self.spans = SpanRecorder(span_capacity)

    # -- recording ---------------------------------------------------------------

    def count(self, name: str, amount: float = 1, **labels) -> None:
        """Add ``amount`` to counter ``name`` for this label set."""
        key = labels_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + amount

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        key = labels_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record ``value`` into histogram ``name``.

        Bucket bounds are fixed by the :mod:`~repro.telemetry.names`
        catalog at first use — never derived from the data — so the same
        metric buckets identically in every process.
        """
        key = labels_key(labels)
        with self._lock:
            series = self._hists.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = _Hist(buckets_for(name))
            hist.observe(float(value))

    # -- reading (tests and reports) ---------------------------------------------

    def get_count(self, name: str, **labels):
        """Current counter value (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, {}).get(labels_key(labels), 0)

    def get_gauge(self, name: str, **labels):
        with self._lock:
            return self._gauges.get(name, {}).get(labels_key(labels))

    def counter_total(self, name: str):
        """Sum of counter ``name`` across all label sets."""
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    # -- snapshots ---------------------------------------------------------------

    @staticmethod
    def _series_list(series: dict, render) -> list:
        return [
            {"labels": dict(key), **render(value)}
            for key, value in sorted(series.items())
        ]

    def snapshot(self) -> dict:
        """JSON-safe view of every series, sorted for stable output."""
        with self._lock:
            counters = {
                name: self._series_list(series, lambda v: {"value": v})
                for name, series in sorted(self._counters.items())
            }
            gauges = {
                name: self._series_list(series, lambda v: {"value": v})
                for name, series in sorted(self._gauges.items())
            }
            hists = {
                name: self._series_list(
                    series,
                    lambda h: {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    },
                )
                for name, series in sorted(self._hists.items())
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
            "spans": self.spans.aggregates(),
        }

    # -- cross-process deltas (the FamilyDelta discipline) -------------------------

    def mark(self) -> dict:
        """A baseline for :meth:`export_delta` (a plain snapshot)."""
        return self.snapshot()

    def export_delta(self, mark: dict) -> dict:
        """Everything recorded since ``mark``, as a mergeable JSON-safe dict.

        Counters and histogram counts/sums are subtracted; gauges carry
        their current value (merge is last-write-wins); span aggregates
        subtract like counters.  Empty diffs are dropped, so an idle
        interval exports ``{}``-shaped sections.
        """
        now = self.snapshot()
        delta = {"counters": {}, "gauges": now["gauges"], "histograms": {},
                 "spans": {}}
        for name, series in now["counters"].items():
            base = _by_labels(mark.get("counters", {}).get(name, []))
            diffs = []
            for entry in series:
                prev = base.get(labels_key(entry["labels"]), {"value": 0})
                d = entry["value"] - prev["value"]
                if d:
                    diffs.append({"labels": entry["labels"], "value": d})
            if diffs:
                delta["counters"][name] = diffs
        for name, series in now["histograms"].items():
            base = _by_labels(mark.get("histograms", {}).get(name, []))
            diffs = []
            for entry in series:
                prev = base.get(labels_key(entry["labels"]))
                if prev is None:
                    d_counts = list(entry["counts"])
                    d_sum, d_count = entry["sum"], entry["count"]
                else:
                    if list(prev["bounds"]) != list(entry["bounds"]):
                        raise ConfigurationError(
                            f"histogram {name!r} changed bucket bounds between "
                            "mark and delta export"
                        )
                    d_counts = [a - b for a, b in zip(entry["counts"], prev["counts"])]
                    d_sum = entry["sum"] - prev["sum"]
                    d_count = entry["count"] - prev["count"]
                if d_count:
                    diffs.append({
                        "labels": entry["labels"], "bounds": list(entry["bounds"]),
                        "counts": d_counts, "sum": d_sum, "count": d_count,
                    })
            if diffs:
                delta["histograms"][name] = diffs
        for key, agg in now["spans"].items():
            prev = mark.get("spans", {}).get(key, {"count": 0, "seconds": 0.0})
            d_count = agg["count"] - prev["count"]
            if d_count:
                delta["spans"][key] = {
                    "name": agg["name"], "parent": agg["parent"],
                    "count": d_count, "seconds": agg["seconds"] - prev["seconds"],
                }
        return delta

    def merge_delta(self, delta: dict) -> None:
        """Fold a worker's :meth:`export_delta` in (submission order)."""
        for name, series in delta.get("counters", {}).items():
            for entry in series:
                self.count(name, entry["value"], **entry["labels"])
        for name, series in delta.get("gauges", {}).items():
            for entry in series:
                self.gauge(name, entry["value"], **entry["labels"])
        for name, series in delta.get("histograms", {}).items():
            key_of = labels_key
            with self._lock:
                slot = self._hists.setdefault(name, {})
                for entry in series:
                    hist = slot.get(key_of(entry["labels"]))
                    if hist is None:
                        hist = slot[key_of(entry["labels"])] = _Hist(
                            tuple(entry["bounds"])
                        )
                    if list(hist.bounds) != list(entry["bounds"]):
                        raise ConfigurationError(
                            f"histogram {name!r} delta has mismatched bucket "
                            "bounds"
                        )
                    hist.counts = [
                        a + b for a, b in zip(hist.counts, entry["counts"])
                    ]
                    hist.sum += entry["sum"]
                    hist.count += entry["count"]
        for key, agg in delta.get("spans", {}).items():
            self.spans.merge_aggregate(
                agg["name"], agg["parent"], agg["count"], agg["seconds"]
            )

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
        self.spans.clear()


def _by_labels(series: list) -> dict:
    return {labels_key(entry["labels"]): entry for entry in series}
