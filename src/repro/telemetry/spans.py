"""Lightweight tracing spans: nested, monotonic-timed, bounded.

A span brackets one unit of work — ``with span("bnb.node"):`` around the
branch-and-bound node loop body, ``with span("service.request"):`` around
a daemon request.  Spans nest: each thread keeps its own stack, so a
``"nlp.solve"`` opened inside ``"bnb.node"`` records ``parent="bnb.node"``
and ``depth=1``, and concurrent daemon threads never see each other's
stacks.

Two views of the recorded data:

- a **ring buffer** of the most recent :class:`SpanRecord` objects
  (bounded ``deque`` — tracing a million-node tree costs a fixed amount
  of memory, keeping only the tail for inspection), and
- **aggregates** keyed by ``(name, parent)`` — total count and seconds —
  which never drop data, survive the ring buffer's eviction, and merge
  across processes like counters (see
  :meth:`~repro.telemetry.registry.MetricsRegistry.export_delta`).

Timing reads :func:`repro.util.timing.monotonic`, the same clock as
stopwatches and deadlines.  The *disabled* fast path never allocates:
:data:`NOOP_SPAN` is a shared singleton context manager returned by
:func:`repro.telemetry.span` when telemetry is off.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.util.timing import monotonic

__all__ = ["SpanRecord", "SpanRecorder", "NOOP_SPAN"]


@dataclass
class SpanRecord:
    """One finished span, as kept in the ring buffer."""

    name: str
    parent: str | None
    depth: int
    start: float        # monotonic seconds (comparable within one process)
    duration: float


class _NoopSpan:
    """The shared do-nothing context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


#: Singleton returned by :func:`repro.telemetry.span` when disabled —
#: entering it is a constant-time no-op with zero allocation.
NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An open span; created by :meth:`SpanRecorder.open`."""

    __slots__ = ("_recorder", "name", "parent", "depth", "_t0")

    def __init__(self, recorder: "SpanRecorder", name: str):
        self._recorder = recorder
        self.name = name

    def __enter__(self):
        stack = self._recorder._stack()
        self.parent = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self.name)
        self._t0 = monotonic()
        return self

    def __exit__(self, *exc):
        duration = monotonic() - self._t0
        stack = self._recorder._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._recorder._finish(
            SpanRecord(self.name, self.parent, self.depth, self._t0, duration)
        )
        return False


class SpanRecorder:
    """Per-registry span storage: ring buffer plus (name, parent) aggregates."""

    def __init__(self, capacity: int = 4096):
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._agg: dict = {}  # (name, parent) -> [count, seconds]
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def open(self, name: str) -> _LiveSpan:
        """A context manager that records one span under ``name``."""
        return _LiveSpan(self, name)

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self._ring.append(record)
            slot = self._agg.get((record.name, record.parent))
            if slot is None:
                self._agg[(record.name, record.parent)] = [1, record.duration]
            else:
                slot[0] += 1
                slot[1] += record.duration

    def merge_aggregate(
        self, name: str, parent: str | None, count: int, seconds: float
    ) -> None:
        """Fold a shipped aggregate in (ring entries do not cross processes)."""
        with self._lock:
            slot = self._agg.get((name, parent))
            if slot is None:
                self._agg[(name, parent)] = [count, seconds]
            else:
                slot[0] += count
                slot[1] += seconds

    def recent(self) -> list:
        """The ring buffer's current contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def aggregates(self) -> dict:
        """JSON-safe ``{"name|parent": {...}}`` totals, sorted for stability.

        The key joins name and parent with ``"|"`` (parent ``None``
        renders as the empty string) so the dict survives JSON, where
        tuple keys cannot.
        """
        with self._lock:
            items = sorted(
                ((name, parent, count, seconds)
                 for (name, parent), (count, seconds) in self._agg.items()),
                key=lambda item: (item[0], item[1] or ""),
            )
        return {
            f"{name}|{parent or ''}": {
                "name": name,
                "parent": parent,
                "count": count,
                "seconds": seconds,
            }
            for name, parent, count, seconds in items
        }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._agg.clear()
