"""Shared utilities: validation, RNG plumbing, text tables, timers."""

from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_integer,
    check_in_range,
    check_finite_array,
)
from repro.util.rng import as_rng, spawn_child
from repro.util.tables import TextTable, format_seconds
from repro.util.timing import Counters, Stopwatch, monotonic

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_integer",
    "check_in_range",
    "check_finite_array",
    "as_rng",
    "spawn_child",
    "TextTable",
    "format_seconds",
    "Stopwatch",
    "Counters",
    "monotonic",
]
