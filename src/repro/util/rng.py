"""Seeded random-number-generator plumbing.

Everything stochastic in this library (simulator noise, multistart fitting,
baseline tie-breaking) takes a ``seed`` argument that may be an int, ``None``,
or an existing :class:`numpy.random.Generator`.  :func:`as_rng` normalizes the
three forms; :func:`spawn_child` derives independent child streams so that two
subsystems seeded from the same parent never share a sequence.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator"


def as_rng(seed) -> np.random.Generator:
    """Normalize ``seed`` (int, None, or Generator) to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _fnv64(tag: str) -> int:
    """Stable 64-bit FNV-1a hash (Python's hash() is salted per process)."""
    h = 1469598103934665603
    for byte in tag.encode("utf-8"):
        h = ((h ^ byte) * 1099511628211) % (1 << 64)
    return h


def keyed_rng(seed: int, *tags: str) -> np.random.Generator:
    """A generator that is a *pure function* of ``(seed, tags)``.

    Unlike sequential draws from a shared generator, the stream for a given
    key never depends on what other keys were used before it — the property
    the simulator relies on so that "the measurement at configuration X" is
    one fixed value regardless of experiment ordering.
    """
    entropy = [int(seed) & ((1 << 63) - 1)] + [_fnv64(t) for t in tags]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_child(rng: np.random.Generator, tag: str) -> np.random.Generator:
    """Derive a child generator from ``rng`` keyed by ``tag``.

    NOTE: this *consumes one draw from the parent*, so two children spawned
    from the same parent object in sequence differ even under the same tag.
    Use :func:`keyed_rng` when the child stream must depend only on a seed
    and a key (order-independence).
    """
    mix = rng.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng(np.random.SeedSequence([int(mix), _fnv64(tag)]))
