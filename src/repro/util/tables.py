"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them with aligned columns so `pytest -s` / CLI output is
directly comparable against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_seconds(value: float) -> str:
    """Format a wall-clock time the way the paper's tables do (3 decimals)."""
    return f"{value:.3f}"


@dataclass
class TextTable:
    """A small monospace table builder.

    >>> t = TextTable(["component", "# nodes", "time, sec"])
    >>> t.add_row(["atm", 104, 306.952])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: list
    rows: list = field(default_factory=list)
    title: str = ""

    def add_row(self, row) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([self._fmt(cell) for cell in row])

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            return format_seconds(cell)
        return str(cell)

    def render(self) -> str:
        headers = [str(h) for h in self.headers]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells):
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        out = []
        if self.title:
            out.append(self.title)
        out.append(line(headers))
        out.append("  ".join("-" * w for w in widths))
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
