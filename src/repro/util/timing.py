"""A tiny stopwatch and event counters for solver instrumentation.

Solvers report wall-clock spent per phase (relaxation solves, cut
generation, branching) in their result objects; :class:`Stopwatch` keeps
that bookkeeping out of the algorithm code.  :class:`Counters` does the
same for *event counts* — kernel compiles, cache hits, batched evaluation
points — which the kernel layer accumulates and the MINLP solvers surface
in their solve reports.

:func:`monotonic` is the one clock every timing layer reads —
:class:`Stopwatch` phases, :class:`~repro.resilience.retry.Deadline`
budgets, supervised-worker heartbeats, and :mod:`repro.telemetry` spans.
A single helper means a span opened around a deadline-checked stage can
never disagree with the deadline about how much time passed.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


def monotonic() -> float:
    """Seconds on the shared monotonic clock (never goes backwards).

    All repro timing — stopwatches, deadlines, heartbeats, telemetry
    spans — measures durations as differences of this value, so the
    layers can be compared against each other without clock skew.
    """
    return time.monotonic()


class Stopwatch:
    """Accumulates wall-clock time per named phase.

    >>> sw = Stopwatch()
    >>> with sw.phase("lp"):
    ...     pass
    >>> sw.total() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._elapsed: dict[str, float] = defaultdict(float)
        self._counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def phase(self, name: str):
        start = monotonic()
        try:
            yield
        finally:
            self._elapsed[name] += monotonic() - start
            self._counts[name] += 1

    def elapsed(self, name: str) -> float:
        """Seconds accumulated in phase ``name`` (0.0 if never entered)."""
        return self._elapsed.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times phase ``name`` was entered."""
        return self._counts.get(name, 0)

    def total(self) -> float:
        """Total seconds across all phases."""
        return sum(self._elapsed.values())

    def summary(self) -> dict:
        """``{phase: (seconds, count)}`` snapshot."""
        return {k: (self._elapsed[k], self._counts[k]) for k in self._elapsed}


class Counters:
    """Named monotonic event counters.

    >>> c = Counters()
    >>> c.incr("kernel_hits")
    >>> c.incr("kernel_hits", 2)
    >>> c.get("kernel_hits")
    3
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0 on first use)."""
        self._counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def ratio(self, numer: str, *denoms: str) -> float:
        """``numer / sum(denoms)``, or 0.0 when the denominator is empty.

        ``counters.ratio("kernel_hits", "kernel_hits", "kernel_misses")``
        is the cache hit rate.
        """
        total = sum(self.get(d) for d in denoms)
        return self.get(numer) / total if total else 0.0

    def merge(self, other: "Counters") -> None:
        """Accumulate ``other``'s counts into this instance."""
        for name, count in other._counts.items():
            self._counts[name] += count

    def summary(self) -> dict:
        """Plain ``{name: count}`` snapshot (sorted for stable reports)."""
        return {k: self._counts[k] for k in sorted(self._counts)}
