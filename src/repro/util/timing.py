"""A tiny stopwatch for solver instrumentation.

Solvers report wall-clock spent per phase (relaxation solves, cut
generation, branching) in their result objects; :class:`Stopwatch` keeps
that bookkeeping out of the algorithm code.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


class Stopwatch:
    """Accumulates wall-clock time per named phase.

    >>> sw = Stopwatch()
    >>> with sw.phase("lp"):
    ...     pass
    >>> sw.total() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._elapsed: dict[str, float] = defaultdict(float)
        self._counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self._elapsed[name] += time.perf_counter() - start
            self._counts[name] += 1

    def elapsed(self, name: str) -> float:
        """Seconds accumulated in phase ``name`` (0.0 if never entered)."""
        return self._elapsed.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times phase ``name`` was entered."""
        return self._counts.get(name, 0)

    def total(self) -> float:
        """Total seconds across all phases."""
        return sum(self._elapsed.values())

    def summary(self) -> dict:
        """``{phase: (seconds, count)}`` snapshot."""
        return {k: (self._elapsed[k], self._counts[k]) for k in self._elapsed}
