"""Lightweight argument validation helpers.

These raise :class:`ValueError`/:class:`TypeError` with consistent messages so
call sites stay one-liners.  They are deliberately cheap: scalar checks only,
plus one vectorized array check.
"""

from __future__ import annotations

import math
import numbers

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number > 0, else raise ValueError."""
    check_finite_number(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number >= 0, else raise ValueError."""
    check_finite_number(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_finite_number(value: float, name: str) -> float:
    """Return ``value`` if it is a finite real number."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_integer(value: int, name: str) -> int:
    """Return ``int(value)`` if ``value`` is integral (bool excluded)."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    return int(value)


def check_in_range(value: float, name: str, lo: float, hi: float) -> float:
    """Return ``value`` if ``lo <= value <= hi``."""
    check_finite_number(value, name)
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_finite_array(arr: np.ndarray, name: str) -> np.ndarray:
    """Return ``np.asarray(arr, float)`` after checking all entries are finite."""
    out = np.asarray(arr, dtype=float)
    if not np.all(np.isfinite(out)):
        raise ValueError(f"{name} must contain only finite values")
    return out
