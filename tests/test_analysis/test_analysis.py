import numpy as np
import pytest

from repro.analysis import (
    component_curve,
    constraint_cost,
    optimal_node_count,
    parallel_efficiency,
    predicted_layout_scaling,
    speedup,
)
from repro.cesm import ComponentId, Layout, ground_truth
from repro.exceptions import ConfigurationError
from repro.fitting import PerfModel

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

PERF_1DEG = {c: ground_truth("1deg")[c].law for c in (I, L, A, O)}
BOUNDS_1DEG = {I: (8, 2048), L: (4, 2048), A: (8, 2048), O: (8, 2048)}


class TestComponentCurve:
    def test_curve_matches_model(self):
        pm = PerfModel(a=100.0, d=2.0)
        curve = component_curve(pm, [1, 10, 100], label="atm")
        np.testing.assert_allclose(curve.times, [102.0, 12.0, 3.0])

    def test_parts_decomposition(self):
        pm = PerfModel(a=100.0, b=0.1, c=1.2, d=2.0)
        parts = component_curve(pm, [1, 4, 16], parts=True)
        total = parts["T_sca"].times + parts["T_nln"].times + parts["T_ser"].times
        np.testing.assert_allclose(total, parts["total"].times)

    def test_speedup_series(self):
        pm = PerfModel(a=100.0, d=0.0)
        curve = component_curve(pm, [1, 2, 4])
        np.testing.assert_allclose(curve.speedup_series(), [1.0, 2.0, 4.0])


class TestLayoutScaling:
    def test_fig4_style_series(self):
        counts = [128, 256, 512, 1024, 2048]
        curves = {
            layout: predicted_layout_scaling(
                PERF_1DEG, BOUNDS_1DEG, counts, layout
            )
            for layout in Layout
        }
        for layout, curve in curves.items():
            assert np.all(np.diff(curve.times) < 0), f"{layout} not improving"
        # Figure 4: layouts 1 and 2 similar, layout 3 clearly the worst.
        t1 = curves[Layout.HYBRID].times
        t2 = curves[Layout.SEQUENTIAL_SPLIT].times
        t3 = curves[Layout.FULLY_SEQUENTIAL].times
        assert np.all(t3 > t1) and np.all(t3 > t2)
        np.testing.assert_allclose(t1, t2, rtol=0.15)

    def test_metrics(self):
        assert speedup(100.0, 25.0) == 4.0
        assert parallel_efficiency(100.0, 1, 25.0, 8) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestOptimalNodeCount:
    def test_fastest_small_curve(self):
        rec = optimal_node_count(
            PERF_1DEG, BOUNDS_1DEG, [128, 512, 2048], criterion="fastest"
        )
        assert rec.total_nodes == 2048
        assert rec.criterion == "fastest"
        assert len(rec.evaluated) == 3

    def test_cost_efficient_stops_early(self):
        rec = optimal_node_count(
            PERF_1DEG,
            BOUNDS_1DEG,
            [128, 256, 512, 1024, 2048],
            criterion="cost_efficient",
            efficiency_floor=0.7,
        )
        fastest = optimal_node_count(
            PERF_1DEG, BOUNDS_1DEG, [128, 256, 512, 1024, 2048], criterion="fastest"
        )
        assert rec.total_nodes <= fastest.total_nodes
        assert rec.efficiency >= 0.7 or rec.total_nodes == 128

    def test_floor_zero_goes_to_max(self):
        rec = optimal_node_count(
            PERF_1DEG, BOUNDS_1DEG, [128, 512], efficiency_floor=0.0
        )
        assert rec.total_nodes == 512

    def test_bad_criterion(self):
        with pytest.raises(ConfigurationError):
            optimal_node_count(PERF_1DEG, BOUNDS_1DEG, [128], criterion="vibes")

    def test_empty_candidates(self):
        with pytest.raises(ConfigurationError):
            optimal_node_count(PERF_1DEG, BOUNDS_1DEG, [])


class TestConstraintCost:
    def test_8th_ocean_constraint_costs_performance(self):
        """Reproduces the shape of paper Sec. IV-B at 32,768 nodes:
        lifting the hard-coded ocean set buys a large improvement."""
        perf = {c: ground_truth("8th")[c].law for c in (I, L, A, O)}
        bounds = {
            I: (512, 32768), L: (64, 32768), A: (1024, 32768), O: (256, 32768)
        }
        out = constraint_cost(
            perf,
            bounds,
            total_nodes=32768,
            constrained_ocn=[480, 512, 2356, 3136, 4564, 6124, 19460],
            unconstrained_ocn=list(range(256, 32769, 2)),
        )
        # Paper: predicted 1593 -> 1129 s, about 29% off the constrained
        # predicted time (reported as "about 40%" against 1593 vs 1129
        # including rounding); require a substantial improvement.
        assert out["improvement"] > 0.15
        assert out["unconstrained"].makespan < out["constrained"].makespan

    def test_1deg_constraint_is_mild(self):
        out = constraint_cost(
            PERF_1DEG,
            BOUNDS_1DEG,
            total_nodes=2048,
            constrained_ocn=list(range(2, 481, 2)) + [768],
            unconstrained_ocn=list(range(8, 2049)),
        )
        assert 0.0 <= out["improvement"] < 0.10
