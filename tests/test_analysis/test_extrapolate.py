import numpy as np
import pytest

from repro.analysis import component_swap_effect, extrapolate_component
from repro.cesm import ComponentId, ground_truth
from repro.exceptions import ConfigurationError
from repro.fitting import PerfModel

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

PERF = {c: ground_truth("1deg")[c].law for c in (I, L, A, O)}
BOUNDS = {I: (8, 2048), L: (4, 2048), A: (8, 2048), O: (8, 2048)}


class TestComponentSwap:
    def test_faster_ocean_helps(self):
        faster_ocn = PerfModel(a=PERF[O].a / 2, b=PERF[O].b, c=PERF[O].c,
                               d=PERF[O].d / 2)
        effect = component_swap_effect(PERF, BOUNDS, 512, O, faster_ocn)
        assert effect.improvement > 0.0
        assert effect.swapped_makespan < effect.baseline_makespan

    def test_slower_atmosphere_hurts(self):
        slower_atm = PerfModel(a=PERF[A].a * 2, d=PERF[A].d * 2)
        effect = component_swap_effect(PERF, BOUNDS, 512, A, slower_atm)
        assert effect.improvement < 0.0

    def test_rebalancing_included(self):
        """The swap's benefit includes re-allocating nodes, so the swapped
        allocation generally differs from the baseline one."""
        faster_ocn = PerfModel(a=PERF[O].a / 4, d=1.0)
        effect = component_swap_effect(PERF, BOUNDS, 512, O, faster_ocn)
        assert effect.swapped_allocation != effect.baseline_allocation

    def test_identity_swap_is_neutral(self):
        effect = component_swap_effect(PERF, BOUNDS, 512, L, PERF[L])
        assert effect.improvement == pytest.approx(0.0, abs=1e-12)

    def test_unknown_component(self):
        with pytest.raises(ConfigurationError):
            component_swap_effect({A: PERF[A]}, BOUNDS, 512, O, PERF[O])

    def test_accepts_fitresult_like(self):
        class FakeFit:
            model = PerfModel(a=1000.0, d=1.0)

        effect = component_swap_effect(PERF, BOUNDS, 512, L, FakeFit())
        assert np.isfinite(effect.swapped_makespan)


class TestExtrapolation:
    def test_masks_out_of_sample(self):
        curve = extrapolate_component(
            PERF[A], [64, 512, 4096, 40960], calibrated_range=(8, 2048)
        )
        np.testing.assert_array_equal(curve.extrapolated, [False, False, True, True])
        assert curve.any_extrapolated

    def test_all_in_sample(self):
        curve = extrapolate_component(PERF[A], [64, 512], calibrated_range=(8, 2048))
        assert not curve.any_extrapolated

    def test_times_match_model(self):
        curve = extrapolate_component(PERF[A], [128], calibrated_range=(8, 2048))
        assert curve.times[0] == pytest.approx(PERF[A](128))

    def test_bad_range(self):
        with pytest.raises(ConfigurationError):
            extrapolate_component(PERF[A], [10], calibrated_range=(100, 50))

    def test_extrapolation_risk_demonstrated(self):
        """The paper's ocean-at-9812 story: a fit that looks perfect inside
        its sample range can be badly wrong outside it."""
        truth = PerfModel(a=8.0932e6, b=0.0, c=1.0, d=424.0)  # 8th-deg ocean
        # Fit only the constrained ocean counts (max 6124), like the paper.
        from repro.fitting import fit_perf_model

        nodes = np.array([480, 512, 2356, 3136, 4564, 6124], float)
        fit = fit_perf_model(nodes, truth(nodes))
        assert fit.r_squared > 0.999
        curve = extrapolate_component(fit, [9812, 19460], calibrated_range=(480, 6124))
        assert curve.any_extrapolated
        # in-sample prediction is tight...
        inside = extrapolate_component(fit, [3136], calibrated_range=(480, 6124))
        assert inside.times[0] == pytest.approx(truth(3136), rel=0.02)
