"""Reuse differential equivalence of the analysis-layer sweeps.

The what-if and extrapolation sweeps are the reuse engine's main consumers:
with ``reuse`` on they must reproduce the cold results — bit-for-bit within
a channel (the node-count sweeps), and to solver gap tolerance for the
swapped side of a curve-swap sweep, whose optimum can be degenerate (tied
splits whose certified objectives differ only in barrier noise).  Both must
hold on clean fits, on fits produced under fault injection, and across
parallel backends.
"""

import pytest

from repro.analysis import constraint_cost, optimal_node_count
from repro.analysis.extrapolate import component_swap_sweep
from repro.analysis.whatif import solve_layout_points
from repro.cesm import ComponentId, Layout, make_case
from repro.hslb import HSLBPipeline
from repro.resilience import FaultProfile
from repro.reuse import SolveFamily

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

SIZES = (128, 120, 112)
CHAOS = FaultProfile(crash_probability=0.2, outlier_probability=0.05)


def fitted_perf(fault_profile=None):
    pipeline = HSLBPipeline(
        make_case("1deg", max(SIZES), seed=0), fault_profile=fault_profile
    )
    fits = pipeline.fit(pipeline.gather())
    return {c: f.model for c, f in fits.items()}


@pytest.fixture(scope="module")
def setting():
    case = make_case("1deg", max(SIZES), seed=0)
    bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
    return fitted_perf(), bounds, case.ocean_allowed()


def sweep(perf, bounds, ocn, reuse, method="lpnlp", **kw):
    return solve_layout_points(
        perf, bounds, SIZES, layout=Layout.HYBRID, ocn_allowed=ocn,
        method=method, reuse=reuse, **kw,
    )


def assert_bit_identical(cold, warm):
    for c, w in zip(cold, warm):
        assert w.makespan.hex() == c.makespan.hex(), c.total_nodes
        assert w.allocation == c.allocation, c.total_nodes
        assert w.solver_result.nodes <= c.solver_result.nodes, c.total_nodes


class TestWhatIfDifferential:
    def test_clean_fits(self, setting):
        perf, bounds, ocn = setting
        cold = sweep(perf, bounds, ocn, reuse=False)
        warm = sweep(perf, bounds, ocn, reuse=SolveFamily())
        assert_bit_identical(cold, warm)

    @pytest.mark.parametrize("method", ("lpnlp", "bnb"))
    def test_fault_injected_fits(self, setting, method):
        _, bounds, ocn = setting
        perf = fitted_perf(fault_profile=CHAOS)
        cold = sweep(perf, bounds, ocn, reuse=False, method=method)
        warm = sweep(perf, bounds, ocn, reuse=SolveFamily(), method=method)
        assert_bit_identical(cold, warm)

    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_backends_match(self, setting, backend):
        perf, bounds, ocn = setting
        ref = sweep(perf, bounds, ocn, reuse=SolveFamily())
        got = sweep(
            perf, bounds, ocn, reuse=SolveFamily(),
            executor=backend, workers=2,
        )
        for r, g in zip(ref, got):
            assert g.makespan.hex() == r.makespan.hex()
            assert g.allocation == r.allocation
            assert g.solver_result.nodes == r.solver_result.nodes

    def test_recommendation_unchanged_by_reuse(self, setting):
        perf, bounds, ocn = setting
        cold = optimal_node_count(
            perf, bounds, SIZES, ocn_allowed=ocn, method="lpnlp", reuse=False
        )
        warm = optimal_node_count(
            perf, bounds, SIZES, ocn_allowed=ocn, method="lpnlp", reuse=True
        )
        assert warm.total_nodes == cold.total_nodes
        assert warm.total_time.hex() == cold.total_time.hex()
        assert warm.evaluated == cold.evaluated

    def test_presolved_points_shortcut(self, setting):
        perf, bounds, ocn = setting
        points = sweep(perf, bounds, ocn, reuse=SolveFamily())
        via_points = optimal_node_count(
            perf, bounds, SIZES, ocn_allowed=ocn, points=points
        )
        direct = optimal_node_count(
            perf, bounds, SIZES, ocn_allowed=ocn, method="lpnlp", reuse=True
        )
        assert via_points == direct

    def test_constraint_cost_with_reuse(self, setting):
        perf, bounds, ocn = setting
        kw = dict(method="lpnlp")
        cold = constraint_cost(perf, bounds, 128, [24], list(ocn), reuse=False, **kw)
        warm = constraint_cost(perf, bounds, 128, [24], list(ocn), reuse=True, **kw)
        for side in ("constrained", "unconstrained"):
            assert warm[side].makespan.hex() == cold[side].makespan.hex()
            assert warm[side].allocation == cold[side].allocation
        assert warm["improvement"].hex() == cold["improvement"].hex()


class TestSwapSweepDifferential:
    def gap(self, value):
        # mirrors the solvers' pruning tolerance (rel 1e-6, abs 1e-7)
        return max(1e-7, 1e-6 * abs(value))

    def run_pair(self, setting, reuse, **kw):
        perf, bounds, ocn = setting
        replacement = perf[O].scaled(1.25)
        return component_swap_sweep(
            perf, bounds, SIZES, O, replacement, layout=Layout.HYBRID,
            ocn_allowed=ocn, method="lpnlp", reuse=reuse, **kw,
        )

    def test_baseline_bit_identical_swapped_gap_equal(self, setting):
        cold = self.run_pair(setting, reuse=False)
        warm = self.run_pair(setting, reuse=SolveFamily())
        for c, w in zip(cold, warm):
            # the baseline channel matches the sweep's curves exactly
            assert w.baseline_makespan.hex() == c.baseline_makespan.hex()
            assert w.baseline_allocation == c.baseline_allocation
            # the swapped side may settle on a degenerate tied optimum;
            # the certified objective must agree to solver gap
            assert abs(w.swapped_makespan - c.swapped_makespan) <= self.gap(
                c.swapped_makespan
            )

    def test_improvement_direction_stable(self, setting):
        warm = self.run_pair(setting, reuse=SolveFamily())
        for effect in warm:
            assert effect.component is O
            assert effect.improvement > 0.0   # a 25% faster ocean must help

    def test_results_in_input_order(self, setting):
        perf, bounds, ocn = setting
        replacement = perf[O].scaled(1.25)
        ascending = component_swap_sweep(
            perf, bounds, tuple(reversed(SIZES)), O, replacement,
            layout=Layout.HYBRID, ocn_allowed=ocn, method="lpnlp",
            reuse=SolveFamily(),
        )
        descending = self.run_pair(setting, reuse=SolveFamily())
        paired = zip(ascending, reversed(descending))
        for up, down in paired:
            assert up.baseline_makespan.hex() == down.baseline_makespan.hex()

    def test_process_backend_matches(self, setting):
        ref = self.run_pair(setting, reuse=SolveFamily())
        got = self.run_pair(
            setting, reuse=SolveFamily(), executor="process", workers=2
        )
        for r, g in zip(ref, got):
            assert g.baseline_makespan.hex() == r.baseline_makespan.hex()
            assert g.swapped_makespan.hex() == r.swapped_makespan.hex()
            assert g.swapped_allocation == r.swapped_allocation
