import pytest

from repro.baselines import (
    PAPER_MANUAL_ALLOCATIONS,
    grid_search_allocation,
    manual_expert_tuning,
    paper_manual_allocation,
    proportional_allocation,
)
from repro.cesm import ComponentId, CoupledRunSimulator, make_case
from repro.cesm.layouts import validate_allocation
from repro.exceptions import ConfigurationError

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class TestPaperAllocations:
    def test_all_four_entries_present(self):
        assert len(PAPER_MANUAL_ALLOCATIONS) == 4

    def test_entries_are_layout1_feasible(self):
        for (res, nodes), alloc in PAPER_MANUAL_ALLOCATIONS.items():
            case = make_case(res, nodes)
            validate_allocation(case.layout, alloc, nodes)

    def test_lookup(self):
        alloc = paper_manual_allocation("1deg", 128)
        assert alloc[A] == 104 and alloc[O] == 24

    def test_unknown_entry(self):
        with pytest.raises(ConfigurationError):
            paper_manual_allocation("1deg", 999)

    def test_lookup_returns_copy(self):
        a = paper_manual_allocation("1deg", 128)
        a[A] = 1
        assert paper_manual_allocation("1deg", 128)[A] == 104


class TestManualTuning:
    def test_produces_feasible_allocation(self):
        sim = CoupledRunSimulator(make_case("1deg", 128, seed=0))
        res = manual_expert_tuning(sim)
        validate_allocation(sim.case.layout, res.allocation, 128)
        assert res.coupled_runs == res.iterations >= 3
        assert res.total_time > 0

    def test_improves_over_first_guess(self):
        sim = CoupledRunSimulator(make_case("1deg", 512, seed=1))
        res = manual_expert_tuning(sim)
        first_total = res.history[0][1]
        assert res.total_time <= first_total

    def test_reasonably_close_to_paper_quality(self):
        # at 1deg/128 the expert landed at ~416s; the heuristic expert
        # should land within ~25% of that.
        sim = CoupledRunSimulator(make_case("1deg", 128, seed=0))
        res = manual_expert_tuning(sim)
        assert res.total_time < 416.0 * 1.25

    def test_layout_restriction(self):
        sim = CoupledRunSimulator(make_case("1deg", 128, layout=3))
        with pytest.raises(ConfigurationError):
            manual_expert_tuning(sim)


class TestGridSearch:
    def test_finds_feasible_best(self):
        sim = CoupledRunSimulator(make_case("1deg", 128, seed=0))
        res = grid_search_allocation(sim)
        validate_allocation(sim.case.layout, res.allocation, 128)
        # coupled_runs charges unique runs only; evaluated lists every
        # feasible grid point, duplicates served from the reuse cache.
        assert 4 <= res.coupled_runs <= len(res.evaluated)
        assert res.total_time == min(t for _, t in res.evaluated)

    def test_reuse_matches_cold_and_saves_runs(self):
        # a fraction grid denser than the allowed ocean stride guarantees
        # that distinct fractions snap to duplicate allocations.
        sim = CoupledRunSimulator(make_case("1deg", 64, seed=0))
        warm = grid_search_allocation(sim, ocean_fractions=20, ice_fractions=2)
        cold = grid_search_allocation(
            sim, ocean_fractions=20, ice_fractions=2, reuse=False
        )
        assert warm.allocation == cold.allocation
        assert warm.total_time == cold.total_time
        assert [t for _, t in warm.evaluated] == [t for _, t in cold.evaluated]
        assert cold.reuse_hits == 0
        assert warm.reuse_hits > 0
        assert warm.coupled_runs < cold.coupled_runs

    def test_costs_many_runs(self):
        sim = CoupledRunSimulator(make_case("1deg", 256, seed=0))
        res = grid_search_allocation(sim, ocean_fractions=5, ice_fractions=3)
        assert res.coupled_runs >= 8

    def test_layout_restriction(self):
        sim = CoupledRunSimulator(make_case("1deg", 128, layout=2))
        with pytest.raises(ConfigurationError):
            grid_search_allocation(sim)


class TestProportional:
    def test_feasible(self):
        sim = CoupledRunSimulator(make_case("1deg", 128, seed=0))
        alloc = proportional_allocation(sim)
        validate_allocation(sim.case.layout, alloc, 128)

    def test_ocean_on_allowed_value(self):
        sim = CoupledRunSimulator(make_case("1deg", 512, seed=0))
        alloc = proportional_allocation(sim)
        assert alloc[O] in sim.case.ocean_allowed()

    def test_hslb_beats_proportional(self):
        from repro.hslb import HSLBPipeline

        case = make_case("1deg", 512, seed=0)
        sim = CoupledRunSimulator(case)
        prop = sim.run_coupled(proportional_allocation(sim)).total
        hslb = HSLBPipeline(case).run().actual_total
        assert hslb <= prop * 1.02  # HSLB at least matches the naive split
