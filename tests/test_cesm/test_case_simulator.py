import numpy as np
import pytest

from repro.cesm import (
    ComponentId,
    CoupledRunSimulator,
    Layout,
    ground_truth,
    make_case,
)
from repro.cesm.components import COMPONENTS, OPTIMIZED_COMPONENTS
from repro.cesm.sweetspots import OCN_8TH_CONSTRAINED, atm_allowed_nodes, ocn_allowed_nodes
from repro.exceptions import ConfigurationError, SimulationError

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class TestGroundTruth:
    def test_both_resolutions_present(self):
        for res in ("1deg", "8th"):
            truth = ground_truth(res)
            for comp in OPTIMIZED_COMPONENTS:
                assert comp in truth
                assert truth[comp].law.is_convex

    def test_unknown_resolution(self):
        with pytest.raises(ValueError, match="unknown resolution"):
            ground_truth("2deg")

    def test_curves_decrease_then_floor(self):
        truth = ground_truth("1deg")[A]
        n = np.array([8.0, 64.0, 512.0, 2048.0])
        t = truth.law(n)
        assert np.all(np.diff(t) < 0)
        assert t[-1] > truth.law.d  # still above the serial floor

    def test_eighth_is_heavier_than_onedeg(self):
        t1 = ground_truth("1deg")[A].law(1024)
        t8 = ground_truth("8th")[A].law(1024)
        assert t8 > 5 * t1


class TestSweetSpots:
    def test_ocn_1deg_shape(self):
        vals = ocn_allowed_nodes("1deg", 40960)
        assert vals[0] == 2 and vals[-1] == 768
        assert 480 in vals and 482 not in vals
        assert all(v % 2 == 0 for v in vals)

    def test_ocn_1deg_truncated_to_job(self):
        vals = ocn_allowed_nodes("1deg", 128)
        assert max(vals) <= 128

    def test_ocn_8th_constrained(self):
        vals = ocn_allowed_nodes("8th", 32768)
        assert vals == [v for v in OCN_8TH_CONSTRAINED if v <= 32768]
        assert 19460 in vals

    def test_ocn_8th_unconstrained_rich(self):
        vals = ocn_allowed_nodes("8th", 32768, unconstrained=True)
        assert len(vals) > 1000
        assert 9812 in vals

    def test_ocn_empty_raises(self):
        with pytest.raises(ConfigurationError):
            ocn_allowed_nodes("8th", 300)  # smallest allowed is 480

    def test_atm_1deg_noncontiguous(self):
        spec = atm_allowed_nodes("1deg", 40960)
        assert spec["values"] is not None
        assert 1664 in spec["values"] and 1650 not in spec["values"]

    def test_atm_1deg_small_job_contiguous(self):
        spec = atm_allowed_nodes("1deg", 128)
        assert spec["values"] is None
        assert (spec["lo"], spec["hi"]) == (1, 128)

    def test_atm_8th_range(self):
        spec = atm_allowed_nodes("8th", 32768)
        assert spec["values"] is None and spec["hi"] == 32768


class TestCase:
    def test_make_case_defaults(self):
        case = make_case("1deg", 128)
        assert case.layout is Layout.HYBRID
        assert case.machine.cores_per_node == 4
        assert "FV" in case.grid_description

    def test_layout_by_int(self):
        assert make_case("1deg", 128, layout=3).layout is Layout.FULLY_SEQUENTIAL

    def test_bad_resolution(self):
        with pytest.raises(ConfigurationError):
            make_case("nope", 128)

    def test_bad_node_count(self):
        with pytest.raises(ConfigurationError):
            make_case("1deg", 0)
        with pytest.raises(ConfigurationError):
            make_case("1deg", 100_000)

    def test_component_bounds_respect_memory_floor(self):
        case = make_case("8th", 8192)
        lo, hi = case.component_bounds(A)
        assert lo == 1024 and hi == 8192

    def test_benchmark_node_counts_geometric(self):
        case = make_case("1deg", 2048)
        pts = case.benchmark_node_counts(A, points=5)
        assert pts[0] == 8 and pts[-1] == 2048
        assert len(pts) == 5
        assert pts == sorted(pts)

    def test_ice_grid_selection(self):
        assert make_case("1deg", 128).ice_grid.nx == 320
        assert make_case("8th", 8192).ice_grid.nx == 3600


class TestSimulator:
    def test_reproducible_benchmarks(self):
        case = make_case("1deg", 128, seed=7)
        s1, s2 = CoupledRunSimulator(case), CoupledRunSimulator(case)
        assert s1.benchmark(A, 64) == s2.benchmark(A, 64)

    def test_seed_changes_noise(self):
        a = CoupledRunSimulator(make_case("1deg", 128, seed=1)).benchmark(A, 64)
        b = CoupledRunSimulator(make_case("1deg", 128, seed=2)).benchmark(A, 64)
        assert a != b

    def test_benchmark_tracks_truth(self):
        case = make_case("1deg", 2048, seed=0)
        sim = CoupledRunSimulator(case)
        truth = case.truth(A).law
        for n in (16, 128, 1024):
            assert sim.benchmark(A, n) == pytest.approx(truth(n), rel=0.08)

    def test_ice_noisier_than_atm(self):
        case = make_case("1deg", 2048, seed=0)
        sim = CoupledRunSimulator(case)
        nodes = case.benchmark_node_counts(I, points=12)
        ice_truth = case.truth(I).law
        atm_truth = case.truth(A).law
        ice_err = [abs(sim.benchmark(I, n) / ice_truth(n) - 1.0) for n in nodes]
        atm_err = [abs(sim.benchmark(A, n) / atm_truth(n) - 1.0) for n in nodes]
        assert np.mean(ice_err) > np.mean(atm_err)

    def test_memory_floor_enforced(self):
        sim = CoupledRunSimulator(make_case("8th", 8192))
        with pytest.raises(SimulationError, match="memory floor"):
            sim.benchmark(A, 512)

    def test_run_coupled_matches_paper_shape(self):
        sim = CoupledRunSimulator(make_case("1deg", 128, seed=0))
        t = sim.run_coupled({"lnd": 24, "ice": 80, "atm": 104, "ocn": 24})
        # Paper Table III (manual column): lnd 63.8, ice 109.1, atm 307.0,
        # ocn 362.7, total 416.0.  The simulator must land near those.
        assert t.times[L] == pytest.approx(63.8, rel=0.15)
        assert t.times[I] == pytest.approx(109.1, rel=0.20)
        assert t.times[A] == pytest.approx(307.0, rel=0.10)
        assert t.times[O] == pytest.approx(362.7, rel=0.10)
        assert t.total == pytest.approx(416.0, rel=0.10)

    def test_total_includes_overhead(self):
        from repro.cesm.layouts import composed_total

        sim = CoupledRunSimulator(make_case("1deg", 128, seed=0))
        t = sim.run_coupled({"lnd": 24, "ice": 80, "atm": 104, "ocn": 24})
        assert t.overhead > 0.0
        assert t.total == pytest.approx(composed_total(t.layout, t.times) + t.overhead)

    def test_invalid_allocation_rejected(self):
        sim = CoupledRunSimulator(make_case("1deg", 128))
        with pytest.raises(SimulationError):
            sim.run_coupled({"lnd": 60, "ice": 60, "atm": 104, "ocn": 24})

    def test_string_keys_accepted(self):
        sim = CoupledRunSimulator(make_case("1deg", 128))
        t = sim.run_coupled({"lnd": 24, "ice": 80, "atm": 104, "ocn": 24})
        assert t.time_of(L) > 0

    def test_measurements_order_independent(self):
        """The value at a configuration must not depend on what was
        measured before it (each config is one recorded measurement)."""
        case = make_case("1deg", 512, seed=4)
        s1 = CoupledRunSimulator(case)
        v_direct = s1.benchmark(A, 64)
        s2 = CoupledRunSimulator(case)
        s2.benchmark(O, 32)
        s2.benchmark(A, 128)
        s2.run_coupled({"lnd": 24, "ice": 80, "atm": 104, "ocn": 24})
        assert s2.benchmark(A, 64) == v_direct

    def test_benchmark_sweep(self):
        case = make_case("1deg", 512)
        sim = CoupledRunSimulator(case)
        sweep = sim.benchmark_sweep(A, [16, 64, 256])
        assert [n for n, _ in sweep] == [16, 64, 256]
        assert all(t > 0 for _, t in sweep)

    def test_components_registry(self):
        assert COMPONENTS[ComponentId.ATM].model_name == "CAM"
        assert not COMPONENTS[ComponentId.CPL].optimized
        assert len(OPTIMIZED_COMPONENTS) == 4
