import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cesm.components import ComponentId
from repro.cesm.decomp import (
    GX1,
    TX0_1,
    DecompStrategy,
    best_strategy,
    block_counts,
    default_strategy,
    efficiency_factor,
    imbalance_factor,
)
from repro.cesm.layouts import Layout, composed_total, validate_allocation
from repro.exceptions import SimulationError

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class TestDecomp:
    def test_block_counts_positive(self):
        for grid in (GX1, TX0_1):
            for strat in DecompStrategy:
                for tasks in (1, 13, 128, 5000):
                    assert block_counts(grid, tasks, strat) >= 1

    def test_imbalance_at_least_one(self):
        for tasks in (1, 7, 64, 1000, 24424):
            for strat in DecompStrategy:
                assert imbalance_factor(GX1, tasks, strat) >= 1.0

    def test_perfect_division_near_one(self):
        # 32 tasks as 2x16 slender strips tile gx1 (320x384) exactly.
        f = imbalance_factor(GX1, 32, DecompStrategy.SLENDERX2)
        assert f == pytest.approx(1.0, abs=0.02)

    def test_awkward_task_count_penalized(self):
        # A prime task count cannot tile the grid evenly.
        smooth = imbalance_factor(GX1, 128, DecompStrategy.CARTESIAN)
        prime = imbalance_factor(GX1, 127, DecompStrategy.CARTESIAN)
        assert prime > smooth

    def test_tile_dims_multiply_to_tasks(self):
        from repro.cesm.decomp import tile_dims

        for tasks in (12, 89, 1280):
            for strat in (
                DecompStrategy.CARTESIAN,
                DecompStrategy.SLENDERX1,
                DecompStrategy.SQUARE_ICE,
                DecompStrategy.SQUARE_POP,
            ):
                px, py = tile_dims(GX1, tasks, strat)
                assert px * py == tasks

    def test_block_strategies_reject_tile_dims(self):
        from repro.cesm.decomp import tile_dims

        with pytest.raises(ValueError):
            tile_dims(GX1, 64, DecompStrategy.ROUNDROBIN)

    def test_default_strategy_varies_over_sweep(self):
        picks = {default_strategy(t) for t in (8, 32, 96, 112, 114, 121, 242)}
        assert len(picks) >= 3

    def test_efficiency_sensitivity_zero_is_neutral(self):
        assert efficiency_factor(GX1, 97, 0.0) == 1.0

    def test_efficiency_scales_with_sensitivity(self):
        weak = efficiency_factor(GX1, 1000, 0.05)
        strong = efficiency_factor(GX1, 1000, 0.5)
        assert 1.0 <= weak <= strong

    def test_best_strategy_beats_default_often(self):
        worse = 0
        for tasks in (100, 300, 555, 1000, 2222):
            b = imbalance_factor(GX1, tasks, best_strategy(GX1, tasks))
            d = imbalance_factor(GX1, tasks, default_strategy(tasks))
            assert b <= d + 1e-12
            if b < d:
                worse += 1
        assert worse >= 1  # the default is genuinely suboptimal somewhere

    @given(tasks=st.integers(1, 40960))
    @settings(max_examples=60, deadline=None)
    def test_factor_bounded(self, tasks):
        f = efficiency_factor(TX0_1, tasks, 0.10)
        assert 1.0 <= f < 10.0


class TestLayoutComposition:
    times = {I: 109.0, L: 64.0, A: 307.0, O: 363.0}

    def test_layout1_hybrid(self):
        # max(max(109, 64) + 307, 363) = 416
        assert composed_total(Layout.HYBRID, self.times) == pytest.approx(416.0)

    def test_layout2(self):
        # max(109 + 64 + 307, 363) = 480
        assert composed_total(Layout.SEQUENTIAL_SPLIT, self.times) == pytest.approx(480.0)

    def test_layout3(self):
        assert composed_total(Layout.FULLY_SEQUENTIAL, self.times) == pytest.approx(843.0)

    def test_layout3_never_faster(self):
        t = self.times
        assert composed_total(Layout.FULLY_SEQUENTIAL, t) >= composed_total(
            Layout.SEQUENTIAL_SPLIT, t
        ) >= composed_total(Layout.HYBRID, t)

    def test_ocean_bound_case(self):
        t = dict(self.times)
        t[O] = 1000.0
        assert composed_total(Layout.HYBRID, t) == 1000.0


class TestValidation:
    def good(self):
        return {A: 104, O: 24, I: 80, L: 24}

    def test_valid_layout1(self):
        validate_allocation(Layout.HYBRID, self.good(), 128)

    def test_layout1_ice_lnd_over_atm(self):
        alloc = self.good()
        alloc[I] = 90
        alloc[L] = 20
        with pytest.raises(SimulationError, match="n_ice"):
            validate_allocation(Layout.HYBRID, alloc, 128)

    def test_layout1_total_exceeded(self):
        with pytest.raises(SimulationError, match="n_atm"):
            validate_allocation(Layout.HYBRID, self.good(), 120)

    def test_layout2_cap(self):
        alloc = {A: 100, O: 40, I: 30, L: 30}
        validate_allocation(Layout.SEQUENTIAL_SPLIT, alloc, 140)
        with pytest.raises(SimulationError):
            validate_allocation(Layout.SEQUENTIAL_SPLIT, alloc, 130)

    def test_layout3_cap(self):
        alloc = {A: 128, O: 128, I: 128, L: 128}
        validate_allocation(Layout.FULLY_SEQUENTIAL, alloc, 128)
        with pytest.raises(SimulationError):
            validate_allocation(Layout.FULLY_SEQUENTIAL, alloc, 127)

    def test_missing_component(self):
        with pytest.raises(SimulationError, match="missing"):
            validate_allocation(Layout.HYBRID, {A: 10, O: 10, I: 5}, 128)

    def test_nonpositive_nodes(self):
        alloc = self.good()
        alloc[L] = 0
        with pytest.raises(SimulationError, match="positive integer"):
            validate_allocation(Layout.HYBRID, alloc, 128)

    @given(
        na=st.integers(2, 100),
        no=st.integers(1, 100),
        ni=st.integers(1, 99),
        total=st.integers(2, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_layout1_validation_matches_rules(self, na, no, ni, total):
        nl = max(1, na - ni)  # try to satisfy ni + nl <= na when possible
        alloc = {A: na, O: no, I: ni, L: nl}
        ok = (ni + nl <= na) and (na + no <= total)
        if ok:
            validate_allocation(Layout.HYBRID, alloc, total)
        else:
            with pytest.raises(SimulationError):
                validate_allocation(Layout.HYBRID, alloc, total)
