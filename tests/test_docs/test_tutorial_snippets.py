"""Keep docs/tutorial.md honest: its key snippets must actually run."""


from repro.cesm import ComponentId, make_case
from repro.hslb import (
    BenchmarkData,
    HSLBPipeline,
    ObjectiveKind,
    fit_components,
    solve_allocation,
)

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class TestSection1And2:
    def test_one_call_and_steps(self):
        case = make_case("1deg", total_nodes=128, seed=0)
        result = HSLBPipeline(case).run()
        assert result.prediction_error() < 0.1

        pipeline = HSLBPipeline(case)
        data = pipeline.gather()
        assert list(data.nodes(A).astype(int)) == [8, 16, 32, 64, 128]
        fits = pipeline.fit(data)
        assert fits[A].r_squared > 0.99
        outcome = pipeline.solve(fits)
        assert outcome.solver_result.nodes >= 1
        timings = pipeline.execute(outcome)
        assert timings.total > 0

    def test_variations(self):
        case = make_case("1deg", 128, seed=0)
        oracle = HSLBPipeline(case, method="oracle").run()
        assert oracle.solve.method == "oracle"
        pipeline = HSLBPipeline(case)
        fits = pipeline.fit(pipeline.gather())
        mm = solve_allocation(case, fits, objective=ObjectiveKind.MAX_MIN,
                              method="oracle")
        assert mm.objective_value > 0
        sync = solve_allocation(case, fits, tsync=1.0, method="oracle")
        assert sync.predicted_total > 0
        fine = HSLBPipeline(case, fine_tuning=True).run()
        assert fine.prediction_error() < 0.05


class TestSection3:
    def test_model_export(self):
        from repro.hslb.layout_models import layout_model_for_case
        from repro.model import to_ampl

        case = make_case("1deg", 128, seed=0)
        pipeline = HSLBPipeline(case)
        fits = pipeline.fit(pipeline.gather())
        model = layout_model_for_case(case, fits)
        stats = model.stats()
        assert stats["variables"] >= 6
        assert "minimize total_time" in to_ampl(model)


class TestSection4:
    def test_hand_fed_benchmark_data(self):
        case = make_case("1deg", 2048, seed=0)
        data = BenchmarkData()
        # plausible hand-entered numbers, paper-magnitude
        data.add(A, [104, 256, 512, 1664], [306.9, 131.2, 70.0, 62.0])
        data.add(O, [24, 64, 256, 480], [362.7, 150.0, 67.0, 52.0])
        data.add(I, [80, 200, 600, 1280], [109.1, 55.0, 30.0, 18.0])
        data.add(L, [24, 96, 384, 1024], [63.8, 18.0, 5.8, 4.0])
        fits = fit_components(data)
        outcome = solve_allocation(case, fits)
        assert outcome.nodes_used() > 0
        assert outcome.predicted_total > 0


class TestSection5:
    def test_analysis_snippets(self):
        from repro.analysis import (
            component_swap_effect,
            extrapolate_component,
            optimal_node_count,
            predicted_layout_scaling,
        )
        from repro.cesm import Layout, ground_truth
        from repro.fitting import PerfModel

        perf = {c: ground_truth("1deg")[c].law for c in (I, L, A, O)}
        bounds = {I: (8, 2048), L: (4, 2048), A: (8, 2048), O: (8, 2048)}

        curve = predicted_layout_scaling(perf, bounds, [128, 256, 512], Layout.HYBRID)
        assert curve.times.shape == (3,)

        rec = optimal_node_count(
            perf, bounds, [128, 256, 512, 1024, 2048],
            criterion="cost_efficient", efficiency_floor=0.7,
        )
        assert rec.total_nodes in (128, 256, 512, 1024, 2048)

        faster_pop = PerfModel(a=perf[O].a / 2, d=perf[O].d / 2)
        effect = component_swap_effect(perf, bounds, 512, O, faster_pop)
        assert effect.improvement > 0

        ex = extrapolate_component(perf[O], [9812, 19460], calibrated_range=(480, 6124))
        assert list(ex.extrapolated) == [True, True]
