import numpy as np
import pytest

from repro.cesm import ComponentId, Layout
from repro.cesm.layouts import validate_allocation
from repro.exceptions import ConfigurationError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.paperdata import CLAIMS, TABLE3
from repro.experiments.table3 import run_table3_entry
from repro.hslb import ObjectiveKind

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class TestPaperData:
    def test_six_table3_entries(self):
        assert len(TABLE3) == 6

    def test_totals_consistent_with_components(self):
        """Paper totals match the layout-1 composition of the per-component
        times (within table rounding)."""
        for entry in TABLE3.values():
            pred = entry.hslb_predicted
            composed = max(max(pred[I], pred[L]) + pred[A], pred[O])
            assert composed == pytest.approx(entry.hslb_predicted_total, rel=0.02)

    def test_manual_allocations_feasible(self):
        for entry in TABLE3.values():
            if entry.manual_nodes is not None:
                validate_allocation(
                    Layout.HYBRID, entry.manual_nodes, entry.total_nodes
                )

    def test_hslb_allocations_feasible(self):
        for entry in TABLE3.values():
            validate_allocation(Layout.HYBRID, entry.hslb_nodes, entry.total_nodes)
            validate_allocation(
                Layout.HYBRID, entry.hslb_actual_nodes, entry.total_nodes
            )

    def test_claims_present(self):
        assert CLAIMS["solver_seconds_at_40960"] == 60.0
        assert CLAIMS["actual_improvement_32768"] == 0.25


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 19
        assert {"t3-1", "t3-6", "fig2", "fig3", "fig4", "a-obj", "a-sos",
                "a-solve", "a-sync", "a-fit", "a-start", "a-mlice",
                "a-reuse"} <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            run_experiment("t3-99")

    def test_descriptions_nonempty(self):
        for key, (desc, runner) in EXPERIMENTS.items():
            assert desc and callable(runner)


class TestTable3Reproduction:
    def test_unknown_key(self):
        with pytest.raises(ConfigurationError):
            run_table3_entry("nope")

    def test_1deg_128_block(self):
        rep = run_table3_entry("1deg-128", seed=0)
        # who wins: a tie within 5% (paper: 416 manual vs 425 HSLB-actual)
        assert rep.hslb_beats_or_ties_manual
        # totals land near the paper's
        assert rep.manual_total == pytest.approx(416.0, rel=0.08)
        assert rep.hslb_actual_total == pytest.approx(425.2, rel=0.08)
        assert rep.prediction_error < 0.10
        text = rep.render()
        assert "THIS REPRODUCTION" in text and "PAPER" in text

    def test_unconstrained_8192_block_has_no_manual(self):
        rep = run_table3_entry("8th-8192-unconstrained", seed=0)
        assert rep.manual_total is None
        with pytest.raises(ConfigurationError):
            rep.actual_improvement_over_manual
        assert rep.hslb_actual_total > 0

    def test_32768_unconstrained_beats_constrained(self):
        con = run_table3_entry("8th-32768", seed=0)
        unc = run_table3_entry("8th-32768-unconstrained", seed=0)
        # Paper: 1612 s constrained-actual vs 1256 s unconstrained-actual
        # (25% better); require a clear win with the same noise seed.
        assert unc.hslb_actual_total < con.hslb_actual_total * 0.90


class TestFigureRunners:
    def test_fig2_structure(self):
        fig = run_experiment("fig2")
        assert set(fig.fit_params) == {I, L, A, O}
        for comp, r2 in fig.r_squared.items():
            assert r2 > 0.95
        for comp, parts in fig.curves.items():
            total = parts["T_sca"].times + parts["T_nln"].times + parts["T_ser"].times
            np.testing.assert_allclose(total, parts["total"].times, rtol=1e-9)
        assert "Figure 2" in fig.render()

    def test_fig4_structure(self):
        fig = run_experiment("fig4")
        t1 = fig.predicted[Layout.HYBRID]
        t3 = fig.predicted[Layout.FULLY_SEQUENTIAL]
        assert np.all(t3 > t1)
        # Paper: R^2 between predicted and experimental layout 1 = 1.0.
        assert fig.r2_layout1 > 0.98
        assert "layout (1exp)" in fig.render()


class TestAblationRunners:
    def test_objective_ablation_minmax_wins(self):
        ab = run_experiment("a-obj")
        assert (
            ab.makespans[ObjectiveKind.MIN_MAX]
            <= min(ab.makespans[k] for k in ObjectiveKind) + 1e-9
        )
        assert "A-OBJ" in ab.render()

    def test_sync_ablation_monotone(self):
        ab = run_experiment("a-sync")
        off = ab.makespans[None]
        for band in ab.tsync_values:
            if band is not None:
                assert ab.makespans[band] >= off - 1e-9
        # the tightest band must actually cost something
        tightest = min(b for b in ab.tsync_values if b is not None)
        assert ab.makespans[tightest] > off

    def test_fit_points_ablation(self):
        ab = run_experiment("a-fit")
        assert min(ab.r_squared.values()) > 0.95
        # >= 4 points keeps the executed time within a few percent of the
        # best observed (the paper: "four points were enough").
        best = min(ab.actual.values())
        for p, t in ab.actual.items():
            if p >= 4:
                assert t <= best * 1.06

    def test_multistart_ablation(self):
        ab = run_experiment("a-start")
        assert ab.distinct_parameter_sets >= 2
        assert ab.makespan_spread < 0.05  # similar-quality allocations
        assert "A-START" in ab.render()

    def test_seed_stability(self):
        from repro.experiments.stability import run_seed_stability

        ab = run_seed_stability(n_seeds=4)
        # HSLB ties-or-beats the expert on average, and its prediction
        # tracks execution within a few percent across seeds.
        assert ab.mean_actual_gap < 0.03
        assert ab.mean_prediction_error < 0.08
        assert "A-SEEDS" in ab.render()

    def test_finetune_comparison(self):
        ab = run_experiment("a-finetune")
        # Charging the coupler/river overhead to the model collapses the
        # systematic prediction bias and never hurts the actual run.
        assert ab.finetuned_prediction_error < ab.standard_prediction_error
        assert ab.finetuned_prediction_error < 0.02
        assert ab.finetuned_actual <= ab.standard_actual * 1.02
        assert "A-FINETUNE" in ab.render()
