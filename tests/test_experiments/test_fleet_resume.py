"""Crash-safe ``run_experiments``: journal resume, quarantine, hardening.

Most tests monkeypatch two fast fake experiments into the registry so the
scheduling/durability machinery is exercised without paying for real
pipeline runs; the supervised-integration tests at the bottom use real
(small) experiments because process workers cannot see a monkeypatch.
"""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import registry
from repro.experiments.registry import (
    ExperimentCellSpec,
    _checkpoint_path,
    quarantine_text,
    run_experiments,
)
from repro.io.journal import RunJournal
from repro.resilience import ChaosProfile, EventLog, RetryPolicy
from repro.resilience.chaos import corrupt_file
from repro.resilience.events import EventKind


class _Rendered:
    def __init__(self, text):
        self.text = text

    def render(self):
        return self.text


@pytest.fixture
def fake_experiments(monkeypatch):
    """Two cheap registry entries; returns the per-id call counter."""
    calls = {"fake-a": 0, "fake-b": 0}

    def make(key):
        def run(seed=0):
            calls[key] += 1
            return _Rendered(f"{key} rendered (seed={seed})")

        return ("fake experiment " + key, run)

    monkeypatch.setitem(registry.EXPERIMENTS, "fake-a", make("fake-a"))
    monkeypatch.setitem(registry.EXPERIMENTS, "fake-b", make("fake-b"))
    return calls


IDS = ["fake-a", "fake-b"]


class TestJournalResume:
    def test_journal_records_the_full_run(self, fake_experiments, tmp_path):
        journal = tmp_path / "run.jsonl"
        got = run_experiments(IDS, seed=0, journal=journal)
        assert got == [
            ("fake-a", "fake-a rendered (seed=0)"),
            ("fake-b", "fake-b rendered (seed=0)"),
        ]
        state = RunJournal.read(journal)
        assert state.plan == {"experiment_ids": IDS, "seed": 0}
        assert len(state.completed) == 2
        assert state.in_flight == []

    def test_resume_skips_finished_cells(self, fake_experiments, tmp_path):
        journal = tmp_path / "run.jsonl"
        first = run_experiments(IDS, seed=0, journal=journal)
        events = EventLog()
        second = run_experiments(IDS, seed=0, journal=journal, events=events)
        assert second == first, "resume must reproduce the roll-up exactly"
        assert fake_experiments["fake-a"] == 1, "finished cells never re-run"
        assert fake_experiments["fake-b"] == 1
        assert len(events.of_kind(EventKind.JOURNAL_RECOVERED)) == 2

    def test_resume_runs_only_the_missing_cells(self, fake_experiments, tmp_path):
        # Simulate a kill after the first cell: journal holds plan + start +
        # finish for fake-a and a dangling start for fake-b.
        journal = tmp_path / "run.jsonl"
        key_a = ExperimentCellSpec("fake-a", 0).spec_key()
        key_b = ExperimentCellSpec("fake-b", 0).spec_key()
        with RunJournal.open(journal) as book:
            book.plan(IDS, 0)
            book.start(key_a, "fake-a")
            book.finish(key_a, "fake-a", "fake-a rendered (seed=0)")
            book.start(key_b, "fake-b")
        got = run_experiments(IDS, seed=0, journal=journal)
        assert fake_experiments["fake-a"] == 0
        assert fake_experiments["fake-b"] == 1
        assert got[0] == ("fake-a", "fake-a rendered (seed=0)")
        assert RunJournal.read(journal).in_flight == []

    def test_resume_repairs_a_torn_tail(self, fake_experiments, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_experiments(["fake-a"], seed=0, journal=journal)
        journal.write_bytes(journal.read_bytes() + b'{"op":"finish","spec')
        events = EventLog()
        got = run_experiments(["fake-a"], seed=0, journal=journal, events=events)
        assert got[0][1] == "fake-a rendered (seed=0)"
        kinds = [e.detail for e in events.of_kind(EventKind.JOURNAL_RECOVERED)]
        assert any("torn tail" in d for d in kinds)
        assert not RunJournal.read(journal).torn_tail, "tail was truncated away"

    def test_poisoned_cells_stay_quarantined_on_resume(
        self, fake_experiments, tmp_path
    ):
        journal = tmp_path / "run.jsonl"
        key_a = ExperimentCellSpec("fake-a", 0).spec_key()
        with RunJournal.open(journal) as book:
            book.plan(IDS, 0)
            book.start(key_a, "fake-a")
            book.poison(key_a, "fake-a", 4, "crash", "worker died")
        got = run_experiments(IDS, seed=0, journal=journal)
        assert fake_experiments["fake-a"] == 0, "poison is a terminal verdict"
        assert got[0] == (
            "fake-a", quarantine_text("fake-a", 4, "crash", "worker died"),
        )
        assert got[1][1] == "fake-b rendered (seed=0)"

    def test_mismatched_plan_is_rejected(self, fake_experiments, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_experiments(["fake-a"], seed=0, journal=journal)
        with pytest.raises(ConfigurationError, match="different run"):
            run_experiments(["fake-b"], seed=0, journal=journal)
        with pytest.raises(ConfigurationError, match="different run"):
            run_experiments(["fake-a"], seed=1, journal=journal)

    def test_checkpoint_recovery_backfills_the_journal(
        self, fake_experiments, tmp_path
    ):
        # A cell recovered from a checkpoint is journaled as finished, so
        # later resumes need only the journal.
        checkpoints = tmp_path / "ckpt"
        run_experiments(IDS, seed=0, checkpoint_dir=checkpoints)
        journal = tmp_path / "run.jsonl"
        run_experiments(IDS, seed=0, checkpoint_dir=checkpoints, journal=journal)
        assert fake_experiments["fake-a"] == 1, "checkpoint satisfied the cell"
        assert len(RunJournal.read(journal).completed) == 2


class TestCheckpointHardening:
    def _checkpointed(self, tmp_path, fake_experiments):
        checkpoints = tmp_path / "ckpt"
        run_experiments(IDS, seed=0, checkpoint_dir=checkpoints)
        return checkpoints, _checkpoint_path(checkpoints, ExperimentCellSpec("fake-a", 0))

    @pytest.mark.parametrize("damage", ["truncate", "garbage", "not-json"])
    def test_corrupt_checkpoint_is_quarantined_not_fatal(
        self, fake_experiments, tmp_path, damage
    ):
        checkpoints, path = self._checkpointed(tmp_path, fake_experiments)
        if damage == "not-json":
            path.write_text("this is not json {")
        else:
            corrupt_file(path, seed=0, mode=damage)
        events = EventLog()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            got = run_experiments(
                IDS, seed=0, checkpoint_dir=checkpoints, events=events
            )
        assert got[0][1] == "fake-a rendered (seed=0)", "cell re-ran cleanly"
        assert fake_experiments["fake-a"] == 2
        assert (checkpoints / (path.name + ".corrupt")).exists()
        assert path.exists(), "a fresh checkpoint replaced the corrupt one"
        assert events.of_kind(EventKind.CHECKPOINT_QUARANTINED)

    def test_spec_key_mismatch_is_quarantined(self, fake_experiments, tmp_path):
        checkpoints, path = self._checkpointed(tmp_path, fake_experiments)
        # Graft another cell's valid checkpoint into this cell's file name:
        # the payload is self-consistent, but it is not *this* cell.
        other = _checkpoint_path(checkpoints, ExperimentCellSpec("fake-b", 0))
        path.write_text(other.read_text())
        with pytest.warns(RuntimeWarning, match="spec_key mismatch"):
            got = run_experiments(IDS, seed=0, checkpoint_dir=checkpoints)
        assert got[0][1] == "fake-a rendered (seed=0)"
        assert fake_experiments["fake-a"] == 2, "mismatched file is never trusted"

    def test_clean_checkpoints_still_short_circuit(self, fake_experiments, tmp_path):
        checkpoints, _ = self._checkpointed(tmp_path, fake_experiments)
        got = run_experiments(IDS, seed=0, checkpoint_dir=checkpoints)
        assert fake_experiments == {"fake-a": 1, "fake-b": 1}
        assert got[0][1] == "fake-a rendered (seed=0)"


class TestSupervisedIntegration:
    """Real experiments under the supervised pool (workers can't see mocks)."""

    def test_supervised_matches_serial(self):
        reference = run_experiments(["t3-1"], seed=0)
        supervised = run_experiments(["t3-1"], seed=0, supervised=True, workers=2)
        assert supervised == reference

    def test_poisoned_cell_degrades_the_rollup(self, tmp_path):
        # kill_probability=1 with a single attempt: the cell is quarantined,
        # the run completes, and the journal records the poison durably.
        journal = tmp_path / "run.jsonl"
        events = EventLog()
        got = run_experiments(
            ["t3-1"],
            seed=0,
            supervised=True,
            workers=2,
            journal=journal,
            chaos=ChaosProfile(kill_probability=1.0),
            retry_policy=RetryPolicy(max_attempts=1),
            events=events,
        )
        assert got[0][0] == "t3-1"
        assert "QUARANTINED" in got[0][1]
        assert events.of_kind(EventKind.TASK_POISONED)
        state = RunJournal.read(journal)
        assert len(state.poisoned) == 1
        # A later chaos-free resume keeps the quarantine verdict.
        again = run_experiments(["t3-1"], seed=0, journal=journal)
        assert again == got
