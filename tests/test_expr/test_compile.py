import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExpressionError
from repro.expr.compile import compile_expr, expr_source
from repro.expr.node import Pow, const, var


class TestSourceGeneration:
    def test_basic_nodes(self):
        idx = {"x": 0, "y": 1}
        assert expr_source(const(2.5), idx) == "2.5"
        assert expr_source(var("y"), idx) == "x[1]"

    def test_unknown_variable(self):
        with pytest.raises(ExpressionError, match="missing"):
            expr_source(var("ghost"), {"x": 0})

    def test_repr_roundtrip_precision(self):
        """repr() keeps full float precision through the source path."""
        v = 0.1 + 0.2  # a value whose short decimal form would lose bits
        idx = {}
        f = compile_expr(const(v), idx)
        assert f([]) == v


class TestCompiledEquivalence:
    def test_perf_model_family(self):
        n = var("n")
        e = 27362.3 / n + 0.000427 * n ** 1.3 + 45.0
        f = compile_expr(e, {"n": 0})
        for val in (1.0, 17.0, 2048.0):
            assert f([val]) == pytest.approx(e.evaluate({"n": val}))

    def test_multivariate(self):
        e = (var("a") + var("b")) * var("c") - var("a") / var("c")
        idx = {"a": 0, "b": 1, "c": 2}
        f = compile_expr(e, idx)
        x = [2.0, 3.0, 4.0]
        assert f(x) == pytest.approx(e.evaluate({"a": 2.0, "b": 3.0, "c": 4.0}))

    def test_numpy_vector_input(self):
        e = 10.0 / var("n") + 1.0
        f = compile_expr(e, {"n": 0})
        assert f(np.array([4.0])) == pytest.approx(3.5)

    def test_negation_and_pow(self):
        e = -(var("x") ** 2.0) + Pow(const(2.0), var("x"))
        f = compile_expr(e, {"x": 0})
        assert f([3.0]) == pytest.approx(-9.0 + 8.0)

    def test_no_builtins_leak(self):
        f = compile_expr(var("x") + 1.0, {"x": 0})
        assert f.__globals__.get("__builtins__") == {}

    @given(
        a=st.floats(0.1, 100.0),
        b=st.floats(0.0, 1.0),
        c=st.floats(1.0, 2.0),
        n=st.floats(1.0, 500.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_tree_evaluation(self, a, b, c, n):
        e = a / var("n") + b * var("n") ** c + 1.0
        f = compile_expr(e, {"n": 0})
        assert f([n]) == pytest.approx(e.evaluate({"n": n}), rel=1e-12)
