"""Emission fixes that ride along with the kernel layer:

- deeply nested / very wide trees either flatten cleanly or raise a clear
  ``ExpressionError`` (never ``RecursionError``), and ``compile_expr``
  falls back to statement emission so they compile regardless;
- ``Const`` values are always emitted as float literals (a bare ``2``
  would keep ``x ** 2`` integer-typed for integer inputs), with negative
  literals parenthesized so they are safe as ``Pow`` bases.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ExpressionError
from repro.expr.compile import compile_expr, expr_source
from repro.expr.node import Neg, Pow, const, var


def add_chain(n: int):
    e = var("x")
    for _ in range(n):
        e = e + 1.0
    return e


def mul_chain(n: int):
    e = var("x")
    for _ in range(n):
        e = e * 1.0
    return e


def nested(n: int):
    """Alternating Neg/Pow nesting that cannot be flattened into a chain."""
    e = var("x")
    for i in range(n):
        e = Neg(e) if i % 2 else Pow(e, const(1.0))
    return e


class TestDeepChains:
    def test_long_add_chain_compiles(self):
        """10k left-leaning additions compile without RecursionError."""
        e = add_chain(10_000)
        f = compile_expr(e, {"x": 0})
        assert f([1.0]) == 10_001.0

    def test_long_mul_chain_compiles(self):
        f = compile_expr(mul_chain(10_000), {"x": 0})
        assert f([3.0]) == 3.0

    def test_wide_chain_single_expression_rejected_clearly(self):
        e = add_chain(5_000)
        with pytest.raises(ExpressionError, match=r"\d+ terms"):
            expr_source(e, {"x": 0})

    def test_deep_nesting_single_expression_rejected_clearly(self):
        e = nested(400)
        with pytest.raises(ExpressionError, match=r"nests \d+ levels"):
            expr_source(e, {"x": 0})

    def test_deep_nesting_compiles_through_statements(self):
        """compile_expr falls back to the statement emitter and still
        matches tree evaluation."""
        e = nested(400)
        f = compile_expr(e, {"x": 0})
        assert f([2.0]) == e.evaluate({"x": 2.0})

    def test_moderate_nesting_stays_single_expression(self):
        e = nested(100)
        src = expr_source(e, {"x": 0})
        assert eval(f"lambda x: {src}")([2.0]) == e.evaluate({"x": 2.0})


class TestFloatConstants:
    def test_integer_const_emits_float_literal(self):
        assert expr_source(const(2), {}) == "2.0"

    def test_pow_stays_float_for_integer_inputs(self):
        f = compile_expr(Pow(var("x"), const(2)), {"x": 0})
        out = f([3])  # deliberately an int input
        assert isinstance(out, float)
        assert out == 9.0

    def test_negative_const_base_parenthesized(self):
        """(-2.0) ** 2 is 4; unparenthesized emission would give -(2**2)."""
        e = Pow(const(-2.0), const(2.0))
        assert compile_expr(e, {})([]) == 4.0
        assert e.evaluate({}) == 4.0

    def test_negative_const_in_source(self):
        assert expr_source(const(-2.5), {}) == "(-2.5)"
