import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExpressionError
from repro.expr import Const, Pow, const, differentiate, gradient, hessian, var


def numeric_derivative(expr, name, env, h=1e-6):
    hi = dict(env)
    lo = dict(env)
    hi[name] = env[name] + h
    lo[name] = env[name] - h
    return (expr.evaluate(hi) - expr.evaluate(lo)) / (2 * h)


class TestBasicRules:
    def test_constant(self):
        assert differentiate(const(5), "x") == Const(0.0)

    def test_variable_self(self):
        assert differentiate(var("x"), "x") == Const(1.0)

    def test_variable_other(self):
        assert differentiate(var("y"), "x") == Const(0.0)

    def test_sum_rule(self):
        d = differentiate(var("x") + var("y") + 3, "x")
        assert d.evaluate({}) == 1.0

    def test_product_rule(self):
        e = var("x") * var("y")
        d = differentiate(e, "x")
        assert d.evaluate({"x": 2.0, "y": 7.0}) == 7.0

    def test_quotient_rule(self):
        e = var("x") / var("y")
        d = differentiate(e, "y")
        assert d.evaluate({"x": 6.0, "y": 2.0}) == pytest.approx(-1.5)

    def test_power_rule(self):
        e = var("n") ** 3
        d = differentiate(e, "n")
        assert d.evaluate({"n": 2.0}) == pytest.approx(12.0)

    def test_fractional_power(self):
        e = var("n") ** 0.5
        d = differentiate(e, "n")
        assert d.evaluate({"n": 4.0}) == pytest.approx(0.25)

    def test_const_base_exponential(self):
        e = Pow(const(2.0), var("k"))
        d = differentiate(e, "k")
        assert d.evaluate({"k": 3.0}) == pytest.approx(8.0 * math.log(2.0))

    def test_negative_const_base_rejected(self):
        e = Pow(const(-2.0), var("k"))
        with pytest.raises(ExpressionError):
            differentiate(e, "k")

    def test_variable_base_and_exponent_rejected(self):
        e = Pow(var("x"), var("y"))
        with pytest.raises(ExpressionError):
            differentiate(e, "x")

    def test_neg(self):
        d = differentiate(-var("x") * 3, "x")
        assert d.evaluate({"x": 1.0}) == -3.0


class TestPerformanceModelDerivatives:
    """The exact family the NLP solver differentiates: a/n + b n^c + d."""

    def test_first_derivative(self):
        n = var("n")
        t = 100.0 / n + 0.5 * n ** 1.5 + 7.0
        d = differentiate(t, "n")
        at = {"n": 16.0}
        expected = -100.0 / 16.0**2 + 0.5 * 1.5 * 16.0**0.5
        assert d.evaluate(at) == pytest.approx(expected)

    def test_second_derivative_positive_for_convex(self):
        n = var("n")
        t = 100.0 / n + 0.5 * n ** 1.5 + 7.0
        d2 = differentiate(differentiate(t, "n"), "n")
        for point in (2.0, 10.0, 500.0):
            assert d2.evaluate({"n": point}) > 0.0


class TestGradientHessian:
    def test_gradient_keys(self):
        e = var("x") * var("y") + var("x")
        g = gradient(e, ["x", "y"])
        assert set(g) == {"x", "y"}
        assert g["x"].evaluate({"x": 1.0, "y": 4.0}) == 5.0
        assert g["y"].evaluate({"x": 3.0, "y": 0.0}) == 3.0

    def test_hessian_upper_triangle(self):
        e = var("x") ** 2 * var("y")
        h = hessian(e, ["x", "y"])
        assert set(h) == {("x", "x"), ("x", "y"), ("y", "y")}
        env = {"x": 3.0, "y": 5.0}
        assert h[("x", "x")].evaluate(env) == pytest.approx(2 * 5.0)
        assert h[("x", "y")].evaluate(env) == pytest.approx(2 * 3.0)
        assert h[("y", "y")].evaluate(env) == pytest.approx(0.0)


@st.composite
def smooth_exprs(draw, names=("x", "y")):
    """Random smooth expressions over positive variables."""
    depth = draw(st.integers(0, 3))
    return _build(draw, depth, names)


def _build(draw, depth, names):
    if depth == 0:
        if draw(st.booleans()):
            return var(draw(st.sampled_from(names)))
        return const(draw(st.floats(0.1, 5.0)))
    kind = draw(st.sampled_from(["add", "mul", "div", "pow", "neg"]))
    left = _build(draw, depth - 1, names)
    if kind == "neg":
        return -left
    if kind == "pow":
        # Keep the base strictly positive so fractional powers stay real.
        return (left * left + 0.5) ** draw(st.floats(0.5, 2.5))
    right = _build(draw, depth - 1, names)
    if kind == "add":
        return left + right
    if kind == "mul":
        return left * right
    return left / (right ** 2 + 1.0)  # keep denominators >= 1


class TestDerivativeMatchesNumeric:
    @given(expr=smooth_exprs(), x=st.floats(0.5, 4.0), y=st.floats(0.5, 4.0))
    @settings(max_examples=120, deadline=None)
    def test_symbolic_equals_numeric(self, expr, x, y):
        env = {"x": x, "y": y}
        value = expr.evaluate(env)
        if not math.isfinite(value) or abs(value) > 1e6:
            return  # skip numerically wild samples
        for name in ("x", "y"):
            d = differentiate(expr, name)
            sym = d.evaluate(env)
            num = numeric_derivative(expr, name, env)
            assert sym == pytest.approx(num, rel=1e-3, abs=1e-4)
