import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import Curvature, curvature, linearize_at, var
from repro.expr.node import Const, Pow


class TestLinearize:
    def test_tangent_to_convex_underestimates(self):
        """OA cut of a convex f must satisfy cut(x) <= f(x) everywhere."""
        n = var("n")
        f = 100.0 / n + 0.5 * n ** 1.5 - 50.0  # constraint f <= 0
        cut = linearize_at(f, {"n": 10.0})
        for x in np.linspace(1.0, 100.0, 50):
            lhs = sum(c * x for c in cut.coeffs.values())
            assert lhs - cut.rhs <= f.evaluate({"n": x}) + 1e-9

    def test_cut_tight_at_linearization_point(self):
        n = var("n")
        f = 100.0 / n - 20.0
        point = {"n": 4.0}
        cut = linearize_at(f, point)
        lhs = sum(c * point[k] for k, c in cut.coeffs.items())
        assert lhs - cut.rhs == pytest.approx(f.evaluate(point))

    def test_multivariate_cut(self):
        t, n = var("t"), var("n")
        f = 100.0 / n - t  # T >= 100/n  as  f <= 0
        cut = linearize_at(f, {"n": 10.0, "t": 10.0})
        assert set(cut.coeffs) == {"n", "t"}
        assert cut.coeffs["t"] == pytest.approx(-1.0)

    def test_violation_measure(self):
        n = var("n")
        f = 100.0 / n - 20.0
        cut = linearize_at(f, {"n": 4.0})
        # At n=4, f=5 > 0: the cut is violated by exactly 5.
        assert cut.violation({"n": 4.0}) == pytest.approx(5.0)
        # Far on the feasible side, no violation.
        assert cut.violation({"n": 1000.0}) == 0.0

    def test_nonfinite_point_rejected(self):
        n = var("n")
        f = 100.0 / n
        with pytest.raises(ValueError):
            linearize_at(f, {"n": 0.0})

    @given(at=st.floats(1.0, 200.0), probe=st.floats(1.0, 200.0))
    @settings(max_examples=80, deadline=None)
    def test_underestimation_property(self, at, probe):
        n = var("n")
        f = 250.0 / n + 0.01 * n ** 1.3 + 2.0
        cut = linearize_at(f - 30.0, {"n": at})
        lhs = sum(c * probe for c in cut.coeffs.values())
        assert lhs - cut.rhs <= (f - 30.0).evaluate({"n": probe}) + 1e-7


class TestCurvature:
    def test_constant(self):
        assert curvature(Const(3.0)) is Curvature.CONSTANT

    def test_affine(self):
        assert curvature(2 * var("x") + 1) is Curvature.AFFINE

    def test_reciprocal_convex(self):
        assert curvature(5.0 / var("n")) is Curvature.CONVEX

    def test_negative_reciprocal_concave(self):
        assert curvature(-5.0 / var("n")) is Curvature.CONCAVE

    def test_power_ge_one_convex(self):
        assert curvature(var("n") ** 1.5) is Curvature.CONVEX

    def test_power_between_zero_one_concave(self):
        assert curvature(var("n") ** 0.5) is Curvature.CONCAVE

    def test_negative_power_convex(self):
        assert curvature(Pow(var("n"), Const(-2.0))) is Curvature.CONVEX

    def test_reciprocal_of_power(self):
        assert curvature(3.0 / var("n") ** 2.0) is Curvature.CONVEX

    def test_perf_model_is_convex(self):
        n = var("n")
        t = 100.0 / n + 0.5 * n ** 1.5 + 7.0
        assert curvature(t).is_convex()

    def test_perf_model_with_sublinear_term_unknown(self):
        # b*n^c with 0<c<1 is concave; summed with convex a/n -> UNKNOWN.
        n = var("n")
        t = 100.0 / n + 0.5 * n ** 0.5 + 7.0
        assert curvature(t) is Curvature.UNKNOWN

    def test_scaling_preserves_curvature(self):
        assert curvature(2.0 * (1.0 / var("n"))) is Curvature.CONVEX
        assert curvature(-2.0 * (1.0 / var("n"))) is Curvature.CONCAVE

    def test_sum_of_convex_is_convex(self):
        e = 1.0 / var("a") + var("b") ** 2.0
        assert curvature(e) is Curvature.CONVEX

    def test_product_of_variables_unknown(self):
        assert curvature(var("x") * var("y")) is Curvature.UNKNOWN

    def test_negation_flips(self):
        assert curvature(-(var("x") ** 2.0)) is Curvature.CONCAVE

    def test_helpers(self):
        assert Curvature.AFFINE.is_convex() and Curvature.AFFINE.is_concave()
        assert Curvature.UNKNOWN.negated() is Curvature.UNKNOWN
