import numpy as np
import pytest

from repro.exceptions import ExpressionError
from repro.expr import Add, Const, Div, Mul, Neg, Pow, VarRef, as_expr, const, var


class TestConstruction:
    def test_var_and_const_helpers(self):
        assert var("n") == VarRef("n")
        assert const(3) == Const(3.0)

    def test_as_expr_number(self):
        assert as_expr(2) == Const(2.0)

    def test_as_expr_passthrough(self):
        e = var("x")
        assert as_expr(e) is e

    def test_as_expr_rejects_bool(self):
        with pytest.raises(ExpressionError):
            as_expr(True)

    def test_as_expr_rejects_string(self):
        with pytest.raises(ExpressionError):
            as_expr("x")

    def test_empty_varname_rejected(self):
        with pytest.raises(ExpressionError):
            VarRef("")

    def test_empty_add_rejected(self):
        with pytest.raises(ExpressionError):
            Add(())


class TestOperators:
    def test_add_sub(self):
        e = var("x") + 2 - var("y")
        assert e.evaluate({"x": 5.0, "y": 3.0}) == 4.0

    def test_radd_rsub(self):
        e = 10 - var("x")
        assert e.evaluate({"x": 4.0}) == 6.0
        e2 = 1 + var("x")
        assert e2.evaluate({"x": 4.0}) == 5.0

    def test_mul_div(self):
        e = 3 * var("x") / var("y")
        assert e.evaluate({"x": 4.0, "y": 2.0}) == 6.0

    def test_rtruediv(self):
        e = 100 / var("n")
        assert e.evaluate({"n": 4.0}) == 25.0

    def test_pow(self):
        e = var("n") ** 1.5
        assert e.evaluate({"n": 4.0}) == pytest.approx(8.0)

    def test_rpow(self):
        e = 2 ** var("k")
        assert e.evaluate({"k": 3.0}) == pytest.approx(8.0)

    def test_neg_pos(self):
        e = -var("x")
        assert e.evaluate({"x": 2.0}) == -2.0
        assert (+e).evaluate({"x": 2.0}) == -2.0

    def test_perf_model_shape(self):
        # The paper's T(n) = a/n + b*n^c + d
        n = var("n")
        t = 100.0 / n + 0.01 * n ** 1.2 + 5.0
        assert t.evaluate({"n": 10.0}) == pytest.approx(100 / 10 + 0.01 * 10**1.2 + 5)


class TestEvaluation:
    def test_vectorized_evaluation_broadcasts(self):
        n = var("n")
        t = 100.0 / n + 2.0
        nodes = np.array([1.0, 2.0, 4.0])
        np.testing.assert_allclose(t.evaluate({"n": nodes}), [102.0, 52.0, 27.0])

    def test_missing_binding_raises(self):
        with pytest.raises(ExpressionError, match="no value bound"):
            var("q").evaluate({})

    def test_vectorized_pow(self):
        e = var("n") ** 2.0
        np.testing.assert_allclose(e.evaluate({"n": np.array([2.0, 3.0])}), [4.0, 9.0])


class TestStructure:
    def test_variables_collects_names(self):
        e = var("x") * var("y") + 3 / var("z")
        assert e.variables() == frozenset({"x", "y", "z"})

    def test_const_has_no_variables(self):
        assert const(5).variables() == frozenset()

    def test_children(self):
        e = Mul(var("a"), var("b"))
        assert e.children() == (var("a"), var("b"))
        assert Neg(var("a")).children() == (var("a"),)
        d = Div(var("a"), var("b"))
        assert d.children() == (var("a"), var("b"))
        p = Pow(var("a"), const(2))
        assert p.children() == (var("a"), const(2.0))

    def test_structural_equality(self):
        assert var("x") + 1 == var("x") + 1
        assert var("x") + 1 != var("x") + 2

    def test_no_truthiness(self):
        with pytest.raises(ExpressionError, match="truth value"):
            bool(var("x"))

    def test_repr_roundtrip_readable(self):
        e = (var("a") + 1) * var("b")
        text = repr(e)
        assert "a" in text and "b" in text
