import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExpressionError
from repro.expr import (
    Add,
    Const,
    Mul,
    Neg,
    Pow,
    const,
    is_linear,
    linear_coefficients,
    simplify,
    var,
)


class TestSimplify:
    def test_fold_constants(self):
        assert simplify(const(2) + const(3)) == Const(5.0)

    def test_drop_zero_terms(self):
        e = simplify(var("x") + 0.0)
        assert e == var("x")

    def test_mul_by_zero(self):
        assert simplify(var("x") * 0.0) == Const(0.0)

    def test_mul_by_one(self):
        assert simplify(1.0 * var("x")) == var("x")

    def test_mul_by_minus_one(self):
        assert simplify(-1.0 * var("x")) == Neg(var("x"))

    def test_double_negation(self):
        assert simplify(Neg(Neg(var("x")))) == var("x")

    def test_pow_one(self):
        assert simplify(var("x") ** 1.0) == var("x")

    def test_pow_zero(self):
        assert simplify(var("x") ** 0.0) == Const(1.0)

    def test_nested_pow_folds(self):
        e = simplify((var("x") ** 2.0) ** 3.0)
        assert e == Pow(var("x"), Const(6.0))

    def test_flattens_nested_sums(self):
        e = simplify((var("a") + var("b")) + (var("c") + 1.0) + 2.0)
        assert isinstance(e, Add)
        assert len(e.terms) == 4  # a, b, c, 3.0

    def test_constant_merge_in_products(self):
        e = simplify(2.0 * (3.0 * var("x")))
        assert e == Mul(Const(6.0), var("x"))

    def test_div_by_one(self):
        assert simplify(var("x") / 1.0) == var("x")

    def test_zero_numerator(self):
        assert simplify(const(0) / var("x")) == Const(0.0)

    @given(x=st.floats(0.5, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_simplify_preserves_value(self, x):
        e = 2.0 * var("x") + 0.0 * var("x") + (var("x") ** 1.0) - (-var("x"))
        env = {"x": x}
        assert simplify(e).evaluate(env) == pytest.approx(e.evaluate(env))


class TestLinear:
    def test_affine_detected(self):
        e = 2 * var("x") - 3 * var("y") + 7
        form = linear_coefficients(e)
        assert form.coeffs == {"x": 2.0, "y": -3.0}
        assert form.constant == 7.0

    def test_duplicate_variable_merged(self):
        form = linear_coefficients(var("x") + 2 * var("x"))
        assert form.coeffs == {"x": 3.0}

    def test_division_by_constant(self):
        form = linear_coefficients(var("x") / 4)
        assert form.coeffs == {"x": 0.25}

    def test_product_of_variables_rejected(self):
        with pytest.raises(ExpressionError):
            linear_coefficients(var("x") * var("y"))

    def test_variable_denominator_rejected(self):
        assert not is_linear(1 / var("x"))

    def test_power_rejected(self):
        assert not is_linear(var("x") ** 2)

    def test_pow_one_is_linear_after_simplify(self):
        assert is_linear(var("x") ** 1.0)

    def test_constant_expression(self):
        form = linear_coefficients(const(2) * const(3))
        assert form.coeffs == {} and form.constant == 6.0

    def test_evaluate_matches_expr(self):
        e = 5 * var("a") - var("b") / 2 + 1
        form = linear_coefficients(e)
        env = {"a": 3.0, "b": 4.0}
        assert form.evaluate(env) == pytest.approx(e.evaluate(env))

    def test_scaled_and_plus(self):
        f1 = linear_coefficients(var("x") + 1)
        f2 = linear_coefficients(2 * var("y"))
        total = f1.scaled(2.0).plus(f2)
        assert total.coeffs == {"x": 2.0, "y": 2.0}
        assert total.constant == 2.0
