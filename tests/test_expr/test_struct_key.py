"""Structural hashing (Expr.struct_key) used by the kernel cache."""

from __future__ import annotations

from repro.expr.node import Neg, Pow, const, var


def chain(n: int):
    e = var("x")
    for _ in range(n):
        e = e + 1.0
    return e


class TestStructKey:
    def test_equal_structure_equal_key(self):
        a = 2.0 / var("n") + var("n") ** 1.3
        b = 2.0 / var("n") + var("n") ** 1.3
        assert a is not b
        assert a.struct_key() == b.struct_key()

    def test_keys_are_interned(self):
        a = (var("x") + 1.0) * var("y")
        b = (var("x") + 1.0) * var("y")
        assert a.struct_key() is b.struct_key()

    def test_value_discriminates(self):
        assert const(2.0).struct_key() != const(3.0).struct_key()

    def test_name_discriminates(self):
        assert var("x").struct_key() != var("y").struct_key()

    def test_int_and_float_consts_agree(self):
        assert const(2).struct_key() == const(2.0).struct_key()

    def test_operator_discriminates(self):
        x, y = var("x"), var("y")
        assert (x + y).struct_key() != (x * y).struct_key()
        assert (x / y).struct_key() != Pow(x, y).struct_key()

    def test_operand_order_discriminates(self):
        x, y = var("x"), var("y")
        assert (x / y).struct_key() != (y / x).struct_key()

    def test_shared_subtree_same_key(self):
        s = var("x") * var("y")
        assert (s + s).children()[0].struct_key() == s.struct_key()

    def test_deep_chain_no_recursion(self):
        """10k-node chains must not hit the interpreter recursion limit."""
        a, b = chain(10_000), chain(10_000)
        assert a.struct_key() == b.struct_key()
        assert a.struct_key() != chain(9_999).struct_key()

    def test_key_cached_on_node(self):
        e = Neg(var("x") + const(1.0))
        assert e.struct_key() is e.struct_key()
