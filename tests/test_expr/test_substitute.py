import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import Const, substitute, var


class TestSubstitute:
    def test_replaces_named_variable(self):
        e = var("x") + var("y")
        out = substitute(e, {"x": 3.0})
        assert out.variables() == frozenset({"y"})
        assert out.evaluate({"y": 2.0}) == 5.0

    def test_full_binding_folds_to_constant(self):
        e = 2.0 * var("x") + var("y") ** 2.0
        out = substitute(e, {"x": 3.0, "y": 4.0})
        assert out == Const(22.0)

    def test_missing_names_untouched(self):
        e = var("x") / var("y")
        out = substitute(e, {"z": 1.0})
        assert out.variables() == frozenset({"x", "y"})

    def test_expression_bindings(self):
        e = var("x") + 1.0
        out = substitute(e, {"x": var("a") * 2.0})
        assert out.evaluate({"a": 5.0}) == 11.0

    def test_division_and_power_structure(self):
        e = 10.0 / var("n") + var("n") ** 1.5
        out = substitute(e, {"n": 4.0})
        assert out == Const(10.0 / 4.0 + 8.0)

    def test_nested_partial(self):
        e = (var("a") + var("b")) * (var("a") - var("c"))
        out = substitute(e, {"b": 1.0, "c": 2.0})
        assert out.variables() == frozenset({"a"})
        assert out.evaluate({"a": 3.0}) == (3 + 1) * (3 - 2)

    @given(
        x=st.floats(0.5, 10.0),
        y=st.floats(0.5, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_substitute_equals_evaluate(self, x, y):
        e = 3.0 * var("x") + var("y") / var("x") + var("y") ** 1.2
        full = substitute(e, {"x": x, "y": y})
        assert isinstance(full, Const)
        assert full.value == pytest.approx(e.evaluate({"x": x, "y": y}))

    def test_original_tree_unmodified(self):
        e = var("x") + 1.0
        substitute(e, {"x": 9.0})
        assert e.variables() == frozenset({"x"})
